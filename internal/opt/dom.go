package opt

import "branchreorder/internal/ir"

// domInfo answers dominance queries over a function's CFG.
type domInfo struct {
	idx map[*ir.Block]int
	dom []bitset // dom[i] = set of block indices dominating block i
}

// computeDominators runs the classic iterative dominator dataflow.
func computeDominators(f *ir.Func) *domInfo {
	n := len(f.Blocks)
	d := &domInfo{idx: make(map[*ir.Block]int, n), dom: make([]bitset, n)}
	for i, b := range f.Blocks {
		d.idx[b] = i
	}
	all := newBitset(n)
	for i := 0; i < n; i++ {
		all.set(ir.Reg(i))
	}
	for i := range d.dom {
		d.dom[i] = newBitset(n)
		d.dom[i].copyFrom(all)
	}
	entry := d.idx[f.Entry()]
	d.dom[entry] = newBitset(n)
	d.dom[entry].set(ir.Reg(entry))

	preds := ir.Preds(f)
	changed := true
	for changed {
		changed = false
		for i, b := range f.Blocks {
			if i == entry {
				continue
			}
			nd := newBitset(n)
			first := true
			for _, p := range preds[b] {
				pi := d.idx[p]
				if first {
					nd.copyFrom(d.dom[pi])
					first = false
				} else {
					for w := range nd {
						nd[w] &= d.dom[pi][w]
					}
				}
			}
			if first {
				// No predecessors: unreachable; dominated by everything.
				nd.copyFrom(all)
			}
			nd.set(ir.Reg(i))
			if !bitsetEqual(nd, d.dom[i]) {
				d.dom[i] = nd
				changed = true
			}
		}
	}
	return d
}

func bitsetEqual(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dominates reports whether definition point (db, di) dominates use point
// (ub, ui); instruction indices order points within a block, and the
// terminator is position len(Insts).
func (d *domInfo) dominates(db *ir.Block, di int, ub *ir.Block, ui int) bool {
	if db == ub {
		return di < ui
	}
	return d.dom[d.idx[ub]].get(ir.Reg(d.idx[db]))
}
