package opt

import "branchreorder/internal/ir"

// SimplifyControl performs branch chaining (edges through empty goto
// blocks are retargeted), folds conditional branches whose comparison is
// between two constants, collapses branches with identical destinations,
// and merges single-predecessor goto chains. It reports whether anything
// changed.
func SimplifyControl(f *ir.Func) bool {
	changed := false
	if chainBranches(f) {
		changed = true
	}
	if foldConstBranches(f) {
		changed = true
	}
	if collapseTrivialBranches(f) {
		changed = true
	}
	// Drop unreachable blocks before merging: a dead predecessor would
	// otherwise block a single-predecessor merge.
	if ir.RemoveUnreachable(f) {
		changed = true
	}
	if mergeBlocks(f) {
		changed = true
	}
	return changed
}

// chainTarget follows chains of empty goto blocks, stopping at cycles.
func chainTarget(b *ir.Block) *ir.Block {
	seen := map[*ir.Block]bool{}
	for len(b.Insts) == 0 && b.Term.Kind == ir.TermGoto && !seen[b] {
		seen[b] = true
		b = b.Term.Taken
	}
	return b
}

func chainBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := &b.Term
		switch t.Kind {
		case ir.TermGoto:
			if n := chainTarget(t.Taken); n != t.Taken {
				t.Taken = n
				changed = true
			}
		case ir.TermBr:
			if n := chainTarget(t.Taken); n != t.Taken {
				t.Taken = n
				changed = true
			}
			if n := chainTarget(t.Next); n != t.Next {
				t.Next = n
				changed = true
			}
		case ir.TermIJmp:
			for i, tgt := range t.Targets {
				if n := chainTarget(tgt); n != tgt {
					t.Targets[i] = n
					changed = true
				}
			}
		}
	}
	return changed
}

// foldConstBranches rewrites a conditional branch into a goto when the
// block's own final comparison is between two immediates. The comparison
// itself is left for deadCmps, since other blocks may still consume the
// flags.
func foldConstBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b.Term.Kind != ir.TermBr {
			continue
		}
		var lastCmp *ir.Inst
		for i := len(b.Insts) - 1; i >= 0; i-- {
			if b.Insts[i].Op == ir.Cmp {
				lastCmp = &b.Insts[i]
				break
			}
		}
		if lastCmp == nil || !lastCmp.A.IsImm || !lastCmp.B.IsImm {
			continue
		}
		target := b.Term.Next
		if b.Term.Rel.Holds(lastCmp.A.Imm, lastCmp.B.Imm) {
			target = b.Term.Taken
		}
		b.Term = ir.Term{Kind: ir.TermGoto, Taken: target}
		changed = true
	}
	return changed
}

// collapseTrivialBranches turns a conditional branch whose two successors
// are identical into a goto.
func collapseTrivialBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermBr && b.Term.Taken == b.Term.Next {
			b.Term = ir.Term{Kind: ir.TermGoto, Taken: b.Term.Taken}
			changed = true
		}
	}
	return changed
}

// mergeBlocks merges b -> c when b ends in a goto to c and c has no other
// predecessors.
func mergeBlocks(f *ir.Func) bool {
	changed := false
	for {
		preds := ir.Preds(f)
		merged := false
		for _, b := range f.Blocks {
			if b.Term.Kind != ir.TermGoto {
				continue
			}
			c := b.Term.Taken
			if c == b || c == f.Entry() {
				continue
			}
			if len(preds[c]) != 1 {
				continue
			}
			b.Insts = append(b.Insts, c.Insts...)
			b.Term = c.Term
			// Delete c.
			for i, blk := range f.Blocks {
				if blk == c {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			merged = true
			changed = true
			break // preds map is stale; recompute
		}
		if !merged {
			return changed
		}
	}
}
