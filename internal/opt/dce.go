package opt

import "branchreorder/internal/ir"

// DeadCodeElim removes side-effect-free instructions whose results are
// never used, and comparisons whose condition codes are never consumed.
// It reports whether anything changed.
func DeadCodeElim(f *ir.Func) bool {
	changed := deadInsts(f)
	if deadCmps(f) {
		changed = true
	}
	return changed
}

func deadInsts(f *ir.Func) bool {
	changed := false
	// Iterate: removing one instruction can make another dead.
	for {
		_, liveOut := liveness(f)
		any := false
		var regs []ir.Reg
		for _, b := range f.Blocks {
			live := newBitset(f.NRegs)
			live.copyFrom(liveOut[b])
			regs = termUses(&b.Term, regs[:0])
			for _, r := range regs {
				live.set(r)
			}
			for j := len(b.Insts) - 1; j >= 0; j-- {
				inst := &b.Insts[j]
				d := instDef(inst)
				dead := d != ir.NoReg && !live.get(d) && sideEffectFree(inst)
				if dead {
					inst.Op = ir.Nop
					inst.Args = nil
					any = true
					continue
				}
				if d != ir.NoReg {
					live.clear(d)
				}
				regs = instUses(inst, regs[:0])
				for _, r := range regs {
					live.set(r)
				}
			}
		}
		if !any {
			break
		}
		changed = true
		removeNops(f)
	}
	return changed
}

// deadCmps removes comparisons whose flags are never consumed: any Cmp
// followed by another Cmp in the same block is dead, and the last Cmp of a
// block is dead when no path from the block's end reaches a conditional
// branch before another Cmp.
func deadCmps(f *ir.Func) bool {
	// needIn[b]: flags value at entry of b may be consumed.
	// needIn[b] = no Cmp in b && needOut(b); needOut(b) = Term is Br or
	// any successor needs flags on entry.
	hasCmp := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == ir.Cmp {
				hasCmp[b] = true
				break
			}
		}
	}
	needIn := map[*ir.Block]bool{}
	needOut := func(b *ir.Block) bool {
		if b.Term.Kind == ir.TermBr {
			return true
		}
		var succs []*ir.Block
		for _, s := range b.Term.Succs(succs) {
			if needIn[s] {
				return true
			}
		}
		return false
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			v := !hasCmp[b] && needOut(b)
			if v != needIn[b] {
				needIn[b] = v
				changed = true
			}
		}
	}
	any := false
	for _, b := range f.Blocks {
		lastCmp := -1
		for j := range b.Insts {
			if b.Insts[j].Op != ir.Cmp {
				continue
			}
			if lastCmp >= 0 {
				b.Insts[lastCmp].Op = ir.Nop // shadowed by this later Cmp
				any = true
			}
			lastCmp = j
		}
		if lastCmp >= 0 && !needOut(b) {
			b.Insts[lastCmp].Op = ir.Nop
			any = true
		}
	}
	if any {
		removeNops(f)
	}
	return any
}

func removeNops(f *ir.Func) {
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for i := range b.Insts {
			if b.Insts[i].Op != ir.Nop {
				kept = append(kept, b.Insts[i])
			}
		}
		b.Insts = kept
	}
}
