package opt

import (
	"testing"

	"branchreorder/internal/ir"
)

// IR-level unit tests for individual passes (the end-to-end behaviour is
// covered by opt_test.go through the pipeline).

func TestDominators(t *testing.T) {
	f := &ir.Func{Name: "t", NRegs: 1}
	entry := f.NewBlock()
	left := f.NewBlock()
	right := f.NewBlock()
	join := f.NewBlock()
	tail := f.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(0)}}
	entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: left, Next: right}
	left.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	right.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	join.Term = ir.Term{Kind: ir.TermGoto, Taken: tail}
	tail.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}

	dom := computeDominators(f)
	check := func(a, b *ir.Block, want bool) {
		t.Helper()
		got := dom.dom[dom.idx[b]].get(ir.Reg(dom.idx[a]))
		if got != want {
			t.Errorf("dominates(B%d, B%d) = %v, want %v", a.ID, b.ID, got, want)
		}
	}
	check(entry, join, true)
	check(entry, tail, true)
	check(left, join, false) // join reachable via right too
	check(join, tail, true)
	check(left, left, true)

	// Instruction-level ordering within a block.
	if !dom.dominates(entry, 0, entry, 1) {
		t.Error("earlier instruction should dominate later one in same block")
	}
	if dom.dominates(entry, 1, entry, 1) {
		t.Error("a point must not strictly dominate itself")
	}
}

func TestGlobalPropagateAcrossBlocks(t *testing.T) {
	// r1 = getchar (single def); r2 = mov r1 (single def); a later block
	// compares r2 — after propagation it must compare r1.
	f := &ir.Func{Name: "main", NRegs: 3}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 1},
		{Op: ir.Mov, Dst: 2, A: ir.R(1)},
		{Op: ir.Cmp, A: ir.R(1), B: ir.Imm(5)},
	}
	b0.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: b2, Next: b1}
	b1.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(2), B: ir.Imm(7)}}
	b1.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: b2, Next: b2}
	b2.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(2)}

	if !GlobalPropagate(f) {
		t.Fatal("GlobalPropagate found nothing")
	}
	if got := b1.Insts[0].A; got.IsImm || got.Reg != 1 {
		t.Errorf("cross-block compare still uses %v, want r1", got)
	}
	if got := b2.Term.Val; got.IsImm || got.Reg != 1 {
		t.Errorf("return still uses %v, want r1", got)
	}
}

func TestGlobalPropagateRespectsDominance(t *testing.T) {
	// r1 = mov 5 happens only on one path; the use at the join must NOT
	// be rewritten to the constant.
	f := &ir.Func{Name: "main", NRegs: 3}
	entry := f.NewBlock()
	set := f.NewBlock()
	join := f.NewBlock()
	entry.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 0},
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(0)},
	}
	entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: set, Next: join}
	set.Insts = []ir.Inst{{Op: ir.Mov, Dst: 1, A: ir.Imm(5)}}
	set.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	join.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}

	GlobalPropagate(f)
	if join.Term.Val.IsImm {
		t.Error("value from a non-dominating definition was propagated")
	}
}

func TestGlobalPropagateMultiDefStops(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 2}
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Mov, Dst: 1, A: ir.Imm(5)},
		{Op: ir.Mov, Dst: 1, A: ir.Imm(6)}, // second def
		{Op: ir.PutInt, A: ir.R(1)},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
	GlobalPropagate(f)
	if b.Insts[2].A.IsImm {
		t.Error("multi-def register was const-propagated globally")
	}
}

func TestSimplifyControlChainsAndMerges(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 1}
	a := f.NewBlock()
	hop := f.NewBlock() // empty goto trampoline
	c := f.NewBlock()
	a.Insts = []ir.Inst{{Op: ir.Mov, Dst: 0, A: ir.Imm(1)}}
	a.Term = ir.Term{Kind: ir.TermGoto, Taken: hop}
	hop.Term = ir.Term{Kind: ir.TermGoto, Taken: c}
	c.Insts = []ir.Inst{{Op: ir.PutInt, A: ir.R(0)}}
	c.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}

	if !SimplifyControl(f) {
		t.Fatal("SimplifyControl found nothing")
	}
	// a, hop and c should have collapsed into one block.
	if len(f.Blocks) != 1 {
		t.Errorf("got %d blocks after simplify, want 1\n%s", len(f.Blocks), f.Dump())
	}
}

func TestSimplifyControlFoldsConstBranch(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 1}
	a := f.NewBlock()
	yes := f.NewBlock()
	no := f.NewBlock()
	a.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.Imm(3), B: ir.Imm(3)}}
	a.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: yes, Next: no}
	yes.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(1)}
	no.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}

	SimplifyControl(f)
	if a.Term.Kind != ir.TermGoto && a.Term.Kind != ir.TermRet {
		t.Errorf("constant branch not folded: %v", a.Term.Kind)
	}
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermRet && b.Term.Val.Imm == 0 && b == no {
			t.Error("untaken side survived unreachable-code removal")
		}
	}
}

func TestDeadCmpsRemoved(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 2}
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(1)}, // shadowed
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}, // never consumed
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	if !DeadCodeElim(f) {
		t.Fatal("DeadCodeElim found nothing")
	}
	for i := range b.Insts {
		if b.Insts[i].Op == ir.Cmp {
			t.Errorf("dead compare survived:\n%s", f.Dump())
		}
	}
}

func TestLiveCmpKept(t *testing.T) {
	// The flags flow across a goto into a branch: the Cmp must stay.
	f := &ir.Func{Name: "main", NRegs: 1}
	a := f.NewBlock()
	mid := f.NewBlock()
	out := f.NewBlock()
	a.Insts = []ir.Inst{
		{Op: ir.Mov, Dst: 0, A: ir.Imm(3)},
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(1)},
	}
	a.Term = ir.Term{Kind: ir.TermGoto, Taken: mid}
	mid.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GT, Taken: out, Next: out}
	out.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	deadCmps(f)
	found := false
	for i := range a.Insts {
		if a.Insts[i].Op == ir.Cmp {
			found = true
		}
	}
	if !found {
		t.Errorf("live compare removed:\n%s", f.Dump())
	}
}

func TestRedundantCmpAcrossDiamondRejected(t *testing.T) {
	// Two predecessors with different compare constants: the successor's
	// compare must survive.
	f := &ir.Func{Name: "main", NRegs: 2}
	entry := f.NewBlock()
	l := f.NewBlock()
	r := f.NewBlock()
	join := f.NewBlock()
	done := f.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(1)}}
	entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: l, Next: r}
	l.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}}
	l.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	r.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(3)}}
	r.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	join.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}}
	join.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: done, Next: done}
	done.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}

	RedundantCmpElim(f)
	if len(join.Insts) == 0 || join.Insts[0].Op != ir.Cmp {
		t.Error("compare with conflicting incoming flags was removed")
	}
}

func TestRedundantCmpAcrossAgreementRemoved(t *testing.T) {
	// Both predecessors end with identical compares: the successor's
	// identical compare is redundant.
	f := &ir.Func{Name: "main", NRegs: 2}
	entry := f.NewBlock()
	l := f.NewBlock()
	r := f.NewBlock()
	join := f.NewBlock()
	done := f.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(1)}}
	entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: l, Next: r}
	l.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}}
	l.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	r.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}}
	r.Term = ir.Term{Kind: ir.TermGoto, Taken: join}
	join.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)}}
	join.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: done, Next: done}
	done.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}

	if !RedundantCmpElim(f) {
		t.Fatal("RedundantCmpElim found nothing")
	}
	for i := range join.Insts {
		if join.Insts[i].Op == ir.Cmp {
			t.Error("redundant compare with agreeing incoming flags survived")
		}
	}
}

func TestRedundantCmpInvalidatedByDef(t *testing.T) {
	// The compared register is redefined between the compares.
	f := &ir.Func{Name: "main", NRegs: 2}
	b := f.NewBlock()
	done := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)},
		{Op: ir.Add, Dst: 0, A: ir.R(0), B: ir.Imm(1)},
		{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(2)},
	}
	b.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: done, Next: done}
	done.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	RedundantCmpElim(f)
	n := 0
	for i := range b.Insts {
		if b.Insts[i].Op == ir.Cmp {
			n++
		}
	}
	if n != 2 {
		t.Errorf("have %d compares, want 2 (redefinition invalidates flags)", n)
	}
}

func TestPropagateLocalConstFold(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 4}
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Mov, Dst: 0, A: ir.Imm(6)},
		{Op: ir.Mov, Dst: 1, A: ir.Imm(7)},
		{Op: ir.Mul, Dst: 2, A: ir.R(0), B: ir.R(1)},
		{Op: ir.Add, Dst: 3, A: ir.R(2), B: ir.Imm(0)}, // identity
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(3)}
	Propagate(f)
	// After propagation+folding, the Mul should be a Mov 42.
	foundConst := false
	for i := range b.Insts {
		if b.Insts[i].Op == ir.Mov && b.Insts[i].Dst == 2 && b.Insts[i].A.IsImm && b.Insts[i].A.Imm == 42 {
			foundConst = true
		}
	}
	if !foundConst {
		t.Errorf("6*7 not folded:\n%s", f.Dump())
	}
}

func TestPropagateDoesNotFoldDivByZero(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 1}
	b := f.NewBlock()
	b.Insts = []ir.Inst{{Op: ir.Div, Dst: 0, A: ir.Imm(5), B: ir.Imm(0)}}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	Propagate(f)
	if b.Insts[0].Op != ir.Div {
		t.Error("division by zero folded away; it must keep trapping")
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	f := &ir.Func{Name: "main", NRegs: 3}
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 0},                // result dead but consumes input
		{Op: ir.Mov, Dst: 1, A: ir.Imm(1)},      // dead
		{Op: ir.St, A: ir.Imm(0), B: ir.Imm(2)}, // store must stay
		{Op: ir.PutChar, A: ir.Imm(65)},         // output must stay
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	DeadCodeElim(f)
	ops := map[ir.Op]bool{}
	for i := range b.Insts {
		ops[b.Insts[i].Op] = true
	}
	if !ops[ir.GetChar] || !ops[ir.St] || !ops[ir.PutChar] {
		t.Errorf("side-effecting instruction removed:\n%s", f.Dump())
	}
	if ops[ir.Mov] {
		t.Error("dead mov survived")
	}
}
