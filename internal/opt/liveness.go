// Package opt implements the conventional optimizations the paper applies
// before (and re-applies after) branch reordering: constant folding and
// propagation, copy propagation, dead code elimination, unreachable-code
// elimination, branch chaining, basic-block merging, and dead/redundant
// comparison elimination. Code repositioning lives in ir.Linearize.
package opt

import "branchreorder/internal/ir"

// bitset is a fixed-size register set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i ir.Reg) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) set(i ir.Reg) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) clear(i ir.Reg) { b[i/64] &^= 1 << (uint(i) % 64) }

// orInto ors src into b, reporting whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | src[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

// instDef returns the register defined by an instruction, or ir.NoReg.
func instDef(in *ir.Inst) ir.Reg {
	switch in.Op {
	case ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
		ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not, ir.Ld, ir.GetChar:
		return in.Dst
	case ir.Call:
		return in.Dst // may be NoReg
	default:
		return ir.NoReg
	}
}

// instUses appends the registers read by an instruction.
func instUses(in *ir.Inst, dst []ir.Reg) []ir.Reg {
	add := func(o ir.Operand) {
		if !o.IsImm {
			dst = append(dst, o.Reg)
		}
	}
	switch in.Op {
	case ir.Mov, ir.Neg, ir.Not, ir.Ld, ir.PutChar, ir.PutInt, ir.Prof:
		add(in.A)
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor,
		ir.Shl, ir.Shr, ir.Cmp, ir.St, ir.ProfCond:
		add(in.A)
		add(in.B)
	case ir.Call:
		for _, a := range in.Args {
			add(a)
		}
	}
	return dst
}

// termUses appends the registers read by a terminator.
func termUses(t *ir.Term, dst []ir.Reg) []ir.Reg {
	switch t.Kind {
	case ir.TermIJmp:
		if !t.Index.IsImm {
			dst = append(dst, t.Index.Reg)
		}
	case ir.TermRet:
		if !t.Val.IsImm {
			dst = append(dst, t.Val.Reg)
		}
	}
	return dst
}

// sideEffectFree reports whether deleting the instruction (when its result
// is unused) preserves behaviour of well-defined programs. Loads are
// treated as removable: a dead load can only matter by trapping, and
// removing the trap of an erroneous program is acceptable here (C gives
// such programs no semantics either).
func sideEffectFree(in *ir.Inst) bool {
	switch in.Op {
	case ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
		ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not, ir.Ld, ir.Nop:
		return true
	default:
		return false
	}
}

// liveness computes live-in/live-out register sets per block.
func liveness(f *ir.Func) (liveIn, liveOut map[*ir.Block]bitset) {
	liveIn = make(map[*ir.Block]bitset, len(f.Blocks))
	liveOut = make(map[*ir.Block]bitset, len(f.Blocks))
	for _, b := range f.Blocks {
		liveIn[b] = newBitset(f.NRegs)
		liveOut[b] = newBitset(f.NRegs)
	}
	var regs []ir.Reg
	changed := true
	for changed {
		changed = false
		// Reverse block order converges faster for mostly-forward CFGs.
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b]
			var succs []*ir.Block
			succs = b.Term.Succs(succs)
			for _, s := range succs {
				if out.orInto(liveIn[s]) {
					changed = true
				}
			}
			in := newBitset(f.NRegs)
			in.copyFrom(out)
			regs = termUses(&b.Term, regs[:0])
			for _, r := range regs {
				in.set(r)
			}
			for j := len(b.Insts) - 1; j >= 0; j-- {
				inst := &b.Insts[j]
				if d := instDef(inst); d != ir.NoReg {
					in.clear(d)
				}
				regs = instUses(inst, regs[:0])
				for _, r := range regs {
					in.set(r)
				}
			}
			if liveIn[b].orInto(in) {
				changed = true
			}
		}
	}
	return liveIn, liveOut
}
