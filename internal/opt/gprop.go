package opt

import "branchreorder/internal/ir"

// GlobalPropagate propagates copies and constants across basic blocks for
// registers with exactly one static definition. If register d is defined
// once as "mov d, a" where a is an immediate, or a register that is itself
// never redefined after its own single definition, then every use of d
// dominated by the definition can read a directly. Beyond shrinking code,
// this pass is what keeps a branch variable in one register across an
// if-else chain, which the sequence detector depends on.
func GlobalPropagate(f *ir.Func) bool {
	changed := false
	// A handful of rounds lets copy chains collapse.
	for round := 0; round < 4; round++ {
		if !globalPropagateOnce(f) {
			break
		}
		changed = true
	}
	return changed
}

type defSite struct {
	b *ir.Block
	i int // instruction index; terminators never define registers
}

func globalPropagateOnce(f *ir.Func) bool {
	defCount := make([]int, f.NRegs)
	defAt := make([]defSite, f.NRegs)
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if d := instDef(&b.Insts[i]); d != ir.NoReg {
				defCount[d]++
				defAt[d] = defSite{b, i}
			}
		}
	}
	// stable(r) at a point after r's single def: r never changes again.
	// Parameters with zero defs are stable everywhere.
	isParam := func(r ir.Reg) bool { return int(r) < f.NParams }

	dom := computeDominators(f)

	// For each single-def "mov d, a", decide the replacement operand.
	repl := make([]*ir.Operand, f.NRegs)
	for r := 0; r < f.NRegs; r++ {
		if defCount[r] != 1 {
			continue
		}
		site := defAt[r]
		in := &site.b.Insts[site.i]
		if in.Op != ir.Mov || in.Dst != ir.Reg(r) {
			continue
		}
		a := in.A
		switch {
		case a.IsImm:
			// ok
		case a.Reg == ir.Reg(r):
			continue // self-copy
		case defCount[a.Reg] == 0 && isParam(a.Reg):
			// ok: parameter, constant for the whole invocation
		case defCount[a.Reg] == 1:
			// Source must already hold its final value at d's def.
			src := defAt[a.Reg]
			if !dom.dominates(src.b, src.i, site.b, site.i) {
				continue
			}
		default:
			continue
		}
		av := a
		repl[r] = &av
	}

	changed := false
	replaceOp := func(b *ir.Block, pos int, o *ir.Operand) {
		if o.IsImm {
			return
		}
		r := o.Reg
		if repl[r] == nil {
			return
		}
		site := defAt[r]
		if !dom.dominates(site.b, site.i, b, pos) {
			return
		}
		*o = *repl[r]
		changed = true
	}

	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == ir.Prof || in.Op == ir.ProfCond {
				continue // tied to the detector's notion of the branch variable
			}
			switch in.Op {
			case ir.Mov, ir.Neg, ir.Not, ir.Ld, ir.PutChar, ir.PutInt:
				replaceOp(b, i, &in.A)
			case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
				ir.Xor, ir.Shl, ir.Shr, ir.Cmp, ir.St:
				replaceOp(b, i, &in.A)
				replaceOp(b, i, &in.B)
			case ir.Call:
				for j := range in.Args {
					replaceOp(b, i, &in.Args[j])
				}
			}
		}
		tpos := len(b.Insts)
		switch b.Term.Kind {
		case ir.TermIJmp:
			replaceOp(b, tpos, &b.Term.Index)
		case ir.TermRet:
			replaceOp(b, tpos, &b.Term.Val)
		}
	}
	return changed
}
