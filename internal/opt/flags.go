package opt

import "branchreorder/internal/ir"

// Redundant comparison elimination (paper Section 7, Figure 9): a Cmp is
// deleted when the condition codes already hold the result of comparing
// the same operands, either because an identical Cmp appears earlier in
// the block or because every predecessor exits with identical flags. The
// reordering transformation exposes many such comparisons when a default
// range becomes explicit next to a neighbouring range of the same
// variable.

// flagsDesc describes what the condition codes hold: a comparison of two
// operand expressions whose registers have not been redefined since.
type flagsDesc struct {
	state int // 0 = unset (top), 1 = known, 2 = unknown (bottom)
	a, b  ir.Operand
}

var (
	descTop     = flagsDesc{state: 0}
	descUnknown = flagsDesc{state: 2}
)

func descOf(a, b ir.Operand) flagsDesc { return flagsDesc{state: 1, a: a, b: b} }

func (d flagsDesc) meet(o flagsDesc) flagsDesc {
	switch {
	case d.state == 0:
		return o
	case o.state == 0:
		return d
	case d.state == 1 && o.state == 1 && d.a == o.a && d.b == o.b:
		return d
	default:
		return descUnknown
	}
}

// usesReg reports whether the descriptor's operands read r.
func (d flagsDesc) usesReg(r ir.Reg) bool {
	if d.state != 1 {
		return false
	}
	return (!d.a.IsImm && d.a.Reg == r) || (!d.b.IsImm && d.b.Reg == r)
}

// transfer runs the block's instructions over an incoming descriptor and
// returns the outgoing one. When kill is non-nil it records (by index)
// comparisons made redundant by the incoming state.
func flagsTransfer(b *ir.Block, in flagsDesc, kill func(i int)) flagsDesc {
	d := in
	for i := range b.Insts {
		inst := &b.Insts[i]
		if inst.Op == ir.Cmp {
			nd := descOf(inst.A, inst.B)
			if kill != nil && d.state == 1 && d.a == nd.a && d.b == nd.b {
				kill(i)
				continue // flags unchanged; d already equals nd
			}
			d = nd
			continue
		}
		if r := instDef(inst); r != ir.NoReg && d.usesReg(r) {
			d = descUnknown
		}
	}
	return d
}

// RedundantCmpElim removes comparisons whose result is already in the
// condition codes. It reports whether anything changed.
func RedundantCmpElim(f *ir.Func) bool {
	in := make(map[*ir.Block]flagsDesc, len(f.Blocks))
	for _, b := range f.Blocks {
		in[b] = descTop
	}
	in[f.Entry()] = descUnknown
	preds := ir.Preds(f)
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			d := in[b]
			if b != f.Entry() {
				d = descTop
				for _, p := range preds[b] {
					d = d.meet(flagsTransfer(p, in[p], nil))
				}
			}
			if d != in[b] {
				in[b] = d
				changed = true
			}
		}
	}
	any := false
	for _, b := range f.Blocks {
		var dead []int
		flagsTransfer(b, in[b], func(i int) { dead = append(dead, i) })
		for _, i := range dead {
			b.Insts[i].Op = ir.Nop
			any = true
		}
	}
	if any {
		removeNops(f)
	}
	return any
}
