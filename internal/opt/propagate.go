package opt

import "branchreorder/internal/ir"

// Propagate performs local (per-block) constant and copy propagation plus
// constant folding. It reports whether anything changed.
func Propagate(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if propagateBlock(f, b) {
			changed = true
		}
	}
	return changed
}

func propagateBlock(f *ir.Func, b *ir.Block) bool {
	// value[r] is the known operand for register r: an immediate or a
	// copy of another register.
	value := map[ir.Reg]ir.Operand{}
	changed := false

	invalidate := func(d ir.Reg) {
		delete(value, d)
		for r, v := range value {
			if !v.IsImm && v.Reg == d {
				delete(value, r)
			}
		}
	}
	subst := func(o ir.Operand) ir.Operand {
		if o.IsImm {
			return o
		}
		if v, ok := value[o.Reg]; ok {
			return v
		}
		return o
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		// Substitute known values into the operand positions.
		switch in.Op {
		case ir.Mov, ir.Neg, ir.Not, ir.Ld, ir.PutChar, ir.PutInt:
			if n := subst(in.A); n != in.A {
				in.A = n
				changed = true
			}
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
			ir.Xor, ir.Shl, ir.Shr, ir.Cmp, ir.St:
			if n := subst(in.A); n != in.A {
				in.A = n
				changed = true
			}
			if n := subst(in.B); n != in.B {
				in.B = n
				changed = true
			}
		case ir.Call:
			for j, a := range in.Args {
				if n := subst(a); n != a {
					in.Args[j] = n
					changed = true
				}
			}
		case ir.Prof, ir.ProfCond:
			// Leave Prof operands alone: the detector ties the
			// instrumented register to the sequence's branch variable.
		}
		// Fold when fully constant.
		if folded, ok := foldInst(in); ok {
			*in = folded
			changed = true
		}
		// Update the value map.
		d := instDef(in)
		if d == ir.NoReg {
			continue
		}
		invalidate(d)
		if in.Op == ir.Mov {
			src := in.A
			if src.IsImm || src.Reg != d {
				value[d] = src
			}
		}
	}
	// Substitute into the terminator.
	switch b.Term.Kind {
	case ir.TermIJmp:
		if n := subst(b.Term.Index); n != b.Term.Index {
			b.Term.Index = n
			changed = true
		}
	case ir.TermRet:
		if n := subst(b.Term.Val); n != b.Term.Val {
			b.Term.Val = n
			changed = true
		}
	}
	return changed
}

// foldInst folds an instruction whose operands are all immediate into a
// Mov of the result. Division by zero is left alone (it must trap).
func foldInst(in *ir.Inst) (ir.Inst, bool) {
	switch in.Op {
	case ir.Neg:
		if in.A.IsImm {
			return ir.Inst{Op: ir.Mov, Dst: in.Dst, A: ir.Imm(-in.A.Imm)}, true
		}
	case ir.Not:
		if in.A.IsImm {
			return ir.Inst{Op: ir.Mov, Dst: in.Dst, A: ir.Imm(^in.A.Imm)}, true
		}
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr:
		if !in.A.IsImm || !in.B.IsImm {
			// Algebraic identities with one constant.
			if id, ok := foldIdentity(in); ok {
				return id, true
			}
			return ir.Inst{}, false
		}
		a, b := in.A.Imm, in.B.Imm
		var v int64
		switch in.Op {
		case ir.Add:
			v = a + b
		case ir.Sub:
			v = a - b
		case ir.Mul:
			v = a * b
		case ir.Div:
			if b == 0 {
				return ir.Inst{}, false
			}
			v = a / b
		case ir.Rem:
			if b == 0 {
				return ir.Inst{}, false
			}
			v = a % b
		case ir.And:
			v = a & b
		case ir.Or:
			v = a | b
		case ir.Xor:
			v = a ^ b
		case ir.Shl:
			v = a << (uint64(b) & 63)
		case ir.Shr:
			v = a >> (uint64(b) & 63)
		}
		return ir.Inst{Op: ir.Mov, Dst: in.Dst, A: ir.Imm(v)}, true
	}
	return ir.Inst{}, false
}

// foldIdentity simplifies x+0, x-0, x*1, x*0, x&0, x|0, x^0, x<<0, x>>0.
func foldIdentity(in *ir.Inst) (ir.Inst, bool) {
	mov := func(o ir.Operand) (ir.Inst, bool) {
		return ir.Inst{Op: ir.Mov, Dst: in.Dst, A: o}, true
	}
	if in.B.IsImm {
		switch {
		case in.B.Imm == 0 && (in.Op == ir.Add || in.Op == ir.Sub ||
			in.Op == ir.Or || in.Op == ir.Xor || in.Op == ir.Shl || in.Op == ir.Shr):
			return mov(in.A)
		case in.B.Imm == 1 && (in.Op == ir.Mul || in.Op == ir.Div):
			return mov(in.A)
		case in.B.Imm == 0 && (in.Op == ir.Mul || in.Op == ir.And):
			return mov(ir.Imm(0))
		}
	}
	if in.A.IsImm {
		switch {
		case in.A.Imm == 0 && (in.Op == ir.Add || in.Op == ir.Or || in.Op == ir.Xor):
			return mov(in.B)
		case in.A.Imm == 1 && in.Op == ir.Mul:
			return mov(in.B)
		case in.A.Imm == 0 && (in.Op == ir.Mul || in.Op == ir.And):
			return mov(ir.Imm(0))
		}
	}
	return ir.Inst{}, false
}
