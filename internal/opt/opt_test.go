package opt_test

import (
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// build compiles with or without optimization.
func build(t *testing.T, src string, optimize bool) *ir.Program {
	t.Helper()
	res, err := pipeline.Frontend(src, pipeline.Options{Switch: lower.SetI, Optimize: optimize})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	return res.Prog
}

func execute(t *testing.T, p *ir.Program, input string) (int64, string, interp.Stats) {
	t.Helper()
	m := &interp.Machine{Prog: p, Input: []byte(input)}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p.Dump())
	}
	return ret, m.Output.String(), m.Stats
}

// The optimizer must preserve observable behaviour and should reduce the
// dynamic instruction count on programs with foldable work.
var semanticsPrograms = []struct {
	name  string
	src   string
	input string
}{
	{"charloop", `
int hist[256];
int main() {
	int c, n = 0;
	while ((c = getchar()) != EOF) {
		if (c >= 0) hist[c]++;
		if (c == ' ' || c == '\t') n++;
		else if (c == '\n') n += 2;
	}
	putint(n); putchar('\n');
	putint(hist['a']);
	return n;
}`, "a b\tc\naa a"},
	{"constarith", `
int main() {
	int x = 3 * 4 + 5;
	int y = x * 2 - (10 / 2);
	int z = y % 7 + (1 << 4);
	putint(x + y + z);
	return 0;
}`, ""},
	{"switchmix", `
int main() {
	int c, acc = 0;
	while ((c = getchar()) != EOF) {
		switch (c) {
		case '0': case '1': case '2': case '3': case '4':
			acc = acc * 10 + c - '0'; break;
		case '+': acc += 1; break;
		case '-': acc -= 1; break;
		case '*': acc *= 2; break;
		default: acc = acc ^ c; break;
		}
	}
	putint(acc);
	return acc;
}`, "12+34*-z8"},
	{"callchain", `
int twice(int x) { return x + x; }
int apply(int a, int b) { return twice(a) - b; }
int main() {
	int i, s = 0;
	for (i = 0; i < 20; i++) s += apply(i, i / 2);
	putint(s);
	return s;
}`, ""},
	{"nestedloops", `
int main() {
	int i, j, s = 0;
	for (i = 0; i < 12; i++) {
		for (j = i; j < 12; j++) {
			if ((i + j) % 3 == 0) s += i * j;
			else if ((i ^ j) % 5 == 1) s -= j;
		}
	}
	putint(s);
	return s;
}`, ""},
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	for _, tt := range semanticsPrograms {
		t.Run(tt.name, func(t *testing.T) {
			unopt := build(t, tt.src, false)
			optd := build(t, tt.src, true)
			r1, o1, s1 := execute(t, unopt, tt.input)
			r2, o2, s2 := execute(t, optd, tt.input)
			if r1 != r2 {
				t.Errorf("return value changed: %d -> %d", r1, r2)
			}
			if o1 != o2 {
				t.Errorf("output changed: %q -> %q", o1, o2)
			}
			if s2.Insts > s1.Insts {
				t.Errorf("optimization increased insts: %d -> %d", s1.Insts, s2.Insts)
			}
		})
	}
}

func TestConstantFoldingCollapses(t *testing.T) {
	p := build(t, `int main() { return 3 * 4 + 5 - (2 << 3); }`, true)
	_, _, stats := execute(t, p, "")
	// main should be: ret imm (+ the call of main itself): 2 instructions.
	if stats.Insts > 2 {
		t.Errorf("constant program executes %d insts, want <= 2\n%s", stats.Insts, p.Dump())
	}
}

func TestDeadCodeRemoved(t *testing.T) {
	p := build(t, `
int main() {
	int a = 5;
	int dead = a * 100 + 3;
	int dead2 = dead - 7;
	return a;
}`, true)
	_, _, stats := execute(t, p, "")
	if stats.Insts > 2 {
		t.Errorf("dead code survived: %d insts\n%s", stats.Insts, p.Dump())
	}
}

func TestConstBranchFolded(t *testing.T) {
	p := build(t, `
int main() {
	int x = 10;
	if (x > 5) return 1;
	return 2;
}`, true)
	ret, _, stats := execute(t, p, "")
	if ret != 1 {
		t.Fatalf("got %d, want 1", ret)
	}
	if stats.CondBranches != 0 {
		t.Errorf("constant branch executed dynamically (%d branches)\n%s", stats.CondBranches, p.Dump())
	}
}

func TestRedundantCmpEliminated(t *testing.T) {
	// Lowered naively, both if statements compare c to the same constant.
	p := build(t, `
int main() {
	int c = getchar();
	int a = 0;
	if (c == 'x') a = 1;
	if (c == 'x') a = a + 2;
	return a;
}`, true)
	_, _, stats := execute(t, p, "x")
	if stats.Cmps > 1 {
		t.Errorf("redundant compare survived: %d cmps\n%s", stats.Cmps, p.Dump())
	}
}

func TestWhileOneLoopHasNoBranchOverhead(t *testing.T) {
	p := build(t, `
int main() {
	int n = 0;
	while (1) {
		n++;
		if (n >= 10) break;
	}
	return n;
}`, true)
	ret, _, stats := execute(t, p, "")
	if ret != 10 {
		t.Fatalf("got %d, want 10", ret)
	}
	// Only the break check should branch: 10 dynamic conditional branches.
	if stats.CondBranches != 10 {
		t.Errorf("CondBranches = %d, want 10\n%s", stats.CondBranches, p.Dump())
	}
}

func TestStaticInstsPositive(t *testing.T) {
	p := build(t, semanticsPrograms[0].src, true)
	if n := pipeline.StaticInsts(p, 3); n <= 0 {
		t.Errorf("StaticInsts = %d, want > 0", n)
	}
}
