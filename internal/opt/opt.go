package opt

import "branchreorder/internal/ir"

// maxRounds bounds the optimize-to-fixpoint loop; each round strictly
// shrinks or simplifies the function, so this is a safety net only.
const maxRounds = 50

// Function runs the conventional optimization pipeline on one function
// until a fixed point (or the round cap) is reached.
func Function(f *ir.Func) {
	for round := 0; round < maxRounds; round++ {
		changed := false
		if Propagate(f) {
			changed = true
		}
		if GlobalPropagate(f) {
			changed = true
		}
		if SimplifyControl(f) {
			changed = true
		}
		if RedundantCmpElim(f) {
			changed = true
		}
		if DeadCodeElim(f) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// Program optimizes every function of a program. The caller must
// re-linearize before executing or measuring.
func Program(p *ir.Program) {
	for _, f := range p.Funcs {
		Function(f)
	}
}
