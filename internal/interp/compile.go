// Closure-chain compilation: the third execution engine. Compile
// translates each decoded function into a graph of pre-bound Go
// closures — one closure per executed operation, operands resolved at
// compile time, control transfers resolved to direct *blockFn successor
// pointers — so a straight-line run executes with zero dispatch
// switches: each closure calls the next op's closure directly and only
// block transfers return to the trampoline.
//
// Two things keep the hot path lean:
//
//   - The machine's hot state (the register window, condition codes and
//     step counter) is threaded through every closure's arguments and
//     results instead of living on the ClosureMachine, so it stays in
//     CPU registers across an entire straight-line run exactly as
//     FastMachine's dispatch-loop locals do.
//   - Stats are derived, not charged eagerly. Every control transfer
//     (branch outcome, jump, call, ret, indirect jump, fall-through)
//     owns a counter; executing it is one increment. The charges of the
//     straight-line segment it terminates are a compile-time Stats
//     delta, and Run's finalizer folds count×delta into m.Stats. Trap
//     closures add their own statically-known partial-segment delta
//     before trapping, so even aborted runs account instructions at
//     exactly the position FastMachine charges them.
//
// Contract: a ClosureMachine is observably identical to FastMachine —
// same Stats (including on trapped runs), same Output, return value,
// branch/profile event streams, and byte-identical RuntimeError traps.
// FastMachine and the reference Machine remain the differential oracles
// (internal/equiv exercises all three pairwise).
//
// Compilation rules:
//
//   - Superinstructions are decomposed back into their base-op
//     sequences (fusedDopSeq); the fused first dinst supplies the first
//     op's operands, the shadowed dinsts their own. Dispatch cost is
//     already zero either way, so fused and unfused Code compile to
//     observably identical closure graphs.
//   - Two variants are compiled lazily per Code and cached: a plain
//     variant whose branch/prof closures skip hook dispatch entirely,
//     and a hooked variant replicating FastMachine's per-event nil
//     checks. Run picks the variant by hook nil-ness, so measurement
//     runs never pay for instrumentation.
//   - Calls split a block: the call closure pushes a frame whose resume
//     continuation is the already-compiled rest of the block, then
//     returns the callee's entry closure; Ret pops and returns the
//     resume. A call also closes its accounting segment (the callee may
//     trap before the caller's terminator runs). Empty blocks (a lone
//     elided goto) compile to nothing and alias their successor.
//   - If any function contains an op the compiler does not recognize it
//     declines the whole program (counted in CompileStats.Fallbacks)
//     and Run delegates to a FastMachine, preserving equivalence. The
//     current compiler is total, so this is a forward-compatibility
//     escape hatch.
package interp

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
)

// blockFn is one compiled execution step. The register window, the
// condition codes and the step counter are threaded through arguments
// and results so they live in CPU registers across a straight-line run;
// a transfer returns the next closure to run (plus the threaded state),
// or a nil closure when the run ends (m.ret / m.err carry the outcome).
type blockFn func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64)

// CompileStats summarizes one program's closure compilation.
type CompileStats struct {
	// CompiledFuncs is the number of functions compiled to closures.
	CompiledFuncs int `json:"compiledFuncs"`
	// ClosureBlocks is the number of non-empty basic blocks compiled.
	ClosureBlocks int `json:"closureBlocks"`
	// Fallbacks counts functions the compiler declined; any nonzero
	// value makes the whole program run on the FastMachine instead.
	Fallbacks int `json:"fallbacks,omitempty"`
}

// compiledProg is one compiled variant (plain or hooked) of a Code.
type compiledProg struct {
	entries []blockFn // per-function entry closure
	deltas  []Stats   // per-transfer-counter Stats charge
	stats   CompileStats
}

// closFrame is a suspended caller: the continuation to resume, the
// caller's window geometry, and its condition codes.
type closFrame struct {
	resume blockFn
	base   int32
	nRegs  int32 // caller's register count, for arena truncation
	dst    int32
	cmpA   int64
	cmpB   int64
	flags  bool
}

// ClosureMachine executes pre-compiled closure graphs. It is
// observably identical to FastMachine (see the package comment above)
// and may be reused: Run resets all execution state and recycles the
// register arena, frame stack and data memory from the previous run.
// The compiled closure graphs live on the Code and are shared by all
// machines running it.
type ClosureMachine struct {
	Code  *Code
	Input []byte

	// OnBranch, if non-nil, observes every executed conditional branch,
	// exactly as Machine.OnBranch does.
	OnBranch func(id int, taken bool)

	// OnProf, if non-nil, observes every executed Prof/ProfCond
	// instruction, exactly as Machine.OnProf does.
	OnProf func(seqID, sub int, value int64)

	// IJmpInsts is the instruction cost charged per indirect jump;
	// DefaultIJmpInsts if zero.
	IJmpInsts uint64

	// MaxSteps aborts execution after (block-granularly, exactly as
	// FastMachine) this many dynamic instructions; DefaultMaxSteps if
	// zero.
	MaxSteps uint64

	// Stats is complete after Run returns; during a run the per-op
	// charges accumulate in transfer counters and are folded in at the
	// end.
	Stats  Stats
	Output bytes.Buffer

	mem       []int64
	regs      []int64
	frames    []closFrame
	counts    []uint64 // per-transfer execution counts, folded by Run
	inPos     int
	maxSteps  uint64
	ijmpInsts uint64
	ret       int64
	err       error
	numBuf    [24]byte
}

// statsAddScaled adds n executions' worth of d to dst.
func statsAddScaled(dst *Stats, d *Stats, n uint64) {
	dst.Insts += d.Insts * n
	dst.CondBranches += d.CondBranches * n
	dst.TakenBranches += d.TakenBranches * n
	dst.Jumps += d.Jumps * n
	dst.IndirectJumps += d.IndirectJumps * n
	dst.Loads += d.Loads * n
	dst.Stores += d.Stores * n
	dst.Calls += d.Calls * n
	dst.Cmps += d.Cmps * n
	dst.ProfHits += d.ProfHits * n
	dst.SlotNops += d.SlotNops * n
}

// trap ends the run with a runtime error after crediting the partial
// segment executed before the trap point; the cold path of every
// trapping closure.
func (m *ClosureMachine) trap(partial *Stats, fname, msg string) (blockFn, []int64, int64, int64, bool, uint64) {
	statsAddScaled(&m.Stats, partial, 1)
	m.err = &RuntimeError{fname, msg}
	return nil, nil, 0, 0, false, 0
}

// stepTrap ends the run with the step-limit trap.
func (m *ClosureMachine) stepTrap(partial *Stats, fname string) (blockFn, []int64, int64, int64, bool, uint64) {
	return m.trap(partial, fname, fmt.Sprintf("exceeded step limit %d", m.maxSteps))
}

// compiledVariant returns the cached compiled program for the variant,
// compiling it on first use. Safe for concurrent machines.
func (c *Code) compiledVariant(hooked bool) *compiledProg {
	i := 0
	if hooked {
		i = 1
	}
	c.closOnce[i].Do(func() {
		c.clos[i] = compileProg(c, hooked)
	})
	return c.clos[i]
}

// CompileStats compiles the program (if not already compiled) and
// reports the closure compiler's counters. Both variants compile to
// the same counts; the plain variant is canonical.
func (c *Code) CompileStats() CompileStats {
	return c.compiledVariant(false).stats
}

// closOncePair reserves the per-Code compilation slots. Declared here
// so everything closure-related lives in this file; the fields
// themselves are on Code (decode.go).
type closOncePair = [2]sync.Once

// Run executes main() and returns its result.
func (m *ClosureMachine) Run() (int64, error) {
	c := m.Code
	if c == nil || c.main < 0 {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	if c.funcs[c.main].nParams != 0 {
		return 0, fmt.Errorf("interp: main must take no parameters")
	}
	hooked := m.OnBranch != nil || m.OnProf != nil
	cp := c.compiledVariant(hooked)
	if cp.stats.Fallbacks > 0 {
		// The compiler declined part of the program: run the whole
		// program on the dispatch engine, preserving equivalence.
		fm := &FastMachine{
			Code: c, Input: m.Input,
			OnBranch: m.OnBranch, OnProf: m.OnProf,
			IJmpInsts: m.IJmpInsts, MaxSteps: m.MaxSteps,
		}
		ret, err := fm.Run()
		m.Stats = fm.Stats
		m.Output.Reset()
		m.Output.Write(fm.Output.Bytes())
		return ret, err
	}
	m.ijmpInsts = m.IJmpInsts
	if m.ijmpInsts == 0 {
		m.ijmpInsts = DefaultIJmpInsts
	}
	m.maxSteps = m.MaxSteps
	if m.maxSteps == 0 {
		m.maxSteps = DefaultMaxSteps
	}

	// Reset execution state, reusing every arena from a previous run.
	if int64(len(m.mem)) != c.prog.MemSize {
		m.mem = make([]int64, c.prog.MemSize)
	} else {
		clear(m.mem)
	}
	for _, g := range c.prog.Globals {
		copy(m.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	if len(m.counts) != len(cp.deltas) {
		m.counts = make([]uint64, len(cp.deltas))
	} else {
		clear(m.counts)
	}
	m.inPos = 0
	m.Stats = Stats{}
	m.Output.Reset()
	m.frames = m.frames[:0]
	m.regs = growWindow(m.regs[:0], c.funcs[c.main].nRegs)
	m.ret = 0
	m.err = nil
	m.Stats.Calls++
	m.Stats.Insts++ // the synthetic call of main

	fb := cp.entries[c.main]
	w := m.regs
	var cmpA, cmpB int64
	var flags bool
	var steps uint64
	for fb != nil {
		fb, w, cmpA, cmpB, flags, steps = fb(m, w, cmpA, cmpB, flags, steps)
	}
	// Fold the transfer counters into Stats — on trapped runs too: the
	// counters hold the fully-executed transfers, and the trap closure
	// already credited its partial segment.
	for i, n := range m.counts {
		if n != 0 {
			statsAddScaled(&m.Stats, &cp.deltas[i], n)
		}
	}
	return m.ret, m.err
}

func compileProg(c *Code, hooked bool) *compiledProg {
	cp := &compiledProg{entries: make([]blockFn, len(c.funcs))}
	for i := range c.funcs {
		compileFunc(cp, c, i, hooked)
	}
	return cp
}

// funcCompiler compiles one function's blocks into closures.
type funcCompiler struct {
	c         *Code
	cp        *compiledProg
	f         *dfunc
	fname     string
	hooked    bool
	blocks    []blockFn
	pcToBlock map[int32]int
	bi        int // block being compiled; targets > bi are built
	declined  bool
}

// newCounter allocates a transfer counter charging delta per execution.
func (cc *funcCompiler) newCounter(delta Stats) int {
	cc.cp.deltas = append(cc.cp.deltas, delta)
	return len(cc.cp.deltas) - 1
}

func compileFunc(cp *compiledProg, c *Code, fi int, hooked bool) {
	f := &c.funcs[fi]
	nb := len(f.blockStart) - 1
	cc := &funcCompiler{
		c: c, cp: cp, f: f, fname: f.name, hooked: hooked,
		blocks:    make([]blockFn, nb),
		pcToBlock: make(map[int32]int, nb),
	}
	// Empty blocks share their successor's start PC; iterating high to
	// low makes the map prefer the lowest (empty) block, whose closure
	// aliases the successor below — either resolution is equivalent.
	for bi := nb - 1; bi >= 0; bi-- {
		cc.pcToBlock[f.blockStart[bi]] = bi
	}
	// Compile last block first: every forward edge (fall-through,
	// forward branch arm or jump) then targets an already-built chain
	// that its transfer can call directly, giving each such transfer
	// its own host call site; only backedges bounce off the trampoline
	// through a late-bound slot. Forward edges are acyclic, so direct
	// calls nest at most #blocks deep between bounces. An empty block
	// (elided goto needs a following block, so it is never last) is a
	// pure fall-through aliasing its successor.
	compiled := 0
	for bi := nb - 1; bi >= 0; bi-- {
		if f.blockStart[bi] == f.blockStart[bi+1] {
			cc.blocks[bi] = cc.blocks[bi+1]
			continue
		}
		cc.blocks[bi] = cc.compileBlock(bi)
		compiled++
	}
	if cc.declined {
		cp.stats.Fallbacks++
		return
	}
	cp.entries[fi] = cc.blocks[0]
	cp.stats.CompiledFuncs++
	cp.stats.ClosureBlocks += compiled
}

// blockPtr returns the successor slot for a transfer target PC. The
// slot is filled (or aliased) by the time any closure dereferences it.
func (cc *funcCompiler) blockPtr(pc int32) *blockFn {
	return &cc.blocks[cc.pcToBlock[pc]]
}

// succ resolves a transfer target either to a direct callee (forward
// edge: the target compiled before this block in the reverse build
// order, so its chain head exists) or to a late-bound slot (backedge,
// resolved through the trampoline). Exactly one return is non-nil.
func (cc *funcCompiler) succ(pc int32) (blockFn, *blockFn) {
	t := cc.pcToBlock[pc]
	if t > cc.bi {
		return cc.blocks[t], nil
	}
	return nil, &cc.blocks[t]
}

func isTransfer(op dop) bool {
	switch op {
	case opBr, opCmpBr, opJump, opIJmp, opRet:
		return true
	}
	return false
}

// segCharge accumulates one straight-line op's contribution to its
// segment's Stats delta; transfers and calls close the segment.
func segCharge(op dop, d *dinst, seg *Stats) {
	switch op {
	case opEnter:
		seg.Insts += uint64(d.cost)
	case opCmp:
		seg.Cmps++
	case opLd:
		seg.Loads++
	case opSt:
		seg.Stores++
	case opProf, opProfCond:
		seg.ProfHits++
	}
}

// cunit is one compilation unit of a block: a single base op, or a
// whole superinstruction run kept intact so compileFused can emit a
// single combined closure for it. subs[0] is the fused run's first
// dinst (whose opcode was overwritten by fusion; seq[0] names its base
// op), subs[1:] the shadowed dinsts. pres holds the segment delta
// accumulated before each sub-op, for trap accounting.
type cunit struct {
	op   dop // base op, or fused opcode (>= nBaseDop)
	d    *dinst
	subs []*dinst
	pre  Stats
	pres []Stats
}

// compileBlock compiles one non-empty block. A first left-to-right
// pass gathers units (keeping superinstruction runs whole) and computes
// each sub-op's accumulated segment delta (the Stats its trap or
// transfer must credit for the straight-line ops already executed); the
// second pass compiles right to left so each op's closure captures its
// continuation directly. Superinstruction runs become one combined
// closure when compileFused knows the pattern, else they decompose into
// a chain of per-op closures with identical behavior.
func (cc *funcCompiler) compileBlock(bi int) blockFn {
	cc.bi = bi
	f := cc.f
	lo, hi := int(f.blockStart[bi]), int(f.blockStart[bi+1])
	units := make([]cunit, 0, hi-lo)
	for i := lo; i < hi; {
		d := &f.code[i]
		if d.op >= nBaseDop {
			seq := fusedDopSeq[d.op]
			if seq == nil {
				cc.declined = true
				return nil
			}
			subs := make([]*dinst, len(seq))
			for k := range seq {
				subs[k] = &f.code[i+k]
			}
			units = append(units, cunit{op: d.op, d: d, subs: subs, pres: make([]Stats, len(seq))})
			i += len(seq)
		} else {
			units = append(units, cunit{op: d.op, d: d})
			i++
		}
	}
	var seg Stats
	lastOp := units[len(units)-1].op
	for k := range units {
		u := &units[k]
		u.pre = seg
		if u.subs != nil {
			seq := fusedDopSeq[u.op]
			for s := range seq {
				u.pres[s] = seg
				if seq[s] == opCall || isTransfer(seq[s]) {
					seg = Stats{}
				} else {
					segCharge(seq[s], u.subs[s], &seg)
				}
			}
			if k == len(units)-1 {
				lastOp = seq[len(seq)-1]
			}
		} else if u.op == opCall || isTransfer(u.op) {
			seg = Stats{}
		} else {
			segCharge(u.op, u.d, &seg)
		}
	}
	var next blockFn
	if !isTransfer(lastOp) {
		// The block ends without a transfer (elided goto): continue
		// straight into the physically following block's chain (built
		// already — reverse order), crediting the trailing segment.
		fallFb := cc.blocks[bi+1]
		if seg == (Stats{}) {
			next = fallFb
		} else {
			id := cc.newCounter(seg)
			next = func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
				m.counts[id]++
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
		}
	}
	for k := len(units) - 1; k >= 0; k-- {
		u := &units[k]
		if u.subs == nil {
			next = cc.compileUnit(u.op, u.d, next, u.pre)
			continue
		}
		if !cc.hooked {
			if fb := cc.compileFused(u, next); fb != nil {
				next = fb
				continue
			}
		}
		// Decompose: chain the base sequence per-op. The first dinst's
		// opcode field was overwritten by fusion; seq names it.
		seq := fusedDopSeq[u.op]
		for s := len(seq) - 1; s >= 0; s-- {
			next = cc.compileUnit(seq[s], u.subs[s], next, u.pres[s])
		}
	}
	return next
}

// plus returns s with add's fields added; a convenience for building
// transfer deltas from a segment prefix.
func plus(s Stats, add Stats) Stats {
	statsAddScaled(&s, &add, 1)
	return s
}

// compileUnit compiles one base op into a closure continuing with
// next. pre is the segment delta accumulated before this op; trap
// closures credit it (plus any of their own charges FastMachine applies
// before its trap) so aborted-run Stats stay identical too.
func (cc *funcCompiler) compileUnit(op dop, d *dinst, next blockFn, pre Stats) blockFn {
	fname := cc.fname
	switch op {
	case opEnter:
		stepCost := uint64(d.stepCost)
		partial := &Stats{Insts: uint64(d.cost)}
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			return next(m, w, cmpA, cmpB, flags, steps)
		}

	case opMov:
		dst, a := d.dst, d.a
		if a.reg >= 0 {
			src := a.reg
			return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
				w[dst] = w[src]
				return next(m, w, cmpA, cmpB, flags, steps)
			}
		}
		imm := a.imm
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = imm
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAdd:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) + b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opSub:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) - b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opMul:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) * b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opDiv:
		dst, a, b := d.dst, d.a, d.b
		partial := &pre
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			dv := b.val(w)
			if dv == 0 {
				return m.trap(partial, fname, "division by zero")
			}
			w[dst] = a.val(w) / dv
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opRem:
		dst, a, b := d.dst, d.a, d.b
		partial := &pre
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			dv := b.val(w)
			if dv == 0 {
				return m.trap(partial, fname, "remainder by zero")
			}
			w[dst] = a.val(w) % dv
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAnd:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) & b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opOr:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) | b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opXor:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) ^ b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opShl:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) << (uint64(b.val(w)) & 63)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opShr:
		dst, a, b := d.dst, d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = a.val(w) >> (uint64(b.val(w)) & 63)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opNeg:
		dst, a := d.dst, d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = -a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opNot:
		dst, a := d.dst, d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[dst] = ^a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opCmp:
		a, b := d.a, d.b
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			return next(m, w, a.val(w), b.val(w), true, steps)
		}
	case opLd:
		dst, a := d.dst, d.a
		partial := &pre
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.trap(partial, fname, fmt.Sprintf("load address %d out of range", addr))
			}
			w[dst] = m.mem[addr]
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opSt:
		a, b := d.a, d.b
		partial := &pre
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.trap(partial, fname, fmt.Sprintf("store address %d out of range", addr))
			}
			m.mem[addr] = b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opGetChar:
		dst := d.dst
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if m.inPos < len(m.Input) {
				w[dst] = int64(m.Input[m.inPos])
				m.inPos++
			} else {
				w[dst] = -1
			}
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opPutChar:
		a := d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			m.Output.WriteByte(byte(a.val(w)))
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opPutInt:
		a := d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			m.Output.Write(strconv.AppendInt(m.numBuf[:0], a.val(w), 10))
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opProf:
		if !cc.hooked {
			return next // ProfHits comes with the segment delta
		}
		seqID, sub, a := int(d.seqID), int(d.sub), d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if m.OnProf != nil {
				m.OnProf(seqID, sub, a.val(w))
			}
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opProfCond:
		if !cc.hooked {
			return next // ProfHits comes with the segment delta
		}
		seqID, sub, a, b, relMask := int(d.seqID), int(d.sub), d.a, d.b, d.relMask
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if m.OnProf != nil {
				v := int64(0)
				if maskHolds(relMask, a.val(w), b.val(w)) {
					v = 1
				}
				m.OnProf(seqID, sub, v)
			}
			return next(m, w, cmpA, cmpB, flags, steps)
		}

	case opCall:
		call := &cc.f.calls[d.t1]
		if call.fn < 0 {
			name := call.name
			partial := &pre
			return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
				return m.trap(partial, fname, "call to unknown function "+name)
			}
		}
		id := cc.newCounter(plus(pre, Stats{Calls: 1}))
		args := call.args
		dst := call.dst
		callerNRegs := int32(cc.f.nRegs)
		calleeNRegs := cc.c.funcs[call.fn].nRegs
		entryp := &cc.cp.entries[call.fn]
		resume := next
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			m.counts[id]++
			// The arena tail is exactly the current window, so the
			// caller's base is the arena length minus the window size.
			base := int32(len(m.regs) - len(w))
			m.frames = append(m.frames, closFrame{
				resume: resume, base: base, nRegs: callerNRegs, dst: dst,
				cmpA: cmpA, cmpB: cmpB, flags: flags,
			})
			newBase := len(m.regs)
			m.regs = growWindow(m.regs, newBase+calleeNRegs)
			neww := m.regs[newBase:]
			// w may point at a stale backing array after growth; its
			// values are still the caller's registers, so argument
			// reads stay valid.
			n := len(args)
			if n > len(neww) {
				n = len(neww)
			}
			for i := 0; i < n; i++ {
				neww[i] = args[i].val(w)
			}
			return *entryp, neww, 0, 0, false, steps
		}

	case opRet:
		stepCost := uint64(d.stepCost) + 1
		full := plus(pre, Stats{Insts: uint64(d.cost) + 1, SlotNops: uint64(d.slotTaken)})
		id := cc.newCounter(full)
		partial := &full // FastMachine charges all of it before its step check
		a := d.a
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			m.counts[id]++
			v := a.val(w)
			nf := len(m.frames)
			if nf == 0 {
				m.ret = v
				return nil, nil, 0, 0, false, 0
			}
			fr := &m.frames[nf-1]
			m.frames = m.frames[:nf-1]
			// Truncate the arena to the caller's window end so the
			// invariant len(m.regs) == base+nRegs holds for the next
			// call.
			m.regs = m.regs[:fr.base+fr.nRegs]
			nw := m.regs[fr.base:]
			if fr.dst >= 0 {
				nw[fr.dst] = v
			}
			return fr.resume, nw, fr.cmpA, fr.cmpB, fr.flags, steps
		}

	case opJump:
		stepCost := uint64(d.stepCost) + 1
		full := plus(pre, Stats{Jumps: 1, Insts: uint64(d.cost) + 1, SlotNops: uint64(d.slotTaken)})
		id := cc.newCounter(full)
		partial := &full // FastMachine charges all of it before its step check
		takenFb, takenp := cc.succ(d.t1)
		if takenFb != nil {
			return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
				steps += stepCost
				if steps > m.maxSteps {
					return m.stepTrap(partial, fname)
				}
				m.counts[id]++
				return takenFb(m, w, cmpA, cmpB, flags, steps)
			}
		}
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			m.counts[id]++
			return *takenp, w, cmpA, cmpB, flags, steps
		}

	case opBr, opCmpBr:
		if !cc.hooked {
			// The plain variant gets mask- and operand-specialized
			// bodies: the relation becomes a single native compare-and-
			// branch instead of an interpreted mask test.
			return cc.compileBranchPlain(op, d, pre)
		}
		isCmp := op == opCmpBr
		stepCost := uint64(d.stepCost) + 1
		charge := Stats{CondBranches: 1, Insts: uint64(d.cost) + 1}
		if isCmp {
			charge.Cmps = 1
		}
		// FastMachine charges the branch (and a CmpBr's compare) before
		// its step check; the outcome's SlotNops/TakenBranches only
		// after, so the step-trap partial excludes them.
		stepPartial := plus(pre, charge)
		partial := &stepPartial
		undefPartial := &pre
		idTaken := cc.newCounter(plus(stepPartial, Stats{TakenBranches: 1, SlotNops: uint64(d.slotTaken)}))
		idFall := cc.newCounter(plus(stepPartial, Stats{SlotNops: uint64(d.slotFall)}))
		relMask := d.relMask
		branchID := int(d.branchID)
		takenp := cc.blockPtr(d.t1)
		fallp := cc.blockPtr(d.t2)
		a, b := d.a, d.b
		if isCmp {
			return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
				cmpA, cmpB = a.val(w), b.val(w)
				steps += stepCost
				if steps > m.maxSteps {
					return m.stepTrap(partial, fname)
				}
				rs := 0
				if cmpA < cmpB {
					rs = 2
				} else if cmpA == cmpB {
					rs = 1
				}
				taken := relMask>>rs&1 != 0
				if m.OnBranch != nil {
					m.OnBranch(branchID, taken)
				}
				if taken {
					m.counts[idTaken]++
					return *takenp, w, cmpA, cmpB, true, steps
				}
				m.counts[idFall]++
				return *fallp, w, cmpA, cmpB, true, steps
			}
		}
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(branchID, taken)
			}
			if taken {
				m.counts[idTaken]++
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			return *fallp, w, cmpA, cmpB, flags, steps
		}

	case opIJmp:
		stepCost := uint64(d.stepCost)
		// The per-jump IJmpInsts charge is machine-configured, so it
		// cannot live in the counter delta; the closure charges it
		// eagerly (indirect jumps are rare enough not to matter).
		full := plus(pre, Stats{IndirectJumps: 1, Insts: uint64(d.cost), SlotNops: uint64(d.slotTaken)})
		id := cc.newCounter(full)
		partial := &full
		boundsPartial := &pre
		a := d.a
		pcs := cc.f.tables[d.t1]
		tbl := make([]*blockFn, len(pcs))
		for i, pc := range pcs {
			tbl[i] = cc.blockPtr(pc)
		}
		n := int64(len(tbl))
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			idx := a.val(w)
			if idx < 0 || idx >= n {
				return m.trap(boundsPartial, fname, fmt.Sprintf("indirect jump index %d out of range [0,%d)", idx, n))
			}
			m.Stats.Insts += m.ijmpInsts
			steps += stepCost + m.ijmpInsts
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			m.counts[id]++
			return *tbl[idx], w, cmpA, cmpB, flags, steps
		}
	}

	// Unknown op: decline the function; Run falls back to FastMachine.
	cc.declined = true
	return next
}
