package interp

import (
	"testing"

	"branchreorder/internal/ir"
)

// runFastOpts is runFast with an explicit decode configuration, for
// pitting the fused and unfused decodes of one program against each
// other.
func runFastOpts(t *testing.T, p *ir.Program, input []byte, opts DecodeOptions) engineResult {
	t.Helper()
	code, err := DecodeWith(p, opts)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var r engineResult
	m := &FastMachine{Code: code, Input: input,
		OnBranch: func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		},
		OnProf: func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}}
	ret, err := m.Run()
	r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	if err != nil {
		r.err = err.Error()
	}
	return r
}

// opAt returns the decoded opcode at code index i of main, which
// structural assertions below use to pin exactly which sites fused.
func opAt(t *testing.T, c *Code, i int) dop {
	t.Helper()
	main := &c.funcs[c.main]
	if i < 0 || i >= len(main.code) {
		t.Fatalf("opAt(%d): main has %d decoded ops", i, len(main.code))
	}
	return main.code[i].op
}

func blockStart(t *testing.T, c *Code, layout int) int {
	t.Helper()
	main := &c.funcs[c.main]
	if layout >= len(main.blockStart) {
		t.Fatalf("blockStart(%d): main has %d entries", layout, len(main.blockStart))
	}
	return int(main.blockStart[layout])
}

// TestFusionEdgeCases pins the boundary behavior of the fusion pass:
// a fusable pair straddling a block boundary must stay unfused (every
// branch and jump-table target is a block start, so nothing may land on
// the hidden interior of a superinstruction), while a trap raised by an
// interior op of a fused run must be indistinguishable — error text,
// output, partial stats, event streams — from the unfused execution.
func TestFusionEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		prog   func() *ir.Program
		inputs [][]byte
		check  func(t *testing.T, fused *Code)
	}{
		{
			// b0 falls through to b1 via an elided adjacent goto, so in
			// the decoded stream b0's trailing Add sits directly before
			// b1's leading Mov — the opAddMov shape. The pair must stay
			// split: b1's start is a jump target in spirit (any branch to
			// b1 lands there), and the fused body would charge b1's Mov
			// under b0.
			name: "pair-across-block-boundary",
			prog: func() *ir.Program {
				p := &ir.Program{}
				f := &ir.Func{Name: "main", NRegs: 3}
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b0.Insts = []ir.Inst{
					{Op: ir.Mov, Dst: 0, A: ir.Imm(1)},
					{Op: ir.Add, Dst: 1, A: ir.R(0), B: ir.Imm(2)},
				}
				b0.Term = ir.Term{Kind: ir.TermGoto, Taken: b1}
				b1.Insts = []ir.Inst{
					{Op: ir.Mov, Dst: 2, A: ir.R(1)},
					{Op: ir.Add, Dst: 0, A: ir.R(2), B: ir.R(1)},
				}
				b1.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
				p.Funcs = []*ir.Func{f}
				p.Linearize()
				return p
			},
			inputs: [][]byte{nil},
			check: func(t *testing.T, fused *Code) {
				// The last op of b0 must still be a bare Add even though
				// b1 opens with a Mov; fusion inside each block is free to
				// proceed (b1's own mov+add pair does fuse).
				b1 := blockStart(t, fused, 1)
				if op := opAt(t, fused, b1-1); op != opAdd {
					t.Errorf("b0 tail fused across the block boundary: op %d, want opAdd", op)
				}
				if op := opAt(t, fused, b1); op != opMovAdd {
					t.Errorf("b1 head = op %d, want the in-block opMovAdd fusion", op)
				}
			},
		},
		{
			// An indirect jump dispatches into b2. b1 falls through into
			// b2 with a fusable Add|Mov straddle, and b2's own head is
			// itself a fused pair — so the table target must land exactly
			// on a superinstruction start, never mid-run, whichever way
			// control arrives (table entry 1 jumps in, entry 0 walks in
			// through b1).
			name: "jump-table-target-stays-a-fusion-start",
			prog: func() *ir.Program {
				p := &ir.Program{}
				f := &ir.Func{Name: "main", NRegs: 3}
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b2 := f.NewBlock()
				b0.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 0}}
				b0.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.R(0), Targets: []*ir.Block{b1, b2}}
				b1.Insts = []ir.Inst{
					{Op: ir.Mov, Dst: 1, A: ir.Imm(5)},
					{Op: ir.Add, Dst: 2, A: ir.R(1), B: ir.Imm(1)},
				}
				b1.Term = ir.Term{Kind: ir.TermGoto, Taken: b2}
				b2.Insts = []ir.Inst{
					{Op: ir.Mov, Dst: 0, A: ir.Imm(7)},
					{Op: ir.Add, Dst: 1, A: ir.R(0), B: ir.R(2)},
				}
				b2.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
				p.Funcs = []*ir.Func{f}
				p.Linearize()
				return p
			},
			// Entry 0 executes b1 then b2 (r2 defined); entry 1 jumps
			// straight to b2 (r2 still zero).
			inputs: [][]byte{{0}, {1}},
			check: func(t *testing.T, fused *Code) {
				b2 := blockStart(t, fused, 2)
				if op := opAt(t, fused, b2-1); op != opAdd {
					t.Errorf("b1 tail fused into the jump-table target: op %d, want opAdd", op)
				}
				if op := opAt(t, fused, b2); op != opMovAdd {
					t.Errorf("table target head = op %d, want opMovAdd starting at the target", op)
				}
			},
		},
		{
			// The St in the middle of a fused ld+add+st triple traps with
			// an out-of-range address. The superinstruction must surface
			// the identical error text after the identical prefix of
			// observable effects (the putchar'd byte, the load count).
			name: "store-trap-inside-fused-triple",
			prog: func() *ir.Program {
				p := &ir.Program{MemSize: 4}
				f := &ir.Func{Name: "main", NRegs: 2}
				b0 := f.NewBlock()
				b0.Insts = []ir.Inst{
					{Op: ir.PutChar, A: ir.Imm('a')},
					{Op: ir.St, A: ir.Imm(2), B: ir.Imm(9)},
					{Op: ir.Ld, Dst: 0, A: ir.Imm(2)},
					{Op: ir.Add, Dst: 1, A: ir.R(0), B: ir.Imm(1)},
					{Op: ir.St, A: ir.Imm(100), B: ir.R(1)},
				}
				b0.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
				p.Funcs = []*ir.Func{f}
				p.Linearize()
				return p
			},
			inputs: [][]byte{nil},
			check: func(t *testing.T, fused *Code) {
				// The trap site must really sit inside a superinstruction,
				// or the case tests nothing.
				fs := fused.FusionStats()
				if fs.Patterns["ld+add+st"] != 1 {
					t.Errorf("patterns = %v, want one ld+add+st site", fs.Patterns)
				}
			},
		},
		{
			// The Ld completing a fused add+ld pair traps: the address
			// was computed by the fused run's own first op.
			name: "load-trap-inside-fused-pair",
			prog: func() *ir.Program {
				p := &ir.Program{MemSize: 4}
				f := &ir.Func{Name: "main", NRegs: 2}
				b0 := f.NewBlock()
				b0.Insts = []ir.Inst{
					{Op: ir.Add, Dst: 0, A: ir.Imm(60), B: ir.Imm(60)},
					{Op: ir.Ld, Dst: 1, A: ir.R(0)},
				}
				b0.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
				p.Funcs = []*ir.Func{f}
				p.Linearize()
				return p
			},
			inputs: [][]byte{nil},
			check: func(t *testing.T, fused *Code) {
				fs := fused.FusionStats()
				if fs.Patterns["add+ld"] != 1 {
					t.Errorf("patterns = %v, want one add+ld site", fs.Patterns)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog()
			fused, err := Decode(p)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			tc.check(t, fused)
			for _, input := range tc.inputs {
				ref := runReference(p, input, 0)
				fast := runFastOpts(t, p, input, DecodeOptions{Fuse: true})
				plain := runFastOpts(t, p, input, DecodeOptions{})
				// Fused and unfused fast runs share the engine's
				// block-granular accounting, so every field must match —
				// trapped or not.
				compareEngineResults(t, "fused-vs-unfused", plain, fast, true)
				// Against the reference, trapped runs compare error text
				// and effects; stats only when the run completed.
				compareEngineResults(t, "fused-vs-reference", ref, fast, ref.err == "")
			}
		})
	}
}

func compareEngineResults(t *testing.T, label string, want, got engineResult, wantStats bool) {
	t.Helper()
	if want.err != got.err {
		t.Errorf("%s: error %q, want %q", label, got.err, want.err)
	}
	if want.out != got.out {
		t.Errorf("%s: output %q, want %q", label, got.out, want.out)
	}
	if want.err == "" && want.ret != got.ret {
		t.Errorf("%s: ret %d, want %d", label, got.ret, want.ret)
	}
	if wantStats && want.stats != got.stats {
		t.Errorf("%s: stats\ngot:  %+v\nwant: %+v", label, got.stats, want.stats)
	}
	if !int64SlicesEqual(want.branches, got.branches) {
		t.Errorf("%s: branch event streams differ", label)
	}
	if !int64SlicesEqual(want.profs, got.profs) {
		t.Errorf("%s: prof event streams differ", label)
	}
}
