package interp

import (
	"bytes"
	"fmt"
	"strconv"

	"branchreorder/internal/ir"
)

// FastMachine executes pre-decoded Code. It is the measurement engine:
// observably equivalent to Machine (same Stats, Output, return value,
// branch/profile event streams and runtime traps) at a fraction of the
// dispatch cost. The differences are confined to resource accounting on
// aborted runs:
//
//   - The step budget (MaxSteps) is charged block-granularly, so a
//     step-limit abort stops at a block edge of the basic block in which
//     the reference interpreter stops, not mid-block. The error text is
//     the same trap either way. Runs that stay within the budget —
//     everything the evaluation measures — are unaffected.
//   - On any runtime trap, Stats may be missing the charges of the
//     partially executed current block (blocks are charged at their
//     terminator). Stats of completed runs are exact.
//
// A FastMachine may be reused: Run resets all execution state, recycles
// the register arena, frame stack and data memory from the previous run,
// and overwrites Stats and Output.
type FastMachine struct {
	Code  *Code
	Input []byte

	// OnBranch, if non-nil, observes every executed conditional branch,
	// exactly as Machine.OnBranch does.
	OnBranch func(id int, taken bool)

	// OnProf, if non-nil, observes every executed Prof/ProfCond
	// instruction, exactly as Machine.OnProf does.
	OnProf func(seqID, sub int, value int64)

	// IJmpInsts is the instruction cost charged per indirect jump;
	// DefaultIJmpInsts if zero.
	IJmpInsts uint64

	// MaxSteps aborts execution after (approximately — see above) this
	// many dynamic instructions; DefaultMaxSteps if zero.
	MaxSteps uint64

	Stats  Stats
	Output bytes.Buffer

	mem    []int64
	regs   []int64
	frames []fastFrame
	inPos  int
	numBuf [24]byte
}

// relTruth encodes each ir.Rel as a bitmask over the three-way compare
// outcome (bit 4: a<b, bit 2: a==b, bit 1: a>b); Decode bakes it into
// dinst.relMask. maskHolds evaluates the relation against the mask with
// at most two compares instead of ir.Rel.Holds' six-way switch: Run's
// dispatch loop is far past the compiler's big-function threshold,
// where only tiny callees (cost < 20, like darg.val) still inline, so
// the branch tails need a relation test cheap enough to disappear into
// them.
var relTruth = [...]uint8{
	ir.EQ: 0b010,
	ir.NE: 0b101,
	ir.LT: 0b100,
	ir.LE: 0b110,
	ir.GT: 0b001,
	ir.GE: 0b011,
}

func maskHolds(mask uint8, a, b int64) bool {
	s := 0
	if a < b {
		s = 2
	} else if a == b {
		s = 1
	}
	return mask>>s&1 != 0
}

// fastFrame is a suspended caller: where to resume, where its register
// window starts, and its condition codes (flags are per-frame, exactly
// as in the reference interpreter).
type fastFrame struct {
	fn    int32
	pc    int32
	base  int32
	dst   int32
	cmpA  int64
	cmpB  int64
	flags bool
}

// Run executes main() and returns its result.
func (m *FastMachine) Run() (int64, error) {
	c := m.Code
	if c == nil || c.main < 0 {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	if c.funcs[c.main].nParams != 0 {
		return 0, fmt.Errorf("interp: main must take no parameters")
	}
	ijmpInsts := m.IJmpInsts
	if ijmpInsts == 0 {
		ijmpInsts = DefaultIJmpInsts
	}
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}

	// Reset execution state, reusing every arena from a previous run.
	if int64(len(m.mem)) != c.prog.MemSize {
		m.mem = make([]int64, c.prog.MemSize)
	} else {
		clear(m.mem)
	}
	for _, g := range c.prog.Globals {
		copy(m.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	m.inPos = 0
	m.Stats = Stats{}
	m.Output.Reset()
	m.frames = m.frames[:0]

	// Current-frame state lives in locals; calls and returns spill and
	// reload it from the frame stack.
	fn := int32(c.main)
	f := &c.funcs[fn]
	code := f.code
	var (
		pc         int32
		base       int32
		cmpA, cmpB int64
		flags      bool
		steps      uint64
	)
	m.regs = growWindow(m.regs[:0], f.nRegs)
	win := m.regs
	m.Stats.Calls++
	m.Stats.Insts++ // the synthetic call of main

	for {
		in := &code[pc]
		switch in.op {
		case opEnter:
			m.Stats.Insts += uint64(in.cost)
			steps += uint64(in.stepCost)
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc++

		case opMov:
			win[in.dst] = in.a.val(win)
			pc++
		case opAdd:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc++
		case opSub:
			win[in.dst] = in.a.val(win) - in.b.val(win)
			pc++
		case opMul:
			win[in.dst] = in.a.val(win) * in.b.val(win)
			pc++
		case opDiv:
			d := in.b.val(win)
			if d == 0 {
				return 0, &RuntimeError{f.name, "division by zero"}
			}
			win[in.dst] = in.a.val(win) / d
			pc++
		case opRem:
			d := in.b.val(win)
			if d == 0 {
				return 0, &RuntimeError{f.name, "remainder by zero"}
			}
			win[in.dst] = in.a.val(win) % d
			pc++
		case opAnd:
			win[in.dst] = in.a.val(win) & in.b.val(win)
			pc++
		case opOr:
			win[in.dst] = in.a.val(win) | in.b.val(win)
			pc++
		case opXor:
			win[in.dst] = in.a.val(win) ^ in.b.val(win)
			pc++
		case opShl:
			win[in.dst] = in.a.val(win) << (uint64(in.b.val(win)) & 63)
			pc++
		case opShr:
			win[in.dst] = in.a.val(win) >> (uint64(in.b.val(win)) & 63)
			pc++
		case opNeg:
			win[in.dst] = -in.a.val(win)
			pc++
		case opNot:
			win[in.dst] = ^in.a.val(win)
			pc++
		case opCmp:
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			pc++
		case opLd:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			pc++
		case opSt:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			pc++
		case opGetChar:
			if m.inPos < len(m.Input) {
				win[in.dst] = int64(m.Input[m.inPos])
				m.inPos++
			} else {
				win[in.dst] = -1
			}
			pc++
		case opPutChar:
			m.Output.WriteByte(byte(in.a.val(win)))
			pc++
		case opPutInt:
			m.Output.Write(strconv.AppendInt(m.numBuf[:0], in.a.val(win), 10))
			pc++
		case opProf:
			m.Stats.ProfHits++
			if m.OnProf != nil {
				m.OnProf(int(in.seqID), int(in.sub), in.a.val(win))
			}
			pc++
		case opProfCond:
			m.Stats.ProfHits++
			if m.OnProf != nil {
				v := int64(0)
				if maskHolds(in.relMask, in.a.val(win), in.b.val(win)) {
					v = 1
				}
				m.OnProf(int(in.seqID), int(in.sub), v)
			}
			pc++

		case opCall:
			call := &f.calls[in.t1]
			if call.fn < 0 {
				return 0, &RuntimeError{f.name, "call to unknown function " + call.name}
			}
			// The call instruction's Insts charge came with the block's
			// opEnter; here only the call event itself is counted. Like
			// the reference interpreter, a call consumes no step budget:
			// the callee's own blocks bound the run.
			m.Stats.Calls++
			m.frames = append(m.frames, fastFrame{
				fn: fn, pc: pc + 1, base: base, dst: call.dst,
				cmpA: cmpA, cmpB: cmpB, flags: flags,
			})
			callee := &c.funcs[call.fn]
			newBase := base + int32(len(win))
			m.regs = growWindow(m.regs, int(newBase)+callee.nRegs)
			neww := m.regs[newBase:]
			// win may point at a stale backing array after growth; its
			// values are still the caller's registers, so argument reads
			// stay valid.
			n := len(call.args)
			if n > len(neww) {
				n = len(neww)
			}
			for i := 0; i < n; i++ {
				neww[i] = call.args[i].val(win)
			}
			fn = call.fn
			f = callee
			code = f.code
			pc = 0
			base = newBase
			win = neww
			cmpA, cmpB, flags = 0, 0, false

		case opRet:
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			v := in.a.val(win)
			if len(m.frames) == 0 {
				return v, nil
			}
			fr := m.frames[len(m.frames)-1]
			m.frames = m.frames[:len(m.frames)-1]
			fn = fr.fn
			f = &c.funcs[fn]
			code = f.code
			pc = fr.pc
			base = fr.base
			// Truncate the arena to the caller's window end so the
			// invariant len(m.regs) == base+nRegs holds for the next call.
			m.regs = m.regs[:base+int32(f.nRegs)]
			win = m.regs[base:]
			cmpA, cmpB, flags = fr.cmpA, fr.cmpB, fr.flags
			if fr.dst >= 0 {
				win[fr.dst] = v
			}

		case opJump:
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1

		case opBr:
			if !flags {
				return 0, &RuntimeError{f.name, "conditional branch with undefined condition codes"}
			}
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}

		case opCmpBr:
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}

		// Superinstructions. Each fused case executes its run's
		// sub-effects strictly in original order — register writes, Stats
		// increments, output bytes, branch events, trap checks — reading
		// the later ops' operands and charges from their intact dinsts at
		// pc+1.., then advances past the whole run (or performs the final
		// op's transfer). Equivalence with unfused execution is enforced
		// by internal/equiv across every workload and fuzz seed.
		case opMovMov:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			pc += 2
		case opMovAdd:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 2
		case opAddMov:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			pc += 2
		case opAddAdd:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 2
		case opAddLd:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			pc += 2
		case opLdAdd:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 2
		case opAddSt:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			pc += 2
		case opStAdd:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 2
		case opPutCharAdd:
			m.Output.WriteByte(byte(in.a.val(win)))
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 2
		case opSubMov:
			win[in.dst] = in.a.val(win) - in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			pc += 2
		case opEnterMov:
			m.Stats.Insts += uint64(in.cost)
			steps += uint64(in.stepCost)
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			pc += 2

		case opAddCmpBr:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opLdCmpBr:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opStCmpBr:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opMovCmpBr:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opGetCharCmpBr:
			if m.inPos < len(m.Input) {
				win[in.dst] = int64(m.Input[m.inPos])
				m.inPos++
			} else {
				win[in.dst] = -1
			}
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opXorCmpBr:
			win[in.dst] = in.a.val(win) ^ in.b.val(win)
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opShlCmpBr:
			win[in.dst] = in.a.val(win) << (uint64(in.b.val(win)) & 63)
			in = &code[pc+1]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}

		case opMovJump:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opAddJump:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1

		case opLdCall:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			call := &f.calls[in.t1]
			if call.fn < 0 {
				return 0, &RuntimeError{f.name, "call to unknown function " + call.name}
			}
			m.Stats.Calls++
			m.frames = append(m.frames, fastFrame{
				fn: fn, pc: pc + 2, base: base, dst: call.dst,
				cmpA: cmpA, cmpB: cmpB, flags: flags,
			})
			callee := &c.funcs[call.fn]
			newBase := base + int32(len(win))
			m.regs = growWindow(m.regs, int(newBase)+callee.nRegs)
			neww := m.regs[newBase:]
			n := len(call.args)
			if n > len(neww) {
				n = len(neww)
			}
			for i := 0; i < n; i++ {
				neww[i] = call.args[i].val(win)
			}
			fn = call.fn
			f = callee
			code = f.code
			pc = 0
			base = newBase
			win = neww
			cmpA, cmpB, flags = 0, 0, false

		case opLdAddSt:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			pc += 3
		case opAddLdAdd:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			pc += 3
		case opAddLdCmpBr:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opAddLdCall:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			call := &f.calls[in.t1]
			if call.fn < 0 {
				return 0, &RuntimeError{f.name, "call to unknown function " + call.name}
			}
			m.Stats.Calls++
			m.frames = append(m.frames, fastFrame{
				fn: fn, pc: pc + 3, base: base, dst: call.dst,
				cmpA: cmpA, cmpB: cmpB, flags: flags,
			})
			callee := &c.funcs[call.fn]
			newBase := base + int32(len(win))
			m.regs = growWindow(m.regs, int(newBase)+callee.nRegs)
			neww := m.regs[newBase:]
			n := len(call.args)
			if n > len(neww) {
				n = len(neww)
			}
			for i := 0; i < n; i++ {
				neww[i] = call.args[i].val(win)
			}
			fn = call.fn
			f = callee
			code = f.code
			pc = 0
			base = newBase
			win = neww
			cmpA, cmpB, flags = 0, 0, false
		case opAddMovJump:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			in = &code[pc+2]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opStAddMov:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win)
			pc += 3
		case opPutCharAddJump:
			m.Output.WriteByte(byte(in.a.val(win)))
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opStMovJump:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			in = &code[pc+2]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opMovAddMov:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win)
			pc += 3
		case opEnterMovMov:
			m.Stats.Insts += uint64(in.cost)
			steps += uint64(in.stepCost)
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win)
			pc += 3

		case opLdAddStCmpBr:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+3]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opAddLdAddLd:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+3]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			pc += 4
		case opStSub:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) - in.b.val(win)
			pc += 2
		case opMovAddMovCmpBr:
			win[in.dst] = in.a.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win)
			in = &code[pc+3]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opAddLdAddLdCall:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+3]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+4]
			call := &f.calls[in.t1]
			if call.fn < 0 {
				return 0, &RuntimeError{f.name, "call to unknown function " + call.name}
			}
			m.Stats.Calls++
			m.frames = append(m.frames, fastFrame{
				fn: fn, pc: pc + 5, base: base, dst: call.dst,
				cmpA: cmpA, cmpB: cmpB, flags: flags,
			})
			callee := &c.funcs[call.fn]
			newBase := base + int32(len(win))
			m.regs = growWindow(m.regs, int(newBase)+callee.nRegs)
			neww := m.regs[newBase:]
			n := len(call.args)
			if n > len(neww) {
				n = len(neww)
			}
			for i := 0; i < n; i++ {
				neww[i] = call.args[i].val(win)
			}
			fn = call.fn
			f = callee
			code = f.code
			pc = 0
			base = newBase
			win = neww
			cmpA, cmpB, flags = 0, 0, false
		case opAddAddAddLdSt:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+3]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+4]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			pc += 5
		case opPcOrShlPcJump:
			m.Stats.ProfHits++
			if m.OnProf != nil {
				v := int64(0)
				if maskHolds(in.relMask, in.a.val(win), in.b.val(win)) {
					v = 1
				}
				m.OnProf(int(in.seqID), int(in.sub), v)
			}
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) | in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) << (uint64(in.b.val(win)) & 63)
			in = &code[pc+3]
			m.Stats.ProfHits++
			if m.OnProf != nil {
				v := int64(0)
				if maskHolds(in.relMask, in.a.val(win), in.b.val(win)) {
					v = 1
				}
				m.OnProf(int(in.seqID), int(in.sub), v)
			}
			in = &code[pc+4]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opLdAddStMovJump:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+3]
			win[in.dst] = in.a.val(win)
			in = &code[pc+4]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opCmpMulCmpAndBr:
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) * in.b.val(win)
			in = &code[pc+2]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			m.Stats.Cmps++
			in = &code[pc+3]
			win[in.dst] = in.a.val(win) & in.b.val(win)
			in = &code[pc+4]
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opSubMovJump:
			win[in.dst] = in.a.val(win) - in.b.val(win)
			in = &code[pc+1]
			win[in.dst] = in.a.val(win)
			in = &code[pc+2]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opLdAddStJump:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+3]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opStAddMovJump:
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("store address %d out of range", a)}
			}
			m.mem[a] = in.b.val(win)
			m.Stats.Stores++
			in = &code[pc+1]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+2]
			win[in.dst] = in.a.val(win)
			in = &code[pc+3]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1
		case opAddLdAddLdCmpBr:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+3]
			a = in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+4]
			cmpA, cmpB = in.a.val(win), in.b.val(win)
			flags = true
			m.Stats.Cmps++
			m.Stats.CondBranches++
			m.Stats.Insts += uint64(in.cost) + 1
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			taken := in.relMask>>rs&1 != 0
			if m.OnBranch != nil {
				m.OnBranch(int(in.branchID), taken)
			}
			if taken {
				m.Stats.SlotNops += uint64(in.slotTaken)
				m.Stats.TakenBranches++
				pc = in.t1
			} else {
				m.Stats.SlotNops += uint64(in.slotFall)
				pc = in.t2
			}
		case opAddLdPutCharAddJump:
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+1]
			a := in.a.val(win)
			if a < 0 || a >= int64(len(m.mem)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("load address %d out of range", a)}
			}
			win[in.dst] = m.mem[a]
			m.Stats.Loads++
			in = &code[pc+2]
			m.Output.WriteByte(byte(in.a.val(win)))
			in = &code[pc+3]
			win[in.dst] = in.a.val(win) + in.b.val(win)
			in = &code[pc+4]
			m.Stats.Jumps++
			m.Stats.Insts += uint64(in.cost) + 1
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + 1
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = in.t1

		case opIJmp:
			idx := in.a.val(win)
			tbl := f.tables[in.t1]
			if idx < 0 || idx >= int64(len(tbl)) {
				return 0, &RuntimeError{f.name, fmt.Sprintf("indirect jump index %d out of range [0,%d)", idx, len(tbl))}
			}
			m.Stats.IndirectJumps++
			m.Stats.Insts += uint64(in.cost) + ijmpInsts
			m.Stats.SlotNops += uint64(in.slotTaken)
			steps += uint64(in.stepCost) + ijmpInsts
			if steps > maxSteps {
				return 0, &RuntimeError{f.name, fmt.Sprintf("exceeded step limit %d", maxSteps)}
			}
			pc = tbl[idx]
		}
	}
}

// growWindow extends regs to length n, zeroing the new window.
func growWindow(regs []int64, n int) []int64 {
	old := len(regs)
	if n <= cap(regs) {
		regs = regs[:n]
		clear(regs[old:])
		return regs
	}
	grown := make([]int64, n, n+n/2+16)
	copy(grown, regs[:old])
	return grown
}
