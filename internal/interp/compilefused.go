// Combined closure bodies for superinstructions. The closure compiler
// in compile.go decomposes a fused run into per-op closures by default;
// for the curated patterns below it instead emits ONE closure whose
// body performs the whole run — the same effects, in the same order,
// with the same trap accounting — so a fused run costs a single
// indirect transfer exactly as it costs FastMachine a single dispatch.
//
// The transfer that ends a pattern (CmpBr, Br, Jump, Call) is shared
// across patterns as a *Tail struct whose exec method the combined body
// invokes by direct (statically-predicted) call; only the straight-line
// prefix is expanded inline per pattern.
//
// Combined bodies are compiled only for the plain (hook-free) variant:
// the hooked variant always decomposes, which keeps every OnBranch /
// OnProf call site in exactly one place. Run never selects the plain
// variant when a hook is installed, so the tails omit hook dispatch
// entirely.
package interp

import "fmt"

// heapStats copies a compile-time Stats delta to the heap so trap
// closures can capture a stable pointer.
func heapStats(s Stats) *Stats { h := s; return &h }

// cmpBrTail ends a fused run with a compare-and-branch: the shared
// equivalent of compileUnit's opCmpBr closure. The outcome counter and
// successor are indexed by the relation selector rs (2 <, 1 ==, 0 >) —
// a table lookup instead of a mask test — and a forward successor is
// direct-called through its already-built chain head (direct[rs]),
// while a backedge bounces off the trampoline via slots[rs].
type cmpBrTail struct {
	a, b     darg
	stepCost uint64
	partial  *Stats
	ids      [3]int
	direct   [3]blockFn
	slots    [3]*blockFn
	fname    string
}

func (cc *funcCompiler) newCmpBrTail(d *dinst, pre Stats) *cmpBrTail {
	charge := Stats{CondBranches: 1, Cmps: 1, Insts: uint64(d.cost) + 1}
	stepPartial := plus(pre, charge)
	t := &cmpBrTail{
		a: d.a, b: d.b,
		stepCost: uint64(d.stepCost) + 1,
		partial:  &stepPartial,
		fname:    cc.fname,
	}
	idTaken := cc.newCounter(plus(stepPartial, Stats{TakenBranches: 1, SlotNops: uint64(d.slotTaken)}))
	idFall := cc.newCounter(plus(stepPartial, Stats{SlotNops: uint64(d.slotFall)}))
	takenFb, takenp := cc.succ(d.t1)
	fallFb, fallp := cc.succ(d.t2)
	t.ids, t.direct, t.slots = branchTables(d.relMask, idTaken, idFall, takenFb, fallFb, takenp, fallp)
	return t
}

// brTail ends a fused run with a plain conditional branch on the
// incoming condition codes. The only fused pattern using it starts
// with a compare, so flags are guaranteed defined and the undefined-
// condition-codes trap of the standalone opBr closure cannot fire.
type brTail struct {
	stepCost uint64
	partial  *Stats
	ids      [3]int
	direct   [3]blockFn
	slots    [3]*blockFn
	fname    string
}

func (cc *funcCompiler) newBrTail(d *dinst, pre Stats) *brTail {
	charge := Stats{CondBranches: 1, Insts: uint64(d.cost) + 1}
	stepPartial := plus(pre, charge)
	t := &brTail{
		stepCost: uint64(d.stepCost) + 1,
		partial:  &stepPartial,
		fname:    cc.fname,
	}
	idTaken := cc.newCounter(plus(stepPartial, Stats{TakenBranches: 1, SlotNops: uint64(d.slotTaken)}))
	idFall := cc.newCounter(plus(stepPartial, Stats{SlotNops: uint64(d.slotFall)}))
	takenFb, takenp := cc.succ(d.t1)
	fallFb, fallp := cc.succ(d.t2)
	t.ids, t.direct, t.slots = branchTables(d.relMask, idTaken, idFall, takenFb, fallFb, takenp, fallp)
	return t
}

// jumpTail ends a fused run with an unconditional jump.
type jumpTail struct {
	stepCost uint64
	partial  *Stats
	id       int
	direct   blockFn
	slot     *blockFn
	fname    string
}

func (cc *funcCompiler) newJumpTail(d *dinst, pre Stats) *jumpTail {
	full := plus(pre, Stats{Jumps: 1, Insts: uint64(d.cost) + 1, SlotNops: uint64(d.slotTaken)})
	t := &jumpTail{
		stepCost: uint64(d.stepCost) + 1,
		partial:  &full, // FastMachine charges all of it before its step check
		id:       cc.newCounter(full),
		fname:    cc.fname,
	}
	t.direct, t.slot = cc.succ(d.t1)
	return t
}

// callTail ends a fused run with a call: the shared equivalent of
// compileUnit's opCall closure. Constructed only for known callees;
// unknown ones make compileFused decline so the decomposed path's trap
// closure handles them.
type callTail struct {
	id          int
	args        []darg
	dst         int32
	callerNRegs int32
	calleeNRegs int
	entryp      *blockFn
	resume      blockFn
}

func (cc *funcCompiler) newCallTail(d *dinst, pre Stats, resume blockFn) *callTail {
	call := &cc.f.calls[d.t1]
	return &callTail{
		id:          cc.newCounter(plus(pre, Stats{Calls: 1})),
		args:        call.args,
		dst:         call.dst,
		callerNRegs: int32(cc.f.nRegs),
		calleeNRegs: cc.c.funcs[call.fn].nRegs,
		entryp:      &cc.cp.entries[call.fn],
		resume:      resume,
	}
}

func (t *callTail) exec(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
	m.counts[t.id]++
	base := int32(len(m.regs) - len(w))
	m.frames = append(m.frames, closFrame{
		resume: t.resume, base: base, nRegs: t.callerNRegs, dst: t.dst,
		cmpA: cmpA, cmpB: cmpB, flags: flags,
	})
	newBase := len(m.regs)
	m.regs = growWindow(m.regs, newBase+t.calleeNRegs)
	neww := m.regs[newBase:]
	n := len(t.args)
	if n > len(neww) {
		n = len(neww)
	}
	for i := 0; i < n; i++ {
		neww[i] = t.args[i].val(w)
	}
	return *t.entryp, neww, 0, 0, false, steps
}

// ldTrap and stTrap are the cold out-of-range paths of combined bodies.
func (m *ClosureMachine) ldTrap(partial *Stats, fname string, addr int64) (blockFn, []int64, int64, int64, bool, uint64) {
	return m.trap(partial, fname, fmt.Sprintf("load address %d out of range", addr))
}

func (m *ClosureMachine) stTrap(partial *Stats, fname string, addr int64) (blockFn, []int64, int64, int64, bool, uint64) {
	return m.trap(partial, fname, fmt.Sprintf("store address %d out of range", addr))
}

// compileFused emits one combined closure for a whole superinstruction
// run, or nil when it has no body for the pattern (the caller then
// decomposes the run into per-op closures). u.subs holds the run's
// dinsts in order; u.pres the segment delta before each sub-op, which
// ld/st/enter trap paths credit. Bodies replicate the decomposed
// semantics exactly: same effect order, same traps, same accounting.
func (cc *funcCompiler) compileFused(u *cunit, next blockFn) blockFn {
	fname := cc.fname
	switch u.op {

	// --- straight-line pairs ---
	case opMovMov:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			w[i1.dst] = i1.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opMovAdd:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddMov:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			w[i1.dst] = i1.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddAdd:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddLd:
		i0, i1 := *u.subs[0], *u.subs[1]
		p1 := heapStats(u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opLdAdd:
		i0, i1 := *u.subs[0], *u.subs[1]
		p0 := heapStats(u.pres[0])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddSt:
		i0, i1 := *u.subs[0], *u.subs[1]
		p1 := heapStats(u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p1, fname, addr)
			}
			m.mem[addr] = i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opStAdd:
		i0, i1 := *u.subs[0], *u.subs[1]
		p0 := heapStats(u.pres[0])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opPutCharAdd:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			m.Output.WriteByte(byte(i0.a.val(w)))
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opSubMov:
		i0, i1 := *u.subs[0], *u.subs[1]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) - i0.b.val(w)
			w[i1.dst] = i1.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opEnterMov:
		i0, i1 := *u.subs[0], *u.subs[1]
		stepCost := uint64(i0.stepCost)
		p0 := heapStats(Stats{Insts: uint64(i0.cost)})
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(p0, fname)
			}
			w[i1.dst] = i1.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opStSub:
		i0, i1 := *u.subs[0], *u.subs[1]
		p0 := heapStats(u.pres[0])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			w[i1.dst] = i1.a.val(w) - i1.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}

	// --- compare-and-branch tails ---
	case opAddCmpBr:
		i0 := *u.subs[0]
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opLdCmpBr:
		i0 := *u.subs[0]
		p0 := heapStats(u.pres[0])
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opStCmpBr:
		i0 := *u.subs[0]
		p0 := heapStats(u.pres[0])
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opMovCmpBr:
		i0 := *u.subs[0]
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opGetCharCmpBr:
		i0 := *u.subs[0]
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if m.inPos < len(m.Input) {
				w[i0.dst] = int64(m.Input[m.inPos])
				m.inPos++
			} else {
				w[i0.dst] = -1
			}
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opXorCmpBr:
		i0 := *u.subs[0]
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) ^ i0.b.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opShlCmpBr:
		i0 := *u.subs[0]
		t := cc.newCmpBrTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) << (uint64(i0.b.val(w)) & 63)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}

	// --- jump tails ---
	case opMovJump:
		i0 := *u.subs[0]
		t := cc.newJumpTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opAddJump:
		i0 := *u.subs[0]
		t := cc.newJumpTail(u.subs[1], u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}

	// --- call tails ---
	case opLdCall:
		if cc.f.calls[u.subs[1].t1].fn < 0 {
			return nil // unknown callee: decomposed path traps
		}
		i0 := *u.subs[0]
		p0 := heapStats(u.pres[0])
		t := cc.newCallTail(u.subs[1], u.pres[1], next)
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			return t.exec(m, w, cmpA, cmpB, flags, steps)
		}

	// --- straight-line triples ---
	case opLdAddSt:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p0 := heapStats(u.pres[0])
		p2 := heapStats(u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			addr = i2.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p2, fname, addr)
			}
			m.mem[addr] = i2.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddLdAdd:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p1 := heapStats(u.pres[1])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			w[i2.dst] = i2.a.val(w) + i2.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opStAddMov:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p0 := heapStats(u.pres[0])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			w[i2.dst] = i2.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opMovAddMov:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			w[i2.dst] = i2.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opEnterMovMov:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		stepCost := uint64(i0.stepCost)
		p0 := heapStats(Stats{Insts: uint64(i0.cost)})
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(p0, fname)
			}
			w[i1.dst] = i1.a.val(w)
			w[i2.dst] = i2.a.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}

	// --- triples with tails ---
	case opAddLdCmpBr:
		i0, i1 := *u.subs[0], *u.subs[1]
		p1 := heapStats(u.pres[1])
		t := cc.newCmpBrTail(u.subs[2], u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opAddLdCall:
		if cc.f.calls[u.subs[2].t1].fn < 0 {
			return nil // unknown callee: decomposed path traps
		}
		i0, i1 := *u.subs[0], *u.subs[1]
		p1 := heapStats(u.pres[1])
		t := cc.newCallTail(u.subs[2], u.pres[2], next)
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			return t.exec(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddMovJump:
		i0, i1 := *u.subs[0], *u.subs[1]
		t := cc.newJumpTail(u.subs[2], u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			w[i1.dst] = i1.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opPutCharAddJump:
		i0, i1 := *u.subs[0], *u.subs[1]
		t := cc.newJumpTail(u.subs[2], u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			m.Output.WriteByte(byte(i0.a.val(w)))
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opStMovJump:
		i0, i1 := *u.subs[0], *u.subs[1]
		p0 := heapStats(u.pres[0])
		t := cc.newJumpTail(u.subs[2], u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			w[i1.dst] = i1.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opSubMovJump:
		i0, i1 := *u.subs[0], *u.subs[1]
		t := cc.newJumpTail(u.subs[2], u.pres[2])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) - i0.b.val(w)
			w[i1.dst] = i1.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}

	// --- quads ---
	case opLdAddStCmpBr:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p0 := heapStats(u.pres[0])
		p2 := heapStats(u.pres[2])
		t := cc.newCmpBrTail(u.subs[3], u.pres[3])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			addr = i2.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p2, fname, addr)
			}
			m.mem[addr] = i2.b.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opAddLdAddLd:
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		p1 := heapStats(u.pres[1])
		p3 := heapStats(u.pres[3])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			w[i2.dst] = i2.a.val(w) + i2.b.val(w)
			addr = i3.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p3, fname, addr)
			}
			w[i3.dst] = m.mem[addr]
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opMovAddMovCmpBr:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		t := cc.newCmpBrTail(u.subs[3], u.pres[3])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			w[i2.dst] = i2.a.val(w)
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opLdAddStJump:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p0 := heapStats(u.pres[0])
		p2 := heapStats(u.pres[2])
		t := cc.newJumpTail(u.subs[3], u.pres[3])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			addr = i2.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p2, fname, addr)
			}
			m.mem[addr] = i2.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opStAddMovJump:
		i0, i1, i2 := *u.subs[0], *u.subs[1], *u.subs[2]
		p0 := heapStats(u.pres[0])
		t := cc.newJumpTail(u.subs[3], u.pres[3])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p0, fname, addr)
			}
			m.mem[addr] = i0.b.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			w[i2.dst] = i2.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}

	// --- quints ---
	case opAddLdAddLdCall:
		if cc.f.calls[u.subs[4].t1].fn < 0 {
			return nil // unknown callee: decomposed path traps
		}
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		p1 := heapStats(u.pres[1])
		p3 := heapStats(u.pres[3])
		t := cc.newCallTail(u.subs[4], u.pres[4], next)
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			w[i2.dst] = i2.a.val(w) + i2.b.val(w)
			addr = i3.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p3, fname, addr)
			}
			w[i3.dst] = m.mem[addr]
			return t.exec(m, w, cmpA, cmpB, flags, steps)
		}
	case opAddLdAddLdCmpBr:
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		p1 := heapStats(u.pres[1])
		p3 := heapStats(u.pres[3])
		t := cc.newCmpBrTail(u.subs[4], u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			w[i2.dst] = i2.a.val(w) + i2.b.val(w)
			addr = i3.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p3, fname, addr)
			}
			w[i3.dst] = m.mem[addr]
			cmpA, cmpB = t.a.val(w), t.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}

	case opAddAddAddLdSt:
		i0, i1, i2, i3, i4 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3], *u.subs[4]
		p3 := heapStats(u.pres[3])
		p4 := heapStats(u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			w[i2.dst] = i2.a.val(w) + i2.b.val(w)
			addr := i3.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p3, fname, addr)
			}
			w[i3.dst] = m.mem[addr]
			addr = i4.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p4, fname, addr)
			}
			m.mem[addr] = i4.b.val(w)
			return next(m, w, cmpA, cmpB, flags, steps)
		}
	case opPcOrShlPcJump:
		// The two ProfConds are hookless no-ops in the plain variant
		// (their ProfHits ride in the jump counter's segment delta).
		i1, i2 := *u.subs[1], *u.subs[2]
		t := cc.newJumpTail(u.subs[4], u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i1.dst] = i1.a.val(w) | i1.b.val(w)
			w[i2.dst] = i2.a.val(w) << (uint64(i2.b.val(w)) & 63)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opLdAddStMovJump:
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		p0 := heapStats(u.pres[0])
		p2 := heapStats(u.pres[2])
		t := cc.newJumpTail(u.subs[4], u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			addr := i0.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p0, fname, addr)
			}
			w[i0.dst] = m.mem[addr]
			w[i1.dst] = i1.a.val(w) + i1.b.val(w)
			addr = i2.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.stTrap(p2, fname, addr)
			}
			m.mem[addr] = i2.b.val(w)
			w[i3.dst] = i3.a.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	case opCmpMulCmpAndBr:
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		t := cc.newBrTail(u.subs[4], u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			cmpA, cmpB = i0.a.val(w), i0.b.val(w)
			w[i1.dst] = i1.a.val(w) * i1.b.val(w)
			cmpA, cmpB = i2.a.val(w), i2.b.val(w)
			w[i3.dst] = i3.a.val(w) & i3.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[t.ids[rs]]++
			if fb := t.direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *t.slots[rs], w, cmpA, cmpB, true, steps
		}
	case opAddLdPutCharAddJump:
		i0, i1, i2, i3 := *u.subs[0], *u.subs[1], *u.subs[2], *u.subs[3]
		p1 := heapStats(u.pres[1])
		t := cc.newJumpTail(u.subs[4], u.pres[4])
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			w[i0.dst] = i0.a.val(w) + i0.b.val(w)
			addr := i1.a.val(w)
			if addr < 0 || addr >= int64(len(m.mem)) {
				return m.ldTrap(p1, fname, addr)
			}
			w[i1.dst] = m.mem[addr]
			m.Output.WriteByte(byte(i2.a.val(w)))
			w[i3.dst] = i3.a.val(w) + i3.b.val(w)
			steps += t.stepCost
			if steps > m.maxSteps {
				return m.stepTrap(t.partial, t.fname)
			}
			m.counts[t.id]++
			if t.direct != nil {
				return t.direct(m, w, cmpA, cmpB, flags, steps)
			}
			return *t.slot, w, cmpA, cmpB, flags, steps
		}
	}
	return nil
}
