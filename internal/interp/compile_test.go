package interp

import (
	"strings"
	"testing"

	"branchreorder/internal/ir"
)

func runClosure(t *testing.T, p *ir.Program, input []byte, maxSteps uint64) engineResult {
	t.Helper()
	return runClosureWith(t, p, input, maxSteps, DecodeOptions{Fuse: true})
}

func runClosureWith(t *testing.T, p *ir.Program, input []byte, maxSteps uint64, opts DecodeOptions) engineResult {
	t.Helper()
	code, err := DecodeWith(p, opts)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var r engineResult
	m := &ClosureMachine{Code: code, Input: input, MaxSteps: maxSteps,
		OnBranch: func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		},
		OnProf: func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}}
	ret, err := m.Run()
	r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	if err != nil {
		r.err = err.Error()
	}
	return r
}

// checkClosureEngine runs the fast and closure engines on a program
// that must complete and demands full observable equality, fused and
// unfused.
func checkClosureEngine(t *testing.T, name string, p *ir.Program, input []byte) {
	t.Helper()
	for _, fuse := range []bool{true, false} {
		opts := DecodeOptions{Fuse: fuse}
		label := name + "/fused"
		if !fuse {
			label = name + "/unfused"
		}
		fast := runFastWith(t, p, input, 0, opts)
		clos := runClosureWith(t, p, input, 0, opts)
		if fast.err != "" || clos.err != "" {
			t.Fatalf("%s: unexpected errors fast=%q closure=%q", label, fast.err, clos.err)
		}
		if fast.ret != clos.ret {
			t.Errorf("%s: ret fast=%d closure=%d", label, fast.ret, clos.ret)
		}
		if fast.out != clos.out {
			t.Errorf("%s: output fast=%q closure=%q", label, fast.out, clos.out)
		}
		if fast.stats != clos.stats {
			t.Errorf("%s: stats\nfast:    %+v\nclosure: %+v", label, fast.stats, clos.stats)
		}
		if !int64SlicesEqual(fast.branches, clos.branches) {
			t.Errorf("%s: branch event streams differ (%d vs %d events)",
				label, len(fast.branches)/2, len(clos.branches)/2)
		}
		if !int64SlicesEqual(fast.profs, clos.profs) {
			t.Errorf("%s: prof event streams differ", label)
		}
	}
}

func runFastWith(t *testing.T, p *ir.Program, input []byte, maxSteps uint64, opts DecodeOptions) engineResult {
	t.Helper()
	code, err := DecodeWith(p, opts)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var r engineResult
	m := &FastMachine{Code: code, Input: input, MaxSteps: maxSteps,
		OnBranch: func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		},
		OnProf: func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}}
	ret, err := m.Run()
	r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	if err != nil {
		r.err = err.Error()
	}
	return r
}

func TestClosureMatchesFastOnCompletedRuns(t *testing.T) {
	nested := func() *ir.Program {
		p := &ir.Program{}
		inner := &ir.Func{Name: "inner", NParams: 2, NRegs: 3}
		ib := inner.NewBlock()
		ib.Insts = []ir.Inst{
			{Op: ir.Mul, Dst: 2, A: ir.R(0), B: ir.R(1)},
			{Op: ir.Prof, SeqID: 1, Sub: 0, A: ir.R(2)},
		}
		ib.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(2)}
		outer := &ir.Func{Name: "outer", NParams: 1, NRegs: 2}
		ob := outer.NewBlock()
		ob.Insts = []ir.Inst{
			{Op: ir.Call, Dst: 1, Callee: "inner", Args: []ir.Operand{ir.R(0), ir.Imm(3)}},
			{Op: ir.PutInt, A: ir.R(1)},
			{Op: ir.PutChar, A: ir.Imm('\n')},
		}
		ob.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
		mainFn := &ir.Func{Name: "main", NRegs: 1}
		mb := mainFn.NewBlock()
		mb.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "outer", Args: []ir.Operand{ir.Imm(14)}}}
		mb.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
		p.Funcs = []*ir.Func{mainFn, outer, inner}
		p.Linearize()
		return p
	}

	ijmp := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		b1 := f.NewBlock()
		b2 := f.NewBlock()
		entry.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 0}}
		entry.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.R(0), Targets: []*ir.Block{b1, b2}}
		b1.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(100)}
		b2.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(200)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}

	cases := []struct {
		name  string
		prog  *ir.Program
		input string
	}{
		{"loop", countLoopProg(25), ""},
		{"ijmp0", ijmp(), "\x00"},
		{"ijmp1", ijmp(), "\x01"},
		{"nested-calls", nested(), ""},
		{"io", binProg(ir.Add, 1, 2), "unread"},
	}
	for _, c := range cases {
		checkClosureEngine(t, c.name, c.prog, []byte(c.input))
	}
}

// TestClosureCallHeavyInstCounts pins the closure engine to the same
// exact Stats the other two engines produce on the call-heavy loop.
func TestClosureCallHeavyInstCounts(t *testing.T) {
	const n = 1000
	p := countLoopProg(n)
	ref := runReference(p, nil, 0)
	clos := runClosure(t, p, nil, 0)
	if clos.err != "" {
		t.Fatal(clos.err)
	}
	if clos.ret != n {
		t.Errorf("ret = %d, want %d", clos.ret, int64(n))
	}
	if clos.stats != ref.stats {
		t.Errorf("stats\nref:     %+v\nclosure: %+v", ref.stats, clos.stats)
	}
}

// TestClosureTrapParity demands byte-identical runtime errors AND
// identical trap-point Stats from the fast and closure engines: the
// closure compiler charges at exactly the positions FastMachine does,
// so unlike the reference engine there is no block-granularity slack
// between the two.
func TestClosureTrapParity(t *testing.T) {
	oobLoad := &ir.Program{MemSize: 2}
	f := &ir.Func{Name: "main", NRegs: 1}
	b := f.NewBlock()
	b.Insts = []ir.Inst{{Op: ir.Ld, Dst: 0, A: ir.Imm(5)}}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	oobLoad.Funcs = []*ir.Func{f}
	oobLoad.Linearize()

	oobIJmp := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		b1 := f.NewBlock()
		entry.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.Imm(7), Targets: []*ir.Block{b1}}
		b1.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	unknownCallee := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		b := f.NewBlock()
		b.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "nowhere"}}
		b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	undefFlags := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		a := f.NewBlock()
		z := f.NewBlock()
		entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: a, Next: z}
		a.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(1)}
		z.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	cases := []struct {
		name string
		prog *ir.Program
		frag string
	}{
		{"div-zero", binProg(ir.Div, 1, 0), "division by zero"},
		{"rem-zero", binProg(ir.Rem, 1, 0), "remainder by zero"},
		{"oob-load", oobLoad, "load address 5 out of range"},
		{"oob-ijmp", oobIJmp, "indirect jump index 7 out of range [0,1)"},
		{"unknown-callee", unknownCallee, "call to unknown function nowhere"},
		{"undef-flags", undefFlags, "conditional branch with undefined condition codes"},
	}
	for _, c := range cases {
		fast := runFast(t, c.prog, nil, 0)
		clos := runClosure(t, c.prog, nil, 0)
		if fast.err != clos.err {
			t.Errorf("%s: error fast=%q closure=%q", c.name, fast.err, clos.err)
		}
		if !strings.Contains(clos.err, c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, clos.err, c.frag)
		}
		if fast.stats != clos.stats {
			t.Errorf("%s: trap-point stats\nfast:    %+v\nclosure: %+v",
				c.name, fast.stats, clos.stats)
		}
	}
}

// TestClosureStepLimit verifies the closure engine aborts at exactly
// the block edge FastMachine aborts at, with the same trap text and
// charges.
func TestClosureStepLimit(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	b := f.NewBlock()
	b.Insts = []ir.Inst{{Op: ir.Add, Dst: 0, A: ir.R(0), B: ir.Imm(1)}}
	b.Term = ir.Term{Kind: ir.TermGoto, Taken: b}
	p.Funcs = []*ir.Func{f}
	p.Linearize()
	fast := runFast(t, p, nil, 500)
	clos := runClosure(t, p, nil, 500)
	if fast.err != clos.err {
		t.Errorf("error fast=%q closure=%q", fast.err, clos.err)
	}
	if !strings.Contains(clos.err, "exceeded step limit 500") {
		t.Errorf("error %q", clos.err)
	}
	if fast.stats != clos.stats {
		t.Errorf("abort stats\nfast:    %+v\nclosure: %+v", fast.stats, clos.stats)
	}
}

// TestClosureMachineReuse checks that re-running a ClosureMachine
// resets all execution state, and that a second machine sharing the
// same Code (and thus the same cached closure graph) agrees.
func TestClosureMachineReuse(t *testing.T) {
	p := countLoopProg(50)
	code, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	m := &ClosureMachine{Code: code, Input: []byte("abc")}
	r1, err1 := m.Run()
	out1 := m.Output.String()
	st1 := m.Stats
	r2, err2 := m.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if r1 != r2 || out1 != m.Output.String() || st1 != m.Stats {
		t.Errorf("second run diverged: ret %d vs %d, stats %+v vs %+v",
			r1, r2, st1, m.Stats)
	}
	m2 := &ClosureMachine{Code: code, Input: []byte("abc")}
	r3, err3 := m2.Run()
	if err3 != nil {
		t.Fatal(err3)
	}
	if r3 != r1 || m2.Output.String() != out1 || m2.Stats != st1 {
		t.Errorf("shared-Code machine diverged")
	}
}

// TestClosureHookVariants checks the lazily compiled plain and hooked
// variants agree: a hooked run (which exercises the instrumented
// closure graph) and a bare run (the stripped graph) produce the same
// result, output and stats.
func TestClosureHookVariants(t *testing.T) {
	p := countLoopProg(30)
	code, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	hooked := &ClosureMachine{Code: code,
		OnBranch: func(id int, taken bool) { events++ }}
	hr, herr := hooked.Run()
	plain := &ClosureMachine{Code: code}
	pr, perr := plain.Run()
	if herr != nil || perr != nil {
		t.Fatalf("errors: %v, %v", herr, perr)
	}
	if events == 0 {
		t.Error("hooked run observed no branches")
	}
	if hr != pr || hooked.Stats != plain.Stats || hooked.Output.String() != plain.Output.String() {
		t.Errorf("variants diverged: ret %d vs %d, stats %+v vs %+v",
			hr, pr, hooked.Stats, plain.Stats)
	}
}

func TestClosureRunErrors(t *testing.T) {
	noMain := &ir.Program{Funcs: []*ir.Func{{Name: "helper", NRegs: 1}}}
	noMain.Funcs[0].NewBlock().Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	noMain.Linearize()
	code, err := Decode(noMain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&ClosureMachine{Code: code}).Run(); err == nil ||
		!strings.Contains(err.Error(), "no main function") {
		t.Errorf("no-main error: %v", err)
	}

	badMain := &ir.Program{Funcs: []*ir.Func{{Name: "main", NParams: 1, NRegs: 1}}}
	badMain.Funcs[0].NewBlock().Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	badMain.Linearize()
	code, err = Decode(badMain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&ClosureMachine{Code: code}).Run(); err == nil ||
		!strings.Contains(err.Error(), "main must take no parameters") {
		t.Errorf("bad-main error: %v", err)
	}
}

// TestCompileStats pins the compiler's counters on a known shape: the
// count-loop program has two functions and no fallbacks, and the
// counters must be stable across repeated queries (the graph is cached).
func TestCompileStats(t *testing.T) {
	p := countLoopProg(5)
	code, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	st := code.CompileStats()
	if st.CompiledFuncs != 2 {
		t.Errorf("CompiledFuncs = %d, want 2", st.CompiledFuncs)
	}
	if st.ClosureBlocks == 0 {
		t.Error("ClosureBlocks = 0, want nonzero")
	}
	if st.Fallbacks != 0 {
		t.Errorf("Fallbacks = %d, want 0", st.Fallbacks)
	}
	if again := code.CompileStats(); again != st {
		t.Errorf("unstable stats: %+v then %+v", st, again)
	}
}
