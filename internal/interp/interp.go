// Package interp executes IR programs and collects the dynamic statistics
// the paper's evaluation is built on: instructions executed, conditional
// branches executed and taken, unconditional jumps, and indirect jumps.
// It stands in for running the compiled utilities on SPARC hardware under
// the ease measurement environment.
//
// Programs must be linearized (ir.Program.Linearize) before execution:
// fall-through versus jump is decided by physical block adjacency, exactly
// as in machine code.
package interp

import (
	"bytes"
	"fmt"
	"strconv"

	"branchreorder/internal/ir"
)

// Stats aggregates the dynamic event counts of one execution.
type Stats struct {
	// Insts is the total dynamic instruction count under the SPARC-like
	// cost model: every ordinary instruction is 1; a conditional branch
	// is 1; an unconditional goto is 1 only when it is a real jump (its
	// target is not the physically following block); an indirect jump
	// costs IJmpInsts (table-address formation, table load, and jump —
	// the bounds checks are emitted as explicit instructions by
	// lowering). Prof, ProfCond and Nop cost 0.
	Insts uint64

	CondBranches  uint64 // conditional branches executed
	TakenBranches uint64 // conditional branches taken
	Jumps         uint64 // real unconditional jumps executed
	IndirectJumps uint64 // indirect (jump-table) jumps executed
	Loads         uint64
	Stores        uint64
	Calls         uint64
	Cmps          uint64
	ProfHits      uint64 // profiling pseudo-instructions executed (cost 0)

	// SlotNops counts executed control transfers whose delay slot held
	// nothing useful for the path taken (ir.FillDelaySlots decides the
	// fills; zero when that pass has not run). Not part of Insts: only
	// the delay-slotted machine cycle models charge it.
	SlotNops uint64
}

// DefaultIJmpInsts is the instruction cost of one indirect jump: shift to
// scale the index, load of the table entry, and the register jump.
const DefaultIJmpInsts = 3

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 1 << 33

// Machine executes a program.
type Machine struct {
	Prog  *ir.Program
	Input []byte

	// OnBranch, if non-nil, observes every executed conditional branch.
	// The id is the branch's program-unique BranchID from linearization.
	OnBranch func(id int, taken bool)

	// OnProf, if non-nil, observes every executed Prof or ProfCond
	// instruction: for Prof, value is the branch variable and sub is 0;
	// for ProfCond, value is the 0/1 outcome of the instrumented
	// condition and sub identifies it within the sequence.
	OnProf func(seqID, sub int, value int64)

	// OnBlock, if non-nil, observes every basic block entered, keyed by
	// function name and the block's layout index. The superinstruction
	// miner uses it to weight static op sequences by dynamic execution
	// count; it lives on the reference Machine so the fast engine's
	// dispatch loop stays instrumentation-free.
	OnBlock func(fn string, layoutIndex int)

	// IJmpInsts is the instruction cost charged per indirect jump;
	// DefaultIJmpInsts if zero.
	IJmpInsts uint64

	// MaxSteps aborts execution after this many dynamic instructions;
	// DefaultMaxSteps if zero.
	MaxSteps uint64

	Stats  Stats
	Output bytes.Buffer

	mem    []int64
	inPos  int
	steps  uint64
	numBuf [24]byte
}

// RuntimeError describes a trap during execution.
type RuntimeError struct {
	Func string
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s: %s", e.Func, e.Msg)
}

type frame struct {
	f     *ir.Func
	regs  []int64
	cmpA  int64
	cmpB  int64
	flags bool
}

// Run executes main() and returns its result.
func (m *Machine) Run() (int64, error) {
	main := m.Prog.Func("main")
	if main == nil {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	if main.NParams != 0 {
		return 0, fmt.Errorf("interp: main must take no parameters")
	}
	if m.IJmpInsts == 0 {
		m.IJmpInsts = DefaultIJmpInsts
	}
	if m.MaxSteps == 0 {
		m.MaxSteps = DefaultMaxSteps
	}
	m.mem = make([]int64, m.Prog.MemSize)
	for _, g := range m.Prog.Globals {
		copy(m.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	m.inPos = 0
	m.steps = 0
	return m.call(main, nil)
}

func (m *Machine) call(f *ir.Func, args []int64) (int64, error) {
	fr := frame{f: f, regs: make([]int64, f.NRegs)}
	copy(fr.regs, args)
	m.Stats.Calls++
	m.Stats.Insts++ // the call instruction itself
	b := f.Entry()
	for {
		if m.OnBlock != nil {
			m.OnBlock(f.Name, b.LayoutIndex)
		}
		for i := range b.Insts {
			if err := m.exec(&fr, &b.Insts[i]); err != nil {
				return 0, err
			}
		}
		t := &b.Term
		switch t.Kind {
		case ir.TermRet:
			m.Stats.Insts++ // the return instruction
			if t.Slot != ir.SlotAlways {
				m.Stats.SlotNops++
			}
			if err := m.step(&fr, 1); err != nil {
				return 0, err
			}
			return m.val(&fr, t.Val), nil
		case ir.TermGoto:
			if t.Taken.LayoutIndex != b.LayoutIndex+1 {
				m.Stats.Jumps++
				m.Stats.Insts++
				if t.Slot != ir.SlotAlways {
					m.Stats.SlotNops++
				}
				if err := m.step(&fr, 1); err != nil {
					return 0, err
				}
			}
			b = t.Taken
		case ir.TermBr:
			if !fr.flags {
				return 0, &RuntimeError{f.Name, "conditional branch with undefined condition codes"}
			}
			m.Stats.CondBranches++
			m.Stats.Insts++
			if err := m.step(&fr, 1); err != nil {
				return 0, err
			}
			taken := t.Rel.Holds(fr.cmpA, fr.cmpB)
			if m.OnBranch != nil {
				m.OnBranch(t.BranchID, taken)
			}
			switch t.Slot {
			case ir.SlotAlways:
			case ir.SlotFallthru:
				if taken {
					m.Stats.SlotNops++
				}
			case ir.SlotTaken:
				if !taken {
					m.Stats.SlotNops++
				}
			default:
				m.Stats.SlotNops++
			}
			if taken {
				m.Stats.TakenBranches++
				b = t.Taken
			} else {
				b = t.Next
			}
		case ir.TermIJmp:
			idx := m.val(&fr, t.Index)
			if idx < 0 || idx >= int64(len(t.Targets)) {
				return 0, &RuntimeError{f.Name, fmt.Sprintf("indirect jump index %d out of range [0,%d)", idx, len(t.Targets))}
			}
			m.Stats.IndirectJumps++
			m.Stats.Insts += m.IJmpInsts
			if t.Slot != ir.SlotAlways {
				m.Stats.SlotNops++
			}
			if err := m.step(&fr, m.IJmpInsts); err != nil {
				return 0, err
			}
			b = t.Targets[idx]
		}
	}
}

func (m *Machine) step(fr *frame, n uint64) error {
	m.steps += n
	if m.steps > m.MaxSteps {
		return &RuntimeError{fr.f.Name, fmt.Sprintf("exceeded step limit %d", m.MaxSteps)}
	}
	return nil
}

func (m *Machine) val(fr *frame, o ir.Operand) int64 {
	if o.IsImm {
		return o.Imm
	}
	return fr.regs[o.Reg]
}

func (m *Machine) exec(fr *frame, in *ir.Inst) error {
	switch in.Op {
	case ir.Prof:
		m.Stats.ProfHits++
		if m.OnProf != nil {
			m.OnProf(in.SeqID, in.Sub, m.val(fr, in.A))
		}
		return nil // zero cost
	case ir.ProfCond:
		m.Stats.ProfHits++
		if m.OnProf != nil {
			v := int64(0)
			if in.Rel.Holds(m.val(fr, in.A), m.val(fr, in.B)) {
				v = 1
			}
			m.OnProf(in.SeqID, in.Sub, v)
		}
		return nil // zero cost
	case ir.Nop:
		return nil
	case ir.Call:
		// The call instruction is accounted for in call() — Calls and
		// Insts exactly once — and consumes no step budget: the callee's
		// own instructions bound the run.
		callee := m.Prog.Func(in.Callee)
		if callee == nil {
			return &RuntimeError{fr.f.Name, "call to unknown function " + in.Callee}
		}
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = m.val(fr, a)
		}
		ret, err := m.call(callee, args)
		if err != nil {
			return err
		}
		if in.Dst != ir.NoReg {
			fr.regs[in.Dst] = ret
		}
		return nil
	}
	m.Stats.Insts++
	if err := m.step(fr, 1); err != nil {
		return err
	}
	switch in.Op {
	case ir.Mov:
		fr.regs[in.Dst] = m.val(fr, in.A)
	case ir.Add:
		fr.regs[in.Dst] = m.val(fr, in.A) + m.val(fr, in.B)
	case ir.Sub:
		fr.regs[in.Dst] = m.val(fr, in.A) - m.val(fr, in.B)
	case ir.Mul:
		fr.regs[in.Dst] = m.val(fr, in.A) * m.val(fr, in.B)
	case ir.Div:
		d := m.val(fr, in.B)
		if d == 0 {
			return &RuntimeError{fr.f.Name, "division by zero"}
		}
		fr.regs[in.Dst] = m.val(fr, in.A) / d
	case ir.Rem:
		d := m.val(fr, in.B)
		if d == 0 {
			return &RuntimeError{fr.f.Name, "remainder by zero"}
		}
		fr.regs[in.Dst] = m.val(fr, in.A) % d
	case ir.And:
		fr.regs[in.Dst] = m.val(fr, in.A) & m.val(fr, in.B)
	case ir.Or:
		fr.regs[in.Dst] = m.val(fr, in.A) | m.val(fr, in.B)
	case ir.Xor:
		fr.regs[in.Dst] = m.val(fr, in.A) ^ m.val(fr, in.B)
	case ir.Shl:
		fr.regs[in.Dst] = m.val(fr, in.A) << (uint64(m.val(fr, in.B)) & 63)
	case ir.Shr:
		fr.regs[in.Dst] = m.val(fr, in.A) >> (uint64(m.val(fr, in.B)) & 63)
	case ir.Neg:
		fr.regs[in.Dst] = -m.val(fr, in.A)
	case ir.Not:
		fr.regs[in.Dst] = ^m.val(fr, in.A)
	case ir.Cmp:
		fr.cmpA, fr.cmpB = m.val(fr, in.A), m.val(fr, in.B)
		fr.flags = true
		m.Stats.Cmps++
	case ir.Ld:
		a := m.val(fr, in.A)
		if a < 0 || a >= int64(len(m.mem)) {
			return &RuntimeError{fr.f.Name, fmt.Sprintf("load address %d out of range", a)}
		}
		fr.regs[in.Dst] = m.mem[a]
		m.Stats.Loads++
	case ir.St:
		a := m.val(fr, in.A)
		if a < 0 || a >= int64(len(m.mem)) {
			return &RuntimeError{fr.f.Name, fmt.Sprintf("store address %d out of range", a)}
		}
		m.mem[a] = m.val(fr, in.B)
		m.Stats.Stores++
	case ir.GetChar:
		if m.inPos < len(m.Input) {
			fr.regs[in.Dst] = int64(m.Input[m.inPos])
			m.inPos++
		} else {
			fr.regs[in.Dst] = -1
		}
	case ir.PutChar:
		m.Output.WriteByte(byte(m.val(fr, in.A)))
	case ir.PutInt:
		m.Output.Write(strconv.AppendInt(m.numBuf[:0], m.val(fr, in.A), 10))
	default:
		return &RuntimeError{fr.f.Name, fmt.Sprintf("unknown opcode %v", in.Op)}
	}
	return nil
}
