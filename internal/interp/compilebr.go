// Specialized conditional-branch closures for the plain (hook-free)
// compiled variant. The generic branch body interprets relMask at run
// time: derive a relation selector rs from the compare, shift the mask,
// test a bit — a five-instruction dependent chain ending in a branch.
// Here the mask is decoded at compile time instead, so each branch
// closure executes one native compare-and-branch on the operands; the
// six relations give six distinct host branch sites (plus six more per
// operand shape), which also stops every interpreted branch from
// aliasing onto a single host predictor slot — the same replication
// effect superinstructions buy FastMachine's dispatch switch.
//
// The relation selector convention (see the generic body): rs is 2 when
// a < b, 1 when a == b, 0 when a > b, and relMask bit rs set means the
// branch is taken. So mask 0b100 is <, 0b110 <=, 0b010 ==, 0b101 !=,
// 0b001 >, 0b011 >=. Degenerate masks (never/always taken) and unusual
// operand shapes keep a mask-table body.
package interp

// compileBranchPlain compiles opBr/opCmpBr for the plain variant. The
// accounting mirrors the generic path exactly: branch (+compare for
// CmpBr) charges precede the step check, the outcome's TakenBranches/
// SlotNops ride in the per-outcome counters.
func (cc *funcCompiler) compileBranchPlain(op dop, d *dinst, pre Stats) blockFn {
	fname := cc.fname
	isCmp := op == opCmpBr
	stepCost := uint64(d.stepCost) + 1
	charge := Stats{CondBranches: 1, Insts: uint64(d.cost) + 1}
	if isCmp {
		charge.Cmps = 1
	}
	stepPartial := plus(pre, charge)
	partial := &stepPartial
	idTaken := cc.newCounter(plus(stepPartial, Stats{TakenBranches: 1, SlotNops: uint64(d.slotTaken)}))
	idFall := cc.newCounter(plus(stepPartial, Stats{SlotNops: uint64(d.slotFall)}))
	takenFb, takenp := cc.succ(d.t1)
	fallFb, fallp := cc.succ(d.t2)

	if isCmp {
		a, b := d.a, d.b
		if a.reg >= 0 && b.reg < 0 {
			aReg, bImm := a.reg, b.imm
			switch d.relMask {
			case 0b100: // <
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA < cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b110: // <=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA <= cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b010: // ==
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA == cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b101: // !=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA != cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b001: // >
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA > cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b011: // >=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], bImm
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA >= cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			}
		} else if a.reg >= 0 && b.reg >= 0 {
			aReg, bReg := a.reg, b.reg
			switch d.relMask {
			case 0b100: // <
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA < cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b110: // <=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA <= cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b010: // ==
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA == cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b101: // !=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA != cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b001: // >
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA > cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			case 0b011: // >=
				return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
					cmpA, cmpB = w[aReg], w[bReg]
					steps += stepCost
					if steps > m.maxSteps {
						return m.stepTrap(partial, fname)
					}
					if cmpA >= cmpB {
						m.counts[idTaken]++
						if takenFb != nil {
							return takenFb(m, w, cmpA, cmpB, true, steps)
						}
						return *takenp, w, cmpA, cmpB, true, steps
					}
					m.counts[idFall]++
					if fallFb != nil {
						return fallFb(m, w, cmpA, cmpB, true, steps)
					}
					return *fallp, w, cmpA, cmpB, true, steps
				}
			}
		}
		// Unusual operand shape or degenerate mask: mask-table body.
		ids, direct, slots := branchTables(d.relMask, idTaken, idFall, takenFb, fallFb, takenp, fallp)
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			cmpA, cmpB = a.val(w), b.val(w)
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			rs := 0
			if cmpA < cmpB {
				rs = 2
			} else if cmpA == cmpB {
				rs = 1
			}
			m.counts[ids[rs]]++
			if fb := direct[rs]; fb != nil {
				return fb(m, w, cmpA, cmpB, true, steps)
			}
			return *slots[rs], w, cmpA, cmpB, true, steps
		}
	}

	// Plain opBr: the relation tests the incoming condition codes.
	undefPartial := &pre
	switch d.relMask {
	case 0b100: // <
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA < cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	case 0b110: // <=
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA <= cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	case 0b010: // ==
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA == cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	case 0b101: // !=
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA != cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	case 0b001: // >
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA > cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	case 0b011: // >=
		return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
			if !flags {
				return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
			}
			steps += stepCost
			if steps > m.maxSteps {
				return m.stepTrap(partial, fname)
			}
			if cmpA >= cmpB {
				m.counts[idTaken]++
				if takenFb != nil {
					return takenFb(m, w, cmpA, cmpB, flags, steps)
				}
				return *takenp, w, cmpA, cmpB, flags, steps
			}
			m.counts[idFall]++
			if fallFb != nil {
				return fallFb(m, w, cmpA, cmpB, flags, steps)
			}
			return *fallp, w, cmpA, cmpB, flags, steps
		}
	}
	ids, direct, slots := branchTables(d.relMask, idTaken, idFall, takenFb, fallFb, takenp, fallp)
	return func(m *ClosureMachine, w []int64, cmpA, cmpB int64, flags bool, steps uint64) (blockFn, []int64, int64, int64, bool, uint64) {
		if !flags {
			return m.trap(undefPartial, fname, "conditional branch with undefined condition codes")
		}
		steps += stepCost
		if steps > m.maxSteps {
			return m.stepTrap(partial, fname)
		}
		rs := 0
		if cmpA < cmpB {
			rs = 2
		} else if cmpA == cmpB {
			rs = 1
		}
		m.counts[ids[rs]]++
		if fb := direct[rs]; fb != nil {
			return fb(m, w, cmpA, cmpB, flags, steps)
		}
		return *slots[rs], w, cmpA, cmpB, flags, steps
	}
}

// branchTables spreads a branch's two outcomes over the three relation
// selectors so the outcome is a table lookup instead of a mask test.
func branchTables(relMask uint8, idTaken, idFall int, takenFb, fallFb blockFn, takenp, fallp *blockFn) ([3]int, [3]blockFn, [3]*blockFn) {
	var ids [3]int
	var direct [3]blockFn
	var slots [3]*blockFn
	for rs := 0; rs < 3; rs++ {
		if relMask>>rs&1 != 0 {
			ids[rs], direct[rs], slots[rs] = idTaken, takenFb, takenp
		} else {
			ids[rs], direct[rs], slots[rs] = idFall, fallFb, fallp
		}
	}
	return ids, direct, slots
}
