package interp

import (
	"strings"
	"testing"

	"branchreorder/internal/ir"
)

// engineResult is everything observable about one execution, from either
// engine.
type engineResult struct {
	ret      int64
	err      string
	out      string
	stats    Stats
	branches []int64 // packed (id, taken) event stream
	profs    []int64 // packed (seq, sub, value) event stream
}

func runReference(p *ir.Program, input []byte, maxSteps uint64) engineResult {
	var r engineResult
	m := &Machine{Prog: p, Input: input, MaxSteps: maxSteps,
		OnBranch: func(id int, taken bool) {
			t := int64(0)
			if taken {
				t = 1
			}
			r.branches = append(r.branches, int64(id), t)
		},
		OnProf: func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}}
	ret, err := m.Run()
	r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	if err != nil {
		r.err = err.Error()
	}
	return r
}

func runFast(t *testing.T, p *ir.Program, input []byte, maxSteps uint64) engineResult {
	t.Helper()
	code, err := Decode(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var r engineResult
	m := &FastMachine{Code: code, Input: input, MaxSteps: maxSteps,
		OnBranch: func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		},
		OnProf: func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}}
	ret, err := m.Run()
	r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	if err != nil {
		r.err = err.Error()
	}
	return r
}

// checkEngines runs both engines on a program that must complete and
// demands full observable equality: return value, output, stats, branch
// and profile event streams.
func checkEngines(t *testing.T, name string, p *ir.Program, input []byte) {
	t.Helper()
	ref := runReference(p, input, 0)
	fast := runFast(t, p, input, 0)
	if ref.err != "" || fast.err != "" {
		t.Fatalf("%s: unexpected errors ref=%q fast=%q", name, ref.err, fast.err)
	}
	if ref.ret != fast.ret {
		t.Errorf("%s: ret ref=%d fast=%d", name, ref.ret, fast.ret)
	}
	if ref.out != fast.out {
		t.Errorf("%s: output ref=%q fast=%q", name, ref.out, fast.out)
	}
	if ref.stats != fast.stats {
		t.Errorf("%s: stats\nref:  %+v\nfast: %+v", name, ref.stats, fast.stats)
	}
	if !int64SlicesEqual(ref.branches, fast.branches) {
		t.Errorf("%s: branch event streams differ (%d vs %d events)",
			name, len(ref.branches)/2, len(fast.branches)/2)
	}
	if !int64SlicesEqual(ref.profs, fast.profs) {
		t.Errorf("%s: prof event streams differ", name)
	}
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countLoopProg is a call-heavy loop: main calls leaf() n times through
// a compare/branch loop with a real back-edge jump.
func countLoopProg(n int64) *ir.Program {
	p := &ir.Program{}
	leaf := &ir.Func{Name: "leaf", NParams: 1, NRegs: 2}
	lb := leaf.NewBlock()
	lb.Insts = []ir.Inst{{Op: ir.Add, Dst: 1, A: ir.R(0), B: ir.Imm(1)}}
	lb.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}

	mainFn := &ir.Func{Name: "main", NRegs: 1}
	entry := mainFn.NewBlock()
	head := mainFn.NewBlock()
	body := mainFn.NewBlock()
	exit := mainFn.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Mov, Dst: 0, A: ir.Imm(0)}}
	entry.Term = ir.Term{Kind: ir.TermGoto, Taken: head}
	head.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(n)}}
	head.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GE, Taken: exit, Next: body}
	body.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "leaf", Args: []ir.Operand{ir.R(0)}}}
	body.Term = ir.Term{Kind: ir.TermGoto, Taken: head}
	exit.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}

	p.Funcs = []*ir.Func{mainFn, leaf}
	p.Linearize()
	return p
}

// TestCallHeavyInstCounts pins the exact dynamic instruction accounting
// of a call-heavy run on both engines: the call instruction is charged
// exactly once (regression for the old Insts--/steps-- double-count
// workaround in exec).
func TestCallHeavyInstCounts(t *testing.T) {
	const n = 1000
	p := countLoopProg(n)
	// Per iteration: Call (1) + back-edge jump (1) + leaf Add (1) +
	// leaf Ret (1); per loop test: Cmp (1) + Br (1), run n+1 times;
	// plus Mov (1), main's Ret (1) and the synthetic call of main (1).
	// FillDelaySlots has not run, so every executed transfer (n+1
	// branches, n jumps, n+1 rets) charges one slot nop.
	want := Stats{
		Insts:         1 + 1 + (n+1)*2 + n*4 + 1,
		CondBranches:  n + 1,
		TakenBranches: 1,
		Jumps:         n,
		Calls:         1 + n,
		Cmps:          n + 1,
		SlotNops:      (n+1)*2 + n,
	}
	for _, eng := range []struct {
		name string
		run  func() engineResult
	}{
		{"reference", func() engineResult { return runReference(p, nil, 0) }},
		{"fast", func() engineResult { return runFast(t, p, nil, 0) }},
	} {
		r := eng.run()
		if r.err != "" {
			t.Fatalf("%s: %s", eng.name, r.err)
		}
		if r.ret != n {
			t.Errorf("%s: ret = %d, want %d", eng.name, r.ret, int64(n))
		}
		if r.stats != want {
			t.Errorf("%s: stats = %+v, want %+v", eng.name, r.stats, want)
		}
	}
}

func TestFastMatchesReferenceOnCompletedRuns(t *testing.T) {
	// An indirect-jump dispatcher: getchar picks a table entry.
	ijmp := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		b1 := f.NewBlock()
		b2 := f.NewBlock()
		entry.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 0}}
		entry.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.R(0), Targets: []*ir.Block{b1, b2}}
		b1.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(100)}
		b2.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(200)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}

	// Flags set by a Cmp in one block, consumed by branches in later
	// blocks (redundant-comparison reuse): the fused Cmp+Br must still
	// leave the condition codes behind.
	flagReuse := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		mid := f.NewBlock()
		yes := f.NewBlock()
		no := f.NewBlock()
		entry.Insts = []ir.Inst{
			{Op: ir.Mov, Dst: 0, A: ir.Imm(7)},
			{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(5)},
		}
		entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.LT, Taken: no, Next: mid}
		// mid re-branches on the same flags without a new Cmp.
		mid.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GT, Taken: yes, Next: no}
		yes.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(1)}
		no.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}

	// Nested calls with argument passing and profiling instrumentation.
	nested := func() *ir.Program {
		p := &ir.Program{}
		inner := &ir.Func{Name: "inner", NParams: 2, NRegs: 3}
		ib := inner.NewBlock()
		ib.Insts = []ir.Inst{
			{Op: ir.Mul, Dst: 2, A: ir.R(0), B: ir.R(1)},
			{Op: ir.Prof, SeqID: 1, Sub: 0, A: ir.R(2)},
		}
		ib.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(2)}
		outer := &ir.Func{Name: "outer", NParams: 1, NRegs: 2}
		ob := outer.NewBlock()
		ob.Insts = []ir.Inst{
			{Op: ir.Call, Dst: 1, Callee: "inner", Args: []ir.Operand{ir.R(0), ir.Imm(3)}},
			{Op: ir.PutInt, A: ir.R(1)},
			{Op: ir.PutChar, A: ir.Imm('\n')},
		}
		ob.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
		mainFn := &ir.Func{Name: "main", NRegs: 1}
		mb := mainFn.NewBlock()
		mb.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "outer", Args: []ir.Operand{ir.Imm(14)}}}
		mb.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
		p.Funcs = []*ir.Func{mainFn, outer, inner}
		p.Linearize()
		return p
	}

	cases := []struct {
		name  string
		prog  *ir.Program
		input string
	}{
		{"loop", countLoopProg(25), ""},
		{"ijmp0", ijmp(), "\x00"},
		{"ijmp1", ijmp(), "\x01"},
		{"flag-reuse", flagReuse(), ""},
		{"nested-calls", nested(), ""},
		{"io", binProg(ir.Add, 1, 2), "unread"},
	}
	for _, c := range cases {
		checkEngines(t, c.name, c.prog, []byte(c.input))
	}
}

// TestFastTrapParity demands the same runtime error text from both
// engines (stats at the trap point are allowed to differ — fast charges
// block-granularly).
func TestFastTrapParity(t *testing.T) {
	oobLoad := &ir.Program{MemSize: 2}
	f := &ir.Func{Name: "main", NRegs: 1}
	b := f.NewBlock()
	b.Insts = []ir.Inst{{Op: ir.Ld, Dst: 0, A: ir.Imm(5)}}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	oobLoad.Funcs = []*ir.Func{f}
	oobLoad.Linearize()

	oobIJmp := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		b1 := f.NewBlock()
		entry.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.Imm(7), Targets: []*ir.Block{b1}}
		b1.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	unknownCallee := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		b := f.NewBlock()
		b.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "nowhere"}}
		b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	undefFlags := func() *ir.Program {
		p := &ir.Program{}
		f := &ir.Func{Name: "main", NRegs: 1}
		entry := f.NewBlock()
		a := f.NewBlock()
		z := f.NewBlock()
		entry.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: a, Next: z}
		a.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(1)}
		z.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		p.Funcs = []*ir.Func{f}
		p.Linearize()
		return p
	}()

	cases := []struct {
		name string
		prog *ir.Program
		frag string
	}{
		{"div-zero", binProg(ir.Div, 1, 0), "division by zero"},
		{"rem-zero", binProg(ir.Rem, 1, 0), "remainder by zero"},
		{"oob-load", oobLoad, "load address 5 out of range"},
		{"oob-ijmp", oobIJmp, "indirect jump index 7 out of range [0,1)"},
		{"unknown-callee", unknownCallee, "call to unknown function nowhere"},
		{"undef-flags", undefFlags, "conditional branch with undefined condition codes"},
	}
	for _, c := range cases {
		ref := runReference(c.prog, nil, 0)
		fast := runFast(t, c.prog, nil, 0)
		if ref.err != fast.err {
			t.Errorf("%s: error ref=%q fast=%q", c.name, ref.err, fast.err)
		}
		if !strings.Contains(fast.err, c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, fast.err, c.frag)
		}
	}
}

// TestFastStepLimit verifies the fast engine enforces MaxSteps with the
// reference trap text. The abort point is block-granular, so only the
// error is compared.
func TestFastStepLimit(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	b := f.NewBlock()
	b.Term = ir.Term{Kind: ir.TermGoto, Taken: b}
	p.Funcs = []*ir.Func{f}
	p.Linearize()
	ref := runReference(p, nil, 500)
	fast := runFast(t, p, nil, 500)
	if ref.err != fast.err {
		t.Errorf("error ref=%q fast=%q", ref.err, fast.err)
	}
	if !strings.Contains(fast.err, "exceeded step limit 500") {
		t.Errorf("error %q", fast.err)
	}
}

// TestFastMachineReuse checks that re-running a FastMachine resets all
// execution state: two runs on the same machine are identical, and a
// second machine decoded from the same Code agrees.
func TestFastMachineReuse(t *testing.T) {
	p := countLoopProg(50)
	code, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	m := &FastMachine{Code: code, Input: []byte("abc")}
	r1, err1 := m.Run()
	out1 := m.Output.String()
	st1 := m.Stats
	r2, err2 := m.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if r1 != r2 || out1 != m.Output.String() || st1 != m.Stats {
		t.Errorf("second run diverged: ret %d vs %d, stats %+v vs %+v",
			r1, r2, st1, m.Stats)
	}
}

func TestFastRunErrors(t *testing.T) {
	noMain := &ir.Program{Funcs: []*ir.Func{{Name: "helper", NRegs: 1}}}
	noMain.Funcs[0].NewBlock().Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	noMain.Linearize()
	code, err := Decode(noMain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&FastMachine{Code: code}).Run(); err == nil ||
		!strings.Contains(err.Error(), "no main function") {
		t.Errorf("no-main error: %v", err)
	}

	badMain := &ir.Program{Funcs: []*ir.Func{{Name: "main", NParams: 1, NRegs: 1}}}
	badMain.Funcs[0].NewBlock().Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	badMain.Linearize()
	code, err = Decode(badMain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&FastMachine{Code: code}).Run(); err == nil ||
		!strings.Contains(err.Error(), "main must take no parameters") {
		t.Errorf("bad-main error: %v", err)
	}
}

// TestDecodeRejectsUnlinearized checks the decode-time guard for programs
// whose block order disagrees with their layout indices.
func TestDecodeRejectsUnlinearized(t *testing.T) {
	p := countLoopProg(1)
	p.Funcs[0].Blocks[1].LayoutIndex = 5
	if _, err := Decode(p); err == nil ||
		!strings.Contains(err.Error(), "not linearized") {
		t.Errorf("decode error: %v", err)
	}
}

// TestDecodeShape pins the structural properties the decoder promises:
// Cmp+Br fusion, adjacent-goto elision, block charges on terminators,
// and opEnter only for blocks whose terminator decodes away. Decoded
// unfused: superinstruction fusion is a separate pass with its own
// tests, and it would fold the opEnter+opMov prefix this test pins.
func TestDecodeShape(t *testing.T) {
	p := countLoopProg(3)
	code, err := DecodeWith(p, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mainFn *dfunc
	for i := range code.funcs {
		if code.funcs[i].name == "main" {
			mainFn = &code.funcs[i]
		}
	}
	counts := map[dop]int{}
	for i := range mainFn.code {
		counts[mainFn.code[i].op]++
	}
	// entry (Mov + elided goto) -> opEnter + opMov; head (Cmp + Br) ->
	// one fused opCmpBr; body (Call + back-edge goto) -> opCall + opJump;
	// exit -> opRet.
	want := map[dop]int{opEnter: 1, opMov: 1, opCmpBr: 1, opCall: 1, opJump: 1, opRet: 1}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("main decodes with %d of op %d, want %d (all: %v)", counts[op], op, n, counts)
		}
	}
	if counts[opCmp] != 0 || counts[opBr] != 0 {
		t.Errorf("Cmp+Br not fused: %v", counts)
	}
	// The back-edge opJump carries the body block's charge (the Call).
	for i := range mainFn.code {
		in := &mainFn.code[i]
		if in.op == opJump && (in.cost != 1 || in.stepCost != 0) {
			t.Errorf("back-edge jump carries cost=%d stepCost=%d, want 1/0 (the Call)",
				in.cost, in.stepCost)
		}
		if in.op == opCmpBr && (in.cost != 1 || in.stepCost != 1) {
			t.Errorf("fused branch carries cost=%d stepCost=%d, want 1/1 (the Cmp)",
				in.cost, in.stepCost)
		}
	}
}
