// Flat pre-decoding for the fast execution engine. Decode compiles a
// linearized ir.Program into contiguous per-function instruction arrays
// with every operand, branch target, call and jump-table entry resolved
// to array indices, so the run loop (fast.go) is a tight dispatch with
// no pointer chasing, no per-call name lookups, and no per-instruction
// cost bookkeeping.
//
// Decode rules:
//
//   - Blocks are decoded in layout order. A block's straight-line
//     instruction and step charges are precomputed and folded into its
//     terminator's cost/stepCost fields — every executed block reaches
//     its terminator, so Insts and the step budget are maintained
//     block-granularly with zero extra dispatches. A block whose
//     terminator decodes to nothing (an adjacent goto) instead opens
//     with one opEnter op carrying the charge, when it is non-zero.
//   - Nop decodes to nothing. Prof/ProfCond decode to zero-cost ops.
//   - A Cmp that is the last effective instruction of a block ending in
//     a conditional branch fuses with it into one opCmpBr: it still
//     sets the frame's condition codes (later branches may reuse them)
//     but costs one dispatch instead of two.
//   - A goto whose target is the physically following block decodes to
//     nothing — pure fall-through, exactly the adjacency rule the
//     reference interpreter applies dynamically. Any other goto decodes
//     to opJump with its dynamic cost and delay-slot effect precomputed.
//   - Conditional branches carry both successor PCs plus the SlotNops
//     charge for each outcome, precomputed from the terminator's
//     SlotFill.
//   - Calls resolve the callee to a function index at decode time; a
//     call to an unknown function decodes to a trap that reproduces the
//     reference interpreter's runtime error if (and only if) executed.
package interp

import (
	"fmt"

	"branchreorder/internal/ir"
)

// dop enumerates the decoded opcodes.
type dop uint8

const (
	opEnter dop = iota // charge the block's precomputed cost

	// Straight-line ops, cost already charged by opEnter.
	opMov
	opAdd
	opSub
	opMul
	opDiv
	opRem
	opAnd
	opOr
	opXor
	opShl
	opShr
	opNeg
	opNot
	opCmp
	opLd
	opSt
	opGetChar
	opPutChar
	opPutInt
	opCall
	opProf
	opProfCond

	// Control transfers, charging their own dynamic cost.
	opBr    // conditional branch
	opCmpBr // fused compare + conditional branch
	opJump  // real unconditional jump (non-adjacent goto)
	opIJmp  // indirect jump through a table
	opRet

	nBaseDop // count of unfused opcodes; fused superinstructions follow

	// Superinstructions: each replaces an adjacent in-block run of 2-5
	// ops. The fused opcode overwrites the run's FIRST dinst; the
	// remaining dinsts keep their full original contents and are read as
	// the operand/charge source by the fused dispatch case (which then
	// advances pc past the whole run, or performs the final op's
	// transfer). The curated set lives in fusedPatterns (superinst.go)
	// and is data-justified by the miner — see `brbench
	// -superinst-report`.
	opMovMov              // Mov ; Mov
	opMovAdd              // Mov ; Add
	opAddMov              // Add ; Mov
	opAddAdd              // Add ; Add
	opAddLd               // Add ; Ld
	opLdAdd               // Ld ; Add
	opAddSt               // Add ; St
	opStAdd               // St ; Add
	opPutCharAdd          // PutChar ; Add
	opSubMov              // Sub ; Mov
	opEnterMov            // Enter ; Mov
	opAddCmpBr            // Add ; CmpBr
	opLdCmpBr             // Ld ; CmpBr
	opStCmpBr             // St ; CmpBr
	opMovCmpBr            // Mov ; CmpBr
	opGetCharCmpBr        // GetChar ; CmpBr
	opXorCmpBr            // Xor ; CmpBr
	opShlCmpBr            // Shl ; CmpBr
	opMovJump             // Mov ; Jump
	opAddJump             // Add ; Jump
	opLdCall              // Ld ; Call
	opLdAddSt             // Ld ; Add ; St
	opAddLdAdd            // Add ; Ld ; Add
	opAddLdCmpBr          // Add ; Ld ; CmpBr
	opAddLdCall           // Add ; Ld ; Call
	opAddMovJump          // Add ; Mov ; Jump
	opStAddMov            // St ; Add ; Mov
	opPutCharAddJump      // PutChar ; Add ; Jump
	opStMovJump           // St ; Mov ; Jump
	opMovAddMov           // Mov ; Add ; Mov
	opEnterMovMov         // Enter ; Mov ; Mov
	opLdAddStCmpBr        // Ld ; Add ; St ; CmpBr
	opAddLdAddLd          // Add ; Ld ; Add ; Ld
	opStSub               // St ; Sub
	opMovAddMovCmpBr      // Mov ; Add ; Mov ; CmpBr
	opAddLdAddLdCall      // Add ; Ld ; Add ; Ld ; Call
	opAddAddAddLdSt       // Add ; Add ; Add ; Ld ; St
	opPcOrShlPcJump       // ProfCond ; Or ; Shl ; ProfCond ; Jump
	opLdAddStMovJump      // Ld ; Add ; St ; Mov ; Jump
	opCmpMulCmpAndBr      // Cmp ; Mul ; Cmp ; And ; Br
	opSubMovJump          // Sub ; Mov ; Jump
	opLdAddStJump         // Ld ; Add ; St ; Jump
	opStAddMovJump        // St ; Add ; Mov ; Jump
	opAddLdAddLdCmpBr     // Add ; Ld ; Add ; Ld ; CmpBr
	opAddLdPutCharAddJump // Add ; Ld ; PutChar ; Add ; Jump
)

// darg is a resolved operand: a register index, or an immediate when
// reg is negative.
type darg struct {
	imm int64
	reg int32
}

// val reads the operand against a register window. Small enough to
// inline into the dispatch loop.
func (a darg) val(win []int64) int64 {
	if a.reg < 0 {
		return a.imm
	}
	return win[a.reg]
}

func decodeArg(o ir.Operand) darg {
	if o.IsImm {
		return darg{imm: o.Imm, reg: -1}
	}
	return darg{reg: int32(o.Reg)}
}

// dinst is one decoded instruction. Rarely-populated payloads (call
// argument lists, jump tables) live in side tables on dfunc, keeping
// the hot array compact.
type dinst struct {
	op        dop
	slotTaken uint8 // SlotNops charged on the taken/only path
	slotFall  uint8 // SlotNops charged on the fall-through path
	relMask   uint8 // relTruth[Rel]: branch/ProfCond relation, pre-encoded
	dst       int32
	a, b      darg
	t1        int32 // branch taken PC; jump target PC; call/table index
	t2        int32 // branch fall-through PC
	branchID  int32
	cost      uint32 // opEnter: block Insts charge
	stepCost  uint32 // opEnter: block step-budget charge
	seqID     int32
	sub       int32
}

// dcall is the side-table payload of one call site.
type dcall struct {
	fn   int32 // callee function index; -1 for an unknown callee
	dst  int32 // caller result register; -1 when discarded
	args []darg
	name string // callee name, for the unknown-callee trap
}

// dfunc is one decoded function. blockStart maps each block's layout
// index to its first PC (with one extra sentinel entry at len(code));
// the fusion pass and the pattern miner use it to bound in-block runs,
// and it is what structurally prevents fusing across a block boundary:
// every branch, jump and jump-table target is a block start, so no
// transfer can land on the hidden second half of a fused pair.
type dfunc struct {
	name       string
	nParams    int
	nRegs      int
	code       []dinst
	calls      []dcall
	tables     [][]int32
	blockStart []int32
}

// Code is a whole program compiled for the fast engine. A Code is
// immutable after Decode and safe for concurrent FastMachines. The
// closure engine's compiled variants (compile.go) are cached here
// lazily under closOnce, so a Code stays safe for concurrent
// ClosureMachines too.
type Code struct {
	prog  *ir.Program
	funcs []dfunc
	main  int

	closOnce closOncePair
	clos     [2]*compiledProg // plain, hooked
}

// Prog returns the program the code was decoded from.
func (c *Code) Prog() *ir.Program { return c.prog }

// DecodeOptions configures Decode.
type DecodeOptions struct {
	// Fuse enables superinstruction fusion: curated adjacent-op runs
	// within a block collapse into single dispatch ops. Execution is
	// observably identical either way (same Stats, output, traps and
	// event streams); the escape hatch exists so differential debugging
	// can bisect fused vs unfused execution (`brbench -no-fuse`).
	Fuse bool
}

// Decode compiles a linearized program for the fast engine with the
// default options (superinstruction fusion on). It fails if any
// function's block slice disagrees with its layout indices (i.e.
// Program.Linearize has not run since the last CFG change); everything
// else the reference interpreter would only trap on at runtime decodes
// to an equivalent runtime trap.
func Decode(p *ir.Program) (*Code, error) {
	return DecodeWith(p, DecodeOptions{Fuse: true})
}

// DecodeWith compiles a linearized program with explicit options.
func DecodeWith(p *ir.Program, opts DecodeOptions) (*Code, error) {
	c := &Code{prog: p, main: -1}
	idx := make(map[string]int32, len(p.Funcs))
	for i, f := range p.Funcs {
		idx[f.Name] = int32(i)
		if f.Name == "main" {
			c.main = i
		}
	}
	c.funcs = make([]dfunc, len(p.Funcs))
	for i, f := range p.Funcs {
		if err := decodeFunc(&c.funcs[i], f, idx); err != nil {
			return nil, fmt.Errorf("interp: decode %s: %w", f.Name, err)
		}
		if opts.Fuse {
			fuseFunc(&c.funcs[i])
		}
	}
	return c, nil
}

// fuseFunc rewrites each block's decoded run with the curated
// superinstruction set: a greedy left-to-right, longest-match-first
// scan that, on a hit, overwrites the first dinst's opcode with the
// fused one and skips past the matched run (no overlap, one fusion
// level). All dinst slots stay in place, so block-start PCs, branch
// targets and the terminator's block-granular charges are untouched by
// construction.
func fuseFunc(df *dfunc) {
	for bi := 0; bi+1 < len(df.blockStart); bi++ {
		lo, hi := int(df.blockStart[bi]), int(df.blockStart[bi+1])
		for i := lo; i+1 < hi; {
			a, b := df.code[i].op, df.code[i+1].op
			if fuseLonger[a][b] {
				matched := false
				for n := maxFuseLen; n > 2; n-- {
					if i+n > hi {
						continue
					}
					g := gram{n: uint8(n)}
					for k := 0; k < n; k++ {
						g.ops[k] = df.code[i+k].op
					}
					if fop, ok := fuseLookup[g]; ok {
						df.code[i].op = fop
						i += n
						matched = true
						break
					}
				}
				if matched {
					continue
				}
			}
			if fop := fuseTable[a][b]; fop != 0 {
				df.code[i].op = fop
				i += 2
			} else {
				i++
			}
		}
	}
}

// stepCostOf is the per-instruction step-budget charge: ordinary
// instructions cost 1; calls charge the instruction count but not the
// step budget (the callee's own execution bounds the run), matching the
// reference interpreter; instrumentation and nops are free.
func instCharges(in *ir.Inst) (insts, steps uint32) {
	switch in.Op {
	case ir.Prof, ir.ProfCond, ir.Nop:
		return 0, 0
	case ir.Call:
		return 1, 0
	default:
		return 1, 1
	}
}

// fusesCmpBr reports whether block b ends with a Cmp that can fuse into
// its conditional branch: the Cmp must be the last effective (non-Nop)
// instruction, so nothing observable happens between it and the branch.
func fusesCmpBr(b *ir.Block) bool {
	if b.Term.Kind != ir.TermBr {
		return false
	}
	for i := len(b.Insts) - 1; i >= 0; i-- {
		switch b.Insts[i].Op {
		case ir.Nop:
			continue
		case ir.Cmp:
			return true
		default:
			return false
		}
	}
	return false
}

// elidesTerm reports whether block b's terminator decodes to nothing: a
// goto whose target is the physically following block.
func elidesTerm(b *ir.Block) bool {
	return b.Term.Kind == ir.TermGoto && b.Term.Taken.LayoutIndex == b.LayoutIndex+1
}

// decodedLen returns how many dinsts block b emits.
func decodedLen(b *ir.Block) int {
	n := 0
	var insts uint32
	for i := range b.Insts {
		in := &b.Insts[i]
		if in.Op == ir.Nop {
			continue
		}
		n++
		ic, _ := instCharges(in)
		insts += ic
	}
	if elidesTerm(b) {
		if insts > 0 {
			n++ // opEnter carries the block charge
		}
	} else {
		n++ // the terminator carries the block charge
	}
	if fusesCmpBr(b) {
		n-- // the Cmp merges into its branch
	}
	return n
}

// slotNop is the delay-slot charge of an unconditional transfer.
func slotNop(s ir.SlotFill) uint8 {
	if s != ir.SlotAlways {
		return 1
	}
	return 0
}

// brSlots precomputes a conditional branch's SlotNops charge per
// outcome, from the reference interpreter's accounting.
func brSlots(s ir.SlotFill) (taken, fall uint8) {
	switch s {
	case ir.SlotAlways:
		return 0, 0
	case ir.SlotFallthru:
		return 1, 0
	case ir.SlotTaken:
		return 0, 1
	default:
		return 1, 1
	}
}

func decodeFunc(df *dfunc, f *ir.Func, idx map[string]int32) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function has no blocks")
	}
	for i, b := range f.Blocks {
		if b.LayoutIndex != i {
			return fmt.Errorf("block %d has layout index %d: program is not linearized", i, b.LayoutIndex)
		}
	}
	df.name = f.Name
	df.nParams = f.NParams
	df.nRegs = f.NRegs

	start := make([]int32, len(f.Blocks)+1)
	total := 0
	for i, b := range f.Blocks {
		start[i] = int32(total)
		total += decodedLen(b)
	}
	start[len(f.Blocks)] = int32(total)
	df.blockStart = start

	df.code = make([]dinst, 0, total)
	for bi, b := range f.Blocks {
		var insts, steps uint32
		for i := range b.Insts {
			ic, sc := instCharges(&b.Insts[i])
			insts += ic
			steps += sc
		}
		if elidesTerm(b) && insts > 0 {
			df.code = append(df.code, dinst{op: opEnter, cost: insts, stepCost: steps})
		}
		fused := fusesCmpBr(b)
		last := -1
		if fused {
			for i := len(b.Insts) - 1; i >= 0; i-- {
				if b.Insts[i].Op == ir.Cmp {
					last = i
					break
				}
			}
		}
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == ir.Nop || i == last {
				continue
			}
			d, err := decodeInst(df, in, idx)
			if err != nil {
				return err
			}
			df.code = append(df.code, d)
		}
		t := &b.Term
		switch t.Kind {
		case ir.TermGoto:
			if t.Taken.LayoutIndex != b.LayoutIndex+1 {
				df.code = append(df.code, dinst{
					op:        opJump,
					t1:        start[t.Taken.LayoutIndex],
					slotTaken: slotNop(t.Slot),
					cost:      insts,
					stepCost:  steps,
				})
			}
		case ir.TermBr:
			st, sf := brSlots(t.Slot)
			d := dinst{
				op:        opBr,
				relMask:   relTruth[t.Rel],
				t1:        start[t.Taken.LayoutIndex],
				t2:        start[t.Next.LayoutIndex],
				branchID:  int32(t.BranchID),
				slotTaken: st,
				slotFall:  sf,
				cost:      insts,
				stepCost:  steps,
			}
			if fused {
				cmp := &b.Insts[last]
				d.op = opCmpBr
				d.a = decodeArg(cmp.A)
				d.b = decodeArg(cmp.B)
			}
			df.code = append(df.code, d)
		case ir.TermIJmp:
			tbl := make([]int32, len(t.Targets))
			for i, tgt := range t.Targets {
				tbl[i] = start[tgt.LayoutIndex]
			}
			df.code = append(df.code, dinst{
				op:        opIJmp,
				a:         decodeArg(t.Index),
				t1:        int32(len(df.tables)),
				slotTaken: slotNop(t.Slot),
				cost:      insts,
				stepCost:  steps,
			})
			df.tables = append(df.tables, tbl)
		case ir.TermRet:
			df.code = append(df.code, dinst{
				op:        opRet,
				a:         decodeArg(t.Val),
				slotTaken: slotNop(t.Slot),
				cost:      insts,
				stepCost:  steps,
			})
		}
		if int(start[bi+1]) != len(df.code) {
			return fmt.Errorf("block %d decoded to %d instructions, expected %d",
				bi, len(df.code)-int(start[bi]), start[bi+1]-start[bi])
		}
	}
	return nil
}

func decodeInst(df *dfunc, in *ir.Inst, idx map[string]int32) (dinst, error) {
	d := dinst{dst: int32(in.Dst), a: decodeArg(in.A), b: decodeArg(in.B)}
	switch in.Op {
	case ir.Mov:
		d.op = opMov
	case ir.Add:
		d.op = opAdd
	case ir.Sub:
		d.op = opSub
	case ir.Mul:
		d.op = opMul
	case ir.Div:
		d.op = opDiv
	case ir.Rem:
		d.op = opRem
	case ir.And:
		d.op = opAnd
	case ir.Or:
		d.op = opOr
	case ir.Xor:
		d.op = opXor
	case ir.Shl:
		d.op = opShl
	case ir.Shr:
		d.op = opShr
	case ir.Neg:
		d.op = opNeg
	case ir.Not:
		d.op = opNot
	case ir.Cmp:
		d.op = opCmp
	case ir.Ld:
		d.op = opLd
	case ir.St:
		d.op = opSt
	case ir.GetChar:
		d.op = opGetChar
	case ir.PutChar:
		d.op = opPutChar
	case ir.PutInt:
		d.op = opPutInt
	case ir.Prof:
		d.op = opProf
		d.seqID, d.sub = int32(in.SeqID), int32(in.Sub)
	case ir.ProfCond:
		d.op = opProfCond
		d.relMask = relTruth[in.Rel]
		d.seqID, d.sub = int32(in.SeqID), int32(in.Sub)
	case ir.Call:
		d.op = opCall
		d.t1 = int32(len(df.calls))
		fn, ok := idx[in.Callee]
		if !ok {
			fn = -1 // traps at runtime, like the reference interpreter
		}
		args := make([]darg, len(in.Args))
		for i, a := range in.Args {
			args[i] = decodeArg(a)
		}
		dst := int32(in.Dst)
		if in.Dst == ir.NoReg {
			dst = -1
		}
		df.calls = append(df.calls, dcall{fn: fn, dst: dst, args: args, name: in.Callee})
	default:
		return d, fmt.Errorf("unknown opcode %v", in.Op)
	}
	return d, nil
}
