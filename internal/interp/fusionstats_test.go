package interp_test

// External test package: these tests compile workloads through the full
// pipeline, which imports interp — an import cycle for in-package tests
// but not for interp_test.

import (
	"reflect"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

func frontendProg(t *testing.T, name string) (*lower.Result, workload.Workload) {
	t.Helper()
	var w workload.Workload
	for _, c := range workload.All() {
		if c.Name == name {
			w = c
		}
	}
	if w.Name == "" {
		t.Fatalf("workload %q not in roster", name)
	}
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return front, w
}

// TestFusionStatsWC pins the exact static fusion report of the wc
// workload. The numbers move only when the curated pattern set or wc's
// compiled shape changes; when they do, re-pin deliberately — the test
// exists so fusion coverage cannot silently rot.
func TestFusionStatsWC(t *testing.T) {
	front, _ := frontendProg(t, "wc")
	code, err := interp.Decode(front.Prog)
	if err != nil {
		t.Fatal(err)
	}
	got := code.FusionStats()
	want := interp.FusionStats{
		Ops:    33,
		Fused:  6,
		Inside: 19,
		Patterns: map[string]int{
			"enter+mov":          1, // prologue constant setup
			"getchar+cmpbr":      1, // the EOF-tested read at the loop head
			"ld+add+st+cmpbr":    1, // char-count bump feeding the space test
			"ld+add+st+jump":     1, // line-count bump on the newline arm
			"ld+add+st+mov+jump": 1, // word-count bump plus state reset
			"mov+jump":           1, // in-word state propagation
		},
	}
	if got.Ops != want.Ops || got.Fused != want.Fused || got.Inside != want.Inside ||
		!reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Errorf("wc fusion stats:\ngot:  %+v\nwant: %+v", got, want)
	}

	// The unfused decode of the same program must report all zeroes.
	unfused, err := interp.DecodeWith(front.Prog, interp.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fs := unfused.FusionStats(); fs.Fused != 0 || fs.Inside != 0 || fs.Patterns != nil {
		t.Errorf("unfused decode reports fusion: %+v", fs)
	}
}

// TestRosterFusedUnfusedIdentical runs every roster workload on its test
// input through the fused and unfused decodes and demands identical
// observable results — the whole-program form of the per-seed check the
// differential suite applies to random CFGs.
func TestRosterFusedUnfusedIdentical(t *testing.T) {
	all := workload.All()
	if testing.Short() {
		all = all[:4]
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := interp.Decode(front.Prog)
			if err != nil {
				t.Fatal(err)
			}
			unfused, err := interp.DecodeWith(front.Prog, interp.DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fm := &interp.FastMachine{Code: fused, Input: w.Test()}
			fret, ferr := fm.Run()
			um := &interp.FastMachine{Code: unfused, Input: w.Test()}
			uret, uerr := um.Run()
			if (ferr == nil) != (uerr == nil) || (ferr != nil && ferr.Error() != uerr.Error()) {
				t.Fatalf("errors differ: fused=%v unfused=%v", ferr, uerr)
			}
			if fret != uret {
				t.Errorf("ret fused=%d unfused=%d", fret, uret)
			}
			if fm.Output.String() != um.Output.String() {
				t.Errorf("output differs (%d vs %d bytes)", fm.Output.Len(), um.Output.Len())
			}
			if fm.Stats != um.Stats {
				t.Errorf("stats differ:\nfused:   %+v\nunfused: %+v", fm.Stats, um.Stats)
			}
		})
	}
}
