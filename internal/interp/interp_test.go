package interp

import (
	"strings"
	"testing"

	"branchreorder/internal/ir"
)

// one-block main returning the result of a single binary op.
func binProg(op ir.Op, a, b int64) *ir.Program {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	blk := f.NewBlock()
	blk.Insts = []ir.Inst{{Op: op, Dst: 0, A: ir.Imm(a), B: ir.Imm(b)}}
	blk.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	p.Linearize()
	return p
}

func runRet(t *testing.T, p *ir.Program, input string) int64 {
	t.Helper()
	m := &Machine{Prog: p, Input: []byte(input)}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ret
}

func TestArithmeticOpcodes(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b int64
		want int64
	}{
		{ir.Add, 3, 4, 7},
		{ir.Sub, 3, 4, -1},
		{ir.Mul, -3, 4, -12},
		{ir.Div, 7, 2, 3},
		{ir.Div, -7, 2, -3}, // C-style truncation
		{ir.Rem, 7, 3, 1},
		{ir.Rem, -7, 3, -1},
		{ir.And, 6, 3, 2},
		{ir.Or, 6, 3, 7},
		{ir.Xor, 6, 3, 5},
		{ir.Shl, 1, 10, 1024},
		{ir.Shr, -8, 1, -4}, // arithmetic shift
	}
	for _, c := range cases {
		if got := runRet(t, binProg(c.op, c.a, c.b), ""); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryAndMov(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 3}
	p.Funcs = append(p.Funcs, f)
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Mov, Dst: 0, A: ir.Imm(5)},
		{Op: ir.Neg, Dst: 1, A: ir.R(0)},
		{Op: ir.Not, Dst: 2, A: ir.R(1)},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(2)}
	p.Linearize()
	if got := runRet(t, p, ""); got != 4 { // ^(-5) == 4
		t.Errorf("got %d, want 4", got)
	}
}

func TestTraps(t *testing.T) {
	traps := []struct {
		name string
		prog *ir.Program
	}{
		{"div by zero", binProg(ir.Div, 1, 0)},
		{"rem by zero", binProg(ir.Rem, 1, 0)},
	}
	for _, tt := range traps {
		m := &Machine{Prog: tt.prog}
		if _, err := m.Run(); err == nil {
			t.Errorf("%s: no error", tt.name)
		} else if _, ok := err.(*RuntimeError); !ok {
			t.Errorf("%s: error type %T", tt.name, err)
		}
	}
}

func TestMemoryAndBounds(t *testing.T) {
	p := &ir.Program{MemSize: 4}
	p.Globals = append(p.Globals, &ir.Global{Name: "g", Addr: 0, Size: 4, Init: []int64{10, 20}})
	f := &ir.Func{Name: "main", NRegs: 2}
	p.Funcs = append(p.Funcs, f)
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Ld, Dst: 0, A: ir.Imm(1)},     // 20
		{Op: ir.St, A: ir.Imm(2), B: ir.R(0)}, // g[2] = 20
		{Op: ir.Ld, Dst: 1, A: ir.Imm(2)},     // 20
		{Op: ir.Add, Dst: 0, A: ir.R(0), B: ir.R(1)},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	p.Linearize()
	if got := runRet(t, p, ""); got != 40 {
		t.Errorf("got %d, want 40", got)
	}

	// Out-of-bounds load traps.
	bad := &ir.Program{MemSize: 2}
	f2 := &ir.Func{Name: "main", NRegs: 1}
	bad.Funcs = append(bad.Funcs, f2)
	b2 := f2.NewBlock()
	b2.Insts = []ir.Inst{{Op: ir.Ld, Dst: 0, A: ir.Imm(5)}}
	b2.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	bad.Linearize()
	m := &Machine{Prog: bad}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "load address") {
		t.Errorf("OOB load: %v", err)
	}
}

func TestIOAndEOF(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 2}
	p.Funcs = append(p.Funcs, f)
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 0},
		{Op: ir.PutChar, A: ir.R(0)},
		{Op: ir.GetChar, Dst: 1}, // EOF
		{Op: ir.PutInt, A: ir.R(1)},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
	p.Linearize()
	m := &Machine{Prog: p, Input: []byte("Z")}
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != -1 {
		t.Errorf("second getchar = %d, want -1", ret)
	}
	if m.Output.String() != "Z-1" {
		t.Errorf("output %q, want %q", m.Output.String(), "Z-1")
	}
}

func TestCallSemanticsAndCounts(t *testing.T) {
	p := &ir.Program{}
	callee := &ir.Func{Name: "inc", NParams: 1, NRegs: 2}
	cb := callee.NewBlock()
	cb.Insts = []ir.Inst{{Op: ir.Add, Dst: 1, A: ir.R(0), B: ir.Imm(1)}}
	cb.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(1)}
	mainFn := &ir.Func{Name: "main", NRegs: 1}
	mb := mainFn.NewBlock()
	mb.Insts = []ir.Inst{{Op: ir.Call, Dst: 0, Callee: "inc", Args: []ir.Operand{ir.Imm(41)}}}
	mb.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	p.Funcs = []*ir.Func{mainFn, callee}
	p.Linearize()

	m := &Machine{Prog: p}
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("got %d, want 42", ret)
	}
	// main's call (1) + inc's add (1) + inc's ret (1) + main's ret (1)
	// + the implicit call of main itself (1) = 5.
	if m.Stats.Insts != 5 {
		t.Errorf("Insts = %d, want 5", m.Stats.Insts)
	}
	if m.Stats.Calls != 2 { // main + inc
		t.Errorf("Calls = %d, want 2", m.Stats.Calls)
	}
}

func TestStepLimit(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	b := f.NewBlock()
	b.Term = ir.Term{Kind: ir.TermGoto, Taken: b} // infinite loop
	p.Linearize()
	m := &Machine{Prog: p, MaxSteps: 1000}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("step limit not enforced: %v", err)
	}
}

func TestBranchAccountingAndHook(t *testing.T) {
	// for (i = 0; i < 5; i++) {} — one branch per iteration + exit.
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Mov, Dst: 0, A: ir.Imm(0)}}
	entry.Term = ir.Term{Kind: ir.TermGoto, Taken: head}
	head.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(0), B: ir.Imm(5)}}
	head.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GE, Taken: exit, Next: body}
	body.Insts = []ir.Inst{{Op: ir.Add, Dst: 0, A: ir.R(0), B: ir.Imm(1)}}
	body.Term = ir.Term{Kind: ir.TermGoto, Taken: head}
	exit.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	p.Linearize()

	var events []bool
	m := &Machine{Prog: p, OnBranch: func(id int, taken bool) { events = append(events, taken) }}
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 5 {
		t.Fatalf("ret = %d", ret)
	}
	if m.Stats.CondBranches != 6 {
		t.Errorf("CondBranches = %d, want 6", m.Stats.CondBranches)
	}
	if m.Stats.TakenBranches != 1 {
		t.Errorf("TakenBranches = %d, want 1 (the exit)", m.Stats.TakenBranches)
	}
	if len(events) != 6 || !events[5] {
		t.Errorf("branch hook events = %v", events)
	}
	// The back-edge goto is a real jump each iteration.
	if m.Stats.Jumps == 0 {
		t.Error("loop back-edge jumps not counted")
	}
}

func TestProfHookAndZeroCost(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	b := f.NewBlock()
	b.Insts = []ir.Inst{
		{Op: ir.Mov, Dst: 0, A: ir.Imm(7)},
		{Op: ir.Prof, SeqID: 3, A: ir.R(0)},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(0)}
	p.Linearize()

	var gotSeq int
	var gotVal int64
	m := &Machine{Prog: p, OnProf: func(seq, sub int, v int64) { gotSeq, gotVal = seq, v }}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if gotSeq != 3 || gotVal != 7 {
		t.Errorf("prof hook got (%d,%d), want (3,7)", gotSeq, gotVal)
	}
	if m.Stats.ProfHits != 1 {
		t.Errorf("ProfHits = %d", m.Stats.ProfHits)
	}
	// mov + ret + call-of-main = 3; Prof costs nothing.
	if m.Stats.Insts != 3 {
		t.Errorf("Insts = %d, want 3 (Prof must be free)", m.Stats.Insts)
	}
}

func TestIJmpCostAndDispatch(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	entry := f.NewBlock()
	t0 := f.NewBlock()
	t1 := f.NewBlock()
	entry.Insts = []ir.Inst{{Op: ir.Mov, Dst: 0, A: ir.Imm(1)}}
	entry.Term = ir.Term{Kind: ir.TermIJmp, Index: ir.R(0), Targets: []*ir.Block{t0, t1}}
	t0.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(100)}
	t1.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(200)}
	p.Linearize()

	m := &Machine{Prog: p}
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 200 {
		t.Errorf("dispatched to %d, want 200", ret)
	}
	if m.Stats.IndirectJumps != 1 {
		t.Errorf("IndirectJumps = %d", m.Stats.IndirectJumps)
	}
	// call + mov + ijmp(3) + ret = 6 under the default cost model.
	if m.Stats.Insts != 6 {
		t.Errorf("Insts = %d, want 6", m.Stats.Insts)
	}

	// Out-of-range index traps.
	entry.Insts[0].A = ir.Imm(7)
	m2 := &Machine{Prog: p}
	if _, err := m2.Run(); err == nil {
		t.Error("out-of-range indirect jump did not trap")
	}
}

func TestMissingMain(t *testing.T) {
	p := &ir.Program{}
	m := &Machine{Prog: p}
	if _, err := m.Run(); err == nil {
		t.Error("program without main ran")
	}
	f := &ir.Func{Name: "main", NParams: 1, NRegs: 1}
	b := f.NewBlock()
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	p.Funcs = append(p.Funcs, f)
	p.Linearize()
	m = &Machine{Prog: p}
	if _, err := m.Run(); err == nil {
		t.Error("main with parameters ran")
	}
}

func TestFallthroughGotoIsFree(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	a := f.NewBlock()
	b := f.NewBlock()
	a.Term = ir.Term{Kind: ir.TermGoto, Taken: b}
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
	p.Linearize()
	m := &Machine{Prog: p}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Jumps != 0 {
		t.Errorf("adjacent goto counted as a jump (%d)", m.Stats.Jumps)
	}
	// call + ret only.
	if m.Stats.Insts != 2 {
		t.Errorf("Insts = %d, want 2", m.Stats.Insts)
	}
}
