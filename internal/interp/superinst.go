// Superinstruction support: the curated fusion pattern table applied by
// Decode, the structured fusion report (Code.FusionStats), and the
// pattern miner behind `brbench -superinst-report` that justifies the
// curated set from measured dynamic frequency — profile-guided
// optimization applied to the measurement loop itself.
package interp

import (
	"sort"

	"branchreorder/internal/ir"
)

// maxFuseLen is the longest curated pattern. The in-place fusion scheme
// supports any length: the fused opcode overwrites the run's first
// dinst, slots 1..n-1 keep their full original contents as the
// operand/charge source, and the dispatch case advances past all n (or
// performs the final op's transfer).
const maxFuseLen = 5

// fusedPattern is one curated superinstruction: the adjacent in-block
// opcode run seq collapses into the single dispatch op.
type fusedPattern struct {
	op  dop
	seq []dop
}

// fusedPatterns is the curated set. Selection is data-justified: these
// are the highest-weight dynamic runs mined from the 17-workload roster
// plus 40 random CFGs (`brbench -superinst-report`), with one
// structural restriction: Call may only be a pattern's final op,
// because execution resumes at the op after the call site and a return
// landing mid-pattern would skip the fused prefix. ProfCond may fuse —
// the fused body replicates the hook call at its original position in
// the effect order. Longer patterns shadow their prefixes in the greedy
// scan, so e.g. ld+add+st+cmpbr (the counter idiom `g[i]++` followed by
// a loop test) wins over ld+add where both apply.
var fusedPatterns = []fusedPattern{
	// Straight pairs.
	{opMovMov, []dop{opMov, opMov}},
	{opMovAdd, []dop{opMov, opAdd}},
	{opAddMov, []dop{opAdd, opMov}},
	{opAddAdd, []dop{opAdd, opAdd}},
	{opAddLd, []dop{opAdd, opLd}},
	{opLdAdd, []dop{opLd, opAdd}},
	{opAddSt, []dop{opAdd, opSt}},
	{opStAdd, []dop{opSt, opAdd}},
	{opPutCharAdd, []dop{opPutChar, opAdd}},
	{opSubMov, []dop{opSub, opMov}},
	{opEnterMov, []dop{opEnter, opMov}},
	// Compare-and-branch tails.
	{opAddCmpBr, []dop{opAdd, opCmpBr}},
	{opLdCmpBr, []dop{opLd, opCmpBr}},
	{opStCmpBr, []dop{opSt, opCmpBr}},
	{opMovCmpBr, []dop{opMov, opCmpBr}},
	{opGetCharCmpBr, []dop{opGetChar, opCmpBr}},
	{opXorCmpBr, []dop{opXor, opCmpBr}},
	{opShlCmpBr, []dop{opShl, opCmpBr}},
	// Jump tails.
	{opMovJump, []dop{opMov, opJump}},
	{opAddJump, []dop{opAdd, opJump}},
	// Call tail: the call is the final slot, so the saved return PC is
	// simply the end of the whole fused run.
	{opLdCall, []dop{opLd, opCall}},
	{opStSub, []dop{opSt, opSub}},
	// Triples.
	{opLdAddSt, []dop{opLd, opAdd, opSt}},
	{opAddLdAdd, []dop{opAdd, opLd, opAdd}},
	{opAddLdCmpBr, []dop{opAdd, opLd, opCmpBr}},
	{opAddLdCall, []dop{opAdd, opLd, opCall}},
	{opAddMovJump, []dop{opAdd, opMov, opJump}},
	{opStAddMov, []dop{opSt, opAdd, opMov}},
	{opPutCharAddJump, []dop{opPutChar, opAdd, opJump}},
	{opStMovJump, []dop{opSt, opMov, opJump}},
	{opMovAddMov, []dop{opMov, opAdd, opMov}},
	{opEnterMovMov, []dop{opEnter, opMov, opMov}},
	// Quads and quints: whole-idiom runs — counter increment + loop
	// test, the sort inner comparison (two indexed loads feeding a
	// compare call, then its result consumed), and wc's instrumented
	// bit-accumulator and classifier blocks.
	{opLdAddStCmpBr, []dop{opLd, opAdd, opSt, opCmpBr}},
	{opAddLdAddLd, []dop{opAdd, opLd, opAdd, opLd}},
	{opMovAddMovCmpBr, []dop{opMov, opAdd, opMov, opCmpBr}},
	{opAddLdAddLdCall, []dop{opAdd, opLd, opAdd, opLd, opCall}},
	{opAddAddAddLdSt, []dop{opAdd, opAdd, opAdd, opLd, opSt}},
	{opPcOrShlPcJump, []dop{opProfCond, opOr, opShl, opProfCond, opJump}},
	{opLdAddStMovJump, []dop{opLd, opAdd, opSt, opMov, opJump}},
	{opCmpMulCmpAndBr, []dop{opCmp, opMul, opCmp, opAnd, opBr}},
	// The tails and whole-blocks the block dump shows are still
	// multi-dispatch after the patterns above: sort's swap-and-advance
	// and putchar loops, its index-increment guard, and wc's line-count
	// update on the less-travelled arm.
	{opSubMovJump, []dop{opSub, opMov, opJump}},
	{opLdAddStJump, []dop{opLd, opAdd, opSt, opJump}},
	{opStAddMovJump, []dop{opSt, opAdd, opMov, opJump}},
	{opAddLdAddLdCmpBr, []dop{opAdd, opLd, opAdd, opLd, opCmpBr}},
	{opAddLdPutCharAddJump, []dop{opAdd, opLd, opPutChar, opAdd, opJump}},
}

// fuseTable maps an adjacent base-opcode pair to its fused opcode, or 0
// (opEnter, never a fusion result) for no fusion. fuseLonger marks
// pairs that begin at least one length-3/4 pattern, gating the (rarer)
// map lookups in the greedy scan; fuseLookup resolves those patterns.
var (
	fuseTable  [nBaseDop][nBaseDop]dop
	fuseLonger [nBaseDop][nBaseDop]bool
	fuseLookup = map[gram]dop{}
)

// baseDopName labels the unfused opcodes for reports.
var baseDopName = [nBaseDop]string{
	opEnter:    "enter",
	opMov:      "mov",
	opAdd:      "add",
	opSub:      "sub",
	opMul:      "mul",
	opDiv:      "div",
	opRem:      "rem",
	opAnd:      "and",
	opOr:       "or",
	opXor:      "xor",
	opShl:      "shl",
	opShr:      "shr",
	opNeg:      "neg",
	opNot:      "not",
	opCmp:      "cmp",
	opLd:       "ld",
	opSt:       "st",
	opGetChar:  "getchar",
	opPutChar:  "putchar",
	opPutInt:   "putint",
	opCall:     "call",
	opProf:     "prof",
	opProfCond: "profcond",
	opBr:       "br",
	opCmpBr:    "cmpbr",
	opJump:     "jump",
	opIJmp:     "ijmp",
	opRet:      "ret",
}

// fusedDopName labels fused opcodes ("add+ld+cmpbr"), fusedDopLen
// records each one's pattern length, and fusedDopSeq its base-op
// sequence (the closure compiler decomposes superinstructions back
// into base ops), all derived from the pattern list.
var (
	fusedDopName = map[dop]string{}
	fusedDopLen  = map[dop]int{}
	fusedDopSeq  = map[dop][]dop{}
)

func init() {
	for _, p := range fusedPatterns {
		g := patGram(p.seq)
		switch len(p.seq) {
		case 2:
			fuseTable[p.seq[0]][p.seq[1]] = p.op
		default:
			fuseLonger[p.seq[0]][p.seq[1]] = true
			fuseLookup[g] = p.op
		}
		fusedDopName[p.op] = g.String()
		fusedDopLen[p.op] = len(p.seq)
		fusedDopSeq[p.op] = p.seq
	}
}

func patGram(seq []dop) gram {
	g := gram{n: uint8(len(seq))}
	copy(g.ops[:], seq)
	return g
}

func dopLabel(op dop) string {
	if op < nBaseDop {
		return baseDopName[op]
	}
	return fusedDopName[op]
}

// FusionStats summarizes superinstruction fusion over a decoded body:
// how many dispatch slots it has pre-fusion, how many superinstruction
// sites were formed, how many original ops those sites absorb, and the
// per-pattern site counts.
type FusionStats struct {
	// Ops is the number of decoded dispatch slots before fusion. Fusion
	// never changes it: a fused run still occupies all its slots, it
	// just dispatches once.
	Ops int `json:"ops"`

	// Fused is the number of superinstruction sites. Each saves its
	// pattern length minus one dispatches per execution.
	Fused int `json:"fused"`

	// Inside is the number of original ops absorbed into
	// superinstructions (the sum of pattern lengths over sites).
	Inside int `json:"inside"`

	// Patterns maps pattern label ("add+ld+cmpbr") to static site count.
	Patterns map[string]int `json:"patterns,omitempty"`
}

// StaticCoverage is the percentage of decoded ops that are part of a
// superinstruction.
func (s *FusionStats) StaticCoverage() float64 {
	if s.Ops == 0 {
		return 0
	}
	return 100 * float64(s.Inside) / float64(s.Ops)
}

// Merge accumulates o into s.
func (s *FusionStats) Merge(o *FusionStats) {
	s.Ops += o.Ops
	s.Fused += o.Fused
	s.Inside += o.Inside
	for k, v := range o.Patterns {
		if s.Patterns == nil {
			s.Patterns = make(map[string]int)
		}
		s.Patterns[k] += v
	}
}

// FuncFusion is one function's slice of the fusion report.
type FuncFusion struct {
	Name string `json:"name"`
	FusionStats
}

// FusionStats reports whole-program fusion totals for the decoded code.
// All zeroes when the code was decoded with Fuse off.
func (c *Code) FusionStats() FusionStats {
	var total FusionStats
	for i := range c.funcs {
		fs := funcFusion(&c.funcs[i])
		total.Merge(&fs)
	}
	return total
}

// FusionByFunc reports fusion per function, in program order.
func (c *Code) FusionByFunc() []FuncFusion {
	out := make([]FuncFusion, len(c.funcs))
	for i := range c.funcs {
		out[i] = FuncFusion{Name: c.funcs[i].name, FusionStats: funcFusion(&c.funcs[i])}
	}
	return out
}

func funcFusion(df *dfunc) FusionStats {
	fs := FusionStats{Ops: len(df.code)}
	for i := 0; i < len(df.code); {
		op := df.code[i].op
		if op < nBaseDop {
			i++
			continue
		}
		n := fusedDopLen[op]
		fs.Fused++
		fs.Inside += n
		if fs.Patterns == nil {
			fs.Patterns = make(map[string]int)
		}
		fs.Patterns[fusedDopName[op]]++
		i += n
	}
	return fs
}

// ---- pattern miner ----

// gram is an adjacent decoded-op sequence of length n (2..maxFuseLen)
// from the unfused stream.
type gram struct {
	n   uint8
	ops [maxFuseLen]dop
}

func (g gram) String() string {
	s := baseDopName[g.ops[0]]
	for i := 1; i < int(g.n); i++ {
		s += "+" + baseDopName[g.ops[i]]
	}
	return s
}

// PatternCount is one row of a ranked mining report.
type PatternCount struct {
	Pattern string  `json:"pattern"`
	Count   uint64  `json:"count"`
	Share   float64 `json:"share"` // % of all dynamic dispatches
}

// MineResult accumulates dynamic adjacent-op n-gram weights across
// programs. Weights are dynamic: every block's static op run counts
// once per execution of the block (observed via Machine.OnBlock on the
// reference interpreter), which is exactly the number of dispatches the
// fast engine would spend on it.
type MineResult struct {
	dispatches uint64          // total dynamic dispatches observed
	saved      uint64          // dispatches the curated set eliminates
	inside     uint64          // dispatches folded inside superinstructions
	grams      map[gram]uint64 // all adjacent runs of length 2..maxFuseLen
	matches    map[gram]uint64 // greedy matches of the curated set
	residual   map[dop]uint64  // dispatches left outside any match, by op
}

// NewMineResult returns an empty accumulator.
func NewMineResult() *MineResult {
	return &MineResult{
		grams:    make(map[gram]uint64),
		matches:  make(map[gram]uint64),
		residual: make(map[dop]uint64),
	}
}

// Mine runs p on the reference interpreter (so the measured fast path
// stays instrumentation-free), weights each block's unfused decoded op
// run by its execution count, and accumulates n-grams plus the curated
// set's greedy match counts. Runtime traps and step-limit aborts still
// leave usable weights — random CFGs trap often — so only decode
// failures are reported. maxSteps of 0 means DefaultMaxSteps.
func (r *MineResult) Mine(p *ir.Program, input []byte, maxSteps uint64) error {
	code, err := DecodeWith(p, DecodeOptions{})
	if err != nil {
		return err
	}
	fi := make(map[string]int, len(p.Funcs))
	counts := make([][]uint64, len(p.Funcs))
	for i, f := range p.Funcs {
		fi[f.Name] = i
		counts[i] = make([]uint64, len(f.Blocks))
	}
	m := &Machine{Prog: p, Input: input, MaxSteps: maxSteps}
	m.OnBlock = func(fn string, li int) { counts[fi[fn]][li]++ }
	m.Run()
	for i := range code.funcs {
		df := &code.funcs[i]
		for bi := 0; bi+1 < len(df.blockStart); bi++ {
			w := counts[i][bi]
			if w == 0 {
				continue
			}
			lo, hi := int(df.blockStart[bi]), int(df.blockStart[bi+1])
			r.dispatches += w * uint64(hi-lo)
			for j := lo; j < hi-1; j++ {
				for n := 2; n <= maxFuseLen && j+n <= hi; n++ {
					g := gram{n: uint8(n)}
					for k := 0; k < n; k++ {
						g.ops[k] = df.code[j+k].op
					}
					r.grams[g] += w
				}
			}
			// Replay the decoder's greedy longest-first fusion scan to
			// measure what the curated set actually captures (overlaps
			// excluded, long patterns shadowing their prefixes).
			for j := lo; j < hi; {
				var g gram
				n := 0
				if j+1 < hi {
					g, n = matchFusion(df.code, j, hi)
				}
				if n == 0 {
					r.residual[df.code[j].op] += w
					j++
					continue
				}
				r.matches[g] += w
				r.saved += w * uint64(n-1)
				r.inside += w * uint64(n)
				j += n
			}
		}
	}
	return nil
}

// matchFusion returns the longest curated pattern starting at code[j]
// within the run ending at hi, as (gram, length), or length 0.
func matchFusion(code []dinst, j, hi int) (gram, int) {
	a, b := code[j].op, code[j+1].op
	if fuseLonger[a][b] {
		for n := maxFuseLen; n > 2; n-- {
			if j+n > hi {
				continue
			}
			g := gram{n: uint8(n)}
			for k := 0; k < n; k++ {
				g.ops[k] = code[j+k].op
			}
			if _, ok := fuseLookup[g]; ok {
				return g, n
			}
		}
	}
	if fuseTable[a][b] != 0 {
		return gram{n: 2, ops: [maxFuseLen]dop{a, b}}, 2
	}
	return gram{}, 0
}

// Merge accumulates o into r.
func (r *MineResult) Merge(o *MineResult) {
	r.dispatches += o.dispatches
	r.saved += o.saved
	r.inside += o.inside
	for g, w := range o.grams {
		r.grams[g] += w
	}
	for g, w := range o.matches {
		r.matches[g] += w
	}
	for op, w := range o.residual {
		r.residual[op] += w
	}
}

// Residual ranks the dispatches the curated set leaves unfused, by
// opcode — the to-do list for the next curation round.
func (r *MineResult) Residual(limit int) []PatternCount {
	rows := make([]PatternCount, 0, len(r.residual))
	for op, w := range r.residual {
		share := 0.0
		if r.dispatches > 0 {
			share = 100 * float64(w) / float64(r.dispatches)
		}
		rows = append(rows, PatternCount{Pattern: baseDopName[op], Count: w, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Pattern < rows[j].Pattern
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// Dispatches is the total dynamic dispatch count observed.
func (r *MineResult) Dispatches() uint64 { return r.dispatches }

// DynamicCoverage is the percentage of dynamic dispatches that the
// curated set folds into superinstructions.
func (r *MineResult) DynamicCoverage() float64 {
	if r.dispatches == 0 {
		return 0
	}
	return 100 * float64(r.inside) / float64(r.dispatches)
}

// DispatchReduction is the percentage of dynamic dispatches eliminated
// (pattern length minus one per match).
func (r *MineResult) DispatchReduction() float64 {
	if r.dispatches == 0 {
		return 0
	}
	return 100 * float64(r.saved) / float64(r.dispatches)
}

// TopGrams ranks the mined length-n grams by dynamic weight (count
// descending, then label ascending — deterministic), up to limit rows.
func (r *MineResult) TopGrams(n, limit int) []PatternCount {
	return r.rank(r.grams, n, limit)
}

// CuratedDynamic ranks the curated set's greedy match counts, all
// pattern lengths together.
func (r *MineResult) CuratedDynamic() []PatternCount {
	return r.rank(r.matches, 0, len(r.matches))
}

// rank filters src to length-n grams (any length when n is 0) and sorts.
func (r *MineResult) rank(src map[gram]uint64, n, limit int) []PatternCount {
	rows := make([]PatternCount, 0, len(src))
	for g, w := range src {
		if n != 0 && int(g.n) != n {
			continue
		}
		share := 0.0
		if r.dispatches > 0 {
			share = 100 * float64(w) / float64(r.dispatches)
		}
		rows = append(rows, PatternCount{Pattern: g.String(), Count: w, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Pattern < rows[j].Pattern
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}
