package interp

import (
	"fmt"

	"branchreorder/internal/ir"
)

// Engine names one of the package's execution backends. All engines are
// observably equivalent — same Stats, Output, return value, hook
// sequences and traps — so the choice never affects results, only
// wall-clock speed. The zero value is the fast interpreter, the
// package's default backend.
type Engine int

const (
	// EngineFast is the flat-decoded direct interpreter (FastMachine).
	EngineFast Engine = iota
	// EngineClosure is the closure-compiled backend (ClosureMachine):
	// each decoded function is translated once into a graph of
	// pre-bound closures executed past the dispatch loop.
	EngineClosure
	// EngineReference is the block-walking reference interpreter
	// (Machine), the slow semantic baseline.
	EngineReference
)

func (e Engine) String() string {
	switch e {
	case EngineClosure:
		return "closure"
	case EngineReference:
		return "reference"
	}
	return "fast"
}

// ParseEngine maps a command-line engine name to an Engine. The empty
// string selects the default fast engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "fast":
		return EngineFast, nil
	case "closure":
		return EngineClosure, nil
	case "reference":
		return EngineReference, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want fast, closure, or reference)", s)
}

// Exec runs prog once under the selected engine with the given hooks
// and returns the run's result, statistics and program output. The
// reference engine walks prog directly; the fast and closure engines
// execute code, decoding prog (with fusion) when code is nil. Exec is
// the one-shot form shared by training runs, auto-evaluation and CLI
// execution; callers that reuse machines or need fusion/compile reports
// construct the machines themselves.
func Exec(e Engine, prog *ir.Program, code *Code, input []byte,
	onBranch func(id int, taken bool), onProf func(seqID, sub int, value int64)) (int64, Stats, []byte, error) {
	if e == EngineReference {
		m := &Machine{Prog: prog, Input: input, OnBranch: onBranch, OnProf: onProf}
		ret, err := m.Run()
		return ret, m.Stats, m.Output.Bytes(), err
	}
	if code == nil {
		var err error
		code, err = Decode(prog)
		if err != nil {
			return 0, Stats{}, nil, err
		}
	}
	if e == EngineClosure {
		m := &ClosureMachine{Code: code, Input: input, OnBranch: onBranch, OnProf: onProf}
		ret, err := m.Run()
		return ret, m.Stats, m.Output.Bytes(), err
	}
	m := &FastMachine{Code: code, Input: input, OnBranch: onBranch, OnProf: onProf}
	ret, err := m.Run()
	return ret, m.Stats, m.Output.Bytes(), err
}
