// Package randprog generates random linearized IR programs: small CFGs
// with loops, calls, indirect jumps and reachable traps. The engine
// differential suite (internal/equiv) fuzzes the two interpreters
// against each other with them, and the superinstruction miner
// (interp.MineProgram) includes them so fusion-pattern selection is not
// overfitted to the 17-workload roster's code shapes.
//
// Generation is a pure function of the seed: the same seed yields a
// byte-identical program on every run and platform.
package randprog

import "branchreorder/internal/ir"

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// operand yields a register of the function (mostly) or an immediate in
// a range that includes 0 (so Div/Rem traps stay reachable) and values
// beyond memory bounds (so Ld/St traps stay reachable).
func (r *rng) operand(nRegs int) ir.Operand {
	if r.intn(3) == 0 {
		return ir.Imm(int64(r.intn(40) - 8))
	}
	return ir.R(ir.Reg(r.intn(nRegs)))
}

var straightOps = []ir.Op{
	ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
	ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not, ir.Cmp, ir.Ld, ir.St,
	ir.GetChar, ir.PutChar, ir.PutInt,
}

// genFunc fills f with a random CFG. Functions may only call
// higher-indexed functions (callees), keeping the call graph acyclic so
// recursion cannot blow past the frame budget; loops come from branch
// and goto back-edges instead.
func genFunc(r *rng, f *ir.Func, callees []string) {
	nBlocks := 2 + r.intn(5)
	blocks := make([]*ir.Block, nBlocks)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for bi, b := range blocks {
		nInsts := r.intn(5)
		for i := 0; i < nInsts; i++ {
			var in ir.Inst
			if len(callees) > 0 && r.intn(8) == 0 {
				in = ir.Inst{Op: ir.Call, Callee: callees[r.intn(len(callees))]}
				if r.intn(6) == 0 {
					in.Callee = "nowhere" // unknown-callee trap parity
				}
				for a := r.intn(3); a > 0; a-- {
					in.Args = append(in.Args, r.operand(f.NRegs))
				}
				if r.intn(4) != 0 {
					in.Dst = ir.Reg(r.intn(f.NRegs))
				} else {
					in.Dst = ir.NoReg
				}
			} else if r.intn(10) == 0 {
				in = ir.Inst{Op: ir.ProfCond, SeqID: r.intn(4), Sub: r.intn(3),
					Rel: ir.Rel(r.intn(6)), A: r.operand(f.NRegs), B: r.operand(f.NRegs)}
			} else {
				in = ir.Inst{
					Op:  straightOps[r.intn(len(straightOps))],
					Dst: ir.Reg(r.intn(f.NRegs)),
					A:   r.operand(f.NRegs),
					B:   r.operand(f.NRegs),
				}
			}
			b.Insts = append(b.Insts, in)
		}
		switch {
		case bi == nBlocks-1 || r.intn(4) == 0:
			b.Term = ir.Term{Kind: ir.TermRet, Val: r.operand(f.NRegs)}
		case r.intn(8) == 0:
			n := 1 + r.intn(3)
			targets := make([]*ir.Block, n)
			for i := range targets {
				targets[i] = blocks[r.intn(nBlocks)]
			}
			// Index occasionally lands out of range — trap parity.
			b.Term = ir.Term{Kind: ir.TermIJmp, Index: r.operand(f.NRegs), Targets: targets}
		case r.intn(3) == 0:
			b.Term = ir.Term{Kind: ir.TermGoto, Taken: blocks[r.intn(nBlocks)]}
		default:
			// Bias toward defined flags so runs get past the first
			// branch; the undefined-flags trap stays reachable.
			if r.intn(5) != 0 {
				b.Insts = append(b.Insts, ir.Inst{Op: ir.Cmp,
					A: r.operand(f.NRegs), B: r.operand(f.NRegs)})
			}
			b.Term = ir.Term{Kind: ir.TermBr, Rel: ir.Rel(r.intn(6)),
				Taken: blocks[r.intn(nBlocks)], Next: blocks[(bi+1)%nBlocks]}
		}
	}
}

// New builds a random linearized program: 1-3 functions with an acyclic
// call graph, a small memory with an initialized global, and (half the
// time) delay slots filled.
func New(seed uint64) *ir.Program {
	r := newRng(seed)
	p := &ir.Program{MemSize: 16}
	p.Globals = []*ir.Global{{Name: "g", Addr: 0, Size: 8,
		Init: []int64{3, 1, 4, 1, 5, 9, 2, 6}}}
	names := []string{"main", "f1", "f2"}[:1+r.intn(3)]
	for i, name := range names {
		f := &ir.Func{Name: name, NRegs: 2 + r.intn(4)}
		if i > 0 {
			f.NParams = r.intn(3)
			if f.NParams > f.NRegs {
				f.NParams = f.NRegs
			}
		}
		p.Funcs = append(p.Funcs, f)
	}
	for i, f := range p.Funcs {
		var callees []string
		for _, g := range p.Funcs[i+1:] {
			callees = append(callees, g.Name)
		}
		genFunc(r, f, callees)
	}
	p.Linearize()
	if r.intn(2) == 0 {
		p.FillDelaySlots()
		p.Linearize()
	}
	return p
}
