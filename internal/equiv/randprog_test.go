package equiv

import (
	"strings"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/workload"
)

// randMaxSteps bounds random-program runs: generated CFGs loop freely,
// and the step-limit path is itself part of the contract under test.
const randMaxSteps = 1 << 15

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// operand yields a register of the function (mostly) or an immediate in
// a range that includes 0 (so Div/Rem traps stay reachable) and values
// beyond memory bounds (so Ld/St traps stay reachable).
func (r *rng) operand(nRegs int) ir.Operand {
	if r.intn(3) == 0 {
		return ir.Imm(int64(r.intn(40) - 8))
	}
	return ir.R(ir.Reg(r.intn(nRegs)))
}

var straightOps = []ir.Op{
	ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
	ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not, ir.Cmp, ir.Ld, ir.St,
	ir.GetChar, ir.PutChar, ir.PutInt,
}

// genFunc fills f with a random CFG. Functions may only call
// higher-indexed functions (callees), keeping the call graph acyclic so
// recursion cannot blow past the frame budget; loops come from branch
// and goto back-edges instead.
func genFunc(r *rng, f *ir.Func, callees []string) {
	nBlocks := 2 + r.intn(5)
	blocks := make([]*ir.Block, nBlocks)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for bi, b := range blocks {
		nInsts := r.intn(5)
		for i := 0; i < nInsts; i++ {
			var in ir.Inst
			if len(callees) > 0 && r.intn(8) == 0 {
				in = ir.Inst{Op: ir.Call, Callee: callees[r.intn(len(callees))]}
				if r.intn(6) == 0 {
					in.Callee = "nowhere" // unknown-callee trap parity
				}
				for a := r.intn(3); a > 0; a-- {
					in.Args = append(in.Args, r.operand(f.NRegs))
				}
				if r.intn(4) != 0 {
					in.Dst = ir.Reg(r.intn(f.NRegs))
				} else {
					in.Dst = ir.NoReg
				}
			} else if r.intn(10) == 0 {
				in = ir.Inst{Op: ir.ProfCond, SeqID: r.intn(4), Sub: r.intn(3),
					Rel: ir.Rel(r.intn(6)), A: r.operand(f.NRegs), B: r.operand(f.NRegs)}
			} else {
				in = ir.Inst{
					Op:  straightOps[r.intn(len(straightOps))],
					Dst: ir.Reg(r.intn(f.NRegs)),
					A:   r.operand(f.NRegs),
					B:   r.operand(f.NRegs),
				}
			}
			b.Insts = append(b.Insts, in)
		}
		switch {
		case bi == nBlocks-1 || r.intn(4) == 0:
			b.Term = ir.Term{Kind: ir.TermRet, Val: r.operand(f.NRegs)}
		case r.intn(8) == 0:
			n := 1 + r.intn(3)
			targets := make([]*ir.Block, n)
			for i := range targets {
				targets[i] = blocks[r.intn(nBlocks)]
			}
			// Index occasionally lands out of range — trap parity.
			b.Term = ir.Term{Kind: ir.TermIJmp, Index: r.operand(f.NRegs), Targets: targets}
		case r.intn(3) == 0:
			b.Term = ir.Term{Kind: ir.TermGoto, Taken: blocks[r.intn(nBlocks)]}
		default:
			// Bias toward defined flags so runs get past the first
			// branch; the undefined-flags trap stays reachable.
			if r.intn(5) != 0 {
				b.Insts = append(b.Insts, ir.Inst{Op: ir.Cmp,
					A: r.operand(f.NRegs), B: r.operand(f.NRegs)})
			}
			b.Term = ir.Term{Kind: ir.TermBr, Rel: ir.Rel(r.intn(6)),
				Taken: blocks[r.intn(nBlocks)], Next: blocks[(bi+1)%nBlocks]}
		}
	}
}

// genProgram builds a random linearized program: 1-3 functions with an
// acyclic call graph, a small memory with an initialized global, and
// (half the time) delay slots filled.
func genProgram(seed uint64) *ir.Program {
	r := newRng(seed)
	p := &ir.Program{MemSize: 16}
	p.Globals = []*ir.Global{{Name: "g", Addr: 0, Size: 8,
		Init: []int64{3, 1, 4, 1, 5, 9, 2, 6}}}
	names := []string{"main", "f1", "f2"}[:1+r.intn(3)]
	for i, name := range names {
		f := &ir.Func{Name: name, NRegs: 2 + r.intn(4)}
		if i > 0 {
			f.NParams = r.intn(3)
			if f.NParams > f.NRegs {
				f.NParams = f.NRegs
			}
		}
		p.Funcs = append(p.Funcs, f)
	}
	for i, f := range p.Funcs {
		var callees []string
		for _, g := range p.Funcs[i+1:] {
			callees = append(callees, g.Name)
		}
		genFunc(r, f, callees)
	}
	p.Linearize()
	if r.intn(2) == 0 {
		p.FillDelaySlots()
		p.Linearize()
	}
	return p
}

type engineRun struct {
	ret      int64
	err      string
	out      string
	stats    interp.Stats
	branches []int64
	profs    []int64
}

func hooks(r *engineRun) (func(int, bool), func(int, int, int64)) {
	return func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		}, func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}
}

func runBoth(t testing.TB, p *ir.Program, input []byte) (ref, fast engineRun) {
	t.Helper()
	rm := &interp.Machine{Prog: p, Input: input, MaxSteps: randMaxSteps}
	rm.OnBranch, rm.OnProf = hooks(&ref)
	ret, err := rm.Run()
	ref.ret, ref.out, ref.stats = ret, rm.Output.String(), rm.Stats
	if err != nil {
		ref.err = err.Error()
	}

	code, derr := interp.Decode(p)
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	fm := &interp.FastMachine{Code: code, Input: input, MaxSteps: randMaxSteps}
	fm.OnBranch, fm.OnProf = hooks(&fast)
	ret, err = fm.Run()
	fast.ret, fast.out, fast.stats = ret, fm.Output.String(), fm.Stats
	if err != nil {
		fast.err = err.Error()
	}
	return ref, fast
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareRuns applies the engine contract: completed runs agree on
// everything; trapped runs agree on the error, except around a step-limit
// abort, where the fast engine's block-granular budget may surface as a
// different abort point (both sides must still abort).
func compareRuns(t testing.TB, label string, ref, fast engineRun) {
	t.Helper()
	stepLimited := strings.Contains(ref.err, "step limit") || strings.Contains(fast.err, "step limit")
	if stepLimited {
		if ref.err == "" || fast.err == "" {
			t.Errorf("%s: step-limit abort on one engine only: ref=%q fast=%q",
				label, ref.err, fast.err)
		}
		return
	}
	if ref.err != fast.err {
		t.Errorf("%s: errors differ: ref=%q fast=%q", label, ref.err, fast.err)
		return
	}
	// Same trap (or none): the executed effect sequence is identical.
	if ref.ret != fast.ret && ref.err == "" {
		t.Errorf("%s: ret ref=%d fast=%d", label, ref.ret, fast.ret)
	}
	if ref.out != fast.out {
		t.Errorf("%s: output ref=%q fast=%q", label, ref.out, fast.out)
	}
	if !eqInt64s(ref.branches, fast.branches) {
		t.Errorf("%s: branch streams differ (%d vs %d events)",
			label, len(ref.branches)/2, len(fast.branches)/2)
	}
	if !eqInt64s(ref.profs, fast.profs) {
		t.Errorf("%s: prof streams differ", label)
	}
	// Stats are only exact on completed runs (trap-point charges are
	// block-granular on the fast engine).
	if ref.err == "" && ref.stats != fast.stats {
		t.Errorf("%s: stats\nref:  %+v\nfast: %+v", label, ref.stats, fast.stats)
	}
}

// TestRandomProgramEquivalence fuzzes the engines against each other
// with generated CFGs and adversarial inputs.
func TestRandomProgramEquivalence(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	completed := 0
	for seed := 0; seed < n; seed++ {
		p := genProgram(uint64(seed))
		for _, input := range [][]byte{nil, workload.FuzzInput(uint64(seed)+1000, 200)} {
			ref, fast := runBoth(t, p, input)
			compareRuns(t, labelFor(seed, input), ref, fast)
			if ref.err == "" {
				completed++
			}
		}
	}
	// The generator must keep producing runs that complete, or the
	// strong (stats-comparing) arm of the contract goes untested.
	if completed < n/5 {
		t.Errorf("only %d/%d runs completed; generator too trap-happy", completed, 2*n)
	}
}

func labelFor(seed int, input []byte) string {
	tag := "nil"
	if input != nil {
		tag = "fuzz"
	}
	return "seed=" + itoa(seed) + "/" + tag
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// FuzzEngines explores program and input space beyond the fixed seeds.
func FuzzEngines(f *testing.F) {
	f.Add(uint64(1), []byte("hello\n42 "))
	f.Add(uint64(77), []byte{0, 255, '\n'})
	f.Add(uint64(123456), []byte("a-b c.d 9/0"))
	f.Fuzz(func(t *testing.T, seed uint64, input []byte) {
		if len(input) > 4096 {
			input = input[:4096]
		}
		p := genProgram(seed)
		ref, fast := runBoth(t, p, input)
		compareRuns(t, "fuzz", ref, fast)
	})
}
