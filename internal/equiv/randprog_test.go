package equiv

import (
	"strings"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/randprog"
	"branchreorder/internal/workload"
)

// randMaxSteps bounds random-program runs: generated CFGs loop freely,
// and the step-limit path is itself part of the contract under test.
const randMaxSteps = 1 << 15

type engineRun struct {
	ret      int64
	err      string
	out      string
	stats    interp.Stats
	branches []int64
	profs    []int64
}

func hooks(r *engineRun) (func(int, bool), func(int, int, int64)) {
	return func(id int, taken bool) {
			tk := int64(0)
			if taken {
				tk = 1
			}
			r.branches = append(r.branches, int64(id), tk)
		}, func(seq, sub int, v int64) {
			r.profs = append(r.profs, int64(seq), int64(sub), v)
		}
}

// runBoth executes p on every engine and decode variant, applying the
// full three-way oracle: the reference machine against the fast engine
// under the lenient contract (compareRuns), the fast engine against
// itself across decodes, and the closure engine against the fast engine
// of the same decode under strict identity (compareSame) — for both the
// hooked variant (branch/prof streams attached) and the hook-free plain
// variant, whose specialized closure bodies only compile without hooks.
func runBoth(t testing.TB, p *ir.Program, input []byte) (ref, fast engineRun) {
	fused := interp.DecodeOptions{Fuse: true}
	nofuse := interp.DecodeOptions{}
	ref = runOn(t, p, input, fused, interp.EngineReference, true)
	fast = runOn(t, p, input, fused, interp.EngineFast, true)
	// The unfused decode must behave identically to the fused one; any
	// divergence is a fusion bug, caught here across every seed and every
	// fuzz input the suite explores.
	unfused := runOn(t, p, input, nofuse, interp.EngineFast, true)
	compareRuns(t, "fused-vs-unfused", fast, unfused)
	// Closure engine, -no-fuse × engine cross-product: the compiled
	// graph must replicate the fast engine exactly — same trap text and
	// PC, same trap-point stats, same hook streams.
	compareSame(t, "closure-vs-fast",
		fast, runOn(t, p, input, fused, interp.EngineClosure, true))
	compareSame(t, "closure-vs-fast/nofuse",
		unfused, runOn(t, p, input, nofuse, interp.EngineClosure, true))
	compareSame(t, "closure-vs-fast/plain",
		runOn(t, p, input, fused, interp.EngineFast, false),
		runOn(t, p, input, fused, interp.EngineClosure, false))
	return ref, fast
}

// runOn executes p once on the chosen engine. hooked attaches the
// branch/prof recorders; without them the closure engine compiles its
// specialized plain bodies.
func runOn(t testing.TB, p *ir.Program, input []byte, opts interp.DecodeOptions, e interp.Engine, hooked bool) (r engineRun) {
	t.Helper()
	var onBranch func(int, bool)
	var onProf func(int, int, int64)
	if hooked {
		onBranch, onProf = hooks(&r)
	}
	var ret int64
	var err error
	if e == interp.EngineReference {
		m := &interp.Machine{Prog: p, Input: input, MaxSteps: randMaxSteps,
			OnBranch: onBranch, OnProf: onProf}
		ret, err = m.Run()
		r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
	} else {
		code, derr := interp.DecodeWith(p, opts)
		if derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if e == interp.EngineClosure {
			m := &interp.ClosureMachine{Code: code, Input: input, MaxSteps: randMaxSteps,
				OnBranch: onBranch, OnProf: onProf}
			ret, err = m.Run()
			r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
		} else {
			m := &interp.FastMachine{Code: code, Input: input, MaxSteps: randMaxSteps,
				OnBranch: onBranch, OnProf: onProf}
			ret, err = m.Run()
			r.ret, r.out, r.stats = ret, m.Output.String(), m.Stats
		}
	}
	if err != nil {
		r.err = err.Error()
	}
	return r
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareRuns applies the engine contract: completed runs agree on
// everything; trapped runs agree on the error, except around a step-limit
// abort, where the fast engine's block-granular budget may surface as a
// different abort point (both sides must still abort).
func compareRuns(t testing.TB, label string, ref, fast engineRun) {
	t.Helper()
	stepLimited := strings.Contains(ref.err, "step limit") || strings.Contains(fast.err, "step limit")
	if stepLimited {
		if ref.err == "" || fast.err == "" {
			t.Errorf("%s: step-limit abort on one engine only: ref=%q fast=%q",
				label, ref.err, fast.err)
		}
		return
	}
	if ref.err != fast.err {
		t.Errorf("%s: errors differ: ref=%q fast=%q", label, ref.err, fast.err)
		return
	}
	// Same trap (or none): the executed effect sequence is identical.
	if ref.ret != fast.ret && ref.err == "" {
		t.Errorf("%s: ret ref=%d fast=%d", label, ref.ret, fast.ret)
	}
	if ref.out != fast.out {
		t.Errorf("%s: output ref=%q fast=%q", label, ref.out, fast.out)
	}
	if !eqInt64s(ref.branches, fast.branches) {
		t.Errorf("%s: branch streams differ (%d vs %d events)",
			label, len(ref.branches)/2, len(fast.branches)/2)
	}
	if !eqInt64s(ref.profs, fast.profs) {
		t.Errorf("%s: prof streams differ", label)
	}
	// Stats are only exact on completed runs (trap-point charges are
	// block-granular on the fast engine).
	if ref.err == "" && ref.stats != fast.stats {
		t.Errorf("%s: stats\nref:  %+v\nfast: %+v", label, ref.stats, fast.stats)
	}
}

// compareSame demands full identity — return value, output, error text
// (trap kind and PC included), hook streams, and Stats even at trap
// points. The fast and closure engines share one execution contract
// down to the block-granular step budget, so unlike compareRuns nothing
// is forgiven.
func compareSame(t testing.TB, label string, a, b engineRun) {
	t.Helper()
	if a.err != b.err {
		t.Errorf("%s: errors differ: fast=%q closure=%q", label, a.err, b.err)
		return
	}
	if a.ret != b.ret {
		t.Errorf("%s: ret fast=%d closure=%d", label, a.ret, b.ret)
	}
	if a.out != b.out {
		t.Errorf("%s: output fast=%q closure=%q", label, a.out, b.out)
	}
	if a.stats != b.stats {
		t.Errorf("%s: stats\nfast:    %+v\nclosure: %+v", label, a.stats, b.stats)
	}
	if !eqInt64s(a.branches, b.branches) {
		t.Errorf("%s: branch streams differ (%d vs %d events)",
			label, len(a.branches)/2, len(b.branches)/2)
	}
	if !eqInt64s(a.profs, b.profs) {
		t.Errorf("%s: prof streams differ", label)
	}
}

// TestRandomProgramEquivalence fuzzes the engines against each other
// with generated CFGs and adversarial inputs.
func TestRandomProgramEquivalence(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	completed := 0
	for seed := 0; seed < n; seed++ {
		p := randprog.New(uint64(seed))
		for _, input := range [][]byte{nil, workload.FuzzInput(uint64(seed)+1000, 200)} {
			ref, fast := runBoth(t, p, input)
			compareRuns(t, labelFor(seed, input), ref, fast)
			if ref.err == "" {
				completed++
			}
		}
	}
	// The generator must keep producing runs that complete, or the
	// strong (stats-comparing) arm of the contract goes untested.
	if completed < n/5 {
		t.Errorf("only %d/%d runs completed; generator too trap-happy", completed, 2*n)
	}
}

func labelFor(seed int, input []byte) string {
	tag := "nil"
	if input != nil {
		tag = "fuzz"
	}
	return "seed=" + itoa(seed) + "/" + tag
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// FuzzEngines explores program and input space beyond the fixed seeds.
func FuzzEngines(f *testing.F) {
	f.Add(uint64(1), []byte("hello\n42 "))
	f.Add(uint64(77), []byte{0, 255, '\n'})
	f.Add(uint64(123456), []byte("a-b c.d 9/0"))
	// Seeds whose generated CFGs exercise superinstruction edge shapes:
	// dense straight-line blocks (multi-pair fusion runs), fused pairs
	// whose second op traps (division by zero, out-of-range Ld/St), and
	// branch back-edges into fused blocks.
	f.Add(uint64(7), []byte("0 0 0"))
	f.Add(uint64(42), []byte("9/0"))
	f.Add(uint64(2026), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint64(31337), []byte("-1 -1"))
	f.Fuzz(func(t *testing.T, seed uint64, input []byte) {
		if len(input) > 4096 {
			input = input[:4096]
		}
		p := randprog.New(seed)
		ref, fast := runBoth(t, p, input)
		compareRuns(t, "fuzz", ref, fast)
	})
}
