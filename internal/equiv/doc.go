// Package equiv differentially tests the three execution engines
// against each other: the block-walking reference interpreter
// (interp.Machine), the flat-decoded fast engine (interp.Decode +
// interp.FastMachine) that the measurement pipeline runs on by default,
// and the closure-compiled engine (interp.ClosureMachine) behind
// sim.Options{Engine: EngineClosure}.
//
// The contract under test is the one DESIGN.md states for the fast
// engine: on every program and input, both engines produce the same
// return value, output bytes, dynamic statistics, branch and profile
// event streams — and therefore the same per-predictor mispredict
// counts — whenever the run completes. Runs that trap must trap with
// the same runtime error, except that a step-limit abort is only
// required to be a step-limit-or-later abort on both sides (the fast
// engine charges the step budget block-granularly, so the abort point
// and hence partial output and statistics may differ).
//
// The closure engine is held to a stricter contract: it shares the fast
// engine's block-granular execution model exactly, so against the fast
// run of the same decode (fused or unfused, hooked or plain) everything
// must be identical — trap text and PC, trap-point statistics, and hook
// streams included.
//
// Two test layers enforce this: the full workload suite (baseline and
// reordered executables, measured end-to-end through sim.Run against a
// replica of the pre-rewrite measurement loop), and randomized IR
// programs from a CFG generator, on held-out and fuzzed inputs, with a
// go-fuzz entry point (FuzzEngines) for continued exploration.
package equiv
