package equiv

import (
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/predictor"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// referenceMeasure replicates the pre-rewrite measurement loop exactly:
// the block-walking interpreter with every executed branch fanned out to
// the 14 Table-6 Bimodal predictors.
type measurement struct {
	stats       interp.Stats
	output      string
	ret         int64
	mispredicts map[string]uint64
}

func referenceMeasure(t *testing.T, prog *ir.Program, input []byte) *measurement {
	t.Helper()
	preds := sim.PredictorSweep()
	m := &interp.Machine{
		Prog:  prog,
		Input: input,
		OnBranch: func(id int, taken bool) {
			for _, p := range preds {
				p.Observe(id, taken)
			}
		},
	}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	out := &measurement{
		stats:       m.Stats,
		output:      m.Output.String(),
		ret:         ret,
		mispredicts: make(map[string]uint64, len(preds)),
	}
	for _, p := range preds {
		out.mispredicts[p.Name()] = p.Mispredicts
	}
	return out
}

func checkMeasurement(t *testing.T, label string, prog *ir.Program, input []byte) {
	t.Helper()
	want := referenceMeasure(t, prog, input)
	got, err := sim.Run(prog, input, nil)
	if err != nil {
		t.Fatalf("%s: sim.Run: %v", label, err)
	}
	if got.Ret != want.ret {
		t.Errorf("%s: ret fast=%d ref=%d", label, got.Ret, want.ret)
	}
	if got.Output != want.output {
		t.Errorf("%s: output diverged (%d vs %d bytes)", label, len(got.Output), len(want.output))
	}
	if got.Stats != want.stats {
		t.Errorf("%s: stats\nfast: %+v\nref:  %+v", label, got.Stats, want.stats)
	}
	if len(got.Mispredicts) != len(want.mispredicts) {
		t.Fatalf("%s: %d predictor configs, want %d", label, len(got.Mispredicts), len(want.mispredicts))
	}
	for name, w := range want.mispredicts {
		if got.Mispredicts[name] != w {
			t.Errorf("%s: %s mispredicts fast=%d ref=%d", label, name, got.Mispredicts[name], w)
		}
	}

	// Third side of the oracle: the closure engine — fused and unfused —
	// must reproduce the fast measurement byte for byte, and actually
	// compile (a silent fallback would run FastMachine and prove
	// nothing).
	for _, mo := range []sim.Options{
		{Engine: sim.EngineClosure},
		{Engine: sim.EngineClosure, NoFuse: true},
	} {
		tag := label + "/closure"
		if mo.NoFuse {
			tag += "-nofuse"
		}
		clos, err := sim.RunWith(prog, input, nil, mo)
		if err != nil {
			t.Fatalf("%s: sim.RunWith: %v", tag, err)
		}
		if clos.Ret != got.Ret || clos.Output != got.Output {
			t.Errorf("%s: result diverged from fast engine", tag)
		}
		if clos.Stats != got.Stats {
			t.Errorf("%s: stats\nclosure: %+v\nfast:    %+v", tag, clos.Stats, got.Stats)
		}
		for name, w := range got.Mispredicts {
			if clos.Mispredicts[name] != w {
				t.Errorf("%s: %s mispredicts closure=%d fast=%d", tag, name, clos.Mispredicts[name], w)
			}
		}
		if clos.Compile.CompiledFuncs == 0 || clos.Compile.Fallbacks != 0 {
			t.Errorf("%s: closure compiler did not engage: %+v", tag, clos.Compile)
		}
	}
}

// TestWorkloadSuiteEquivalence measures every workload's baseline and
// reordered executables through sim.Run (fast engine + predictor bank)
// and through a replica of the old Machine+Bimodal loop, demanding
// identical Stats, Output, Ret and per-predictor Mispredicts.
func TestWorkloadSuiteEquivalence(t *testing.T) {
	all := workload.All()
	if testing.Short() {
		all = all[:4]
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			opts := pipeline.Options{Switch: lower.SetII, Optimize: true}
			front, err := pipeline.Frontend(w.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			build, err := pipeline.Build(w.Source, w.Train(), opts)
			if err != nil {
				t.Fatal(err)
			}
			inputs := map[string][]byte{
				"test": w.Test(),
				"fuzz": workload.FuzzInput(uint64(len(w.Name))*77+13, 3000),
			}
			for tag, input := range inputs {
				checkMeasurement(t, w.Name+"/base/"+tag, front.Prog, input)
				checkMeasurement(t, w.Name+"/reord/"+tag, build.Reordered, input)
			}
		})
	}
}

// TestBankAgainstBimodalsOnRealStreams replays a real workload's branch
// stream into the vectorized bank and the individual predictors.
func TestBankAgainstBimodalsOnRealStreams(t *testing.T) {
	w, ok := workload.Named("grep")
	if !ok {
		t.Fatal("grep workload missing")
	}
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	code, err := interp.Decode(front.Prog)
	if err != nil {
		t.Fatal(err)
	}
	bank := predictor.NewTable6Bank()
	preds := sim.PredictorSweep()
	m := &interp.FastMachine{Code: code, Input: w.Test(),
		OnBranch: func(id int, taken bool) {
			bank.Observe(id, taken)
			for _, p := range preds {
				p.Observe(id, taken)
			}
		}}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if bank.MispredictsOf(i) != p.Mispredicts {
			t.Errorf("%s: bank %d mispredicts, bimodal %d",
				p.Name(), bank.MispredictsOf(i), p.Mispredicts)
		}
	}
	if bank.Branches == 0 {
		t.Error("no branches observed")
	}
}
