package ir

// CloneInst returns a deep copy of an instruction (the Args slice is the
// only reference field).
func CloneInst(in Inst) Inst {
	out := in
	if in.Args != nil {
		out.Args = append([]Operand(nil), in.Args...)
	}
	return out
}

// CloneBlocks deep-copies the given blocks into f (allocating fresh IDs)
// and returns the mapping from original to clone. Terminator edges whose
// target is inside the cloned set are redirected to the corresponding
// clone; edges leaving the set keep their original target. Blocks must all
// belong to f.
func CloneBlocks(f *Func, blocks []*Block) map[*Block]*Block {
	m := make(map[*Block]*Block, len(blocks))
	for _, b := range blocks {
		nb := f.NewBlock()
		nb.Insts = make([]Inst, len(b.Insts))
		for i := range b.Insts {
			nb.Insts[i] = CloneInst(b.Insts[i])
		}
		nb.Term = b.Term
		if b.Term.Targets != nil {
			nb.Term.Targets = append([]*Block(nil), b.Term.Targets...)
		}
		m[b] = nb
	}
	redirect := func(t **Block) {
		if *t != nil {
			if c, ok := m[*t]; ok {
				*t = c
			}
		}
	}
	for _, b := range blocks {
		nb := m[b]
		redirect(&nb.Term.Taken)
		redirect(&nb.Term.Next)
		for i := range nb.Term.Targets {
			redirect(&nb.Term.Targets[i])
		}
	}
	return m
}

// CloneFunc returns a deep copy of a function.
func CloneFunc(f *Func) *Func {
	nf := &Func{Name: f.Name, NParams: f.NParams, NRegs: f.NRegs}
	m := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, LayoutIndex: b.LayoutIndex}
		nb.Insts = make([]Inst, len(b.Insts))
		for i := range b.Insts {
			nb.Insts[i] = CloneInst(b.Insts[i])
		}
		m[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := m[b]
		nb.Term = b.Term
		if b.Term.Taken != nil {
			nb.Term.Taken = m[b.Term.Taken]
		}
		if b.Term.Next != nil {
			nb.Term.Next = m[b.Term.Next]
		}
		if b.Term.Targets != nil {
			nb.Term.Targets = make([]*Block, len(b.Term.Targets))
			for i, t := range b.Term.Targets {
				nb.Term.Targets[i] = m[t]
			}
		}
	}
	// Preserve the original's block-ID allocator, not just max+1:
	// deleted blocks can leave nextID past the highest live ID, and a
	// clone must allocate the same fresh IDs the original would so
	// passes running on either produce identical programs.
	nf.SyncNextID()
	if f.nextID > nf.nextID {
		nf.nextID = f.nextID
	}
	return nf
}

// CloneProgram returns a deep copy of a program. Funcs, blocks and globals
// are all fresh; Call instructions refer to callees by name so they need
// no fixup.
func CloneProgram(p *Program) *Program {
	np := &Program{MemSize: p.MemSize, nextBranchID: p.nextBranchID}
	for _, f := range p.Funcs {
		np.Funcs = append(np.Funcs, CloneFunc(f))
	}
	for _, g := range p.Globals {
		ng := *g
		if g.Init != nil {
			ng.Init = append([]int64(nil), g.Init...)
		}
		np.Globals = append(np.Globals, &ng)
	}
	return np
}
