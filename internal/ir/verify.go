package ir

import (
	"fmt"
	"sort"
)

// Verify checks structural invariants of a whole program: block membership
// of every edge, register bounds, call-site arity, condition-code
// availability at every conditional branch, and global layout. It returns
// the first problem found, or nil.
func (p *Program) Verify() error {
	seen := map[string]bool{}
	for _, f := range p.Funcs {
		if seen[f.Name] {
			return fmt.Errorf("duplicate function %q", f.Name)
		}
		seen[f.Name] = true
	}
	if err := p.verifyGlobals(); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		if err := p.verifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func (p *Program) verifyGlobals() error {
	gs := append([]*Global(nil), p.Globals...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Addr < gs[j].Addr })
	var end int64
	for _, g := range gs {
		if g.Size <= 0 {
			return fmt.Errorf("global %s: nonpositive size %d", g.Name, g.Size)
		}
		if g.Addr < end {
			return fmt.Errorf("global %s overlaps previous global", g.Name)
		}
		if int64(len(g.Init)) > g.Size {
			return fmt.Errorf("global %s: init longer than size", g.Name)
		}
		end = g.Addr + g.Size
	}
	if end > p.MemSize {
		return fmt.Errorf("globals extend to %d beyond MemSize %d", end, p.MemSize)
	}
	return nil
}

func (p *Program) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if f.NRegs < f.NParams {
		return fmt.Errorf("NRegs %d < NParams %d", f.NRegs, f.NParams)
	}
	member := make(map[*Block]bool, len(f.Blocks))
	ids := make(map[int]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if ids[b.ID] {
			return fmt.Errorf("duplicate block ID %d", b.ID)
		}
		ids[b.ID] = true
		member[b] = true
	}

	checkOp := func(b *Block, o Operand) error {
		if !o.IsImm && (o.Reg < 0 || int(o.Reg) >= f.NRegs) {
			return fmt.Errorf("B%d: register %d out of range", b.ID, o.Reg)
		}
		return nil
	}
	checkDst := func(b *Block, r Reg) error {
		if r < 0 || int(r) >= f.NRegs {
			return fmt.Errorf("B%d: destination register %d out of range", b.ID, r)
		}
		return nil
	}

	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			switch in.Op {
			case Mov, Neg, Not, Ld:
				if err := checkDst(b, in.Dst); err != nil {
					return err
				}
				if err := checkOp(b, in.A); err != nil {
					return err
				}
			case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
				if err := checkDst(b, in.Dst); err != nil {
					return err
				}
				if err := checkOp(b, in.A); err != nil {
					return err
				}
				if err := checkOp(b, in.B); err != nil {
					return err
				}
			case Cmp, St, ProfCond:
				if err := checkOp(b, in.A); err != nil {
					return err
				}
				if err := checkOp(b, in.B); err != nil {
					return err
				}
			case GetChar:
				if err := checkDst(b, in.Dst); err != nil {
					return err
				}
			case PutChar, PutInt, Prof:
				if err := checkOp(b, in.A); err != nil {
					return err
				}
			case Call:
				callee := p.Func(in.Callee)
				if callee == nil {
					return fmt.Errorf("B%d: call to unknown function %q", b.ID, in.Callee)
				}
				if len(in.Args) != callee.NParams {
					return fmt.Errorf("B%d: call %s with %d args, want %d",
						b.ID, in.Callee, len(in.Args), callee.NParams)
				}
				for _, a := range in.Args {
					if err := checkOp(b, a); err != nil {
						return err
					}
				}
				if in.Dst != NoReg {
					if err := checkDst(b, in.Dst); err != nil {
						return err
					}
				}
			case Nop:
			default:
				return fmt.Errorf("B%d: unknown opcode %d", b.ID, in.Op)
			}
		}
		t := &b.Term
		switch t.Kind {
		case TermGoto:
			if t.Taken == nil || !member[t.Taken] {
				return fmt.Errorf("B%d: goto target not in function", b.ID)
			}
		case TermBr:
			if t.Taken == nil || !member[t.Taken] || t.Next == nil || !member[t.Next] {
				return fmt.Errorf("B%d: branch successor not in function", b.ID)
			}
		case TermIJmp:
			if len(t.Targets) == 0 {
				return fmt.Errorf("B%d: indirect jump with empty table", b.ID)
			}
			for _, tgt := range t.Targets {
				if tgt == nil || !member[tgt] {
					return fmt.Errorf("B%d: indirect jump target not in function", b.ID)
				}
			}
			if err := checkOp(b, t.Index); err != nil {
				return err
			}
		case TermRet:
			if err := checkOp(b, t.Val); err != nil {
				return err
			}
		default:
			return fmt.Errorf("B%d: unknown terminator", b.ID)
		}
	}
	return verifyFlags(f)
}

// verifyFlags checks that the condition codes are defined on every path
// reaching a conditional branch. A block's exit has flags available if it
// contains a Cmp or if flags were available on entry; entry availability is
// the conjunction over predecessors (unreachable blocks are skipped).
func verifyFlags(f *Func) error {
	reach := Reachable(f)
	hasCmp := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == Cmp {
				hasCmp[b] = true
				break
			}
		}
	}
	// Forward dataflow, initialized optimistically (true) and iterated to
	// a fixed point; the entry block starts pessimistically.
	availOut := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		availOut[b] = true
	}
	preds := Preds(f)
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			if !reach[b] {
				continue
			}
			in := true
			if b == f.Entry() && len(preds[b]) == 0 {
				in = false
			} else {
				if b == f.Entry() {
					in = false // entry may be reached from outside with no flags
				}
				for _, p := range preds[b] {
					if reach[p] && !availOut[p] {
						in = false
						break
					}
				}
			}
			out := in || hasCmp[b]
			if out != availOut[b] {
				availOut[b] = out
				changed = true
			}
		}
	}
	for _, b := range f.Blocks {
		if reach[b] && b.Term.Kind == TermBr && !availOut[b] {
			return fmt.Errorf("B%d: conditional branch with undefined condition codes", b.ID)
		}
	}
	return nil
}
