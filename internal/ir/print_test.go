package ir

import (
	"strings"
	"testing"
)

func TestInstStrings(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Mov, Dst: 1, A: Imm(5)}, "r1 = mov 5"},
		{Inst{Op: Neg, Dst: 2, A: R(1)}, "r2 = neg r1"},
		{Inst{Op: Cmp, A: R(0), B: Imm(-1)}, "cmp r0, -1"},
		{Inst{Op: Ld, Dst: 3, A: R(4)}, "r3 = ld [r4]"},
		{Inst{Op: St, A: Imm(7), B: R(2)}, "st [7], r2"},
		{Inst{Op: GetChar, Dst: 0}, "r0 = getchar"},
		{Inst{Op: PutChar, A: Imm(65)}, "putchar 65"},
		{Inst{Op: PutInt, A: R(1)}, "putint r1"},
		{Inst{Op: Prof, SeqID: 4, A: R(2)}, "prof seq4, r2"},
		{Inst{Op: ProfCond, SeqID: 2, Sub: 1, A: R(3), B: Imm(9), Rel: GT}, "profcond seq2.1, r3 gt 9"},
		{Inst{Op: Nop}, "nop"},
		{Inst{Op: Add, Dst: 0, A: R(1), B: R(2)}, "r0 = add r1, r2"},
		{Inst{Op: Call, Dst: 1, Callee: "f", Args: []Operand{Imm(3), R(2)}}, "r1 = call f(3, r2)"},
		{Inst{Op: Call, Dst: NoReg, Callee: "g"}, "call g()"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestTermStrings(t *testing.T) {
	a := &Block{ID: 3}
	b := &Block{ID: 9}
	cases := []struct {
		in   Term
		want string
	}{
		{Term{Kind: TermGoto, Taken: a}, "goto B3"},
		{Term{Kind: TermBr, Rel: LE, Taken: a, Next: b}, "ble B3 else B9"},
		{Term{Kind: TermRet, Val: Imm(0)}, "ret 0"},
		{Term{Kind: TermIJmp, Index: R(1), Targets: []*Block{a, b}}, "ijmp r1 [B3 B9]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestProgramDumpIncludesGlobals(t *testing.T) {
	p := &Program{MemSize: 3}
	p.Globals = append(p.Globals, &Global{Name: "tab", Addr: 0, Size: 3})
	f := &Func{Name: "main", NRegs: 1}
	blk := f.NewBlock()
	blk.Term = Term{Kind: TermRet, Val: Imm(0)}
	p.Funcs = append(p.Funcs, f)
	text := p.Dump()
	if !strings.Contains(text, "global tab @0 size=3") || !strings.Contains(text, "func main") {
		t.Errorf("dump missing pieces:\n%s", text)
	}
}

func TestRelAndOpNames(t *testing.T) {
	for rel, want := range map[Rel]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"} {
		if rel.String() != want {
			t.Errorf("Rel %d prints %q", rel, rel.String())
		}
	}
	if Op(200).String() != "op?" {
		t.Error("unknown opcode should print op?")
	}
	if Rel(77).String() != "rel?" {
		t.Error("unknown rel should print rel?")
	}
}
