package ir

import "testing"

func slotProg() (*Program, *Func) {
	p := &Program{}
	f := &Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	return p, f
}

func TestSlotFilledFromOwnBlock(t *testing.T) {
	p, f := slotProg()
	b := f.NewBlock()
	out := f.NewBlock()
	b.Insts = []Inst{
		{Op: Mov, Dst: 1, A: Imm(5)}, // movable: not read by the compare
		{Op: Cmp, A: R(0), B: Imm(3)},
	}
	b.Term = Term{Kind: TermBr, Rel: EQ, Taken: out, Next: out}
	out.Term = Term{Kind: TermRet, Val: R(1)}
	p.Linearize()
	p.FillDelaySlots()
	if b.Term.Slot != SlotAlways {
		t.Errorf("slot = %v, want always (mov can move past the compare)", b.Term.Slot)
	}
}

func TestSlotNotFilledWhenDefFeedsCompare(t *testing.T) {
	p, f := slotProg()
	b := f.NewBlock()
	empty1 := f.NewBlock()
	empty2 := f.NewBlock()
	b.Insts = []Inst{
		{Op: Mov, Dst: 0, A: Imm(5)}, // defines the compared register
		{Op: Cmp, A: R(0), B: Imm(3)},
	}
	b.Term = Term{Kind: TermBr, Rel: EQ, Taken: empty1, Next: empty2}
	empty1.Term = Term{Kind: TermRet, Val: Imm(0)}
	empty2.Term = Term{Kind: TermRet, Val: Imm(1)}
	p.Linearize()
	p.FillDelaySlots()
	if b.Term.Slot == SlotAlways {
		t.Error("instruction feeding the compare must not fill the slot")
	}
}

func TestSlotFilledFromSuccessor(t *testing.T) {
	p, f := slotProg()
	b := f.NewBlock()
	taken := f.NewBlock()
	fall := f.NewBlock()
	// The chain block holds only the compare: a reordered sequence's
	// typical shape. The fall-through successor has a useful first
	// instruction.
	b.Insts = []Inst{{Op: Cmp, A: R(0), B: Imm(3)}}
	b.Term = Term{Kind: TermBr, Rel: EQ, Taken: taken, Next: fall}
	taken.Term = Term{Kind: TermRet, Val: Imm(1)}
	fall.Insts = []Inst{{Op: Mov, Dst: 1, A: Imm(9)}}
	fall.Term = Term{Kind: TermRet, Val: R(1)}
	p.Linearize()
	p.FillDelaySlots()
	if b.Term.Slot != SlotFallthru {
		t.Errorf("slot = %v, want fallthru", b.Term.Slot)
	}
}

func TestSlotNopCountsByPath(t *testing.T) {
	// Covered via interp in the integration tests; here check the
	// goto/ret shapes: a goto whose target starts usefully is Always.
	p, f := slotProg()
	a := f.NewBlock()
	far := f.NewBlock()
	mid := f.NewBlock()
	a.Insts = []Inst{{Op: Mov, Dst: 1, A: Imm(2)}}
	a.Term = Term{Kind: TermGoto, Taken: far}
	mid.Term = Term{Kind: TermRet, Val: Imm(0)}
	far.Insts = []Inst{{Op: Mov, Dst: 2, A: Imm(3)}}
	far.Term = Term{Kind: TermRet, Val: R(2)}
	p.Linearize()
	p.FillDelaySlots()
	if a.Term.Slot != SlotAlways {
		t.Errorf("goto slot = %v, want always (own mov or target mov)", a.Term.Slot)
	}
	// A return with no instructions to pull has an empty slot.
	if mid.Term.Slot != SlotNone {
		t.Errorf("bare ret slot = %v, want nop", mid.Term.Slot)
	}
}

func TestSlotIJmpIndexConstraint(t *testing.T) {
	p, f := slotProg()
	b := f.NewBlock()
	t0 := f.NewBlock()
	b.Insts = []Inst{{Op: Mov, Dst: 1, A: Imm(0)}}
	b.Term = Term{Kind: TermIJmp, Index: R(1), Targets: []*Block{t0}}
	t0.Term = Term{Kind: TermRet, Val: Imm(0)}
	p.Linearize()
	p.FillDelaySlots()
	if b.Term.Slot == SlotAlways {
		t.Error("instruction defining the jump index must not fill the slot")
	}
}
