package ir

import (
	"fmt"
	"strings"
)

func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return fmt.Sprintf("r%d", o.Reg)
}

func (in *Inst) String() string {
	switch in.Op {
	case Mov, Neg, Not, GetChar:
		if in.Op == GetChar {
			return fmt.Sprintf("r%d = getchar", in.Dst)
		}
		return fmt.Sprintf("r%d = %s %s", in.Dst, in.Op, in.A)
	case Cmp:
		return fmt.Sprintf("cmp %s, %s", in.A, in.B)
	case Ld:
		return fmt.Sprintf("r%d = ld [%s]", in.Dst, in.A)
	case St:
		return fmt.Sprintf("st [%s], %s", in.A, in.B)
	case PutChar, PutInt:
		return fmt.Sprintf("%s %s", in.Op, in.A)
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		if in.Dst == NoReg {
			return fmt.Sprintf("call %s(%s)", in.Callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Callee, strings.Join(args, ", "))
	case Prof:
		return fmt.Sprintf("prof seq%d, %s", in.SeqID, in.A)
	case ProfCond:
		return fmt.Sprintf("profcond seq%d.%d, %s %s %s", in.SeqID, in.Sub, in.A, in.Rel, in.B)
	case Nop:
		return "nop"
	default:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}

func (t *Term) String() string {
	switch t.Kind {
	case TermGoto:
		return fmt.Sprintf("goto B%d", t.Taken.ID)
	case TermBr:
		return fmt.Sprintf("b%s B%d else B%d", t.Rel, t.Taken.ID, t.Next.ID)
	case TermIJmp:
		parts := make([]string, len(t.Targets))
		for i, b := range t.Targets {
			parts[i] = fmt.Sprintf("B%d", b.ID)
		}
		return fmt.Sprintf("ijmp %s [%s]", t.Index, strings.Join(parts, " "))
	case TermRet:
		return fmt.Sprintf("ret %s", t.Val)
	default:
		return "term?"
	}
}

// Dump renders the function as readable text, one block per paragraph, in
// Blocks order.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d)\n", f.Name, f.NParams, f.NRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "B%d:\n", b.ID)
		for i := range b.Insts {
			fmt.Fprintf(&sb, "\t%s\n", b.Insts[i].String())
		}
		fmt.Fprintf(&sb, "\t%s\n", b.Term.String())
	}
	return sb.String()
}

// Dump renders the whole program.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s @%d size=%d\n", g.Name, g.Addr, g.Size)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Dump())
	}
	return sb.String()
}
