package ir

// Linearize lays out every function and assigns program-unique IDs to the
// conditional branches. It must run (again) after any pass that changes
// control flow and before the program is interpreted or measured.
//
// Layout performs the "code repositioning ... to minimize unconditional
// jumps" step the paper reinvokes after reordering: blocks are chained
// greedily along fall-through edges, conditional branches are inverted when
// that makes their fall-through successor adjacent, and a trampoline goto
// block is materialized only when neither successor can be adjacent. After
// Linearize, every TermBr's Next is the block that physically follows it,
// so a dynamic conditional branch costs exactly one instruction and an
// unconditional transfer costs one instruction exactly when it is a real
// jump (goto to a non-adjacent block).
func (p *Program) Linearize() {
	p.nextBranchID = 0
	for _, f := range p.Funcs {
		linearizeFunc(f, &p.nextBranchID)
	}
}

// NextBranchID reports the number of conditional branches assigned IDs by
// the last Linearize (IDs are 0..NextBranchID-1).
func (p *Program) NextBranchID() int { return p.nextBranchID }

func linearizeFunc(f *Func, branchID *int) {
	RemoveUnreachable(f)
	stripNops(f)

	placed := make(map[*Block]bool, len(f.Blocks))
	order := make([]*Block, 0, len(f.Blocks))

	// Greedy fall-through chaining. The seed loop walks the existing
	// block order so layout is deterministic.
	numSeeds := len(f.Blocks) // NewBlock below must not extend this walk
	for seed := 0; seed < numSeeds; seed++ {
		b := f.Blocks[seed]
		for b != nil && !placed[b] {
			placed[b] = true
			order = append(order, b)
			var next *Block
			switch b.Term.Kind {
			case TermGoto:
				if !placed[b.Term.Taken] {
					next = b.Term.Taken
				}
			case TermBr:
				if !placed[b.Term.Next] {
					next = b.Term.Next
				} else if !placed[b.Term.Taken] {
					// Invert the branch so the unplaced
					// successor becomes the fall-through.
					b.Term.Rel = b.Term.Rel.Negate()
					b.Term.Taken, b.Term.Next = b.Term.Next, b.Term.Taken
					next = b.Term.Next
				}
			}
			b = next
		}
	}

	// Materialize trampolines for conditional branches that still cannot
	// fall through, and fix adjacency by inversion where possible.
	final := make([]*Block, 0, len(order))
	for i, b := range order {
		final = append(final, b)
		if b.Term.Kind != TermBr {
			continue
		}
		var follower *Block
		if i+1 < len(order) {
			follower = order[i+1]
		}
		if b.Term.Next == follower {
			continue
		}
		if b.Term.Taken == follower {
			b.Term.Rel = b.Term.Rel.Negate()
			b.Term.Taken, b.Term.Next = b.Term.Next, b.Term.Taken
			continue
		}
		tramp := f.NewBlock() // appended to f.Blocks, which is replaced below
		tramp.Term = Term{Kind: TermGoto, Taken: b.Term.Next}
		b.Term.Next = tramp
		final = append(final, tramp)
	}

	f.Blocks = final
	for i, b := range final {
		b.LayoutIndex = i
		if b.Term.Kind == TermBr {
			b.Term.BranchID = *branchID
			*branchID++
		}
	}
}

func stripNops(f *Func) {
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for i := range b.Insts {
			if b.Insts[i].Op != Nop {
				kept = append(kept, b.Insts[i])
			}
		}
		b.Insts = kept
	}
}
