package ir

// Preds computes the predecessor map for a function. Edges are
// deduplicated: a block appears at most once in another block's
// predecessor list even if several terminator edges join them.
func Preds(f *Func) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	var succs []*Block
	for _, b := range f.Blocks {
		succs = b.Term.Succs(succs[:0])
		seen := map[*Block]bool{}
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				preds[s] = append(preds[s], b)
			}
		}
	}
	return preds
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(f *Func) map[*Block]bool {
	seen := map[*Block]bool{}
	var stack []*Block
	push := func(b *Block) {
		if b != nil && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	push(f.Entry())
	var succs []*Block
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs = b.Term.Succs(succs[:0])
		for _, s := range succs {
			push(s)
		}
	}
	return seen
}

// RemoveUnreachable deletes blocks not reachable from the entry and
// reports whether anything was removed.
func RemoveUnreachable(f *Func) bool {
	live := Reachable(f)
	if len(live) == len(f.Blocks) {
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if live[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	return true
}
