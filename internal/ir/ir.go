// Package ir defines the intermediate representation used throughout the
// branch-reordering pipeline.
//
// The IR deliberately mimics the shape of SPARC-era machine code as seen by
// the vpo optimizer in the paper: virtual registers, a separate comparison
// instruction (CMP) that sets condition codes, conditional branches that
// consume those condition codes, explicit unconditional jumps, and indirect
// jumps through a jump table. Modelling the compare and the branch as two
// instructions is what makes the paper's redundant-comparison elimination
// (Figure 9) a real optimization, and modelling fall-through explicitly is
// what makes dynamic jump counts honest.
package ir

import "math"

// Reg names a virtual register within a function. Registers hold 64-bit
// signed integers. Register numbering is dense: 0..Func.NRegs-1, with the
// first Func.NParams registers holding the incoming arguments.
type Reg int

// NoReg marks the absence of a destination register (e.g. a call whose
// result is discarded).
const NoReg Reg = -1

// MinVal and MaxVal bound the value domain of the machine. They play the
// role of MIN and MAX in the paper's range conditions (Table 1).
const (
	MinVal = math.MinInt64
	MaxVal = math.MaxInt64
)

// Op enumerates the non-terminator instruction opcodes.
type Op int

const (
	// Mov dst, a — copy an operand into a register.
	Mov Op = iota
	// Arithmetic and bitwise: dst = a OP b.
	Add
	Sub
	Mul
	Div // traps (interpreter error) on division by zero
	Rem // traps on division by zero
	And
	Or
	Xor
	Shl
	Shr // arithmetic shift right
	// Unary: dst = OP a.
	Neg
	Not // bitwise complement
	// Cmp a, b — set the condition codes from comparing a with b.
	// The condition codes persist until the next Cmp in the same frame,
	// across block boundaries, exactly like hardware flags.
	Cmp
	// Ld dst, [a] — load from data memory at address a.
	Ld
	// St [a], b — store operand b to data memory at address a.
	St
	// GetChar dst — read the next byte of program input; -1 at EOF.
	GetChar
	// PutChar a — append the low byte of a to program output.
	PutChar
	// PutInt a — append the decimal representation of a to program output.
	PutInt
	// Call dst, callee(args...) — invoke another function.
	Call
	// Prof — profiling pseudo-instruction inserted at the head of a
	// detected branch sequence. Reads operand a (the branch variable) and
	// reports (SeqID, Sub=0, value) to the interpreter's profile hook.
	// It costs zero instructions: the paper measures final,
	// uninstrumented code, and the instrumented executable is a separate
	// compilation pass.
	Prof
	// ProfCond — profiling pseudo-instruction for common-successor
	// branch sequences (Section 10): evaluates "a Rel b" and reports
	// (SeqID, Sub, 0/1) to the profile hook, so a training run can
	// record the joint outcome distribution of the sequence's branches.
	// Costs zero instructions, like Prof.
	ProfCond
	// Nop — placeholder produced by in-place instruction deletion in some
	// peephole passes; removed by later cleanup, costs zero if executed.
	Nop
)

var opNames = [...]string{
	Mov: "mov", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Neg: "neg", Not: "not", Cmp: "cmp", Ld: "ld", St: "st",
	GetChar: "getchar", PutChar: "putchar", PutInt: "putint",
	Call: "call", Prof: "prof", ProfCond: "profcond", Nop: "nop",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Operand is either a register or an immediate constant.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   int64
}

// R builds a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm builds an immediate operand.
func Imm(v int64) Operand { return Operand{IsImm: true, Imm: v} }

// Inst is a single non-terminator instruction. A flat struct (rather than
// an interface per opcode) keeps cloning, rewriting and interpretation
// simple and fast; unused fields are zero.
type Inst struct {
	Op   Op
	Dst  Reg
	A, B Operand

	// Call-only fields.
	Callee string
	Args   []Operand

	// Prof/ProfCond fields: the sequence this instrumentation point
	// belongs to, the condition's index within it, and (ProfCond only)
	// the relation evaluated over A and B.
	SeqID int
	Sub   int
	Rel   Rel
}

// Rel is a comparison relation evaluated by a conditional branch against
// the current condition codes.
type Rel int

const (
	EQ Rel = iota
	NE
	LT
	LE
	GT
	GE
)

var relNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

func (r Rel) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return "rel?"
}

// Negate returns the complementary relation (the branch sense inversion
// used when the linearizer flips a conditional branch).
func (r Rel) Negate() Rel {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default:
		return LT
	}
}

// Holds reports whether relation r holds for the compared pair (a, b).
func (r Rel) Holds(a, b int64) bool {
	switch r {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// TermKind discriminates block terminators.
type TermKind int

const (
	// TermGoto transfers unconditionally to Taken. After linearization a
	// goto to the next block in layout order is free (pure fall-through);
	// any other goto costs one dynamic instruction.
	TermGoto TermKind = iota
	// TermBr branches to Taken when Rel holds for the current condition
	// codes and otherwise falls through to Next. The linearizer
	// guarantees Next is the following block in layout order.
	TermBr
	// TermIJmp is an indirect jump through a jump table: control moves to
	// Targets[Index]. Lowering emits explicit bounds checks beforehand,
	// so Index is always in range in verified programs.
	TermIJmp
	// TermRet returns Val (or 0 if absent) to the caller.
	TermRet
)

// Term is a block terminator.
type Term struct {
	Kind TermKind

	// TermBr fields.
	Rel  Rel
	Next *Block // fall-through successor

	// TermGoto and TermBr target.
	Taken *Block

	// TermIJmp fields.
	Index   Operand
	Targets []*Block

	// TermRet field.
	Val Operand

	// BranchID is a program-unique identity for a conditional branch,
	// assigned by Program.Linearize. Branch predictors index on it (it
	// stands in for the branch instruction's address).
	BranchID int

	// Slot records what the transfer's delay slot holds, decided by
	// Program.FillDelaySlots after the final linearization. Only the
	// machine cycle model consumes it.
	Slot SlotFill
}

// Succs appends the terminator's successor blocks to dst and returns it.
// Duplicates are preserved (an IJmp table may mention a block repeatedly).
func (t *Term) Succs(dst []*Block) []*Block {
	switch t.Kind {
	case TermGoto:
		dst = append(dst, t.Taken)
	case TermBr:
		dst = append(dst, t.Taken, t.Next)
	case TermIJmp:
		dst = append(dst, t.Targets...)
	}
	return dst
}

// ReplaceSucc rewrites every successor edge equal to from so it points to
// to, returning the number of edges rewritten.
func (t *Term) ReplaceSucc(from, to *Block) int {
	n := 0
	if t.Taken == from {
		t.Taken = to
		n++
	}
	if t.Next == from {
		t.Next = to
		n++
	}
	for i, tgt := range t.Targets {
		if tgt == from {
			t.Targets[i] = to
			n++
		}
	}
	return n
}

// Block is a basic block: a run of straight-line instructions ended by a
// single terminator.
type Block struct {
	// ID is unique within the function and stable across passes; new
	// blocks get fresh IDs from Func.NewBlock.
	ID    int
	Insts []Inst
	Term  Term

	// LayoutIndex is the block's position in Func.Blocks after
	// Func.Linearize; -1 beforehand.
	LayoutIndex int
}

// Func is a single function.
type Func struct {
	Name    string
	NParams int
	NRegs   int
	Blocks  []*Block // Blocks[0] is the entry block

	nextID int
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock allocates a block with a fresh ID and appends it to the
// function. The caller fills in instructions and terminator.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextID, LayoutIndex: -1}
	f.nextID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NRegs)
	f.NRegs++
	return r
}

// ResetIDs renumbers block IDs densely in current Blocks order. Passes
// that delete many blocks may call this to keep IDs small; it must not be
// called while any external structure holds block IDs.
func (f *Func) ResetIDs() {
	for i, b := range f.Blocks {
		b.ID = i
	}
	f.nextID = len(f.Blocks)
}

// SyncNextID must be called after constructing a Func by hand (tests) so
// NewBlock never reuses an ID.
func (f *Func) SyncNextID() {
	max := -1
	for _, b := range f.Blocks {
		if b.ID > max {
			max = b.ID
		}
	}
	f.nextID = max + 1
}

// Global is a datum in the flat data memory: a scalar (Size 1) or array.
type Global struct {
	Name string
	Addr int64 // starting word address in data memory
	Size int64 // number of words
	Init []int64
}

// Program is a whole translation unit.
type Program struct {
	Funcs   []*Func
	Globals []*Global
	MemSize int64 // words of data memory (covers all globals)

	nextBranchID int
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
