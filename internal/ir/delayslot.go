package ir

// Branch delay slots. The paper's SPARC targets execute one instruction
// after every control transfer; the compiler fills that slot with a
// useful instruction when it can and with a nop otherwise. The paper
// applies reordering before delay-slot filling and observes the
// interaction both ways ("sometimes delay slots would be filled from the
// other successor and would not execute a useful instruction" — the
// stated cause of hyphen's regression).
//
// We model the slot at the cost level: FillDelaySlots decides, per
// terminator, whether its slot would hold a useful instruction, and the
// interpreter counts a SlotNop for every executed transfer whose slot is
// not useful on the path taken. Instructions are never actually moved, so
// semantics and the instruction counts of Tables 4/8 are untouched; the
// machine cycle model (Table 7) charges the nops.

// SlotFill describes what a transfer's delay slot holds.
type SlotFill int

const (
	// SlotNone: no useful instruction could fill the slot; it holds a
	// nop that executes on every path.
	SlotNone SlotFill = iota
	// SlotAlways: an instruction from before the transfer fills the
	// slot; useful on every path.
	SlotAlways
	// SlotFallthru: filled from the fall-through successor; useful only
	// when a conditional branch is not taken.
	SlotFallthru
	// SlotTaken: filled from the branch target (an annulled slot in
	// SPARC terms); useful only when the branch is taken.
	SlotTaken
)

func (s SlotFill) String() string {
	switch s {
	case SlotAlways:
		return "always"
	case SlotFallthru:
		return "fallthru"
	case SlotTaken:
		return "taken"
	default:
		return "nop"
	}
}

// FillDelaySlots decides each terminator's slot fill. Call after the
// final Linearize; layout does not change afterwards.
func (p *Program) FillDelaySlots() {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Term.Slot = fillFor(b)
		}
	}
}

// fillFor chooses the best available fill for b's terminator.
func fillFor(b *Block) SlotFill {
	// An instruction from the block itself fills the slot on every
	// path. For a conditional branch it must not be the comparison the
	// branch consumes (nor write its operands, since it would then move
	// across the compare); for an indirect jump it must not define the
	// index register.
	if candidateFromBlock(b) {
		return SlotAlways
	}
	switch b.Term.Kind {
	case TermBr:
		// Fill from a successor: prefer the fall-through (executes more
		// often in loop-free runs of a reordered chain, where branches
		// out are the exceptional path), then the annulled taken side.
		if firstUsefulInst(b.Term.Next) {
			return SlotFallthru
		}
		if firstUsefulInst(b.Term.Taken) {
			return SlotTaken
		}
	case TermGoto:
		if firstUsefulInst(b.Term.Taken) {
			// Filling from the only successor is useful on every path.
			return SlotAlways
		}
	}
	return SlotNone
}

// candidateFromBlock reports whether some instruction of b can move into
// the slot.
func candidateFromBlock(b *Block) bool {
	insts := b.Insts
	// Walk backwards past the final compare (which must stay put for a
	// conditional branch) looking for a movable instruction.
	i := len(insts) - 1
	if b.Term.Kind == TermBr {
		for i >= 0 && insts[i].Op == Cmp {
			i--
		}
	}
	for ; i >= 0; i-- {
		in := &insts[i]
		switch in.Op {
		case Prof, ProfCond, Nop:
			continue
		case Cmp:
			// A compare whose flags feed this block's own branch (or a
			// successor's) cannot move past the branch.
			return false
		}
		// The instruction must not define a register the terminator
		// still needs.
		if b.Term.Kind == TermIJmp && !b.Term.Index.IsImm {
			if d := instSlotDef(in); d == b.Term.Index.Reg {
				return false
			}
		}
		if b.Term.Kind == TermRet && !b.Term.Val.IsImm {
			if d := instSlotDef(in); d == b.Term.Val.Reg {
				return false
			}
		}
		if b.Term.Kind == TermBr {
			// Moving the instruction across the compare requires it not
			// to define the compared registers.
			if d := instSlotDef(in); d != NoReg {
				for j := i + 1; j < len(insts); j++ {
					if insts[j].Op != Cmp {
						continue
					}
					if (!insts[j].A.IsImm && insts[j].A.Reg == d) ||
						(!insts[j].B.IsImm && insts[j].B.Reg == d) {
						return false
					}
				}
			}
		}
		return true
	}
	return false
}

// instSlotDef mirrors the optimizer's def computation without importing
// it (ir must stay dependency-free).
func instSlotDef(in *Inst) Reg {
	switch in.Op {
	case Mov, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		Neg, Not, Ld, GetChar, Call:
		return in.Dst
	default:
		return NoReg
	}
}

// firstUsefulInst reports whether the successor starts with an
// instruction that could be hoisted into the slot (anything but
// instrumentation; compares qualify, they just re-execute harmlessly in
// the model).
func firstUsefulInst(b *Block) bool {
	for i := range b.Insts {
		switch b.Insts[i].Op {
		case Prof, ProfCond, Nop:
			continue
		default:
			return true
		}
	}
	return false
}
