package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildFunc assembles a function from a terse description for tests.
func ret(v Operand) Term  { return Term{Kind: TermRet, Val: v} }
func goto_(b *Block) Term { return Term{Kind: TermGoto, Taken: b} }
func br(rel Rel, taken, next *Block) Term {
	return Term{Kind: TermBr, Rel: rel, Taken: taken, Next: next}
}

func cmp(a, b Operand) Inst { return Inst{Op: Cmp, A: a, B: b} }
func mov(d Reg, a Operand) Inst {
	return Inst{Op: Mov, Dst: d, A: a}
}

func TestRelHolds(t *testing.T) {
	cases := []struct {
		rel  Rel
		a, b int64
		want bool
	}{
		{EQ, 3, 3, true}, {EQ, 3, 4, false},
		{NE, 3, 4, true}, {NE, 3, 3, false},
		{LT, 2, 3, true}, {LT, 3, 3, false},
		{LE, 3, 3, true}, {LE, 4, 3, false},
		{GT, 4, 3, true}, {GT, 3, 3, false},
		{GE, 3, 3, true}, {GE, 2, 3, false},
	}
	for _, c := range cases {
		if got := c.rel.Holds(c.a, c.b); got != c.want {
			t.Errorf("%v.Holds(%d,%d) = %v", c.rel, c.a, c.b, got)
		}
	}
}

func TestRelNegateProperty(t *testing.T) {
	f := func(a, b int64, r uint8) bool {
		rel := Rel(int(r) % 6)
		return rel.Holds(a, b) == !rel.Negate().Holds(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredsAndReachable(t *testing.T) {
	f := &Func{Name: "t", NRegs: 1}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	dead := f.NewBlock()
	b0.Insts = []Inst{cmp(R(0), Imm(0))}
	b0.Term = br(EQ, b1, b2)
	b1.Term = goto_(b2)
	b2.Term = ret(Imm(0))
	dead.Term = goto_(b0)

	preds := Preds(f)
	if len(preds[b2]) != 2 {
		t.Errorf("b2 has %d preds, want 2", len(preds[b2]))
	}
	if len(preds[b0]) != 1 { // from dead only
		t.Errorf("b0 has %d preds, want 1", len(preds[b0]))
	}
	reach := Reachable(f)
	if reach[dead] {
		t.Error("dead block marked reachable")
	}
	if !reach[b2] {
		t.Error("b2 not reachable")
	}
	if !RemoveUnreachable(f) {
		t.Error("RemoveUnreachable found nothing")
	}
	if len(f.Blocks) != 3 {
		t.Errorf("have %d blocks after removal, want 3", len(f.Blocks))
	}
}

func TestLinearizeAdjacency(t *testing.T) {
	// A diamond whose branch cannot have both successors adjacent.
	p := &Program{}
	f := &Func{Name: "main", NRegs: 2}
	p.Funcs = append(p.Funcs, f)
	b0 := f.NewBlock()
	left := f.NewBlock()
	right := f.NewBlock()
	join := f.NewBlock()
	b0.Insts = []Inst{cmp(R(0), Imm(5))}
	b0.Term = br(LT, left, right)
	left.Insts = []Inst{mov(1, Imm(1))}
	left.Term = goto_(join)
	right.Insts = []Inst{mov(1, Imm(2))}
	right.Term = goto_(join)
	join.Term = ret(R(1))

	p.Linearize()
	checkLinearized(t, f)
}

func checkLinearized(t *testing.T, f *Func) {
	t.Helper()
	for i, b := range f.Blocks {
		if b.LayoutIndex != i {
			t.Errorf("block %d has LayoutIndex %d", i, b.LayoutIndex)
		}
		if b.Term.Kind == TermBr {
			if b.Term.Next.LayoutIndex != b.LayoutIndex+1 {
				t.Errorf("B%d: fall-through is not adjacent after linearize", b.ID)
			}
		}
	}
	// Branch IDs unique.
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Term.Kind == TermBr {
			if seen[b.Term.BranchID] {
				t.Errorf("duplicate branch ID %d", b.Term.BranchID)
			}
			seen[b.Term.BranchID] = true
		}
	}
}

// Random CFGs must all satisfy the linearizer's invariants.
func TestLinearizeRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := &Program{}
		f := &Func{Name: "main", NRegs: 2}
		p.Funcs = append(p.Funcs, f)
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			f.NewBlock()
		}
		for _, b := range f.Blocks {
			switch rng.Intn(3) {
			case 0:
				b.Term = ret(Imm(0))
			case 1:
				b.Term = goto_(f.Blocks[rng.Intn(n)])
			default:
				b.Insts = []Inst{cmp(R(0), Imm(int64(rng.Intn(5))))}
				b.Term = br(Rel(rng.Intn(6)), f.Blocks[rng.Intn(n)], f.Blocks[rng.Intn(n)])
			}
		}
		p.Linearize()
		checkLinearized(t, f)
		if err := p.Verify(); err != nil {
			// Flags may legitimately be undefined on some random CFGs;
			// only structural errors count here.
			if !strings.Contains(err.Error(), "condition codes") {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestVerifyCatchesBadPrograms(t *testing.T) {
	mk := func(mutate func(p *Program, f *Func, b *Block)) error {
		p := &Program{}
		f := &Func{Name: "main", NRegs: 2}
		p.Funcs = append(p.Funcs, f)
		b := f.NewBlock()
		b.Insts = []Inst{mov(0, Imm(1))}
		b.Term = ret(R(0))
		mutate(p, f, b)
		return p.Verify()
	}
	if err := mk(func(p *Program, f *Func, b *Block) {}); err != nil {
		t.Fatalf("baseline program invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(p *Program, f *Func, b *Block)
	}{
		{"reg out of range", func(p *Program, f *Func, b *Block) {
			b.Insts[0].Dst = 99
		}},
		{"negative reg", func(p *Program, f *Func, b *Block) {
			b.Insts[0].A = R(-2)
		}},
		{"edge outside function", func(p *Program, f *Func, b *Block) {
			other := &Block{ID: 77, Term: ret(Imm(0))}
			b.Term = goto_(other)
		}},
		{"unknown callee", func(p *Program, f *Func, b *Block) {
			b.Insts = append(b.Insts, Inst{Op: Call, Dst: NoReg, Callee: "nope"})
		}},
		{"bad arity", func(p *Program, f *Func, b *Block) {
			g := &Func{Name: "g", NParams: 2, NRegs: 2}
			gb := g.NewBlock()
			gb.Term = ret(Imm(0))
			p.Funcs = append(p.Funcs, g)
			b.Insts = append(b.Insts, Inst{Op: Call, Dst: NoReg, Callee: "g", Args: []Operand{Imm(1)}})
		}},
		{"branch without flags", func(p *Program, f *Func, b *Block) {
			b2 := f.NewBlock()
			b2.Term = ret(Imm(0))
			b.Term = br(EQ, b2, b2)
		}},
		{"empty ijmp", func(p *Program, f *Func, b *Block) {
			b.Term = Term{Kind: TermIJmp, Index: R(0)}
		}},
		{"duplicate func", func(p *Program, f *Func, b *Block) {
			p.Funcs = append(p.Funcs, &Func{Name: "main", NRegs: 1,
				Blocks: []*Block{{Term: ret(Imm(0))}}})
		}},
		{"overlapping globals", func(p *Program, f *Func, b *Block) {
			p.Globals = []*Global{
				{Name: "a", Addr: 0, Size: 4},
				{Name: "b", Addr: 2, Size: 4},
			}
			p.MemSize = 8
		}},
		{"global beyond memsize", func(p *Program, f *Func, b *Block) {
			p.Globals = []*Global{{Name: "a", Addr: 0, Size: 4}}
			p.MemSize = 2
		}},
		{"init longer than global", func(p *Program, f *Func, b *Block) {
			p.Globals = []*Global{{Name: "a", Addr: 0, Size: 1, Init: []int64{1, 2}}}
			p.MemSize = 4
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: Verify accepted a bad program", c.name)
		}
	}
}

func TestVerifyFlagsAcrossBlocks(t *testing.T) {
	// Flags set in a predecessor satisfy a branch in the successor.
	p := &Program{}
	f := &Func{Name: "main", NRegs: 1}
	p.Funcs = append(p.Funcs, f)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []Inst{cmp(R(0), Imm(3))}
	b0.Term = br(EQ, b2, b1)
	b1.Term = br(LT, b2, b2) // reuses b0's flags
	b2.Term = ret(Imm(0))
	if err := p.Verify(); err != nil {
		t.Errorf("cross-block flag use rejected: %v", err)
	}
}

func TestCloneProgramIndependence(t *testing.T) {
	p := &Program{MemSize: 4}
	p.Globals = append(p.Globals, &Global{Name: "g", Size: 4, Init: []int64{1, 2}})
	f := &Func{Name: "main", NRegs: 2}
	p.Funcs = append(p.Funcs, f)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []Inst{cmp(R(0), Imm(1))}
	b0.Term = br(EQ, b1, b1)
	b1.Term = ret(Imm(0))

	c := CloneProgram(p)
	// Mutating the clone must not touch the original.
	cf := c.Func("main")
	cf.Blocks[0].Insts[0].B = Imm(99)
	cf.Blocks[0].Term.Rel = NE
	c.Globals[0].Init[0] = 42
	if p.Funcs[0].Blocks[0].Insts[0].B.Imm != 1 {
		t.Error("clone shares instruction storage")
	}
	if p.Funcs[0].Blocks[0].Term.Rel != EQ {
		t.Error("clone shares terminator")
	}
	if p.Globals[0].Init[0] != 1 {
		t.Error("clone shares global init")
	}
	// Clone's edges must point at clone blocks.
	if cf.Blocks[0].Term.Taken == p.Funcs[0].Blocks[1] {
		t.Error("clone edge points into the original")
	}
}

func TestCloneBlocksEdgeRedirection(t *testing.T) {
	f := &Func{Name: "main", NRegs: 1}
	a := f.NewBlock()
	b := f.NewBlock()
	out := f.NewBlock()
	a.Insts = []Inst{cmp(R(0), Imm(0))}
	a.Term = br(EQ, b, out)
	b.Term = goto_(a) // cycle inside cloned set
	out.Term = ret(Imm(0))

	m := CloneBlocks(f, []*Block{a, b})
	ca, cb := m[a], m[b]
	if ca.Term.Taken != cb {
		t.Error("internal edge not redirected to clone")
	}
	if ca.Term.Next != out {
		t.Error("external edge should stay on the original block")
	}
	if cb.Term.Taken != ca {
		t.Error("cycle not redirected")
	}
}

func TestDumpContainsStructure(t *testing.T) {
	f := &Func{Name: "main", NRegs: 2}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []Inst{
		mov(0, Imm(7)),
		{Op: Add, Dst: 1, A: R(0), B: Imm(1)},
		cmp(R(1), Imm(8)),
	}
	b0.Term = br(EQ, b1, b1)
	b1.Term = ret(R(1))
	text := f.Dump()
	for _, want := range []string{"func main", "B0:", "r0 = mov 7", "r1 = add r0, 1", "cmp r1, 8", "beq B1", "ret r1"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestNewRegAndResetIDs(t *testing.T) {
	f := &Func{Name: "x", NRegs: 3}
	if r := f.NewReg(); r != 3 {
		t.Errorf("NewReg = %d, want 3", r)
	}
	f.NewBlock()
	f.NewBlock()
	f.Blocks = f.Blocks[1:] // drop one
	f.ResetIDs()
	if f.Blocks[0].ID != 0 {
		t.Errorf("ResetIDs left ID %d", f.Blocks[0].ID)
	}
	nb := f.NewBlock()
	if nb.ID != 1 {
		t.Errorf("NewBlock after ResetIDs = %d, want 1", nb.ID)
	}
}
