package pipeline

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

// buildPair builds one configuration both ways — monolithic Build and
// staged through cache — and fails unless the outputs are byte-identical.
func buildPair(t *testing.T, cache *StageCache, src string, train []byte, o Options) *BuildResult {
	t.Helper()
	mono, err := Build(src, train, o)
	if err != nil {
		t.Fatalf("monolithic Build: %v", err)
	}
	staged, err := cache.Build(src, train, o)
	if err != nil {
		t.Fatalf("staged Build: %v", err)
	}
	if got, want := staged.Baseline.Dump(), mono.Baseline.Dump(); got != want {
		t.Fatalf("staged baseline differs from monolithic baseline\nstaged:\n%s\nmonolithic:\n%s", got, want)
	}
	if got, want := staged.Reordered.Dump(), mono.Reordered.Dump(); got != want {
		t.Fatalf("staged reordered program differs from monolithic\nstaged:\n%s\nmonolithic:\n%s", got, want)
	}
	if got, want := fmt.Sprintf("%+v", staged.Results), fmt.Sprintf("%+v", mono.Results); got != want {
		t.Fatalf("staged results differ: %s vs %s", got, want)
	}
	if got, want := fmt.Sprintf("%+v", staged.OrResults), fmt.Sprintf("%+v", mono.OrResults); got != want {
		t.Fatalf("staged or-results differ: %s vs %s", got, want)
	}
	return staged
}

// The staged pipeline must be byte-identical to the monolithic one over
// the whole evaluation roster. Each workload runs under a rotating
// heuristic set so all three sets are exercised without tripling the
// build count.
func TestStagedBuildMatchesMonolithicRoster(t *testing.T) {
	sets := []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
	for i, w := range workload.All() {
		w, set := w, sets[i%len(sets)]
		t.Run(fmt.Sprintf("%s/set%v", w.Name, set), func(t *testing.T) {
			t.Parallel()
			cache := NewStageCache(0)
			buildPair(t, cache, w.Source, w.Train(), Options{Switch: set, Optimize: true})
		})
	}
}

// Randomized TransformOptions (and the Section 10 extension) must stay
// byte-identical too — every variant shares the cached stages, which is
// exactly where divergence would creep in.
func TestStagedBuildMatchesMonolithicRandomOptions(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	train := w.Train()
	rng := rand.New(rand.NewSource(7))
	cache := NewStageCache(0)
	for i := 0; i < 12; i++ {
		o := Options{
			Switch:          []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}[rng.Intn(3)],
			Optimize:        true,
			CommonSuccessor: rng.Intn(2) == 0,
			Transform: core.TransformOptions{
				NoBoundOrder: rng.Intn(2) == 0,
				NoCmpReuse:   rng.Intn(2) == 0,
				NoTailDup:    rng.Intn(2) == 0,
			},
		}
		t.Run(fmt.Sprintf("variant%d", i), func(t *testing.T) {
			buildPair(t, cache, w.Source, train, o)
		})
	}
}

// Stage invalidation must be exact: a Transform change reruns only the
// finalize stage, a training-input change recomputes only stage 2, a
// frontend-option change recomputes everything.
func TestStageCacheInvalidation(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	trainA, trainB := w.Train(), w.Test()
	cache := NewStageCache(0)
	base := Options{Switch: lower.SetI, Optimize: true}
	mustStage := func(o Options, train []byte, want StageStats) {
		t.Helper()
		if _, err := cache.Build(w.Source, train, o); err != nil {
			t.Fatalf("Build: %v", err)
		}
		if got := cache.Stats(); got != want {
			t.Fatalf("stats after build: got %+v, want %+v", got, want)
		}
	}

	// Cold: one frontend, one training run. Build consults the frontend
	// cache twice per call (once directly, once from Train), so the
	// second consult is already a hit.
	mustStage(base, trainA, StageStats{FrontendRuns: 1, FrontendHits: 1, TrainRuns: 1})

	// Transform variant: stage 3 only — no new frontend or training runs.
	vary := base
	vary.Transform = core.TransformOptions{NoTailDup: true}
	mustStage(vary, trainA, StageStats{FrontendRuns: 1, FrontendHits: 2, TrainRuns: 1, TrainHits: 1})

	// New training input: stage 2 recomputes, stage 1 is reused.
	mustStage(base, trainB, StageStats{FrontendRuns: 1, FrontendHits: 4, TrainRuns: 2, TrainHits: 1})

	// New detection config: stage 2 recomputes, stage 1 is reused.
	cs := base
	cs.CommonSuccessor = true
	mustStage(cs, trainA, StageStats{FrontendRuns: 1, FrontendHits: 6, TrainRuns: 3, TrainHits: 1})

	// New heuristic set: everything recomputes.
	set3 := base
	set3.Switch = lower.SetIII
	mustStage(set3, trainA, StageStats{FrontendRuns: 2, FrontendHits: 7, TrainRuns: 4, TrainHits: 1})

	// Full repeat: every stage hits (a stage-2 memory hit skips the inner
	// frontend lookup, so only Build's own consult counts).
	mustStage(base, trainA, StageStats{FrontendRuns: 2, FrontendHits: 8, TrainRuns: 4, TrainHits: 2})
}

// memProfiles is an in-memory ProfileStore for tests.
type memProfiles struct {
	mu      sync.Mutex
	entries map[string]*TrainProduct
	gets    int
	puts    int
}

func profilesKey(src string, train []byte, fo FrontendOptions, d DetectOptions) string {
	return fmt.Sprintf("%q %q %+v %+v", src, train, fo, d)
}

func (m *memProfiles) GetProfile(src string, train []byte, fo FrontendOptions, d DetectOptions) (*TrainProduct, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	tp, ok := m.entries[profilesKey(src, train, fo, d)]
	return tp, ok
}

func (m *memProfiles) PutProfile(src string, train []byte, fo FrontendOptions, d DetectOptions, tp *TrainProduct) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.entries == nil {
		m.entries = map[string]*TrainProduct{}
	}
	m.entries[profilesKey(src, train, fo, d)] = tp
}

// A warm ProfileStore must let a fresh cache skip the training run
// entirely, and the resulting build must still be byte-identical to the
// monolithic path.
func TestStageCacheProfileStoreWarm(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	train := w.Train()
	o := Options{Switch: lower.SetI, Optimize: true}
	profiles := &memProfiles{}

	cold := NewStageCache(0)
	cold.Profiles = profiles
	if _, err := cold.Build(w.Source, train, o); err != nil {
		t.Fatalf("cold Build: %v", err)
	}
	if profiles.puts != 1 {
		t.Fatalf("cold build wrote %d profiles, want 1", profiles.puts)
	}
	if st := cold.Stats(); st.TrainRuns != 1 || st.TrainStoreHits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	// A fresh cache (new process, same persistent tier) must not train.
	warm := NewStageCache(0)
	warm.Profiles = profiles
	buildPair(t, warm, w.Source, train, o)
	if st := warm.Stats(); st.TrainRuns != 0 || st.TrainStoreHits != 1 {
		t.Fatalf("warm stats: %+v (training run not skipped)", st)
	}
	if profiles.puts != 1 {
		t.Fatalf("warm build re-uploaded the profile: %d puts", profiles.puts)
	}
}

// Concurrent builds of one configuration must share single-flight stage
// computations: exactly one frontend and one training run.
func TestStageCacheSingleFlight(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	train := w.Train()
	o := Options{Switch: lower.SetI, Optimize: true}
	cache := NewStageCache(0)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cache.Build(w.Source, train, o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.FrontendRuns != 1 || st.TrainRuns != 1 {
		t.Fatalf("concurrent builds did not share stages: %+v", st)
	}
}

// Eviction must bound the maps but never lose correctness: an evicted
// stage recomputes on next use.
func TestStageCacheEviction(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	cache := NewStageCache(1)
	sets := []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
	for _, set := range sets {
		if _, err := cache.Frontend(w.Source, FrontendOptions{Switch: set, Optimize: true}); err != nil {
			t.Fatalf("frontend set %v: %v", set, err)
		}
	}
	if st := cache.Stats(); st.FrontendRuns != 3 {
		t.Fatalf("stats after fills: %+v", st)
	}
	// Set I was evicted long ago; using it again must recompute, not fail.
	if _, err := cache.Frontend(w.Source, FrontendOptions{Switch: lower.SetI, Optimize: true}); err != nil {
		t.Fatalf("re-frontend: %v", err)
	}
	if st := cache.Stats(); st.FrontendRuns != 4 {
		t.Fatalf("evicted frontend was not recomputed: %+v", st)
	}
}

// A training product from a diverging detection run must fail loudly in
// finalize, not silently misattribute counts.
func TestFinalizeStagesRejectsMismatchedProduct(t *testing.T) {
	w, ok := workload.Named("wc")
	if !ok {
		t.Fatal("wc workload missing")
	}
	o := Options{Switch: lower.SetI, Optimize: true}
	front, err := BuildFrontend(w.Source, o.Frontend())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := TrainStage(front, w.Train(), o.Detection())
	if err != nil {
		t.Fatal(err)
	}
	bad := *tp
	bad.NumSeqs++
	if _, err := FinalizeStages(front, &bad, o); err == nil {
		t.Fatal("finalize accepted a product with the wrong sequence count")
	}
}
