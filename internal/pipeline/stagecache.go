package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"sync"

	"branchreorder/internal/interp"
)

// StageCache memoizes the staged build pipeline's cacheable stages:
// frontends (stage 1) by (source, Switch, Optimize) and training products
// (stage 2) by (frontend key, training input, CommonSuccessor). Build
// composes the stages through the cache, so a 10-variant ablation grid
// performs exactly one frontend and one training run per (source, set,
// detection config) instead of one per variant.
//
// Lookups are single-flight: concurrent builds that need the same stage
// share one computation, the losers blocking on the winner. Both maps are
// bounded (LRU eviction), so a long-lived cache cannot grow without
// limit; an evicted stage simply recomputes on next use.
//
// Cached products are immutable by contract: FrontendProduct.Prog is
// cloned by every consumer before mutation, and TrainProduct counts are
// only read. A StageCache is safe for concurrent use.
type StageCache struct {
	// Profiles, when non-nil, is a persistent tier behind the in-memory
	// stage-2 map: memory misses probe it before paying for a training
	// run, and fresh training products are written back. Set it before
	// the first Build.
	Profiles ProfileStore

	// Exec selects the execution engine for training runs (and, via
	// AutoBuildWith, auto-evaluation runs). It deliberately lives
	// outside Options and every fingerprint: profiles are byte-identical
	// under any engine, so the choice must never split caches. Set it
	// before the first Build; the zero value is the fast interpreter.
	Exec interp.Engine

	mu     sync.Mutex
	limit  int
	fronts map[string]*stageEntry[*FrontendProduct]
	trains map[string]*stageEntry[*TrainProduct]
	// frontUse and trainUse order keys least-recently-used first.
	frontUse []string
	trainUse []string
	stats    StageStats
}

// ProfileStore is a persistent tier for stage-2 training products —
// typically content-addressed records in the bench result store, shared
// via the disk and fleet cache tiers. Implementations must be safe for
// concurrent use. PutProfile is best-effort: failures are logged or
// dropped by the implementation, never surfaced to the build.
type ProfileStore interface {
	GetProfile(src string, train []byte, fo FrontendOptions, d DetectOptions) (*TrainProduct, bool)
	PutProfile(src string, train []byte, fo FrontendOptions, d DetectOptions, tp *TrainProduct)
}

// ProfileMerger is the optional merging extension of a ProfileStore:
// fold a fresh training product into the persistent merged profile for
// (src, fo, d) and return the decayed fold the build should consume.
// The bool reports whether a previously accumulated record contributed
// — the warm-start signal surfaced as ProfileMergeHits. Implementations
// without a persistent tier return (tp, false). Builds use merging when
// d.Profile.Merge is set and the attached ProfileStore implements this
// interface.
type ProfileMerger interface {
	MergeProfile(src string, train []byte, fo FrontendOptions, d DetectOptions, tp *TrainProduct) (*TrainProduct, bool)
}

// StageStats counts a cache's per-stage activity.
type StageStats struct {
	// FrontendRuns counts stage-1 computations; FrontendHits counts
	// lookups served from memory (including joined in-flight runs).
	FrontendRuns int
	FrontendHits int
	// TrainRuns counts training runs actually executed; TrainHits counts
	// lookups served from memory; TrainStoreHits counts training runs
	// avoided by a ProfileStore record.
	TrainRuns      int
	TrainHits      int
	TrainStoreHits int
	// SampledTrainRuns counts the subset of TrainRuns that collected
	// sampled (non-exact) counts; ProfileMergeHits counts training runs
	// whose counts were folded into a pre-existing merged profile record
	// (fleet warm start).
	SampledTrainRuns int
	ProfileMergeHits int
}

// stageEntry is one single-flight slot. done is closed once val/err are
// final.
type stageEntry[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// DefaultStageLimit bounds each stage map of a zero-configured cache:
// enough for the full evaluation matrix (17 workloads x 3 sets) with
// room to spare, small enough that a long-lived engine cannot hoard
// programs without bound.
const DefaultStageLimit = 96

// NewStageCache returns a cache holding at most limit entries per stage
// (DefaultStageLimit when limit <= 0).
func NewStageCache(limit int) *StageCache {
	if limit <= 0 {
		limit = DefaultStageLimit
	}
	return &StageCache{
		limit:  limit,
		fronts: map[string]*stageEntry[*FrontendProduct]{},
		trains: map[string]*stageEntry[*TrainProduct]{},
	}
}

// Stats returns a snapshot of the per-stage counters.
func (c *StageCache) Stats() StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// frontendKey derives the stage-1 content address. Sections are
// length-prefixed so concatenations cannot collide.
func frontendKey(src string, fo FrontendOptions) string {
	h := sha256.New()
	keySection(h, "source", []byte(src))
	keySection(h, "frontend", []byte(fmt.Sprintf("switch=%d optimize=%t", fo.Switch, fo.Optimize)))
	return hex.EncodeToString(h.Sum(nil))
}

// trainKey derives the stage-2 content address from the stage-1 key, the
// training input, and the detection configuration (which includes the
// profile configuration: sampled counts are a different product).
func trainKey(frontKey string, train []byte, d DetectOptions) string {
	h := sha256.New()
	keySection(h, "frontend-key", []byte(frontKey))
	keySection(h, "train", train)
	enc, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("pipeline: marshal DetectOptions: %v", err))
	}
	keySection(h, "detect", enc)
	return hex.EncodeToString(h.Sum(nil))
}

func keySection(h hash.Hash, name string, data []byte) {
	fmt.Fprintf(h, "%s %d\n", name, len(data))
	h.Write(data)
}

// touch moves key to the most-recently-used end of use, appending it if
// absent, and returns the updated order.
func touch(use []string, key string) []string {
	for i, k := range use {
		if k == key {
			return append(append(use[:i:i], use[i+1:]...), key)
		}
	}
	return append(use, key)
}

// Frontend returns the stage-1 product for (src, fo), computing it at
// most once per cached lifetime. The returned product is immutable;
// clone its program before mutating.
func (c *StageCache) Frontend(src string, fo FrontendOptions) (*FrontendProduct, error) {
	key := frontendKey(src, fo)
	c.mu.Lock()
	if ent, ok := c.fronts[key]; ok {
		c.stats.FrontendHits++
		c.frontUse = touch(c.frontUse, key)
		c.mu.Unlock()
		<-ent.done
		return ent.val, ent.err
	}
	ent := &stageEntry[*FrontendProduct]{done: make(chan struct{})}
	c.fronts[key] = ent
	c.frontUse = touch(c.frontUse, key)
	c.stats.FrontendRuns++
	if len(c.fronts) > c.limit {
		c.evictFrontLocked()
	}
	c.mu.Unlock()

	ent.val, ent.err = BuildFrontend(src, fo)
	close(ent.done)
	if ent.err != nil {
		// Errors are not products: drop the entry so a later lookup
		// retries instead of replaying a stale failure.
		c.mu.Lock()
		if c.fronts[key] == ent {
			delete(c.fronts, key)
			c.frontUse = remove(c.frontUse, key)
		}
		c.mu.Unlock()
	}
	return ent.val, ent.err
}

// Train returns the stage-2 product for (src, train, fo, d), running the
// training pass at most once per cached lifetime. Memory misses probe
// the ProfileStore (when attached) before computing; fresh products are
// written back to it.
func (c *StageCache) Train(src string, train []byte, fo FrontendOptions, d DetectOptions) (*TrainProduct, error) {
	key := trainKey(frontendKey(src, fo), train, d)
	c.mu.Lock()
	if ent, ok := c.trains[key]; ok {
		c.stats.TrainHits++
		c.trainUse = touch(c.trainUse, key)
		c.mu.Unlock()
		<-ent.done
		return ent.val, ent.err
	}
	ent := &stageEntry[*TrainProduct]{done: make(chan struct{})}
	c.trains[key] = ent
	c.trainUse = touch(c.trainUse, key)
	if len(c.trains) > c.limit {
		c.evictTrainLocked()
	}
	c.mu.Unlock()

	ent.val, ent.err = c.train(src, train, fo, d)
	close(ent.done)
	if ent.err != nil {
		c.mu.Lock()
		if c.trains[key] == ent {
			delete(c.trains, key)
			c.trainUse = remove(c.trainUse, key)
		}
		c.mu.Unlock()
	}
	return ent.val, ent.err
}

// train computes one stage-2 product: persistent tier first, then the
// real training run (written back to the persistent tier on success).
//
// Merge mode inverts the flow: the training run always executes (each
// run is a fresh contribution, so a cached solo profile must not
// short-circuit it) and its counts are folded through the persistent
// merged record, whose decayed fold is what the build consumes.
func (c *StageCache) train(src string, train []byte, fo FrontendOptions, d DetectOptions) (*TrainProduct, error) {
	merge := d.Profile.Merge
	if c.Profiles != nil && !merge {
		if tp, ok := c.Profiles.GetProfile(src, train, fo, d); ok {
			c.mu.Lock()
			c.stats.TrainStoreHits++
			c.mu.Unlock()
			return tp, nil
		}
	}
	front, err := c.Frontend(src, fo)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.TrainRuns++
	if d.Profile.Sampling() {
		c.stats.SampledTrainRuns++
	}
	c.mu.Unlock()
	tp, err := TrainStageWith(front, train, d, c.Exec)
	if err != nil {
		return nil, err
	}
	if merge {
		if merger, ok := c.Profiles.(ProfileMerger); ok {
			folded, reused := merger.MergeProfile(src, train, fo, d, tp)
			if folded != nil {
				if reused {
					c.mu.Lock()
					c.stats.ProfileMergeHits++
					c.mu.Unlock()
				}
				return folded, nil
			}
		}
		return tp, nil
	}
	if c.Profiles != nil {
		c.Profiles.PutProfile(src, train, fo, d, tp)
	}
	return tp, nil
}

// Build runs the full staged pipeline through the cache: stage 1 and
// stage 2 are shared with every other build of the same source, stage 3
// always runs. The result is byte-identical to the monolithic Build.
func (c *StageCache) Build(src string, train []byte, o Options) (*BuildResult, error) {
	front, err := c.Frontend(src, o.Frontend())
	if err != nil {
		return nil, err
	}
	tp, err := c.Train(src, train, o.Frontend(), o.Detection())
	if err != nil {
		return nil, err
	}
	return FinalizeStages(front, tp, o)
}

// evictFrontLocked drops the least-recently-used completed frontend.
// In-flight entries are skipped: evicting one would detach waiters from
// the single-flight slot. c.mu must be held.
func (c *StageCache) evictFrontLocked() {
	for _, key := range c.frontUse {
		ent := c.fronts[key]
		select {
		case <-ent.done:
			delete(c.fronts, key)
			c.frontUse = remove(c.frontUse, key)
			return
		default:
		}
	}
}

func (c *StageCache) evictTrainLocked() {
	for _, key := range c.trainUse {
		ent := c.trains[key]
		select {
		case <-ent.done:
			delete(c.trains, key)
			c.trainUse = remove(c.trainUse, key)
			return
		default:
		}
	}
}

func remove(use []string, key string) []string {
	for i, k := range use {
		if k == key {
			return append(use[:i:i], use[i+1:]...)
		}
	}
	return use
}
