package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"branchreorder/internal/lower"
)

// The Section 10 extension: || / && chains over different variables are
// reordered by joint-outcome profile.
const orChainSrc = `
int hits = 0, misses = 0;
int main() {
	int a, b;
	while (1) {
		a = getchar();
		if (a == EOF)
			break;
		b = getchar();
		if (b == EOF)
			break;
		if (a == '!' || b == '?' || a > 'm') // last condition is hottest
			hits = hits + 1;
		else
			misses = misses + 1;
	}
	putint(hits); putchar(' '); putint(misses); putchar('\n');
	return 0;
}`

func orInput(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		switch {
		case r < 2:
			out = append(out, '!')
		case r < 4:
			out = append(out, 'a', '?')
			i++
			continue
		case r < 70:
			out = append(out, byte('n'+rng.Intn(12))) // a > 'm'
		default:
			out = append(out, byte('a'+rng.Intn(10)))
		}
		out = append(out, byte('a'+rng.Intn(4)))
		i++
	}
	return out
}

func TestCommonSuccessorExtension(t *testing.T) {
	train := orInput(1, 3000)
	test := orInput(2, 5000)
	opts := Options{Switch: lower.SetI, Optimize: true, CommonSuccessor: true}
	r, err := Build(orChainSrc, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OrSequences) == 0 {
		t.Fatalf("no common-successor sequences detected\n%s", r.Baseline.Dump())
	}
	applied := 0
	for _, res := range r.OrResults {
		if res.Applied {
			applied++
			if res.NewCost >= res.OrigCost {
				t.Errorf("applied without cost win: %+v", res)
			}
		}
	}
	if applied == 0 {
		t.Fatalf("no or-sequence reordered: %+v", r.OrResults)
	}
	ret0, out0, s0 := runProg(t, r.Baseline, string(test))
	ret1, out1, s1 := runProg(t, r.Reordered, string(test))
	if ret0 != ret1 || out0 != out1 {
		t.Fatalf("semantics changed: %q -> %q", out0, out1)
	}
	if s1.CondBranches >= s0.CondBranches {
		t.Errorf("no dynamic branch win: %d -> %d", s0.CondBranches, s1.CondBranches)
	}
	t.Logf("common-successor extension: insts %d -> %d, branches %d -> %d",
		s0.Insts, s1.Insts, s0.CondBranches, s1.CondBranches)
}

func TestCommonSuccessorOffByDefault(t *testing.T) {
	r, err := Build(orChainSrc, orInput(3, 500), Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OrSequences) != 0 || len(r.OrResults) != 0 {
		t.Error("extension ran without being requested")
	}
}

// Random || / && chain programs: the extension must never change
// behaviour.
func TestCommonSuccessorRandomSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ops := []string{"==", "!=", "<", ">", "<=", ">="}
	for trial := 0; trial < 30; trial++ {
		var conds []string
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			v := "a"
			if rng.Intn(2) == 0 {
				v = "b"
			}
			conds = append(conds, v+" "+ops[rng.Intn(len(ops))]+" '"+
				string(rune('a'+rng.Intn(20)))+"'")
		}
		join := " || "
		if rng.Intn(2) == 0 {
			join = " && "
		}
		src := `
int n = 0;
int main() {
	int a, b;
	while (1) {
		a = getchar();
		if (a == EOF) break;
		b = getchar();
		if (b == EOF) break;
		if (` + strings.Join(conds, join) + `)
			n = n + 7;
		else
			n = n - 1;
	}
	putint(n);
	return n;
}`
		train := orInput(int64(100+trial), 800)
		test := orInput(int64(200+trial), 1200)
		r, err := Build(src, train, Options{Switch: lower.SetIII, Optimize: true, CommonSuccessor: true})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ret0, out0, _ := runProg(t, r.Baseline, string(test))
		ret1, out1, _ := runProg(t, r.Reordered, string(test))
		if ret0 != ret1 || out0 != out1 {
			t.Fatalf("trial %d: semantics changed\nsrc:\n%s\nout %q -> %q\nreordered:\n%s",
				trial, src, out0, out1, r.Reordered.Dump())
		}
	}
}

// Profile-guided search-method selection (the other Section 10 thread):
// with a hot-skewed switch, AutoBuild should not pick a method that runs
// more instructions than the alternatives on the profile.
func TestAutoBuildPicksCheapest(t *testing.T) {
	src := `
int counts[12];
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		switch (c) {
		case 'a': counts[0]++; break;
		case 'b': counts[1]++; break;
		case 'c': counts[2]++; break;
		case 'd': counts[3]++; break;
		case 'e': counts[4]++; break;
		case 'f': counts[5]++; break;
		case 'g': counts[6]++; break;
		case 'h': counts[7]++; break;
		default:  counts[8]++; break;
		}
	}
	putint(counts[0] + 2*counts[7] + 3*counts[8]);
	return 0;
}`
	// Extremely skewed: nearly always 'h'.
	gen := func(seed int64, n int) []byte {
		rng := rand.New(rand.NewSource(seed))
		var out []byte
		for i := 0; i < n; i++ {
			if rng.Intn(20) == 0 {
				out = append(out, byte('a'+rng.Intn(8)))
			} else {
				out = append(out, 'h')
			}
		}
		return out
	}
	train, test := gen(5, 3000), gen(6, 4500)
	auto, err := AutoBuild(src, train, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.TrainInsts) != 3 {
		t.Fatalf("evaluated %d candidates", len(auto.TrainInsts))
	}
	best := auto.TrainInsts[auto.Set]
	for set, insts := range auto.TrainInsts {
		if insts < best {
			t.Errorf("chose set %v (%d insts) but set %v costs %d",
				auto.Set, best, set, insts)
		}
	}
	// The chosen build must behave like any other candidate.
	ret0, out0, _ := runProg(t, auto.Chosen.Baseline, string(test))
	ret1, out1, _ := runProg(t, auto.Chosen.Reordered, string(test))
	if ret0 != ret1 || out0 != out1 {
		t.Fatal("auto-chosen build changed semantics")
	}
	t.Logf("auto selection: set %v; candidates %v", auto.Set, auto.TrainInsts)
}

// With a skewed profile the reordered linear search should beat the jump
// table on this switch (the paper's "fewer indirect jumps" observation),
// so AutoBuild should prefer Set III here.
func TestAutoBuildPrefersReorderingOnSkew(t *testing.T) {
	src := `
int n = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		switch (c) {
		case 1: n += 1; break;
		case 2: n += 2; break;
		case 3: n += 3; break;
		case 4: n += 4; break;
		case 5: n += 5; break;
		case 6: n += 6; break;
		}
	}
	putint(n);
	return 0;
}`
	var train []byte
	for i := 0; i < 2000; i++ {
		train = append(train, 6) // always the same case
	}
	auto, err := AutoBuild(src, train, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Set I emits a jump table here; Sets II and III both fall back to a
	// reorderable linear search (n < 8), so either may win — but the
	// indirect jump must lose on this fully skewed profile.
	if auto.Set == lower.SetI {
		t.Errorf("chose the jump table (Set I); candidates %v", auto.TrainInsts)
	}
	if auto.TrainInsts[auto.Set] >= auto.TrainInsts[lower.SetI] {
		t.Errorf("reordered linear search did not beat the jump table: %v", auto.TrainInsts)
	}
}
