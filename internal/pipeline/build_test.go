package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
)

func mustBuild(t *testing.T, src string, train string, o Options) *BuildResult {
	t.Helper()
	r, err := Build(src, []byte(train), o)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return r
}

func runProg(t *testing.T, p *ir.Program, input string) (int64, string, interp.Stats) {
	t.Helper()
	m := &interp.Machine{Prog: p, Input: []byte(input)}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p.Dump())
	}
	return ret, m.Output.String(), m.Stats
}

// figure1 is the paper's motivating example (Figure 1): classify each
// input character against blank, newline, and EOF.
const figure1 = `
int x = 0, y = 0, z = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == ' ')
			y = y + 1;
		else if (c == '\n')
			x = x + 1;
		else
			z = z + 1;
	}
	putint(x); putchar(' '); putint(y); putchar(' '); putint(z); putchar('\n');
	return 0;
}`

// mostlyLetters builds input where most characters exceed a blank, as the
// paper observes for real text.
func mostlyLetters(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		switch {
		case r < 12:
			sb.WriteByte(' ')
		case r < 17:
			sb.WriteByte('\n')
		default:
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
	}
	return sb.String()
}

func TestFigure1Reordering(t *testing.T) {
	train := mostlyLetters(1, 4000)
	test := mostlyLetters(2, 6000)
	r := mustBuild(t, figure1, train, Options{Switch: lower.SetI, Optimize: true})

	if r.TotalSeqs() == 0 {
		t.Fatalf("no sequences detected\n%s", r.Baseline.Dump())
	}
	if r.ReorderedSeqs() == 0 {
		t.Fatalf("no sequences reordered; results: %+v", r.Results)
	}

	ret0, out0, s0 := runProg(t, r.Baseline, test)
	ret1, out1, s1 := runProg(t, r.Reordered, test)
	if ret0 != ret1 || out0 != out1 {
		t.Fatalf("semantics changed: ret %d->%d out %q->%q", ret0, ret1, out0, out1)
	}
	if s1.Insts >= s0.Insts {
		t.Errorf("reordering did not reduce instructions: %d -> %d\nbaseline:\n%s\nreordered:\n%s",
			s0.Insts, s1.Insts, r.Baseline.Dump(), r.Reordered.Dump())
	}
	if s1.CondBranches >= s0.CondBranches {
		t.Errorf("reordering did not reduce branches: %d -> %d", s0.CondBranches, s1.CondBranches)
	}
}

func TestForm4DetectionAndReordering(t *testing.T) {
	src := `
int letters = 0, digits = 0, others = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c >= '0' && c <= '9')
			digits = digits + 1;
		else if (c >= 'a' && c <= 'z')
			letters = letters + 1;
		else
			others = others + 1;
	}
	putint(letters); putint(digits); putint(others);
	return 0;
}`
	// Training: almost all letters, so the letter range should be tested
	// first after reordering.
	train := mostlyLetters(3, 3000)
	test := mostlyLetters(4, 5000)
	r := mustBuild(t, src, train, Options{Switch: lower.SetI, Optimize: true})
	if r.TotalSeqs() == 0 {
		t.Fatalf("no sequences detected\n%s", r.Baseline.Dump())
	}
	// The sequence must include a bounded (two-branch) condition.
	foundBounded := false
	for _, s := range r.Sequences {
		for _, c := range s.Conds {
			if c.R.BoundedBothEnds() {
				foundBounded = true
			}
		}
	}
	if !foundBounded {
		for _, s := range r.Sequences {
			t.Logf("seq: %v", s)
		}
		t.Fatalf("no Form 4 condition detected\n%s", r.Baseline.Dump())
	}
	ret0, out0, s0 := runProg(t, r.Baseline, test)
	ret1, out1, s1 := runProg(t, r.Reordered, test)
	if ret0 != ret1 || out0 != out1 {
		t.Fatalf("semantics changed: %q -> %q", out0, out1)
	}
	if r.ReorderedSeqs() > 0 && s1.Insts >= s0.Insts {
		t.Errorf("reordering did not pay off: %d -> %d insts", s0.Insts, s1.Insts)
	}
}

func TestSideEffectSinking(t *testing.T) {
	// The else-chain increments a counter before later comparisons: an
	// intervening side effect that must be sunk onto the exit edges.
	src := `
int seen = 0, a = 0, b = 0, d = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == 'a')
			a = a + 1;
		else {
			seen = seen + 1;
			if (c == 'b')
				b = b + 1;
			else
				d = d + 1;
		}
	}
	putint(a); putchar(' ');
	putint(b); putchar(' ');
	putint(d); putchar(' ');
	putint(seen); putchar('\n');
	return 0;
}`
	// Train with mostly 'b' so testing 'b' first is profitable; 'a' rare.
	gen := func(seed int64, n int) string {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < n; i++ {
			switch r := rng.Intn(10); {
			case r == 0:
				sb.WriteByte('a')
			case r < 8:
				sb.WriteByte('b')
			default:
				sb.WriteByte('z')
			}
		}
		return sb.String()
	}
	train, test := gen(5, 2000), gen(6, 3000)
	r := mustBuild(t, src, train, Options{Switch: lower.SetI, Optimize: true})
	ret0, out0, _ := runProg(t, r.Baseline, test)
	ret1, out1, _ := runProg(t, r.Reordered, test)
	if ret0 != ret1 || out0 != out1 {
		t.Fatalf("side effects broken: %q -> %q\nreordered:\n%s", out0, out1, r.Reordered.Dump())
	}
	if r.ReorderedSeqs() == 0 {
		t.Log("note: side-effect sequence was not reordered")
	}
}

func TestSwitchLinearReordering(t *testing.T) {
	src := `
int counts[8];
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		switch (c) {
		case 'a': counts[0]++; break;
		case 'e': counts[1]++; break;
		case 'i': counts[2]++; break;
		case 'o': counts[3]++; break;
		case 'u': counts[4]++; break;
		default:  counts[5]++; break;
		}
	}
	putint(counts[0] + counts[1]*7 + counts[2]*49 + counts[3]*63 + counts[4]*91 + counts[5]*101);
	return 0;
}`
	gen := func(seed int64, n int) string {
		rng := rand.New(rand.NewSource(seed))
		letters := "uuuuuuuuuuoiea" // heavily skewed toward 'u'
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				sb.WriteByte('x')
			} else {
				sb.WriteByte(letters[rng.Intn(len(letters))])
			}
		}
		return sb.String()
	}
	train, test := gen(7, 4000), gen(8, 6000)
	r := mustBuild(t, src, train, Options{Switch: lower.SetIII, Optimize: true})
	if r.TotalSeqs() == 0 {
		t.Fatalf("no sequences detected in linear switch\n%s", r.Baseline.Dump())
	}
	ret0, out0, s0 := runProg(t, r.Baseline, test)
	ret1, out1, s1 := runProg(t, r.Reordered, test)
	if ret0 != ret1 || out0 != out1 {
		t.Fatalf("semantics changed: %q -> %q", out0, out1)
	}
	if r.ReorderedSeqs() == 0 {
		t.Fatalf("skewed linear switch was not reordered: %+v", r.Results)
	}
	if s1.Insts >= s0.Insts {
		t.Errorf("no instruction win: %d -> %d", s0.Insts, s1.Insts)
	}
}

// TestRandomChainsPreserveSemantics generates random if-else chains over a
// character and checks that reordering never changes observable behaviour,
// with training and test inputs drawn from different distributions.
func TestRandomChainsPreserveSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		src, alphabet := randomChainProgram(rng)
		train := randomInput(rng, alphabet, 1500)
		test := randomInput(rng, alphabet, 2500)
		r, err := Build(src, []byte(train), Options{Switch: lower.SetIII, Optimize: true})
		if err != nil {
			t.Fatalf("trial %d: Build: %v\nsrc:\n%s", trial, err, src)
		}
		ret0, out0, _ := runProg(t, r.Baseline, test)
		ret1, out1, _ := runProg(t, r.Reordered, test)
		if ret0 != ret1 || out0 != out1 {
			t.Fatalf("trial %d: semantics changed: ret %d->%d out %q->%q\nsrc:\n%s\nreordered:\n%s",
				trial, ret0, ret1, out0, out1, src, r.Reordered.Dump())
		}
	}
}

// randomChainProgram builds a program with a random comparison chain,
// random comparison operators, occasional side effects between conditions,
// and distinct observable actions per branch.
func randomChainProgram(rng *rand.Rand) (string, string) {
	n := 2 + rng.Intn(5)
	var sb strings.Builder
	sb.WriteString("int tally[16];\nint extra = 0;\nint main() {\n\tint c;\n")
	sb.WriteString("\twhile ((c = getchar()) != EOF) {\n")
	ops := []string{"==", "<", "<=", ">", ">="}
	alphabet := "abcdefghijklmnop"
	indent := "\t\t"
	for i := 0; i < n; i++ {
		cmp := string(alphabet[rng.Intn(len(alphabet))])
		op := ops[rng.Intn(len(ops))]
		var cond string
		if rng.Intn(3) == 0 {
			lo := alphabet[rng.Intn(8)]
			hi := lo + byte(rng.Intn(6))
			cond = fmt.Sprintf("c >= '%c' && c <= '%c'", lo, hi)
		} else {
			cond = fmt.Sprintf("c %s '%s'", op, cmp)
		}
		if i == 0 {
			fmt.Fprintf(&sb, "%sif (%s)\n%s\ttally[%d]++;\n", indent, cond, indent, i)
		} else {
			withSE := rng.Intn(3) == 0
			if withSE {
				fmt.Fprintf(&sb, "%selse {\n%s\textra++;\n%s\tif (%s)\n%s\t\ttally[%d]++;\n",
					indent, indent, indent, cond, indent, i)
				indent += "\t"
			} else {
				fmt.Fprintf(&sb, "%selse if (%s)\n%s\ttally[%d]++;\n", indent, cond, indent, i)
			}
		}
	}
	fmt.Fprintf(&sb, "%selse\n%s\ttally[15]++;\n", indent, indent)
	for len(indent) > 2 {
		indent = indent[:len(indent)-1]
		fmt.Fprintf(&sb, "%s}\n", indent)
	}
	sb.WriteString("\t}\n\tint i;\n\tfor (i = 0; i < 16; i++) { putint(tally[i]); putchar(' '); }\n")
	sb.WriteString("\tputint(extra);\n\treturn 0;\n}\n")
	return sb.String(), alphabet + "qrstuv"
}

func randomInput(rng *rand.Rand, alphabet string, n int) string {
	// Skew the distribution so reordering has something to exploit.
	weights := make([]int, len(alphabet))
	for i := range weights {
		weights[i] = rng.Intn(20) + 1
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		r := rng.Intn(total)
		for j, w := range weights {
			if r < w {
				sb.WriteByte(alphabet[j])
				break
			}
			r -= w
		}
	}
	return sb.String()
}
