package pipeline

import (
	"fmt"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/opt"
	"branchreorder/internal/profile"
)

// The staged build pipeline. Build runs the paper's Figure 2 scheme
// monolithically; the ablation grid and AutoBuild instead compose it from
// three explicitly keyed stages so identical work is done once and reused
// everywhere (see StageCache):
//
//	stage 1 (frontend):     lex/parse/lower/opt — keyed by the source and
//	                        the lowering-relevant options (Switch,
//	                        Optimize). Product: an immutable ir.Program.
//	stage 2 (detect+train): sequence/common-successor detection,
//	                        instrumentation, and the training run — keyed
//	                        by (frontend key, training input,
//	                        CommonSuccessor). Product: the serializable
//	                        profile counts.
//	stage 3 (finalize):     ordering selection, transformation, cleanup,
//	                        delay slots — the only stage that depends on
//	                        the full TransformOptions. Never cached: it is
//	                        cheap and every variant differs.
//
// Detection is deterministic, so stages 2 and 3 re-detect identical
// sequences (same IDs, same arms) on fresh clones of the stage-1 program;
// the counts stage 2 collects line up index-for-index with the arms stage
// 3 rebuilds. That is the same separate-compilation discipline the
// explicit two-pass workflow (twopass.go) relies on. Composing the stages
// yields output byte-identical to the monolithic Build — CI-enforced.

// FrontendOptions is the subset of Options that determines the stage-1
// product. It is comparable, so it can key caches directly.
type FrontendOptions struct {
	Switch   lower.HeuristicSet `json:"switch"`
	Optimize bool               `json:"optimize"`
}

// Frontend returns the lowering-relevant subset of o — the stage-1 key.
func (o Options) Frontend() FrontendOptions {
	return FrontendOptions{Switch: o.Switch, Optimize: o.Optimize}
}

// DetectOptions is the subset of Options (beyond the frontend's) that
// determines the stage-2 product. The profile configuration belongs
// here: sampled or biased counts are a different product than exact
// ones, so they must never share a stage-2 key or store fingerprint.
type DetectOptions struct {
	CommonSuccessor bool           `json:"commonSuccessor"`
	Profile         profile.Config `json:"profile"`
}

// Detection returns the detection-relevant subset of o — the stage-2 key
// (combined with the frontend key and the training input).
func (o Options) Detection() DetectOptions {
	return DetectOptions{CommonSuccessor: o.CommonSuccessor, Profile: o.Profile}
}

// FrontendProduct is the cached stage-1 result. Prog is immutable by
// contract: every consumer must ir.CloneProgram it before mutating
// (detection instruments blocks in place, reordering rewrites them).
// SwitchKinds is likewise shared and must be treated as read-only.
type FrontendProduct struct {
	Prog        *ir.Program
	SwitchKinds map[lower.SwitchKind]int
}

// BuildFrontend runs stage 1: parse, check, lower, optimize, linearize,
// verify. The result is the paper's "all conventional optimizations
// applied" baseline, wrapped as an immutable product.
func BuildFrontend(src string, fo FrontendOptions) (*FrontendProduct, error) {
	res, err := Frontend(src, Options{Switch: fo.Switch, Optimize: fo.Optimize})
	if err != nil {
		return nil, err
	}
	return &FrontendProduct{Prog: res.Prog, SwitchKinds: res.SwitchKinds}, nil
}

// TrainProduct is the cached stage-2 result: the training-run counts for
// every detected sequence, plus the detection shape they were collected
// under so a finalize against a diverging detector fails loudly instead
// of silently misattributing counts. It is plain data — serializable,
// safe to share between concurrent finalizes, and convertible to a
// content-addressed store record.
type TrainProduct struct {
	SeqProfiles   map[int]*core.SeqProfile
	OrSeqProfiles map[int]*core.OrSeqProfile
	// NumSeqs and NumOrSeqs record how many sequences the detector found
	// (counts exist only for executed sequences, so map sizes are not
	// enough to validate against).
	NumSeqs   int
	NumOrSeqs int
}

// profHook fuses the range- and or-profile hooks into the single OnProf
// callback the interpreter dispatches. Most builds have no
// common-successor sequences (the extension is off for the
// paper-fidelity experiments), so the merged two-closure dispatch is
// skipped whenever either side has nothing to count.
func profHook(prof *core.Profile, orProf *core.OrProfile) func(seqID, sub int, v int64) {
	rangeHook, orHook := prof.Hook(), orProf.Hook()
	switch {
	case len(prof.Seqs) == 0 && len(orProf.Seqs) == 0:
		return nil
	case len(orProf.Seqs) == 0:
		return rangeHook
	case len(prof.Seqs) == 0:
		return orHook
	default:
		return func(seqID, sub int, v int64) {
			rangeHook(seqID, sub, v)
			orHook(seqID, sub, v)
		}
	}
}

// TrainStage runs stage 2 on a clone of the frontend product: detect
// both sequence kinds, instrument, and execute the training input,
// mirroring the monolithic Build's first pass exactly so the counts are
// identical to the ones an in-place build would collect.
func TrainStage(front *FrontendProduct, train []byte, d DetectOptions) (*TrainProduct, error) {
	return TrainStageWith(front, train, d, interp.EngineFast)
}

// TrainStageWith is TrainStage on an explicit execution engine. All
// engines replay the exact same OnProf hook sequence, so the collected
// profile — and every build derived from it — is byte-identical for any
// choice; only the training run's wall-clock changes.
func TrainStageWith(front *FrontendProduct, train []byte, d DetectOptions, e interp.Engine) (*TrainProduct, error) {
	prog := ir.CloneProgram(front.Prog)
	seqs := core.Detect(prog, 0)
	for _, s := range seqs {
		s.BuildArms()
	}
	var orSeqs []*core.OrSequence
	if d.CommonSuccessor {
		orSeqs = core.DetectCommonSucc(prog, len(seqs), consumedBlocks(seqs))
	}
	prof := core.NewProfile(seqs)
	orProf := core.NewOrProfile(orSeqs)

	prog.Linearize()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after instrumentation: %w", err)
	}
	code, err := interp.Decode(prog)
	if err != nil {
		return nil, fmt.Errorf("training run: %w", err)
	}
	// The sampler thins the event stream per d.Profile and scales the
	// surviving counts back to exact shape after the run; a zero config
	// leaves the hook untouched.
	sampler := profile.NewSampler(d.Profile, prof, orProf)
	if _, _, _, err := interp.Exec(e, prog, code, train, nil, sampler.Hook(profHook(prof, orProf))); err != nil {
		return nil, fmt.Errorf("training run: %w", err)
	}
	sampler.Scale()
	return &TrainProduct{
		SeqProfiles:   prof.Seqs,
		OrSeqProfiles: orProf.Seqs,
		NumSeqs:       len(seqs),
		NumOrSeqs:     len(orSeqs),
	}, nil
}

// FinalizeStages runs stage 3 on a fresh clone of the frontend product:
// re-detect the (identical) sequences, attach the cached counts, select
// and apply orderings, clean up, fill delay slots. The mutation sequence
// mirrors the monolithic Build step for step (including the
// post-instrumentation linearize+verify), so the resulting programs are
// byte-identical to an in-place build's.
func FinalizeStages(front *FrontendProduct, tp *TrainProduct, o Options) (*BuildResult, error) {
	kinds := make(map[lower.SwitchKind]int, len(front.SwitchKinds))
	for k, v := range front.SwitchKinds {
		kinds[k] = v
	}
	out := &BuildResult{
		Baseline:    ir.CloneProgram(front.Prog),
		SwitchKinds: kinds,
	}
	prog := ir.CloneProgram(front.Prog)
	out.Sequences = core.Detect(prog, 0)
	for _, s := range out.Sequences {
		s.BuildArms()
	}
	if o.CommonSuccessor {
		out.OrSequences = core.DetectCommonSucc(prog, len(out.Sequences), consumedBlocks(out.Sequences))
	}
	if len(out.Sequences) != tp.NumSeqs || len(out.OrSequences) != tp.NumOrSeqs {
		return nil, fmt.Errorf("stage mismatch: finalize detected %d/%d sequences, training saw %d/%d "+
			"(was the profile produced from the same source and options?)",
			len(out.Sequences), len(out.OrSequences), tp.NumSeqs, tp.NumOrSeqs)
	}
	out.Profile = &core.Profile{Seqs: tp.SeqProfiles}
	out.OrProfile = &core.OrProfile{Seqs: tp.OrSeqProfiles}

	prog.Linearize()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after instrumentation: %w", err)
	}

	for _, s := range out.Sequences {
		sp := tp.SeqProfiles[s.ID]
		if sp != nil && len(sp.Counts) != len(s.Arms) {
			return nil, fmt.Errorf("stage mismatch: profile for sequence %d has %d counts, expected %d",
				s.ID, len(sp.Counts), len(s.Arms))
		}
		out.Results = append(out.Results, core.ReorderWith(s, sp, o.Transform))
	}
	for _, s := range out.OrSequences {
		sp := tp.OrSeqProfiles[s.ID]
		if sp != nil && sp.N != len(s.Conds) {
			return nil, fmt.Errorf("stage mismatch: profile for or-sequence %d has %d conditions, expected %d",
				s.ID, sp.N, len(s.Conds))
		}
		out.OrResults = append(out.OrResults, core.ReorderOr(s, sp))
	}
	core.StripProf(prog)
	opt.Program(prog)
	prog.Linearize()
	prog.FillDelaySlots()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after reordering: %w", err)
	}
	out.Reordered = prog
	return out, nil
}
