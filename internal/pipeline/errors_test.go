package pipeline

import (
	"strings"
	"testing"

	"branchreorder/internal/lower"
)

func TestFrontendErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"parse", "int main( {", "parse"},
		{"check", "int main() { return nope; }", "check"},
		{"no main", "int helper() { return 1; }", "no main"},
	}
	for _, c := range cases {
		_, err := Frontend(c.src, Options{Switch: lower.SetI, Optimize: true})
		if err == nil {
			t.Errorf("%s: Frontend succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBuildPropagatesTrainingErrors(t *testing.T) {
	// The training run divides by zero.
	src := `int main() { int z = getchar(); return 5 / (z - z); }`
	_, err := Build(src, []byte("x"), Options{Switch: lower.SetI, Optimize: true})
	if err == nil || !strings.Contains(err.Error(), "training run") {
		t.Errorf("training trap not reported: %v", err)
	}
}

func TestBuildWithoutOptimization(t *testing.T) {
	// The pipeline must work (if less effectively) without conventional
	// optimizations.
	src := `
int n = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == 'a') n = n + 1;
		else if (c == 'b') n = n + 2;
		else n = n + 3;
	}
	putint(n);
	return n;
}`
	r, err := Build(src, []byte("ccccabcc"), Options{Switch: lower.SetI, Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	_, out0, _ := runProg(t, r.Baseline, "abcabc")
	_, out1, _ := runProg(t, r.Reordered, "abcabc")
	if out0 != out1 {
		t.Errorf("unoptimized build broke semantics: %q vs %q", out0, out1)
	}
}

func TestStaticInstsComponents(t *testing.T) {
	src := `
int main() {
	int c = getchar();
	switch (c) {
	case 1: return 10;
	case 2: return 20;
	case 3: return 30;
	case 4: return 40;
	}
	return 0;
}`
	front, err := Frontend(src, Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	withTable := StaticInsts(front.Prog, 3)
	// A bigger indirect-jump cost must increase the static count when a
	// jump table is present (Set I emits one for this switch).
	if biggest := StaticInsts(front.Prog, 10); biggest <= withTable {
		t.Errorf("IJmp cost not reflected: %d vs %d", withTable, biggest)
	}
	frontLinear, err := Frontend(src, Options{Switch: lower.SetIII, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if StaticInsts(frontLinear.Prog, 3) == withTable {
		t.Error("linear and indirect translations have identical static size; suspicious")
	}
}
