// Package pipeline orchestrates the two-pass compilation scheme of the
// paper's Figure 2:
//
//	pass 1: C source → conventional optimizations → detect reorderable
//	        sequences → instrumented executable → run on training input
//	        → profile data
//	pass 2: same front-end output + profile data → select orderings →
//	        apply the reordering transformation → cleanup → executable
//
// The Build function runs the whole scheme and returns both the baseline
// executable (conventional optimizations only) and the reordered one, plus
// the static report the evaluation tables need.
package pipeline

import (
	"fmt"

	"branchreorder/internal/cminus"
	"branchreorder/internal/core"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/opt"
	"branchreorder/internal/profile"
)

// Options configures a build.
type Options struct {
	// Switch selects the switch-translation heuristic set (Table 2).
	Switch lower.HeuristicSet
	// Optimize applies the conventional optimization pipeline. It is on
	// in every experiment; turning it off exists for debugging.
	Optimize bool
	// CommonSuccessor additionally detects and reorders sequences of
	// branches with a common successor (the paper's Section 10
	// extension, Figure 14). Off for the paper-fidelity experiments.
	CommonSuccessor bool
	// Transform disables individual design choices of the reordering
	// transformation for ablation studies; the zero value is the full
	// transformation.
	Transform core.TransformOptions
	// Profile configures the profile lifecycle — sampled collection,
	// training-input drift, and cross-input merging with decay. The zero
	// value is the paper's exact single-input profile and leaves every
	// build byte-identical to a pipeline without the field.
	Profile profile.Config
}

// Frontend parses, checks and lowers source, returning an optimized,
// linearized, verified program — the paper's "all conventional
// optimizations applied" baseline.
func Frontend(src string, o Options) (*lower.Result, error) {
	file, err := cminus.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := cminus.Check(file)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	res, err := lower.Program(info, lower.Options{Switch: o.Switch})
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if res.Prog.Func("main") == nil {
		return nil, fmt.Errorf("program has no main function")
	}
	if o.Optimize {
		opt.Program(res.Prog)
	}
	res.Prog.Linearize()
	res.Prog.FillDelaySlots()
	if err := res.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after lowering: %w", err)
	}
	return res, nil
}

// StaticInsts counts the static instructions of a linearized program under
// the same cost model the interpreter charges dynamically: one per
// ordinary instruction, one per conditional branch, one per goto that
// cannot fall through, ijmpInsts per indirect jump plus one word per jump
// table entry, one per return. Prof and Nop cost zero.
func StaticInsts(p *ir.Program, ijmpInsts int64) int64 {
	var n int64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				switch b.Insts[i].Op {
				case ir.Prof, ir.ProfCond, ir.Nop:
				default:
					n++
				}
			}
			switch b.Term.Kind {
			case ir.TermBr, ir.TermRet:
				n++
			case ir.TermGoto:
				if b.Term.Taken.LayoutIndex != b.LayoutIndex+1 {
					n++
				}
			case ir.TermIJmp:
				n += ijmpInsts + int64(len(b.Term.Targets))
			}
		}
	}
	return n
}
