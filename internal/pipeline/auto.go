package pipeline

import (
	"fmt"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
)

// Profile-guided selection of the multiway search method: the paper's
// Section 9/10 observation that "profile information should be used to
// decide if an indirect jump should be generated or branch reordering
// should instead be applied". AutoBuild compiles the program under every
// switch-translation heuristic set, reorders each candidate using the
// training input, evaluates the trained executables on that same training
// input, and returns the cheapest — a semi-static search-method choice
// driven by the same profile data the reordering uses.

// AutoResult is the outcome of profile-guided method selection.
type AutoResult struct {
	// Chosen is the winning build; Set is its heuristic set.
	Chosen *BuildResult
	Set    lower.HeuristicSet

	// TrainInsts records each candidate's dynamic instruction count on
	// the training input (reordered executable).
	TrainInsts map[lower.HeuristicSet]uint64
}

// AutoBuild picks the switch translation method by profile.
func AutoBuild(src string, train []byte, base Options) (*AutoResult, error) {
	res := &AutoResult{TrainInsts: map[lower.HeuristicSet]uint64{}}
	var bestCost uint64
	for _, set := range []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII} {
		o := base
		o.Switch = set
		b, err := Build(src, train, o)
		if err != nil {
			return nil, fmt.Errorf("auto build (set %v): %w", set, err)
		}
		code, err := interp.Decode(b.Reordered)
		if err != nil {
			return nil, fmt.Errorf("auto evaluation (set %v): %w", set, err)
		}
		m := &interp.FastMachine{Code: code, Input: train}
		if _, err := m.Run(); err != nil {
			return nil, fmt.Errorf("auto evaluation (set %v): %w", set, err)
		}
		res.TrainInsts[set] = m.Stats.Insts
		if res.Chosen == nil || m.Stats.Insts < bestCost {
			res.Chosen = b
			res.Set = set
			bestCost = m.Stats.Insts
		}
	}
	return res, nil
}
