package pipeline

import (
	"fmt"
	"sync"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
)

// Profile-guided selection of the multiway search method: the paper's
// Section 9/10 observation that "profile information should be used to
// decide if an indirect jump should be generated or branch reordering
// should instead be applied". AutoBuild compiles the program under every
// switch-translation heuristic set, reorders each candidate using the
// training input, evaluates the trained executables on that same training
// input, and returns the cheapest — a semi-static search-method choice
// driven by the same profile data the reordering uses.

// AutoResult is the outcome of profile-guided method selection.
type AutoResult struct {
	// Chosen is the winning build; Set is its heuristic set.
	Chosen *BuildResult
	Set    lower.HeuristicSet

	// TrainInsts records each candidate's dynamic instruction count on
	// the training input (reordered executable).
	TrainInsts map[lower.HeuristicSet]uint64
}

// AutoBuild picks the switch translation method by profile. The three
// candidates build and evaluate concurrently on a private stage cache;
// use AutoBuildWith to share stages with other builds (an engine that
// already compiled some sets reuses their frontends and training runs).
func AutoBuild(src string, train []byte, base Options) (*AutoResult, error) {
	return AutoBuildWith(nil, src, train, base)
}

// AutoBuildWith is AutoBuild on an explicit stage cache (nil means a
// fresh private one). Candidates run concurrently; the winner is chosen
// deterministically — lowest training cost, ties broken by set order —
// so the result never depends on scheduling.
func AutoBuildWith(cache *StageCache, src string, train []byte, base Options) (*AutoResult, error) {
	if cache == nil {
		cache = NewStageCache(0)
	}
	sets := []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
	type candidate struct {
		build *BuildResult
		insts uint64
		err   error
	}
	cands := make([]candidate, len(sets))
	var wg sync.WaitGroup
	for i, set := range sets {
		wg.Add(1)
		go func(i int, set lower.HeuristicSet) {
			defer wg.Done()
			o := base
			o.Switch = set
			b, err := cache.Build(src, train, o)
			if err != nil {
				cands[i].err = fmt.Errorf("auto build (set %v): %w", set, err)
				return
			}
			_, st, _, err := interp.Exec(cache.Exec, b.Reordered, nil, train, nil, nil)
			if err != nil {
				cands[i].err = fmt.Errorf("auto evaluation (set %v): %w", set, err)
				return
			}
			cands[i] = candidate{build: b, insts: st.Insts}
		}(i, set)
	}
	wg.Wait()

	res := &AutoResult{TrainInsts: map[lower.HeuristicSet]uint64{}}
	var bestCost uint64
	for i, set := range sets {
		if cands[i].err != nil {
			return nil, cands[i].err
		}
		res.TrainInsts[set] = cands[i].insts
		if res.Chosen == nil || cands[i].insts < bestCost {
			res.Chosen = cands[i].build
			res.Set = set
			bestCost = cands[i].insts
		}
	}
	return res, nil
}
