package pipeline

import (
	"math/rand"
	"testing"

	"branchreorder/internal/lower"
)

func TestRandomChainsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			src, alphabet := randomChainProgram(rng)
			train := randomInput(rng, alphabet, 800)
			test := randomInput(rng, alphabet, 1200)
			for _, h := range []lower.HeuristicSet{lower.SetI, lower.SetIII} {
				r, err := Build(src, []byte(train), Options{Switch: h, Optimize: true})
				if err != nil {
					t.Fatalf("seed %d trial %d: %v\n%s", seed, trial, err, src)
				}
				ret0, out0, _ := runProg(t, r.Baseline, test)
				ret1, out1, _ := runProg(t, r.Reordered, test)
				if ret0 != ret1 || out0 != out1 {
					t.Fatalf("seed %d trial %d: semantics changed\nsrc:\n%s\nout0=%q\nout1=%q\nreordered:\n%s",
						seed, trial, src, out0, out1, r.Reordered.Dump())
				}
			}
		}
	}
}
