package pipeline

import (
	"fmt"
	"io"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	optimize "branchreorder/internal/opt"
)

// The explicit two-pass workflow of the paper's Figure 2, with the
// profile data externalized between the passes (Build performs both
// passes in memory; these entry points let a driver store the profile in
// a file, as vpo's ease environment did). Detection is deterministic, so
// the second pass recomputes the same sequences, arms, and IDs from the
// same source and options.

// Instrumented is the product of the first compilation pass: an
// executable with profiling instrumentation at every detected sequence
// head.
type Instrumented struct {
	Prog        *ir.Program
	Sequences   []*core.Sequence
	OrSequences []*core.OrSequence

	// Exec selects the execution engine for Train. Profiles are
	// byte-identical under every engine; the zero value is the fast
	// interpreter.
	Exec interp.Engine
}

// Instrument runs the first pass: compile, optimize, detect, instrument.
func Instrument(src string, o Options) (*Instrumented, error) {
	front, err := Frontend(src, o)
	if err != nil {
		return nil, err
	}
	ins := &Instrumented{Prog: front.Prog}
	ins.Sequences = core.Detect(ins.Prog, 0)
	for _, s := range ins.Sequences {
		s.BuildArms()
	}
	if o.CommonSuccessor {
		consumed := consumedBlocks(ins.Sequences)
		ins.OrSequences = core.DetectCommonSucc(ins.Prog, len(ins.Sequences), consumed)
	}
	ins.Prog.Linearize()
	if err := ins.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after instrumentation: %w", err)
	}
	return ins, nil
}

// consumedBlocks collects the blocks claimed by range-condition
// sequences, which take precedence over the common-successor extension.
func consumedBlocks(seqs []*core.Sequence) map[*ir.Block]bool {
	consumed := map[*ir.Block]bool{}
	for _, s := range seqs {
		consumed[s.Head] = true
		for _, c := range s.Conds {
			for _, b := range c.Blocks {
				consumed[b] = true
			}
		}
	}
	return consumed
}

// Train executes the instrumented program on the training input and
// returns the collected profiles.
func (ins *Instrumented) Train(input []byte) (*core.Profile, *core.OrProfile, error) {
	prof := core.NewProfile(ins.Sequences)
	orProf := core.NewOrProfile(ins.OrSequences)
	code, err := interp.Decode(ins.Prog)
	if err != nil {
		return nil, nil, fmt.Errorf("training run: %w", err)
	}
	if _, _, _, err := interp.Exec(ins.Exec, ins.Prog, code, input, nil,
		profHook(prof, orProf)); err != nil {
		return nil, nil, fmt.Errorf("training run: %w", err)
	}
	return prof, orProf, nil
}

// WriteProfile serializes both profiles to one stream.
func WriteProfile(w io.Writer, prof *core.Profile, orProf *core.OrProfile) error {
	if prof != nil {
		if err := prof.Write(w); err != nil {
			return err
		}
	}
	if orProf != nil {
		if err := orProf.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// Finalize runs the second compilation pass: it recompiles the source,
// re-detects the (identical) sequences, and applies the reordering
// decisions under the stored profile data.
func Finalize(src string, o Options, seqProfiles map[int]*core.SeqProfile, orProfiles map[int]*core.OrSeqProfile) (*BuildResult, error) {
	front, err := Frontend(src, o)
	if err != nil {
		return nil, err
	}
	out := &BuildResult{
		Baseline:    ir.CloneProgram(front.Prog),
		SwitchKinds: front.SwitchKinds,
	}
	prog := front.Prog
	// Detection must mirror the first pass exactly (both kinds before
	// any transformation), so sequence IDs and arms line up with the
	// stored counts.
	out.Sequences = core.Detect(prog, 0)
	for _, s := range out.Sequences {
		s.BuildArms()
	}
	if o.CommonSuccessor {
		out.OrSequences = core.DetectCommonSucc(prog, len(out.Sequences), consumedBlocks(out.Sequences))
	}
	for _, s := range out.Sequences {
		sp := seqProfiles[s.ID]
		if sp != nil && len(sp.Counts) != len(s.Arms) {
			return nil, fmt.Errorf("profile for sequence %d has %d counts, expected %d "+
				"(was the profile produced from the same source and options?)",
				s.ID, len(sp.Counts), len(s.Arms))
		}
		out.Results = append(out.Results, core.ReorderWith(s, sp, o.Transform))
	}
	for _, s := range out.OrSequences {
		sp := orProfiles[s.ID]
		if sp != nil && sp.N != len(s.Conds) {
			return nil, fmt.Errorf("profile for or-sequence %d has %d conditions, expected %d",
				s.ID, sp.N, len(s.Conds))
		}
		out.OrResults = append(out.OrResults, core.ReorderOr(s, sp))
	}
	core.StripProf(prog)
	optimize.Program(prog)
	prog.Linearize()
	prog.FillDelaySlots()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after reordering: %w", err)
	}
	out.Reordered = prog
	return out, nil
}
