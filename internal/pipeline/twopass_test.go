package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

// The explicit two-pass workflow with the profile externalized must
// produce an executable equivalent to the in-memory Build, for every
// workload (exercising the paper's Figure 2 with a profile data file).
func TestTwoPassMatchesBuild(t *testing.T) {
	opts := Options{Switch: lower.SetI, Optimize: true, CommonSuccessor: true}
	for _, name := range []string{"wc", "cpp", "yacc", "sort"} {
		w, _ := workload.Named(name)
		train, test := w.Train(), w.Test()

		// Pass 1: instrument, train, serialize the profile.
		ins, err := Instrument(w.Source, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prof, orProf, err := ins.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := WriteProfile(&buf, prof, orProf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		// Pass 2: fresh compilation driven by the stored profile.
		seqs, ors, err := core.ReadProfiles(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: parse profile: %v\n%s", name, err, buf.String())
		}
		twoPass, err := Finalize(w.Source, opts, seqs, ors)
		if err != nil {
			t.Fatalf("%s: finalize: %v", name, err)
		}

		// Reference: the all-in-memory build.
		ref, err := Build(w.Source, train, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		_, out2, s2 := runProg(t, twoPass.Reordered, string(test))
		_, outR, sR := runProg(t, ref.Reordered, string(test))
		if out2 != outR {
			t.Errorf("%s: two-pass output differs from Build", name)
		}
		if s2.Insts != sR.Insts || s2.CondBranches != sR.CondBranches {
			t.Errorf("%s: two-pass counts differ: insts %d vs %d, branches %d vs %d",
				name, s2.Insts, sR.Insts, s2.CondBranches, sR.CondBranches)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	w, _ := workload.Named("lex")
	opts := Options{Switch: lower.SetIII, Optimize: true, CommonSuccessor: true}
	ins, err := Instrument(w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	prof, orProf, err := ins.Train(w.Train())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, prof, orProf); err != nil {
		t.Fatal(err)
	}
	seqs, ors, err := core.ReadProfiles(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(prof.Seqs) {
		t.Errorf("round trip lost sequences: %d vs %d", len(seqs), len(prof.Seqs))
	}
	if len(ors) != len(orProf.Seqs) {
		t.Errorf("round trip lost or-sequences: %d vs %d", len(ors), len(orProf.Seqs))
	}
	for id, sp := range prof.Seqs {
		got := seqs[id]
		if got == nil || got.Total != sp.Total || len(got.Counts) != len(sp.Counts) {
			t.Fatalf("sequence %d mangled", id)
		}
		for i := range sp.Counts {
			if got.Counts[i] != sp.Counts[i] {
				t.Fatalf("sequence %d count %d changed", id, i)
			}
		}
	}
	for id, sp := range orProf.Seqs {
		got := ors[id]
		if got == nil || got.Total != sp.Total || got.N != sp.N {
			t.Fatalf("or-sequence %d mangled", id)
		}
	}
}

func TestReadProfilesErrors(t *testing.T) {
	bad := []string{
		"bogus 1 total 2 counts 1 1",
		"seq x total 2 counts 1 1",
		"seq 1 total 3 counts 1 1",     // sum mismatch
		"seq 1 total 2 combos 1 1",     // wrong keyword
		"orseq 1 total 3 combos 1 1 1", // not a power of two
		"seq 1 sum 2 counts 1 1",       // bad structure
	}
	for _, src := range bad {
		if _, _, err := core.ReadProfiles(strings.NewReader(src)); err == nil {
			t.Errorf("ReadProfiles(%q) succeeded", src)
		}
	}
	// Comments and blank lines are fine.
	good := "# comment\n\nseq 1 total 2 counts 1 1\n"
	if _, _, err := core.ReadProfiles(strings.NewReader(good)); err != nil {
		t.Errorf("ReadProfiles rejected valid input: %v", err)
	}
}

func TestFinalizeRejectsMismatchedProfile(t *testing.T) {
	w, _ := workload.Named("wc")
	opts := Options{Switch: lower.SetI, Optimize: true}
	// A profile with the wrong arm count for sequence 0.
	seqs := map[int]*core.SeqProfile{0: {Counts: []uint64{1}, Total: 1}}
	if _, err := Finalize(w.Source, opts, seqs, nil); err == nil {
		t.Error("mismatched profile accepted")
	}
}
