package pipeline

import (
	"fmt"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/opt"
	"branchreorder/internal/profile"
)

// BuildResult carries both executables of the paper's comparison plus the
// per-sequence decisions.
type BuildResult struct {
	// Baseline has all conventional optimizations applied and no
	// reordering — the "Original" measurements of Tables 4-8.
	Baseline *ir.Program
	// Reordered additionally has the branch-reordering transformation
	// applied, trained on the training input.
	Reordered *ir.Program

	Sequences []*core.Sequence
	Results   []core.Result
	Profile   *core.Profile

	// Section 10 extension (Options.CommonSuccessor): sequences of
	// branches with a common successor, and what happened to them.
	OrSequences []*core.OrSequence
	OrResults   []core.OrResult
	OrProfile   *core.OrProfile

	SwitchKinds map[lower.SwitchKind]int
}

// TotalSeqs reports how many reorderable sequences were detected.
func (r *BuildResult) TotalSeqs() int { return len(r.Sequences) }

// ReorderedSeqs reports how many sequences were actually reordered.
func (r *BuildResult) ReorderedSeqs() int {
	n := 0
	for _, res := range r.Results {
		if res.Applied {
			n++
		}
	}
	return n
}

// Build runs the full two-pass scheme of Figure 2: compile with
// conventional optimizations, detect reorderable sequences, run the
// instrumented executable on the training input, select orderings, apply
// the transformation, and clean up.
func Build(src string, train []byte, o Options) (*BuildResult, error) {
	return BuildWith(src, train, o, interp.EngineFast)
}

// BuildWith is Build with the training run on an explicit execution
// engine. Every engine replays the identical OnProf hook sequence, so
// the resulting build is byte-for-byte the same for any choice.
func BuildWith(src string, train []byte, o Options, e interp.Engine) (*BuildResult, error) {
	front, err := Frontend(src, o)
	if err != nil {
		return nil, err
	}
	out := &BuildResult{
		Baseline:    ir.CloneProgram(front.Prog),
		SwitchKinds: front.SwitchKinds,
	}

	prog := front.Prog
	out.Sequences = core.Detect(prog, 0)
	for _, s := range out.Sequences {
		s.BuildArms()
	}
	if o.CommonSuccessor {
		// Range-condition sequences take precedence; the extension only
		// sees what they left unclaimed.
		out.OrSequences = core.DetectCommonSucc(prog, len(out.Sequences), consumedBlocks(out.Sequences))
	}
	out.Profile = core.NewProfile(out.Sequences)
	out.OrProfile = core.NewOrProfile(out.OrSequences)

	// Training pass on the instrumented executable.
	prog.Linearize()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after instrumentation: %w", err)
	}
	code, err := interp.Decode(prog)
	if err != nil {
		return nil, fmt.Errorf("training run: %w", err)
	}
	// Most builds have no common-successor sequences; profHook collapses
	// the merged two-closure dispatch to a single hook (or none) then.
	// Sampling mirrors TrainStage exactly so staged and monolithic builds
	// stay byte-identical under every profile configuration.
	sampler := profile.NewSampler(o.Profile, out.Profile, out.OrProfile)
	if _, _, _, err := interp.Exec(e, prog, code, train, nil,
		sampler.Hook(profHook(out.Profile, out.OrProfile))); err != nil {
		return nil, fmt.Errorf("training run: %w", err)
	}
	sampler.Scale()

	// Second pass: reorder each sequence that profits.
	for _, s := range out.Sequences {
		out.Results = append(out.Results, core.ReorderWith(s, out.Profile.Seqs[s.ID], o.Transform))
	}
	for _, s := range out.OrSequences {
		out.OrResults = append(out.OrResults, core.ReorderOr(s, out.OrProfile.Seqs[s.ID]))
	}
	core.StripProf(prog)
	opt.Program(prog)
	prog.Linearize()
	prog.FillDelaySlots()
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("verify after reordering: %w", err)
	}
	out.Reordered = prog
	return out, nil
}
