// Package profile owns the production side of the paper's profile
// lifecycle: collect → sample → merge/decay → persist → select.
//
// The paper trains reordering on exact head-of-sequence counts from one
// training input. Production PGO lives with less: counters are sampled
// (full instrumentation is too expensive to leave on), profiles are
// merged across many training inputs (no single input is
// representative), and the merged profile is stale by the time it is
// consumed. This package provides the sampled-collection layer (Sampler)
// behind the existing core.Profile/core.OrProfile hooks and the
// configuration (Config) that the build pipeline, the content-addressed
// store, and the brbench -profile-study quality harness all key on.
//
// Everything is deterministic by construction: sampling decisions come
// from a seeded splitmix64 stream per sequence, never from time or
// global randomness, so the same seed produces bit-identical sampled
// counts at any parallelism — the property every byte-identity contract
// in this repo is built on.
package profile

// Mode selects how training-run events are collected.
type Mode int

const (
	// Exact is the paper's instrumentation: every head-of-sequence
	// execution is counted. The zero value, so a zero Config changes
	// nothing about a build.
	Exact Mode = iota
	// EveryNth keeps one event in Rate per sequence (systematic
	// sampling with a seeded per-sequence phase), then scales the kept
	// counts back up by Rate.
	EveryNth
	// Reservoir bounds each sequence's retained count mass: events are
	// accepted with probability 2^-level, and whenever a sequence's
	// retained total reaches Capacity its counts are halved and the
	// level increases. Final counts are scaled back up by 2^level.
	Reservoir
)

func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case EveryNth:
		return "nth"
	case Reservoir:
		return "reservoir"
	default:
		return "mode?"
	}
}

// Drift selects which input a build trains on, relative to the input it
// is measured on — the staleness axis of the quality study.
type Drift int

const (
	// DriftCross is the paper's split: train on the workload's training
	// input, measure on its test input. The zero value.
	DriftCross Drift = iota
	// DriftNone trains on the test input itself — the zero-staleness
	// upper bound a production profile can only approach.
	DriftNone
)

func (d Drift) String() string {
	switch d {
	case DriftCross:
		return "train→test"
	case DriftNone:
		return "test→test"
	default:
		return "drift?"
	}
}

// DefaultReservoirCapacity bounds a sequence's retained count mass when
// Config.Capacity is unset: small enough that a hot loop's counters halve
// several times over a training run, large enough that the halving error
// stays far below the P/C-ratio gaps Theorem 3 discriminates.
const DefaultReservoirCapacity = 4096

// Config is the profile-lifecycle configuration of one build. It is a
// flat comparable struct so it can ride inside pipeline option keys,
// engine memo keys, and store fingerprints; every field is omitempty so
// the zero value — the paper's exact, single-input, unmerged profile —
// encodes as an empty object and perturbs nothing.
type Config struct {
	// Mode and Rate configure sampled collection. Rate r means one event
	// in r is kept (EveryNth) or the acceptance budget is tuned for a
	// 1/r stream (Reservoir); values <= 1 keep every event.
	Mode Mode `json:"mode,omitempty"`
	Rate int  `json:"rate,omitempty"`
	// Seed drives every sampling decision. Same seed, same counts.
	Seed uint64 `json:"seed,omitempty"`
	// Capacity is the Reservoir mode's per-sequence retained-count bound
	// (DefaultReservoirCapacity when 0).
	Capacity int `json:"capacity,omitempty"`
	// Drift selects the training input (see Drift).
	Drift Drift `json:"drift,omitempty"`
	// Merge folds this build's training counts through the fleet's
	// persistent merged profile for the same (source, frontend,
	// detection) instead of using them alone: older training inputs
	// contribute with exponentially decayed weight. Requires a
	// persistent profile tier; without one the solo counts are used.
	Merge bool `json:"merge,omitempty"`
	// HalfLife is the decay rate for Merge: a contribution's weight
	// halves every HalfLife generations it falls behind the newest
	// contribution (1 when unset).
	HalfLife int `json:"halfLife,omitempty"`
	// Bias corrupts the scaled counts (added to each sequence's first
	// arm) — the quality harness's injected-bias proof that the study
	// actually measures selection quality. Never set it outside tests
	// and the -profile-bias flag.
	Bias uint64 `json:"bias,omitempty"`
}

// Sampling reports whether the configuration actually samples — i.e.
// whether the training-run hook differs from exact collection. An
// EveryNth or Reservoir config at rate <= 1 still runs the sampling
// path (it keeps every event and scales by 1), which the differential
// tests rely on being bit-identical to Exact.
func (c Config) Sampling() bool { return c.Mode != Exact }

// EffectiveRate is the sampling rate with the <= 1 floor applied.
func (c Config) EffectiveRate() uint64 {
	if c.Rate <= 1 {
		return 1
	}
	return uint64(c.Rate)
}

// EffectiveCapacity is the reservoir bound with the default applied.
func (c Config) EffectiveCapacity() uint64 {
	if c.Capacity <= 0 {
		return DefaultReservoirCapacity
	}
	return uint64(c.Capacity)
}

// EffectiveHalfLife is the merge decay rate with the >= 1 floor applied.
func (c Config) EffectiveHalfLife() int {
	if c.HalfLife < 1 {
		return 1
	}
	return c.HalfLife
}
