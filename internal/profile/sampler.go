package profile

import "branchreorder/internal/core"

// splitmix64 is the standard 64-bit mixer (Vigna); one step advances the
// state and returns a well-distributed output word. It is the only
// randomness source in the package, so sampled counts are a pure
// function of (Config, training input).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a33df8d966d7
	return z ^ (z >> 31)
}

// mix derives a per-sequence stream from the configured seed.
func mix(seed uint64, seqID int) uint64 {
	return splitmix64(splitmix64(seed) ^ splitmix64(uint64(seqID)*0x9e3779b97f4a7c15))
}

// seqState is the sampler's per-sequence state.
type seqState struct {
	keep   bool   // latched decision for the event group in flight
	events uint64 // head executions seen so far
	phase  uint64 // EveryNth: which residue mod rate is kept
	level  uint   // Reservoir: acceptance probability is 2^-level
	rng    uint64 // Reservoir: per-sequence splitmix64 state
}

// Sampler thins the training-run profile event stream according to a
// Config and scales the surviving counts back to exact-profile shape.
// It wraps the combined Profile/OrProfile hook; wiring is:
//
//	s := profile.NewSampler(cfg, prof, orProf)
//	machine.OnProf = s.Hook(combinedHook)
//	... run training input ...
//	s.Scale()
//
// One head execution of an or-sequence emits N consecutive ProfCond
// events (sub 0..N-1) that the OrProfile hook assembles into a joint
// outcome mask, so the sampler decides keep/drop once per group — at
// sub == 0 — and latches that decision for the group's remaining subs.
// Dropping individual subs would corrupt the mask assembly.
//
// For the same reason, Reservoir halving is deferred to the next
// sub == 0 event of the over-capacity sequence: between groups the
// pending mask is fully committed and the count arrays are safe to
// rewrite in place.
type Sampler struct {
	cfg      Config
	rate     uint64
	capacity uint64
	prof     map[int]*core.SeqProfile
	orProf   map[int]*core.OrSeqProfile
	seqs     map[int]*seqState
}

// NewSampler builds a sampler over the training profiles about to be
// filled. The maps are retained: Reservoir mode rewrites counts in place
// when a sequence overflows its capacity, and Scale rewrites them at the
// end of the run.
func NewSampler(cfg Config, prof *core.Profile, orProf *core.OrProfile) *Sampler {
	s := &Sampler{
		cfg:      cfg,
		rate:     cfg.EffectiveRate(),
		capacity: cfg.EffectiveCapacity(),
		seqs:     map[int]*seqState{},
	}
	if prof != nil {
		s.prof = prof.Seqs
	}
	if orProf != nil {
		s.orProf = orProf.Seqs
	}
	return s
}

// initLevel is the Reservoir starting level: the smallest L with
// 2^L >= rate, so the initial acceptance probability matches the
// configured 1-in-rate budget before any capacity-driven escalation.
func (s *Sampler) initLevel() uint {
	var l uint
	for uint64(1)<<l < s.rate {
		l++
	}
	return l
}

func (s *Sampler) state(seqID int) *seqState {
	st := s.seqs[seqID]
	if st == nil {
		st = &seqState{phase: mix(s.cfg.Seed, seqID), rng: mix(s.cfg.Seed+1, seqID)}
		if s.cfg.Mode == Reservoir {
			st.level = s.initLevel()
		}
		st.phase %= s.rate
		s.seqs[seqID] = st
	}
	return st
}

// Hook wraps the exact-collection profile hook with the sampling
// decision. With Exact mode the hook is returned unchanged, so a zero
// Config is bit-for-bit the paper's instrumentation.
func (s *Sampler) Hook(next func(seqID, sub int, v int64)) func(seqID, sub int, v int64) {
	if next == nil || !s.cfg.Sampling() {
		return next
	}
	return func(seqID, sub int, v int64) {
		st := s.state(seqID)
		if sub == 0 {
			st.keep = s.decide(seqID, st)
		}
		if st.keep {
			next(seqID, sub, v)
		}
	}
}

// decide runs once per event group (head execution) of a sequence.
func (s *Sampler) decide(seqID int, st *seqState) bool {
	switch s.cfg.Mode {
	case EveryNth:
		keep := st.events%s.rate == st.phase
		st.events++
		return keep
	case Reservoir:
		if sp := s.prof[seqID]; sp != nil && sp.Total >= s.capacity {
			halveSeq(sp)
			st.level++
		} else if op := s.orProf[seqID]; op != nil && op.Total >= s.capacity {
			halveOr(op)
			st.level++
		}
		if st.level == 0 {
			return true
		}
		st.rng = splitmix64(st.rng)
		return st.rng&(1<<st.level-1) == 0
	default:
		return true
	}
}

func halveSeq(sp *core.SeqProfile) {
	var total uint64
	for i, c := range sp.Counts {
		sp.Counts[i] = c >> 1
		total += c >> 1
	}
	sp.Total = total
}

func halveOr(op *core.OrSeqProfile) {
	var total uint64
	for i, c := range op.Combos {
		op.Combos[i] = c >> 1
		total += c >> 1
	}
	op.Total = total
}

// Scale rewrites the retained counts back to exact-profile magnitude
// after the training run: EveryNth multiplies by the sampling rate;
// Reservoir multiplies by 2^level (an event retained at level j survived
// the j-level acceptance test and was then halved level−j times, so
// every retained unit represents 2^level original events — the scaling
// is unbiased). Totals are recomputed as the sum of the scaled counts so
// the count/total invariant the selection code divides by still holds.
// Finally the configured Bias, if any, corrupts each executed sequence's
// first counter — the quality harness's proof that its metrics react to
// profile damage.
func (s *Sampler) Scale() {
	if s.cfg.Sampling() {
		for id, st := range s.seqs {
			factor := s.rate
			if s.cfg.Mode == Reservoir {
				factor = 1 << st.level
			}
			if factor <= 1 {
				continue
			}
			if sp := s.prof[id]; sp != nil {
				var total uint64
				for i, c := range sp.Counts {
					sp.Counts[i] = c * factor
					total += c * factor
				}
				sp.Total = total
			}
			if op := s.orProf[id]; op != nil {
				var total uint64
				for i, c := range op.Combos {
					op.Combos[i] = c * factor
					total += c * factor
				}
				op.Total = total
			}
		}
	}
	if s.cfg.Bias > 0 {
		for _, sp := range s.prof {
			if sp.Total > 0 && len(sp.Counts) > 0 {
				sp.Counts[0] += s.cfg.Bias
				sp.Total += s.cfg.Bias
			}
		}
		for _, op := range s.orProf {
			if op.Total > 0 && len(op.Combos) > 0 {
				op.Combos[0] += s.cfg.Bias
				op.Total += s.cfg.Bias
			}
		}
	}
}
