package profile

import (
	"reflect"
	"testing"

	"branchreorder/internal/core"
)

// testProfiles builds count storage shaped like a training run's: one
// range sequence with 4 arms and one or-sequence with 3 conditions.
func testProfiles() (*core.Profile, *core.OrProfile) {
	prof := &core.Profile{Seqs: map[int]*core.SeqProfile{
		0: {Counts: make([]uint64, 4)},
	}}
	orProf := &core.OrProfile{Seqs: map[int]*core.OrSeqProfile{
		1: {N: 3, Combos: make([]uint64, 8)},
	}}
	return prof, orProf
}

// drive replays a deterministic synthetic event stream through the
// sampler-wrapped hook: seq 0 gets single-sub events attributed to arm
// v%4, seq 1 gets 3-sub groups committed on the last sub, exactly like
// core's hooks. Returns the stream's exact per-arm truth for seq 0.
func drive(s *Sampler, prof *core.Profile, orProf *core.OrProfile, events int) []uint64 {
	// Reimplements core's hooks on the test's own storage, with or-group
	// assembly tracked explicitly so a dropped sub (broken group
	// integrity) panics instead of silently corrupting a mask.
	var pendingSubs int
	orNext := func(seqID, sub int, v int64) {
		if seqID != 1 {
			sp := prof.Seqs[0]
			sp.Counts[int(v)%len(sp.Counts)]++
			sp.Total++
			return
		}
		if sub == 0 {
			pendingSubs = 0
		} else if pendingSubs != sub {
			panic("or-seq group broken: sub forwarded without its predecessors")
		}
		pendingSubs++
		if pendingSubs == 3 {
			op := orProf.Seqs[1]
			op.Combos[int(v)&7]++
			op.Total++
		}
	}
	hook := s.Hook(orNext)
	truth := make([]uint64, 4)
	r := uint64(99)
	for i := 0; i < events; i++ {
		r = splitmix64(r)
		v := int64(r % 16)
		hook(0, 0, v)
		truth[int(v)%4]++
		// Every 3rd event also executes the or-sequence head.
		if i%3 == 0 {
			hook(1, 0, v)
			hook(1, 1, v)
			hook(1, 2, v)
		}
	}
	return truth
}

func TestExactModeIsPassThrough(t *testing.T) {
	called := false
	next := func(seqID, sub int, v int64) { called = true }
	prof, orProf := testProfiles()
	s := NewSampler(Config{}, prof, orProf)
	h := s.Hook(next)
	h(0, 0, 1)
	if !called {
		t.Fatal("zero-config hook did not forward the event")
	}
	// The wrapper must be the identity, not a keep-everything shim: the
	// differential guarantee is no code-path change at all.
	if reflect.ValueOf(h).Pointer() != reflect.ValueOf(next).Pointer() {
		t.Fatal("zero-config Hook returned a wrapper instead of next itself")
	}
}

func TestEveryNthRateOneMatchesExact(t *testing.T) {
	exactProf, exactOr := testProfiles()
	drive(NewSampler(Config{}, exactProf, exactOr), exactProf, exactOr, 5000)

	prof, orProf := testProfiles()
	s := NewSampler(Config{Mode: EveryNth, Rate: 1, Seed: 7}, prof, orProf)
	drive(s, prof, orProf, 5000)
	s.Scale()

	if !reflect.DeepEqual(prof.Seqs[0], exactProf.Seqs[0]) {
		t.Fatalf("rate-1 EveryNth counts differ from exact: %v vs %v", prof.Seqs[0], exactProf.Seqs[0])
	}
	if !reflect.DeepEqual(orProf.Seqs[1].Combos, exactOr.Seqs[1].Combos) {
		t.Fatalf("rate-1 EveryNth or-counts differ from exact")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	for _, mode := range []Mode{EveryNth, Reservoir} {
		cfg := Config{Mode: mode, Rate: 8, Seed: 42, Capacity: 256}
		run := func() *core.SeqProfile {
			prof, orProf := testProfiles()
			s := NewSampler(cfg, prof, orProf)
			drive(s, prof, orProf, 20000)
			s.Scale()
			return prof.Seqs[0]
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed produced different counts: %v vs %v", mode, a, b)
		}
		other := cfg
		other.Seed = 43
		prof, orProf := testProfiles()
		s := NewSampler(other, prof, orProf)
		drive(s, prof, orProf, 20000)
		s.Scale()
		if reflect.DeepEqual(a, prof.Seqs[0]) {
			t.Fatalf("%v: different seeds produced identical sampled counts", mode)
		}
	}
}

func TestScaledCountsUnbiased(t *testing.T) {
	const events = 200000
	for _, cfg := range []Config{
		{Mode: EveryNth, Rate: 64, Seed: 3},
		{Mode: Reservoir, Rate: 8, Seed: 3, Capacity: 512},
	} {
		prof, orProf := testProfiles()
		s := NewSampler(cfg, prof, orProf)
		truth := drive(s, prof, orProf, events)
		s.Scale()
		sp := prof.Seqs[0]
		var trueTotal uint64
		for _, c := range truth {
			trueTotal += c
		}
		// Scaled total within 15% of the exact total, per-arm shares
		// within 10 points — loose bounds, but a biased estimator (e.g.
		// forgetting to scale, or double-scaling) misses them by miles.
		ratio := float64(sp.Total) / float64(trueTotal)
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("%v: scaled total %d vs true %d (ratio %.3f)", cfg, sp.Total, trueTotal, ratio)
		}
		for i := range truth {
			got := float64(sp.Counts[i]) / float64(sp.Total)
			want := float64(truth[i]) / float64(trueTotal)
			if got < want-0.10 || got > want+0.10 {
				t.Fatalf("%v: arm %d share %.3f vs true %.3f", cfg, i, got, want)
			}
		}
	}
}

func TestReservoirBoundsRetainedMass(t *testing.T) {
	cfg := Config{Mode: Reservoir, Rate: 1, Seed: 5, Capacity: 128}
	prof, orProf := testProfiles()
	s := NewSampler(cfg, prof, orProf)
	hook := s.Hook(func(seqID, sub int, v int64) {
		sp := prof.Seqs[0]
		sp.Counts[int(v)%4]++
		sp.Total++
		if sp.Total > 128 {
			t.Fatalf("retained total %d exceeded capacity before next decision", sp.Total)
		}
	})
	r := uint64(1)
	for i := 0; i < 100000; i++ {
		r = splitmix64(r)
		hook(0, 0, int64(r%16))
	}
	if s.seqs[0].level == 0 {
		t.Fatal("reservoir never escalated its level despite 100k events into capacity 128")
	}
}

func TestBiasCorruptsExecutedSequences(t *testing.T) {
	prof, orProf := testProfiles()
	prof.Seqs[0].Counts[2] = 10
	prof.Seqs[0].Total = 10
	// A second, never-executed sequence must stay untouched: bias must
	// not flip ReasonNotExecuted decisions.
	prof.Seqs[9] = &core.SeqProfile{Counts: make([]uint64, 2)}
	s := NewSampler(Config{Bias: 1000}, prof, orProf)
	s.Scale()
	if got := prof.Seqs[0].Counts[0]; got != 1000 {
		t.Fatalf("bias not applied: Counts[0] = %d", got)
	}
	if got := prof.Seqs[0].Total; got != 1010 {
		t.Fatalf("bias not reflected in total: %d", got)
	}
	if prof.Seqs[9].Total != 0 {
		t.Fatal("bias leaked into a never-executed sequence")
	}
}
