package cminus

// Parser is a recursive-descent parser for Mini-C.
type Parser struct {
	lex   *Lexer
	tok   Tok
	err   error
	depth int
}

// maxDepth bounds statement and expression nesting so that hostile
// inputs fail with a diagnostic instead of exhausting the goroutine
// stack. Real programs nest a few dozen levels at most.
const maxDepth = 2000

// enter guards one level of recursive nesting; every call that returns
// true must be paired with leave.
func (p *Parser) enter() bool {
	p.depth++
	if p.depth > maxDepth {
		p.fail("nesting deeper than %d levels", maxDepth)
		p.depth--
		return false
	}
	return true
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	f := &File{}
	for p.err == nil && p.tok.Kind != TokEOF {
		p.parseTopLevel(f)
	}
	if p.err != nil {
		return nil, p.err
	}
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Tok{Kind: TokEOF}
		return
	}
	p.tok = t
}

func (p *Parser) fail(format string, args ...interface{}) {
	if p.err == nil {
		p.err = errf(p.tok.Pos, format, args...)
		p.tok = Tok{Kind: TokEOF}
	}
}

func (p *Parser) isPunct(text string) bool {
	return p.tok.Kind == TokPunct && p.tok.Text == text
}

func (p *Parser) isKeyword(text string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == text
}

func (p *Parser) expectPunct(text string) {
	if !p.isPunct(text) {
		p.fail("expected %q, found %s", text, p.tok)
		return
	}
	p.next()
}

func (p *Parser) expectKeyword(text string) {
	if !p.isKeyword(text) {
		p.fail("expected %q, found %s", text, p.tok)
		return
	}
	p.next()
}

func (p *Parser) expectIdent() string {
	if p.tok.Kind != TokIdent {
		p.fail("expected identifier, found %s", p.tok)
		return ""
	}
	name := p.tok.Text
	p.next()
	return name
}

func (p *Parser) parseTopLevel(f *File) {
	pos := p.tok.Pos
	p.expectKeyword("int")
	name := p.expectIdent()
	if p.err != nil {
		return
	}
	if p.isPunct("(") {
		p.next()
		fn := &FuncDecl{Pos: pos, Name: name}
		if !p.isPunct(")") {
			for {
				p.expectKeyword("int")
				fn.Params = append(fn.Params, p.expectIdent())
				if p.err != nil {
					return
				}
				if p.isPunct(",") {
					p.next()
					continue
				}
				break
			}
		}
		p.expectPunct(")")
		fn.Body = p.parseBlock()
		f.Funcs = append(f.Funcs, fn)
		return
	}
	// Global variable(s); allow "int a = 1, b;" at top level too.
	for {
		g := &GlobalDecl{Pos: pos, Name: name, Size: 1}
		if p.isPunct("[") {
			p.next()
			g.IsArray = true
			g.Size = p.parseConstExpr()
			if p.err != nil {
				return
			}
			if g.Size <= 0 {
				p.fail("array %s has nonpositive size %d", name, g.Size)
				return
			}
			p.expectPunct("]")
		}
		if p.isPunct("=") {
			p.next()
			p.parseGlobalInit(g)
		}
		f.Globals = append(f.Globals, g)
		if p.err != nil {
			return
		}
		if p.isPunct(",") {
			p.next()
			pos = p.tok.Pos
			name = p.expectIdent()
			continue
		}
		break
	}
	p.expectPunct(";")
}

func (p *Parser) parseGlobalInit(g *GlobalDecl) {
	switch {
	case p.tok.Kind == TokString:
		if !g.IsArray {
			p.fail("string initializer on scalar %s", g.Name)
			return
		}
		for _, b := range p.tok.Str {
			g.Init = append(g.Init, int64(b))
		}
		g.Init = append(g.Init, 0) // NUL terminator
		if int64(len(g.Init)) > g.Size {
			p.fail("string initializer longer than array %s", g.Name)
			return
		}
		p.next()
	case p.isPunct("{"):
		if !g.IsArray {
			p.fail("brace initializer on scalar %s", g.Name)
			return
		}
		p.next()
		for !p.isPunct("}") {
			g.Init = append(g.Init, p.parseConstExpr())
			if p.err != nil {
				return
			}
			if p.isPunct(",") {
				p.next()
				continue
			}
			break
		}
		p.expectPunct("}")
		if int64(len(g.Init)) > g.Size {
			p.fail("too many initializers for array %s", g.Name)
		}
	default:
		if g.IsArray {
			p.fail("array %s must use a brace or string initializer", g.Name)
			return
		}
		g.Init = []int64{p.parseConstExpr()}
	}
}

// parseConstExpr parses an expression and folds it to a constant.
func (p *Parser) parseConstExpr() int64 {
	pos := p.tok.Pos
	e := p.parseExpr()
	if p.err != nil {
		return 0
	}
	v, ok := EvalConst(e)
	if !ok {
		p.err = errf(pos, "expression is not constant")
		return 0
	}
	return v
}

// EvalConst folds an expression built from literals and pure operators to
// a constant value.
func EvalConst(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *UnaryExpr:
		v, ok := EvalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinaryExpr:
		l, ok := EvalConst(e.L)
		if !ok {
			return 0, false
		}
		r, ok := EvalConst(e.R)
		if !ok {
			return 0, false
		}
		return foldBinary(e.Op, l, r)
	case *CondExpr:
		c, ok := EvalConst(e.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return EvalConst(e.Then)
		}
		return EvalConst(e.Else)
	default:
		return 0, false
	}
}

func foldBinary(op string, l, r int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	case "<<":
		return l << (uint64(r) & 63), true
	case ">>":
		return l >> (uint64(r) & 63), true
	case "==":
		return b2i(l == r), true
	case "!=":
		return b2i(l != r), true
	case "<":
		return b2i(l < r), true
	case "<=":
		return b2i(l <= r), true
	case ">":
		return b2i(l > r), true
	case ">=":
		return b2i(l >= r), true
	case "&&":
		return b2i(l != 0 && r != 0), true
	case "||":
		return b2i(l != 0 || r != 0), true
	}
	return 0, false
}

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.tok.Pos
	p.expectPunct("{")
	b := &BlockStmt{Pos: pos}
	for p.err == nil && !p.isPunct("}") {
		if p.tok.Kind == TokEOF {
			p.fail("unexpected end of file in block")
			return b
		}
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expectPunct("}")
	return b
}

func (p *Parser) parseStmt() Stmt {
	pos := p.tok.Pos
	if !p.enter() {
		return &EmptyStmt{Pos: pos}
	}
	defer p.leave()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		p.next()
		return &EmptyStmt{Pos: pos}
	case p.isKeyword("int"):
		return p.parseDecl()
	case p.isKeyword("if"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		then := p.parseStmt()
		var els Stmt
		if p.isKeyword("else") {
			p.next()
			els = p.parseStmt()
		}
		return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}
	case p.isKeyword("while"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		return &WhileStmt{Pos: pos, Cond: cond, Body: p.parseStmt()}
	case p.isKeyword("do"):
		p.next()
		body := p.parseStmt()
		p.expectKeyword("while")
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		p.expectPunct(";")
		return &DoWhileStmt{Pos: pos, Body: body, Cond: cond}
	case p.isKeyword("for"):
		p.next()
		p.expectPunct("(")
		st := &ForStmt{Pos: pos}
		if !p.isPunct(";") {
			st.Init = p.parseExpr()
		}
		p.expectPunct(";")
		if !p.isPunct(";") {
			st.Cond = p.parseExpr()
		}
		p.expectPunct(";")
		if !p.isPunct(")") {
			st.Post = p.parseExpr()
		}
		p.expectPunct(")")
		st.Body = p.parseStmt()
		return st
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("break"):
		p.next()
		p.expectPunct(";")
		return &BreakStmt{Pos: pos}
	case p.isKeyword("continue"):
		p.next()
		p.expectPunct(";")
		return &ContinueStmt{Pos: pos}
	case p.isKeyword("return"):
		p.next()
		st := &ReturnStmt{Pos: pos}
		if !p.isPunct(";") {
			st.X = p.parseExpr()
		}
		p.expectPunct(";")
		return st
	default:
		x := p.parseExpr()
		p.expectPunct(";")
		return &ExprStmt{Pos: pos, X: x}
	}
}

func (p *Parser) parseDecl() Stmt {
	pos := p.tok.Pos
	p.expectKeyword("int")
	d := &DeclStmt{Pos: pos}
	for {
		name := p.expectIdent()
		if p.err != nil {
			return d
		}
		var init Expr
		if p.isPunct("=") {
			p.next()
			init = p.parseAssign() // no comma operator inside declarators
		}
		d.Names = append(d.Names, name)
		d.Inits = append(d.Inits, init)
		if p.isPunct(",") {
			p.next()
			continue
		}
		break
	}
	p.expectPunct(";")
	return d
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.tok.Pos
	p.expectKeyword("switch")
	p.expectPunct("(")
	tag := p.parseExpr()
	p.expectPunct(")")
	p.expectPunct("{")
	st := &SwitchStmt{Pos: pos, Tag: tag}
	for p.err == nil && !p.isPunct("}") {
		cpos := p.tok.Pos
		c := &SwitchCase{Pos: cpos}
		switch {
		case p.isKeyword("case"):
			p.next()
			c.Value = p.parseConstExpr()
			p.expectPunct(":")
		case p.isKeyword("default"):
			p.next()
			c.IsDefault = true
			p.expectPunct(":")
		default:
			p.fail("expected case or default, found %s", p.tok)
			return st
		}
		for p.err == nil && !p.isPunct("}") && !p.isKeyword("case") && !p.isKeyword("default") {
			c.Body = append(c.Body, p.parseStmt())
		}
		st.Cases = append(st.Cases, c)
	}
	p.expectPunct("}")
	return st
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]string{
	"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

// parseExpr parses a full expression (assignment level).
func (p *Parser) parseExpr() Expr {
	if !p.enter() {
		return &IntLit{Pos: p.tok.Pos}
	}
	defer p.leave()
	return p.parseAssign()
}

func (p *Parser) parseAssign() Expr {
	if !p.enter() {
		return &IntLit{Pos: p.tok.Pos}
	}
	defer p.leave()
	lhs := p.parseTernary()
	if p.err != nil {
		return lhs
	}
	if p.tok.Kind == TokPunct {
		if op, ok := assignOps[p.tok.Text]; ok {
			pos := p.tok.Pos
			switch lhs.(type) {
			case *Ident, *IndexExpr:
			default:
				p.fail("invalid assignment target")
				return lhs
			}
			p.next()
			rhs := p.parseAssign() // right associative
			return &AssignExpr{Pos: pos, Op: op, LHS: lhs, RHS: rhs}
		}
	}
	return lhs
}

func (p *Parser) parseTernary() Expr {
	if !p.enter() {
		return &IntLit{Pos: p.tok.Pos}
	}
	defer p.leave()
	cond := p.parseBinary(1)
	if p.err != nil || !p.isPunct("?") {
		return cond
	}
	pos := p.tok.Pos
	p.next()
	then := p.parseAssign()
	p.expectPunct(":")
	els := p.parseTernary()
	return &CondExpr{Pos: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for p.err == nil && p.tok.Kind == TokPunct {
		prec, ok := binPrec[p.tok.Text]
		if !ok || prec < minPrec {
			break
		}
		op := p.tok.Text
		pos := p.tok.Pos
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
	return lhs
}

func (p *Parser) parseUnary() Expr {
	pos := p.tok.Pos
	if !p.enter() {
		return &IntLit{Pos: pos}
	}
	defer p.leave()
	switch {
	case p.isPunct("-") || p.isPunct("!") || p.isPunct("~"):
		op := p.tok.Text
		p.next()
		return &UnaryExpr{Pos: pos, Op: op, X: p.parseUnary()}
	case p.isPunct("+"):
		p.next()
		return p.parseUnary()
	case p.isPunct("++") || p.isPunct("--"):
		op := p.tok.Text
		p.next()
		x := p.parseUnary()
		switch x.(type) {
		case *Ident, *IndexExpr:
		default:
			p.fail("invalid %s operand", op)
			return x
		}
		return &IncDecExpr{Pos: pos, Op: op, X: x}
	default:
		return p.parsePostfix()
	}
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for p.err == nil {
		switch {
		case p.isPunct("++") || p.isPunct("--"):
			op := p.tok.Text
			pos := p.tok.Pos
			switch x.(type) {
			case *Ident, *IndexExpr:
			default:
				p.fail("invalid %s operand", op)
				return x
			}
			p.next()
			x = &IncDecExpr{Pos: pos, Op: op, Postfix: true, X: x}
		default:
			return x
		}
	}
	return x
}

func (p *Parser) parsePrimary() Expr {
	pos := p.tok.Pos
	switch {
	case p.tok.Kind == TokInt:
		v := p.tok.Val
		p.next()
		return &IntLit{Pos: pos, Val: v}
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		p.next()
		if name == "EOF" {
			return &IntLit{Pos: pos, Val: -1}
		}
		switch {
		case p.isPunct("("):
			p.next()
			call := &CallExpr{Pos: pos, Callee: name}
			if !p.isPunct(")") {
				for {
					call.Args = append(call.Args, p.parseAssign())
					if p.err != nil {
						return call
					}
					if p.isPunct(",") {
						p.next()
						continue
					}
					break
				}
			}
			p.expectPunct(")")
			return call
		case p.isPunct("["):
			p.next()
			idx := p.parseExpr()
			p.expectPunct("]")
			return &IndexExpr{Pos: pos, Arr: name, Index: idx}
		default:
			return &Ident{Pos: pos, Name: name}
		}
	case p.isPunct("("):
		p.next()
		x := p.parseExpr()
		p.expectPunct(")")
		return x
	default:
		p.fail("expected expression, found %s", p.tok)
		return &IntLit{Pos: pos}
	}
}
