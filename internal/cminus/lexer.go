package cminus

import (
	"strings"
)

// Lexer turns Mini-C source into tokens. // and /* */ comments are
// supported. Character literals lex as integer literals.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) at() Pos { return Pos{l.line, l.col} }

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.at()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var punct3 = []string{"<<=", ">>="}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

const punct1 = "+-*/%&|^~!<>=(){}[];,?:"

// Next returns the next token.
func (l *Lexer) Next() (Tok, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Tok{}, err
	}
	pos := l.at()
	if l.pos >= len(l.src) {
		return Tok{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Tok{Kind: kind, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.pos
		base := int64(10)
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			start = l.pos
		}
		var v int64
		ndigits := 0
		for l.pos < len(l.src) {
			d := l.peek()
			var dv int64
			switch {
			case isDigit(d):
				dv = int64(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				dv = int64(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				dv = int64(d-'A') + 10
			default:
				goto doneNum
			}
			if dv >= base {
				return Tok{}, errf(l.at(), "digit %q out of range for base %d", d, base)
			}
			v = v*base + dv
			ndigits++
			l.advance()
		}
	doneNum:
		if ndigits == 0 {
			return Tok{}, errf(pos, "malformed integer literal")
		}
		_ = l.src[start:l.pos]
		return Tok{Kind: TokInt, Val: v, Pos: pos}, nil

	case c == '\'':
		l.advance()
		if l.pos >= len(l.src) {
			return Tok{}, errf(pos, "unterminated character literal")
		}
		var v int64
		if l.peek() == '\\' {
			l.advance()
			e, err := l.escape(pos)
			if err != nil {
				return Tok{}, err
			}
			v = int64(e)
		} else {
			v = int64(l.advance())
		}
		if l.pos >= len(l.src) || l.peek() != '\'' {
			return Tok{}, errf(pos, "unterminated character literal")
		}
		l.advance()
		return Tok{Kind: TokInt, Val: v, Pos: pos}, nil

	case c == '"':
		l.advance()
		var buf []byte
		for {
			if l.pos >= len(l.src) {
				return Tok{}, errf(pos, "unterminated string literal")
			}
			ch := l.peek()
			if ch == '"' {
				l.advance()
				break
			}
			if ch == '\n' {
				return Tok{}, errf(pos, "newline in string literal")
			}
			if ch == '\\' {
				l.advance()
				e, err := l.escape(pos)
				if err != nil {
					return Tok{}, err
				}
				buf = append(buf, e)
				continue
			}
			buf = append(buf, l.advance())
		}
		return Tok{Kind: TokString, Str: buf, Pos: pos}, nil
	}

	// Punctuation, longest match first.
	rest := l.src[l.pos:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Tok{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Tok{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	if strings.IndexByte(punct1, c) >= 0 {
		l.advance()
		return Tok{Kind: TokPunct, Text: string(c), Pos: pos}, nil
	}
	return Tok{}, errf(pos, "unexpected character %q", c)
}

func (l *Lexer) escape(pos Pos) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, errf(pos, "unterminated escape sequence")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, errf(pos, "unknown escape sequence \\%c", c)
	}
}

// LexAll tokenizes the whole source (for tests and tools).
func LexAll(src string) ([]Tok, error) {
	l := NewLexer(src)
	var toks []Tok
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
