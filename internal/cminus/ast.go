package cminus

// File is a parsed translation unit.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar or array.
type GlobalDecl struct {
	Pos     Pos
	Name    string
	IsArray bool
	Size    int64   // array length; 1 for scalars
	Init    []int64 // initial values (len <= Size); scalars use Init[0]
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// Statements.

type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

type DeclStmt struct {
	Pos   Pos
	Names []string
	Inits []Expr // parallel to Names; nil entries mean uninitialized
}

type ExprStmt struct {
	Pos Pos
	X   Expr
}

type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

type ForStmt struct {
	Pos  Pos
	Init Expr // may be nil
	Cond Expr // may be nil (infinite)
	Post Expr // may be nil
	Body Stmt
}

// SwitchCase is one case (or default) arm of a switch; C fall-through
// semantics apply between consecutive arms.
type SwitchCase struct {
	Pos       Pos
	IsDefault bool
	Value     int64
	Body      []Stmt
}

type SwitchStmt struct {
	Pos   Pos
	Tag   Expr
	Cases []*SwitchCase
}

type BreakStmt struct{ Pos Pos }

type ContinueStmt struct{ Pos Pos }

type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil (returns 0)
}

type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// Expressions.

// IntLit is an integer or character literal (or the predefined EOF).
type IntLit struct {
	Pos Pos
	Val int64
}

// Ident references a scalar variable (local, parameter, or global).
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is arr[idx] on a global array.
type IndexExpr struct {
	Pos   Pos
	Arr   string
	Index Expr
}

// CallExpr calls a user function or a builtin (getchar, putchar, putint).
type CallExpr struct {
	Pos    Pos
	Callee string
	Args   []Expr
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// BinaryExpr covers arithmetic, bitwise, shift, comparison, and the
// short-circuit operators && and ||.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// AssignExpr is lhs OP= rhs (Op is "" for plain assignment). The LHS is an
// *Ident or *IndexExpr.
type AssignExpr struct {
	Pos Pos
	Op  string // "", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"
	LHS Expr
	RHS Expr
}

// IncDecExpr is ++x, --x, x++ or x--.
type IncDecExpr struct {
	Pos     Pos
	Op      string // "++" or "--"
	Postfix bool
	X       Expr // *Ident or *IndexExpr
}

// CondExpr is cond ? then : else.
type CondExpr struct {
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
}

func (*IntLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*CondExpr) exprNode()   {}

func (e *IntLit) Position() Pos     { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *AssignExpr) Position() Pos { return e.Pos }
func (e *IncDecExpr) Position() Pos { return e.Pos }
func (e *CondExpr) Position() Pos   { return e.Pos }
