// Package cminus implements the front end for Mini-C, the C subset the
// reproduction's workloads are written in. It stands in for the pcc-based
// C front end used by vpo in the paper.
//
// The language, informally:
//
//	program    = { global | function } .
//	global     = "int" ident [ "[" constexpr "]" ] [ "=" ginit ] ";" .
//	ginit      = constexpr | "{" constexpr { "," constexpr } "}" | string .
//	function   = "int" ident "(" [ "int" ident { "," "int" ident } ] ")" block .
//	block      = "{" { decl | stmt } "}" .
//	decl       = "int" ident [ "=" expr ] { "," ident [ "=" expr ] } ";" .
//	stmt       = block | ";" | expr ";"
//	           | "if" "(" expr ")" stmt [ "else" stmt ]
//	           | "while" "(" expr ")" stmt
//	           | "do" stmt "while" "(" expr ")" ";"
//	           | "for" "(" [ expr ] ";" [ expr ] ";" [ expr ] ")" stmt
//	           | "switch" "(" expr ")" "{" { switchcase } "}"
//	           | "break" ";" | "continue" ";" | "return" [ expr ] ";" .
//	switchcase = ( "case" constexpr | "default" ) ":" { stmt | decl } .
//
// Expressions support assignment (=, +=, -=, *=, /=, %=, &=, |=, ^=, <<=,
// >>=), the conditional operator ?:, short-circuit || and &&, bitwise | ^ &,
// comparisons, shifts, additive and multiplicative operators, unary - ! ~,
// prefix/postfix ++ and --, calls, and array indexing. All values are
// 64-bit signed integers; arrays are global only. The identifier EOF is a
// predefined constant -1, and getchar(), putchar(c) and putint(n) are
// built-in I/O functions.
package cminus

import "fmt"

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal (value in Tok.Val)
	TokString // string literal (decoded bytes in Tok.Str)
	TokPunct  // operator or punctuation (text in Tok.Text)
	TokKeyword
)

// Keywords of Mini-C.
var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true, "do": true,
	"for": true, "switch": true, "case": true, "default": true,
	"break": true, "continue": true, "return": true,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Tok is a single token.
type Tok struct {
	Kind TokKind
	Text string // identifier, keyword, or punctuation text
	Val  int64  // integer literal value
	Str  []byte // decoded string literal
	Pos  Pos
}

func (t Tok) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprintf("%d", t.Val)
	case TokString:
		return fmt.Sprintf("%q", t.Str)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a front-end diagnostic with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
