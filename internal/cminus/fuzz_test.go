package cminus_test

// Native fuzz targets for the Mini-C front end, seeded from the 17
// workload sources plus hand-picked edge cases (the seed corpus under
// testdata/fuzz runs as ordinary unit tests; `go test -fuzz=FuzzLexer`
// or -fuzz=FuzzParser explores further).
//
// Invariants checked beyond "no panics":
//   - lexing and parsing are deterministic (same input, same result);
//   - a successfully lexed token stream round-trips: rendering the
//     tokens back to source and re-lexing yields the same stream;
//   - a successfully parsed program lexes successfully, and the
//     semantic checker accepts or rejects it without panicking.

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"branchreorder/internal/cminus"
	"branchreorder/internal/workload"
)

// fuzzSeeds are edge cases worth keeping next to the workload sources.
var fuzzSeeds = []string{
	"",
	"int main() { return 0; }",
	"int x = 'a'; int main() { return x; }",
	`int main() { putchar('\n'); putchar('\\'); return '\''; }`,
	`int s[4] = "ab"; int main() { return s[0]; }`,
	"int main() { return 0x7fffffffffffffff; }",
	"int main() { return 0x; }",
	"/* unterminated",
	`int main() { return "unterminated; }`,
	"int main() { switch (1) { case 1: return 1; default: return 0; } }",
	"int main() { int i; for (i = 0; i < 10; ++i) ; return i <<= 2; }",
	"int main() { return 1 ? 2 ? 3 : 4 : 5; }",
	strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64),
	strings.Repeat("-", 64) + "x",
	"int main() { return 1 //",
	"@",
	"int main() { return 9999999999999999999999999999; }",
}

func addSeeds(f *testing.F) {
	f.Helper()
	for _, w := range workload.All() {
		f.Add(w.Source)
	}
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
}

// sameToks compares token streams by content (kind, text, value, string
// bytes), ignoring positions.
func sameToks(a, b []cminus.Tok) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Text != b[i].Text ||
			a[i].Val != b[i].Val || !bytes.Equal(a[i].Str, b[i].Str) {
			return false
		}
	}
	return true
}

// renderToks prints a token stream back to lexable source, one space
// between tokens so no pair of tokens can fuse into a longer one.
func renderToks(toks []cminus.Tok) (string, bool) {
	var sb strings.Builder
	for _, t := range toks {
		switch t.Kind {
		case cminus.TokEOF:
		case cminus.TokIdent, cminus.TokKeyword, cminus.TokPunct:
			sb.WriteString(t.Text)
		case cminus.TokInt:
			if t.Val < 0 {
				// Overflowed literal: its decimal rendering would not
				// re-lex to the same value.
				return "", false
			}
			sb.WriteString(strconv.FormatInt(t.Val, 10))
		case cminus.TokString:
			sb.WriteByte('"')
			for _, b := range t.Str {
				switch b {
				case '"':
					sb.WriteString(`\"`)
				case '\\':
					sb.WriteString(`\\`)
				case '\n':
					sb.WriteString(`\n`)
				default:
					sb.WriteByte(b)
				}
			}
			sb.WriteByte('"')
		default:
			return "", false
		}
		sb.WriteByte(' ')
	}
	return sb.String(), true
}

func FuzzLexer(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := cminus.LexAll(src)
		again, err2 := cminus.LexAll(src)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("lexing not deterministic: %v vs %v", err, err2)
		}
		if err != nil {
			if err.Error() != err2.Error() {
				t.Fatalf("error not deterministic: %v vs %v", err, err2)
			}
			return
		}
		if !sameToks(toks, again) {
			t.Fatal("token stream not deterministic")
		}
		if n := len(toks); n == 0 || toks[n-1].Kind != cminus.TokEOF {
			t.Fatalf("token stream does not end in EOF: %v", toks)
		}
		for i := 1; i < len(toks); i++ {
			a, b := toks[i-1].Pos, toks[i].Pos
			if b.Line < a.Line || (b.Line == a.Line && b.Col < a.Col) {
				t.Fatalf("positions go backwards: %v then %v", a, b)
			}
		}
		rendered, ok := renderToks(toks)
		if !ok {
			return
		}
		back, err := cminus.LexAll(rendered)
		if err != nil {
			t.Fatalf("round-trip lex failed: %v\nrendered: %q", err, rendered)
		}
		if !sameToks(toks, back) {
			t.Fatalf("round-trip changed the token stream\nsrc: %q\nrendered: %q", src, rendered)
		}
	})
}

func FuzzParser(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := cminus.Parse(src)
		file2, err2 := cminus.Parse(src)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("parsing not deterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		// Anything the parser accepts must have lexed cleanly, with the
		// same shape on every parse.
		if _, lexErr := cminus.LexAll(src); lexErr != nil {
			t.Fatalf("Parse succeeded but LexAll failed: %v", lexErr)
		}
		if len(file.Funcs) != len(file2.Funcs) || len(file.Globals) != len(file2.Globals) {
			t.Fatalf("parse not deterministic: %d/%d funcs, %d/%d globals",
				len(file.Funcs), len(file2.Funcs), len(file.Globals), len(file2.Globals))
		}
		// The checker may reject, but must not panic and must agree with
		// itself.
		_, cerr := cminus.Check(file)
		_, cerr2 := cminus.Check(file2)
		if (cerr == nil) != (cerr2 == nil) {
			t.Fatalf("checking not deterministic: %v vs %v", cerr, cerr2)
		}
	})
}
