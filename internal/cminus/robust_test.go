package cminus

import (
	"testing"
	"testing/quick"
)

// The front end must never panic: arbitrary byte soup either lexes/parses
// or returns an error.
func TestFrontEndNeverPanics(t *testing.T) {
	lex := func(src []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		LexAll(string(src))
		return true
	}
	if err := quick.Check(lex, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("lexer panicked: %v", err)
	}
	parse := func(src []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		f, err := Parse(string(src))
		if err == nil {
			// Whatever parsed must also survive checking.
			Check(f)
		}
		return true
	}
	if err := quick.Check(parse, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("parser panicked: %v", err)
	}
}

// Structured fuzz: token soup assembled from valid fragments stresses the
// parser's recovery paths more than raw bytes.
func TestParserOnTokenSoup(t *testing.T) {
	frags := []string{
		"int", "main", "(", ")", "{", "}", "[", "]", ";", ",",
		"if", "else", "while", "for", "switch", "case", "default",
		"break", "continue", "return", "do",
		"x", "y", "42", "'a'", `"s"`, "=", "==", "+", "-", "*", "/",
		"&&", "||", "<", ">", "?", ":", "++", "--", "<<=",
	}
	seed := uint64(99)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	for trial := 0; trial < 2000; trial++ {
		var src string
		for i := 0; i < 3+next(40); i++ {
			src += frags[next(len(frags))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			if f, err := Parse(src); err == nil {
				Check(f)
			}
		}()
	}
}
