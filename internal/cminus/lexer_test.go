package cminus

import (
	"testing"
)

func lexKinds(t *testing.T, src string) []Tok {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks := lexKinds(t, "int foo _bar2 while whileX")
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "int"},
		{TokIdent, "foo"},
		{TokIdent, "_bar2"},
		{TokKeyword, "while"},
		{TokIdent, "whileX"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"0", 0},
		{"42", 42},
		{"007", 7},
		{"0x10", 16},
		{"0xff", 255},
		{"0XAB", 171},
	}
	for _, tt := range tests {
		toks := lexKinds(t, tt.src)
		if len(toks) != 1 || toks[0].Kind != TokInt || toks[0].Val != tt.want {
			t.Errorf("lex %q = %+v, want int %d", tt.src, toks, tt.want)
		}
	}
}

func TestLexCharLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{`'a'`, 'a'},
		{`' '`, ' '},
		{`'\n'`, '\n'},
		{`'\t'`, '\t'},
		{`'\0'`, 0},
		{`'\\'`, '\\'},
		{`'\''`, '\''},
	}
	for _, tt := range tests {
		toks := lexKinds(t, tt.src)
		if len(toks) != 1 || toks[0].Kind != TokInt || toks[0].Val != tt.want {
			t.Errorf("lex %s = %+v, want %d", tt.src, toks, tt.want)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexKinds(t, `"hi\n" "a\"b"`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if string(toks[0].Str) != "hi\n" {
		t.Errorf("first string = %q", toks[0].Str)
	}
	if string(toks[1].Str) != `a"b` {
		t.Errorf("second string = %q", toks[1].Str)
	}
}

func TestLexPunctuationLongestMatch(t *testing.T) {
	toks := lexKinds(t, "a<<=b >>= << <= < == = ++ + && &")
	var got []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			got = append(got, tk.Text)
		}
	}
	want := []string{"<<=", ">>=", "<<", "<=", "<", "==", "=", "++", "+", "&&", "&"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("punct %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "a // line comment\nb /* block\ncomment */ c")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %+v", len(toks), toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Text != name {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, name)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"'a",        // unterminated char
		`"abc`,      // unterminated string
		"\"a\nb\"",  // newline in string
		"/* no end", // unterminated comment
		"'\\q'",     // unknown escape
		"@",         // stray character
		"\"a\\q\"",  // unknown escape in string
	}
	for _, src := range bad {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}

func TestLexErrorHasPosition(t *testing.T) {
	_, err := LexAll("ab\n   @")
	if err == nil {
		t.Fatal("want error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Pos.Line != 2 {
		t.Errorf("error at line %d, want 2 (%v)", e.Pos.Line, e)
	}
}
