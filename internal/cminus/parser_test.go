package cminus

import (
	"testing"
	"testing/quick"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseGlobals(t *testing.T) {
	f := parseOK(t, `
int a;
int b = 41 + 1;
int arr[10];
int init[4] = {1, 2, 3};
int s[8] = "hi";
int x = 1, y = -2;
`)
	if len(f.Globals) != 7 {
		t.Fatalf("got %d globals, want 7", len(f.Globals))
	}
	if f.Globals[1].Init[0] != 42 {
		t.Errorf("b init = %d, want 42", f.Globals[1].Init[0])
	}
	if !f.Globals[2].IsArray || f.Globals[2].Size != 10 {
		t.Errorf("arr = %+v", f.Globals[2])
	}
	if got := f.Globals[4].Init; len(got) != 3 || got[0] != 'h' || got[1] != 'i' || got[2] != 0 {
		t.Errorf("string init = %v", got)
	}
	if f.Globals[6].Init[0] != -2 {
		t.Errorf("y init = %d, want -2", f.Globals[6].Init[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, `int main() { return 1 + 2 * 3 - 4 / 2; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	v, ok := EvalConst(ret.X)
	if !ok || v != 5 {
		t.Errorf("1+2*3-4/2 = %d (ok=%v), want 5", v, ok)
	}
}

func TestParseConstExprs(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"1 << 4", 16},
		{"~0", -1},
		{"!5", 0},
		{"!0", 1},
		{"(3 | 4) & 6", 6},
		{"10 % 3", 1},
		{"1 < 2", 1},
		{"2 <= 1", 0},
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"1 ? 7 : 9", 7},
		{"0 ? 7 : 9", 9},
		{"-(-5)", 5},
		{"'a' + 1", 'b'},
		{"5 ^ 3", 6},
		{"7 >> 1", 3},
	}
	for _, tt := range tests {
		f := parseOK(t, "int x = "+tt.src+";")
		if got := f.Globals[0].Init[0]; got != tt.want {
			t.Errorf("%s = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestParseStatementShapes(t *testing.T) {
	f := parseOK(t, `
int main() {
	int i;
	;
	if (1) ; else ;
	while (0) ;
	do ; while (0);
	for (i = 0; i < 3; i++) ;
	for (;;) break;
	switch (i) { case 1: break; default: break; }
	{ { } }
	return;
}`)
	stmts := f.Funcs[0].Body.Stmts
	wantTypes := []Stmt{
		&DeclStmt{}, &EmptyStmt{}, &IfStmt{}, &WhileStmt{}, &DoWhileStmt{},
		&ForStmt{}, &ForStmt{}, &SwitchStmt{}, &BlockStmt{}, &ReturnStmt{},
	}
	if len(stmts) != len(wantTypes) {
		t.Fatalf("got %d statements, want %d", len(stmts), len(wantTypes))
	}
	for i := range wantTypes {
		if gotT, wantT := typeName(stmts[i]), typeName(wantTypes[i]); gotT != wantT {
			t.Errorf("statement %d is %s, want %s", i, gotT, wantT)
		}
	}
}

func typeName(s Stmt) string {
	switch s.(type) {
	case *DeclStmt:
		return "decl"
	case *EmptyStmt:
		return "empty"
	case *IfStmt:
		return "if"
	case *WhileStmt:
		return "while"
	case *DoWhileStmt:
		return "dowhile"
	case *ForStmt:
		return "for"
	case *SwitchStmt:
		return "switch"
	case *BlockStmt:
		return "block"
	case *ReturnStmt:
		return "return"
	default:
		return "?"
	}
}

func TestParseDanglingElse(t *testing.T) {
	f := parseOK(t, `int main() { if (1) if (2) return 1; else return 2; return 3; }`)
	outer := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else bound to outer if; must bind to inner")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestParseSwitchFallthrough(t *testing.T) {
	f := parseOK(t, `
int main() {
	switch (1) {
	case 1:
	case 2: return 1;
	default: return 2;
	}
	return 0;
}`)
	sw := f.Funcs[0].Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Body) != 0 {
		t.Error("empty case arm should have no body")
	}
	if !sw.Cases[2].IsDefault {
		t.Error("default arm not marked")
	}
	if sw.Cases[0].Value != 1 || sw.Cases[1].Value != 2 {
		t.Error("case values wrong")
	}
}

func TestParseAssignmentForms(t *testing.T) {
	f := parseOK(t, `
int a[4];
int main() {
	int x;
	x = 1;
	x += 2; x -= 3; x *= 4; x /= 5; x %= 6;
	x &= 7; x |= 8; x ^= 9; x <<= 1; x >>= 1;
	a[x] = x = 2;   // right associative
	return x;
}`)
	body := f.Funcs[0].Body.Stmts
	chain := body[len(body)-2].(*ExprStmt).X.(*AssignExpr)
	if _, ok := chain.RHS.(*AssignExpr); !ok {
		t.Error("a[x] = x = 2 should nest the inner assignment on the right")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main() { return }",             // missing expression then ;
		"int main() { if 1 return 0; }",     // missing parens
		"int main() { int 3; }",             // bad declarator
		"int main() { x = ; }",              // missing rhs
		"int main() { switch (1) { foo } }", // not case/default
		"int main() { break }",              // missing ;
		"int x = y;",                        // non-constant global init
		"int a[0];",                         // nonpositive array
		"int a[-3];",                        // negative array
		"int s = \"x\";",                    // string on scalar
		"int a[2] = {1, 2, 3};",             // too many initializers
		"int main(",                         // truncated
		"int main() { 5 ++; }",              // ++ on non-lvalue
		"int main() { ++3; }",               // ++ on literal
		"int main() { (a+b) = 1; }",         // assign to non-lvalue
		"int main() { case 1: ; }",          // case outside switch
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// Constant folding of randomly nested arithmetic must agree with direct
// evaluation (a testing/quick property over the expression grammar).
func TestEvalConstMatchesGo(t *testing.T) {
	f := func(a, b, c int16, op1, op2 uint8) bool {
		ops := []string{"+", "-", "*", "&", "|", "^"}
		o1 := ops[int(op1)%len(ops)]
		o2 := ops[int(op2)%len(ops)]
		e := &BinaryExpr{
			Op: o1,
			L:  &IntLit{Val: int64(a)},
			R: &BinaryExpr{
				Op: o2,
				L:  &IntLit{Val: int64(b)},
				R:  &IntLit{Val: int64(c)},
			},
		}
		got, ok := EvalConst(e)
		if !ok {
			return false
		}
		inner, _ := foldBinary(o2, int64(b), int64(c))
		want, _ := foldBinary(o1, int64(a), inner)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalConstRejectsNonConst(t *testing.T) {
	e := &BinaryExpr{Op: "+", L: &IntLit{Val: 1}, R: &Ident{Name: "x"}}
	if _, ok := EvalConst(e); ok {
		t.Error("EvalConst folded an identifier")
	}
	div := &BinaryExpr{Op: "/", L: &IntLit{Val: 1}, R: &IntLit{Val: 0}}
	if _, ok := EvalConst(div); ok {
		t.Error("EvalConst folded division by zero")
	}
}
