package cminus

// Semantic analysis: resolves every identifier to a symbol, checks call
// arity (including the builtins), validates break/continue placement and
// switch-case uniqueness, and assigns local-variable slots that lowering
// maps onto virtual registers.

// SymKind classifies resolved symbols.
type SymKind int

const (
	SymLocal SymKind = iota // function-local scalar (includes parameters)
	SymGlobal
)

// Symbol is the resolution of a scalar identifier.
type Symbol struct {
	Kind   SymKind
	Slot   int         // local slot index (SymLocal)
	Global *GlobalDecl // SymGlobal
}

// Builtin identifies a built-in function.
type Builtin int

const (
	NotBuiltin Builtin = iota
	BuiltinGetChar
	BuiltinPutChar
	BuiltinPutInt
)

var builtinArity = map[string]struct {
	b Builtin
	n int
}{
	"getchar": {BuiltinGetChar, 0},
	"putchar": {BuiltinPutChar, 1},
	"putint":  {BuiltinPutInt, 1},
}

// CallTarget is the resolution of a call expression.
type CallTarget struct {
	Builtin Builtin
	Func    *FuncDecl // user function when Builtin == NotBuiltin
}

// Info carries the results of semantic analysis, keyed by AST node.
type Info struct {
	File      *File
	Uses      map[*Ident]Symbol
	ArrayUses map[*IndexExpr]*GlobalDecl
	Calls     map[*CallExpr]CallTarget
	NumLocals map[*FuncDecl]int
	DeclSlots map[*DeclStmt][]int // slot per declared name
	ParamSlot map[*FuncDecl][]int // slot per parameter
}

type checker struct {
	info    *Info
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	fn        *FuncDecl
	scopes    []map[string]int // name -> slot
	nextSlot  int
	loopDepth int
	swDepth   int
}

// Check runs semantic analysis over a parsed file.
func Check(f *File) (*Info, error) {
	c := &checker{
		info: &Info{
			File:      f,
			Uses:      map[*Ident]Symbol{},
			ArrayUses: map[*IndexExpr]*GlobalDecl{},
			Calls:     map[*CallExpr]CallTarget{},
			NumLocals: map[*FuncDecl]int{},
			DeclSlots: map[*DeclStmt][]int{},
			ParamSlot: map[*FuncDecl][]int{},
		},
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range f.Globals {
		if g.Name == "EOF" {
			return nil, errf(g.Pos, "cannot redeclare predefined constant EOF")
		}
		if _, dup := c.globals[g.Name]; dup {
			return nil, errf(g.Pos, "duplicate global %s", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, fn := range f.Funcs {
		if _, isBuiltin := builtinArity[fn.Name]; isBuiltin {
			return nil, errf(fn.Pos, "cannot redefine builtin %s", fn.Name)
		}
		if _, dup := c.funcs[fn.Name]; dup {
			return nil, errf(fn.Pos, "duplicate function %s", fn.Name)
		}
		if _, clash := c.globals[fn.Name]; clash {
			return nil, errf(fn.Pos, "function %s collides with a global", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.nextSlot = 0
	c.loopDepth = 0
	c.swDepth = 0
	c.scopes = []map[string]int{{}}
	var paramSlots []int
	for _, p := range fn.Params {
		if _, dup := c.scopes[0][p]; dup {
			return errf(fn.Pos, "duplicate parameter %s", p)
		}
		c.scopes[0][p] = c.nextSlot
		paramSlots = append(paramSlots, c.nextSlot)
		c.nextSlot++
	}
	c.info.ParamSlot[fn] = paramSlots
	if err := c.stmt(fn.Body); err != nil {
		return err
	}
	c.info.NumLocals[fn] = c.nextSlot
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string) (int, error) {
	if name == "EOF" {
		return 0, errf(pos, "cannot redeclare predefined constant EOF")
	}
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errf(pos, "duplicate declaration of %s in this scope", name)
	}
	slot := c.nextSlot
	c.nextSlot++
	top[name] = slot
	return slot, nil
}

func (c *checker) lookup(name string) (Symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i][name]; ok {
			return Symbol{Kind: SymLocal, Slot: slot}, true
		}
	}
	if g, ok := c.globals[name]; ok {
		return Symbol{Kind: SymGlobal, Global: g}, true
	}
	return Symbol{}, false
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, sub := range s.Stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		slots := make([]int, len(s.Names))
		for i, name := range s.Names {
			if s.Inits[i] != nil {
				// The initializer is evaluated before the name is in
				// scope (so "int x = x;" refers to an outer x, as in C
				// the declaration would shadow — we keep the simpler,
				// stricter rule).
				if err := c.expr(s.Inits[i]); err != nil {
					return err
				}
			}
			slot, err := c.declare(s.Pos, name)
			if err != nil {
				return err
			}
			slots[i] = slot
		}
		c.info.DeclSlots[s] = slots
		return nil
	case *ExprStmt:
		return c.expr(s.X)
	case *IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(s.Body)
	case *DoWhileStmt:
		c.loopDepth++
		if err := c.stmt(s.Body); err != nil {
			c.loopDepth--
			return err
		}
		c.loopDepth--
		return c.expr(s.Cond)
	case *ForStmt:
		if s.Init != nil {
			if err := c.expr(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.expr(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(s.Body)
	case *SwitchStmt:
		if err := c.expr(s.Tag); err != nil {
			return err
		}
		seen := map[int64]bool{}
		hasDefault := false
		c.swDepth++
		defer func() { c.swDepth-- }()
		c.pushScope()
		defer c.popScope()
		for _, cs := range s.Cases {
			if cs.IsDefault {
				if hasDefault {
					return errf(cs.Pos, "duplicate default case")
				}
				hasDefault = true
			} else {
				if seen[cs.Value] {
					return errf(cs.Pos, "duplicate case value %d", cs.Value)
				}
				seen[cs.Value] = true
			}
			for _, sub := range cs.Body {
				if err := c.stmt(sub); err != nil {
					return err
				}
			}
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 && c.swDepth == 0 {
			return errf(s.Pos, "break outside loop or switch")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if s.X != nil {
			return c.expr(s.X)
		}
		return nil
	case *EmptyStmt:
		return nil
	default:
		return errf(Pos{}, "unknown statement type %T", s)
	}
}

func (c *checker) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *Ident:
		sym, ok := c.lookup(e.Name)
		if !ok {
			return errf(e.Pos, "undefined identifier %s", e.Name)
		}
		if sym.Kind == SymGlobal && sym.Global.IsArray {
			return errf(e.Pos, "array %s used without an index", e.Name)
		}
		c.info.Uses[e] = sym
		return nil
	case *IndexExpr:
		g, ok := c.globals[e.Arr]
		if !ok {
			return errf(e.Pos, "undefined array %s", e.Arr)
		}
		if !g.IsArray {
			return errf(e.Pos, "%s is not an array", e.Arr)
		}
		c.info.ArrayUses[e] = g
		return c.expr(e.Index)
	case *CallExpr:
		if b, ok := builtinArity[e.Callee]; ok {
			if len(e.Args) != b.n {
				return errf(e.Pos, "%s takes %d argument(s), got %d", e.Callee, b.n, len(e.Args))
			}
			c.info.Calls[e] = CallTarget{Builtin: b.b}
		} else {
			fn, ok := c.funcs[e.Callee]
			if !ok {
				return errf(e.Pos, "undefined function %s", e.Callee)
			}
			if len(e.Args) != len(fn.Params) {
				return errf(e.Pos, "%s takes %d argument(s), got %d", e.Callee, len(fn.Params), len(e.Args))
			}
			c.info.Calls[e] = CallTarget{Func: fn}
		}
		for _, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return c.expr(e.X)
	case *BinaryExpr:
		if err := c.expr(e.L); err != nil {
			return err
		}
		return c.expr(e.R)
	case *AssignExpr:
		if err := c.expr(e.LHS); err != nil {
			return err
		}
		return c.expr(e.RHS)
	case *IncDecExpr:
		return c.expr(e.X)
	case *CondExpr:
		if err := c.expr(e.Cond); err != nil {
			return err
		}
		if err := c.expr(e.Then); err != nil {
			return err
		}
		return c.expr(e.Else)
	default:
		return errf(e.Position(), "unknown expression type %T", e)
	}
}
