package cminus

import (
	"strings"
	"testing"
)

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	f := parseOK(t, src)
	info, err := Check(f)
	if err != nil {
		t.Fatalf("Check: %v\nsource:\n%s", err, src)
	}
	return info
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed before Check: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Errorf("error %q does not mention %q", err, wantSub)
	}
}

func TestCheckResolvesSymbols(t *testing.T) {
	info := checkOK(t, `
int g = 1;
int arr[4];
int add(int a, int b) { return a + b; }
int main() {
	int x = g;
	arr[0] = add(x, g);
	return arr[0];
}`)
	mainFn := info.File.Funcs[1]
	if info.NumLocals[mainFn] != 1 {
		t.Errorf("main has %d locals, want 1", info.NumLocals[mainFn])
	}
	addFn := info.File.Funcs[0]
	if got := info.ParamSlot[addFn]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("add param slots = %v", got)
	}
}

func TestCheckScoping(t *testing.T) {
	info := checkOK(t, `
int main() {
	int x = 1;
	{
		int x = 2;  // shadows
		x = x + 1;
	}
	return x;
}`)
	fn := info.File.Funcs[0]
	if info.NumLocals[fn] != 2 {
		t.Errorf("got %d locals, want 2 (outer and shadowing x)", info.NumLocals[fn])
	}
}

func TestCheckLoopVariablesPerScope(t *testing.T) {
	checkOK(t, `
int main() {
	int i;
	for (i = 0; i < 3; i++) { int t = i; t = t; }
	while (i > 0) { int t = 1; i -= t; }
	return i;
}`)
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return x; }`, "undefined identifier"},
		{`int main() { return f(); }`, "undefined function"},
		{`int f(int a) { return a; } int main() { return f(); }`, "argument"},
		{`int main() { return getchar(1); }`, "argument"},
		{`int main() { putchar(); return 0; }`, "argument"},
		{`int a[3]; int main() { return a; }`, "without an index"},
		{`int g; int main() { return g[0]; }`, "not an array"},
		{`int main() { return q[0]; }`, "undefined array"},
		{`int main() { break; }`, "break outside"},
		{`int main() { continue; }`, "continue outside"},
		{`int main() { switch (1) { case 1: continue; } return 0; }`, "continue outside"},
		{`int x; int x; int main() { return 0; }`, "duplicate global"},
		{`int f() { return 0; } int f() { return 1; } int main() { return 0; }`, "duplicate function"},
		{`int getchar() { return 0; } int main() { return 0; }`, "builtin"},
		{`int g; int g() { return 0; } int main() { return 0; }`, "collides"},
		{`int f(int a, int a) { return a; } int main() { return 0; }`, "duplicate parameter"},
		{`int main() { int a, a; return 0; }`, "duplicate declaration"},
		{`int main() { switch (1) { case 1: break; case 1: break; } return 0; }`, "duplicate case"},
		{`int main() { switch (1) { default: break; default: break; } return 0; }`, "duplicate default"},
		{`int EOF; int main() { return 0; }`, "EOF"},
		{`int main() { int EOF; return 0; }`, "EOF"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestCheckBreakInsideSwitchOK(t *testing.T) {
	checkOK(t, `int main() { switch (1) { case 1: break; } return 0; }`)
}

func TestCheckCallTargets(t *testing.T) {
	info := checkOK(t, `
int twice(int x) { return x + x; }
int main() { return twice(getchar()); }`)
	var sawBuiltin, sawUser bool
	for _, tgt := range info.Calls {
		switch {
		case tgt.Builtin == BuiltinGetChar:
			sawBuiltin = true
		case tgt.Func != nil && tgt.Func.Name == "twice":
			sawUser = true
		}
	}
	if !sawBuiltin || !sawUser {
		t.Errorf("call resolution incomplete: builtin=%v user=%v", sawBuiltin, sawUser)
	}
}
