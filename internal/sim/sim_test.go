package sim

import (
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/machine"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/predictor"
)

const loopSrc = `
int main() {
	int c, n = 0;
	while ((c = getchar()) != EOF) {
		if (c == 'x')
			n = n + 1;
	}
	return n;
}`

func compile(t *testing.T) *pipeline.Options {
	t.Helper()
	return &pipeline.Options{Switch: lower.SetI, Optimize: true}
}

func TestRunCollectsEverything(t *testing.T) {
	front, err := pipeline.Frontend(loopSrc, *compile(t))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(front.Prog, []byte("xxyyxx"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ret != 4 {
		t.Errorf("ret = %d, want 4", m.Ret)
	}
	if len(m.Mispredicts) != 14 {
		t.Errorf("got %d predictor configs, want 14", len(m.Mispredicts))
	}
	for _, cfg := range machine.All() {
		if m.Cycles[cfg.Name] == 0 {
			t.Errorf("no cycles for %s", cfg.Name)
		}
		if m.Cycles[cfg.Name] < m.Stats.Insts {
			t.Errorf("%s: cycles %d < insts %d", cfg.Name, m.Cycles[cfg.Name], m.Stats.Insts)
		}
	}
}

func TestPredictorSweepShape(t *testing.T) {
	preds := PredictorSweep()
	if len(preds) != 14 {
		t.Fatalf("sweep has %d predictors, want 14", len(preds))
	}
	seen := map[string]bool{}
	for _, p := range preds {
		if seen[p.Name()] {
			t.Errorf("duplicate predictor %s", p.Name())
		}
		seen[p.Name()] = true
	}
	if !seen["(0,2)x2048"] || !seen["(0,1)x32"] {
		t.Error("sweep missing expected endpoints")
	}
}

func TestCyclesModel(t *testing.T) {
	st := interp.Stats{Insts: 1000, TakenBranches: 100, IndirectJumps: 10}
	mispreds := map[string]uint64{"(0,2)x2048": 20}

	ipc := Cycles(machine.SPARCIPC, st, mispreds)
	// 1000 + 100 taken * 1 + 10 ijmp * 2 = 1120.
	if ipc != 1120 {
		t.Errorf("IPC cycles = %d, want 1120", ipc)
	}
	ultra := Cycles(machine.UltraI, st, mispreds)
	// 1000 + 20 mispred * 4 + 10 ijmp * 8 = 1160.
	if ultra != 1160 {
		t.Errorf("Ultra cycles = %d, want 1160", ultra)
	}
	ss20 := Cycles(machine.SPARC20, st, mispreds)
	// 1000 + 100 * 2 + 10 * 2 = 1220.
	if ss20 != 1220 {
		t.Errorf("SS20 cycles = %d, want 1220", ss20)
	}
}

func TestMachineConfigsMatchPaperPairing(t *testing.T) {
	if machine.SPARCIPC.Switch != lower.SetI || machine.SPARC20.Switch != lower.SetI {
		t.Error("IPC/SS20 must use Heuristic Set I")
	}
	if machine.UltraI.Switch != lower.SetII {
		t.Error("Ultra must use Heuristic Set II")
	}
	if machine.UltraI.IJmpExtra <= machine.SPARCIPC.IJmpExtra*3 {
		t.Error("Ultra indirect jumps should be ~4x the IPC's")
	}
	if !machine.SPARCIPC.StaticPipeline || machine.UltraI.StaticPipeline {
		t.Error("pipeline kinds wrong")
	}
	if len(machine.All()) != 3 {
		t.Error("expected the paper's three machines")
	}
}

func TestRunWithCustomPredictors(t *testing.T) {
	front, err := pipeline.Frontend(loopSrc, *compile(t))
	if err != nil {
		t.Fatal(err)
	}
	preds := []*predictor.Bimodal{predictor.NewBimodal(2, 2048)}
	m, err := Run(front.Prog, []byte("xyxy"), preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mispredicts) != 1 {
		t.Errorf("got %d configs, want 1", len(m.Mispredicts))
	}
	if preds[0].Branches != m.Stats.CondBranches {
		t.Errorf("predictor saw %d branches, stats say %d",
			preds[0].Branches, m.Stats.CondBranches)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	front, err := pipeline.Frontend(`int main() { int z = 0; return 1 / z; }`, *compile(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(front.Prog, nil, nil); err == nil {
		t.Error("trap not propagated")
	}
}
