// Package sim measures an executable the way the paper's evaluation does:
// one interpreted run collects the dynamic instruction mix, feeds every
// branch to a battery of predictors (Tables 5 and 6), and derives cycle
// counts for each machine model (Table 7).
package sim

import (
	"fmt"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/machine"
	"branchreorder/internal/predictor"
)

// PredictorSweep is the (0,1)/(0,2) × 32..2048 battery of Table 6.
func PredictorSweep() []*predictor.Bimodal {
	var out []*predictor.Bimodal
	for _, bits := range []int{1, 2} {
		for entries := 32; entries <= 2048; entries *= 2 {
			out = append(out, predictor.NewBimodal(bits, entries))
		}
	}
	return out
}

// Measurement is the result of running one executable on one input.
type Measurement struct {
	Stats  interp.Stats
	Output string
	Ret    int64

	// Mispredicts maps predictor name (e.g. "(0,2)x2048") to the number
	// of mispredicted conditional branches.
	Mispredicts map[string]uint64

	// Cycles maps machine name to modelled execution cycles.
	Cycles map[string]uint64

	// Fusion reports the executable's superinstruction fusion (all zero
	// when decoded with fusion off). It describes the measurement
	// engine, not the measured program: Stats/Cycles are identical
	// either way.
	Fusion interp.FusionStats

	// Compile reports the closure compilation of the executable (all
	// zero unless the closure engine ran). Like Fusion it describes the
	// measurement engine, not the measured program.
	Compile interp.CompileStats
}

// Engine selects the execution backend for a measurement. All engines
// produce byte-identical Measurements; they differ only in wall-clock
// speed (and the engine-descriptive Fusion/Compile fields). The enum
// lives in interp — where the machines do — and is aliased here so
// measurement callers need only this package.
type Engine = interp.Engine

const (
	EngineFast      = interp.EngineFast
	EngineClosure   = interp.EngineClosure
	EngineReference = interp.EngineReference
)

// ParseEngine maps a command-line engine name to an Engine. The empty
// string selects the default fast engine.
func ParseEngine(s string) (Engine, error) { return interp.ParseEngine(s) }

// Options configures how a measurement executes. The zero value is the
// default (fused, fast-engine) configuration. Options never enters
// result fingerprints: engine selection must not invalidate caches,
// because results are engine-independent.
type Options struct {
	// NoFuse decodes without superinstruction fusion — the differential
	// debugging escape hatch (`brbench -no-fuse`). Results are
	// byte-identical either way; only wall-clock and Fusion change.
	NoFuse bool

	// Engine selects the execution backend.
	Engine Engine
}

// Run executes prog on input, simulating the given predictors (pass nil
// for the full Table 6 sweep) and deriving cycles for every machine model.
//
// Execution is on the flat-decoded fast engine (interp.Decode +
// interp.FastMachine); RunWith's Options.Engine selects the closure or
// reference backend instead. With the default sweep the whole predictor battery
// is simulated by one predictor.Bank pass per branch instead of 14
// separate Bimodal observations; explicit predictors keep the Bimodal
// fan-out so tests can instrument individual tables.
func Run(prog *ir.Program, input []byte, preds []*predictor.Bimodal) (*Measurement, error) {
	return RunWith(prog, input, preds, Options{})
}

// RunWith is Run with explicit execution options.
func RunWith(prog *ir.Program, input []byte, preds []*predictor.Bimodal, opts Options) (*Measurement, error) {
	var bank *predictor.Bank
	var onBranch func(id int, taken bool)
	if preds == nil {
		bank = predictor.NewTable6Bank()
		onBranch = bank.Observe
	} else {
		for _, p := range preds {
			p.Reset()
		}
		onBranch = func(id int, taken bool) {
			for _, p := range preds {
				p.Observe(id, taken)
			}
		}
	}
	var (
		stats   interp.Stats
		output  string
		ret     int64
		fusion  interp.FusionStats
		compile interp.CompileStats
	)
	switch opts.Engine {
	case EngineReference:
		m := &interp.Machine{Prog: prog, Input: input, OnBranch: onBranch}
		r, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		stats, output, ret = m.Stats, m.Output.String(), r
	case EngineClosure:
		code, err := interp.DecodeWith(prog, interp.DecodeOptions{Fuse: !opts.NoFuse})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		m := &interp.ClosureMachine{Code: code, Input: input, OnBranch: onBranch}
		r, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		stats, output, ret = m.Stats, m.Output.String(), r
		fusion, compile = code.FusionStats(), code.CompileStats()
	default:
		code, err := interp.DecodeWith(prog, interp.DecodeOptions{Fuse: !opts.NoFuse})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		m := &interp.FastMachine{Code: code, Input: input, OnBranch: onBranch}
		r, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		stats, output, ret = m.Stats, m.Output.String(), r
		fusion = code.FusionStats()
	}
	cfgs := machine.All()
	out := &Measurement{
		Stats:   stats,
		Output:  output,
		Ret:     ret,
		Cycles:  make(map[string]uint64, len(cfgs)),
		Fusion:  fusion,
		Compile: compile,
	}
	if bank != nil {
		out.Mispredicts = bank.Mispredicts()
	} else {
		out.Mispredicts = make(map[string]uint64, len(preds))
		for _, p := range preds {
			out.Mispredicts[p.Name()] = p.Mispredicts
		}
	}
	for _, cfg := range cfgs {
		out.Cycles[cfg.Name] = Cycles(cfg, stats, out.Mispredicts)
	}
	return out, nil
}

// Cycles evaluates the machine timing model over a run's statistics.
func Cycles(cfg machine.Config, st interp.Stats, mispreds map[string]uint64) uint64 {
	cycles := st.Insts + st.IndirectJumps*cfg.IJmpExtra
	if cfg.DelaySlots {
		cycles += st.SlotNops
	}
	if cfg.StaticPipeline {
		cycles += st.TakenBranches * cfg.BranchPenalty
	} else {
		name := cfg.PredictorName
		if name == "" {
			name = fmt.Sprintf("(0,%d)x%d", cfg.PredictorBits, cfg.PredictorEntries)
		}
		cycles += mispreds[name] * cfg.BranchPenalty
	}
	return cycles
}
