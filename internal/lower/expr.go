package lower

import (
	"fmt"

	"branchreorder/internal/cminus"
	"branchreorder/internal/ir"
)

var binOpcode = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Rem,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
}

var relOps = map[string]ir.Rel{
	"==": ir.EQ, "!=": ir.NE, "<": ir.LT, "<=": ir.LE, ">": ir.GT, ">=": ir.GE,
}

// expr lowers e for its value, returning the operand that holds it.
// Constant subexpressions fold to immediates.
func (l *lowerer) expr(e cminus.Expr) ir.Operand {
	if v, ok := cminus.EvalConst(e); ok {
		return ir.Imm(v)
	}
	switch e := e.(type) {
	case *cminus.IntLit:
		return ir.Imm(e.Val)
	case *cminus.Ident:
		sym := l.info.Uses[e]
		if sym.Kind == cminus.SymLocal {
			return ir.R(ir.Reg(sym.Slot))
		}
		g := l.prog().Global(sym.Global.Name)
		r := l.f.NewReg()
		l.emit(ir.Inst{Op: ir.Ld, Dst: r, A: ir.Imm(g.Addr)})
		return ir.R(r)
	case *cminus.IndexExpr:
		addr := l.arrayAddr(e)
		r := l.f.NewReg()
		l.emit(ir.Inst{Op: ir.Ld, Dst: r, A: addr})
		return ir.R(r)
	case *cminus.CallExpr:
		return l.call(e, true)
	case *cminus.UnaryExpr:
		switch e.Op {
		case "-":
			v := l.expr(e.X)
			r := l.f.NewReg()
			l.emit(ir.Inst{Op: ir.Neg, Dst: r, A: v})
			return ir.R(r)
		case "~":
			v := l.expr(e.X)
			r := l.f.NewReg()
			l.emit(ir.Inst{Op: ir.Not, Dst: r, A: v})
			return ir.R(r)
		case "!":
			return l.boolValue(e)
		}
	case *cminus.BinaryExpr:
		if _, isRel := relOps[e.Op]; isRel || e.Op == "&&" || e.Op == "||" {
			return l.boolValue(e)
		}
		a := l.expr(e.L)
		b := l.expr(e.R)
		r := l.f.NewReg()
		l.emit(ir.Inst{Op: binOpcode[e.Op], Dst: r, A: a, B: b})
		return ir.R(r)
	case *cminus.AssignExpr:
		return l.assign(e)
	case *cminus.IncDecExpr:
		return l.incDec(e)
	case *cminus.CondExpr:
		thenB := l.newBlock()
		elseB := l.newBlock()
		end := l.newBlock()
		r := l.f.NewReg()
		l.cond(e.Cond, thenB, elseB)
		l.startBlock(thenB)
		tv := l.expr(e.Then)
		l.emit(ir.Inst{Op: ir.Mov, Dst: r, A: tv})
		l.jumpTo(end)
		l.startBlock(elseB)
		ev := l.expr(e.Else)
		l.emit(ir.Inst{Op: ir.Mov, Dst: r, A: ev})
		l.jumpTo(end)
		l.startBlock(end)
		return ir.R(r)
	}
	panic(fmt.Sprintf("lower: unknown expression %T", e))
}

func (l *lowerer) prog() *ir.Program { return l.res.Prog }

// arrayAddr computes the address operand for an array element access.
func (l *lowerer) arrayAddr(e *cminus.IndexExpr) ir.Operand {
	g := l.prog().Global(l.info.ArrayUses[e].Name)
	idx := l.expr(e.Index)
	if idx.IsImm {
		return ir.Imm(g.Addr + idx.Imm)
	}
	r := l.f.NewReg()
	l.emit(ir.Inst{Op: ir.Add, Dst: r, A: idx, B: ir.Imm(g.Addr)})
	return ir.R(r)
}

// boolValue materializes a condition as 0/1 through control flow.
func (l *lowerer) boolValue(e cminus.Expr) ir.Operand {
	r := l.f.NewReg()
	t := l.newBlock()
	f := l.newBlock()
	end := l.newBlock()
	l.cond(e, t, f)
	l.startBlock(t)
	l.emit(ir.Inst{Op: ir.Mov, Dst: r, A: ir.Imm(1)})
	l.jumpTo(end)
	l.startBlock(f)
	l.emit(ir.Inst{Op: ir.Mov, Dst: r, A: ir.Imm(0)})
	l.jumpTo(end)
	l.startBlock(end)
	return ir.R(r)
}

// cond lowers e as a condition with the given true/false destinations,
// applying short-circuit evaluation.
func (l *lowerer) cond(e cminus.Expr, t, f *ir.Block) {
	if v, ok := cminus.EvalConst(e); ok {
		if v != 0 {
			l.jumpTo(t)
		} else {
			l.jumpTo(f)
		}
		return
	}
	switch e := e.(type) {
	case *cminus.BinaryExpr:
		switch e.Op {
		case "&&":
			mid := l.newBlock()
			l.cond(e.L, mid, f)
			l.startBlock(mid)
			l.cond(e.R, t, f)
			return
		case "||":
			mid := l.newBlock()
			l.cond(e.L, t, mid)
			l.startBlock(mid)
			l.cond(e.R, t, f)
			return
		}
		if rel, ok := relOps[e.Op]; ok {
			a := l.expr(e.L)
			b := l.expr(e.R)
			l.emit(ir.Inst{Op: ir.Cmp, A: a, B: b})
			l.terminate(ir.Term{Kind: ir.TermBr, Rel: rel, Taken: t, Next: f})
			return
		}
	case *cminus.UnaryExpr:
		if e.Op == "!" {
			l.cond(e.X, f, t)
			return
		}
	}
	// General case: nonzero test.
	v := l.expr(e)
	l.emit(ir.Inst{Op: ir.Cmp, A: v, B: ir.Imm(0)})
	l.terminate(ir.Term{Kind: ir.TermBr, Rel: ir.NE, Taken: t, Next: f})
}

// assign lowers an assignment (possibly compound) and yields the stored
// value.
func (l *lowerer) assign(e *cminus.AssignExpr) ir.Operand {
	switch lhs := e.LHS.(type) {
	case *cminus.Ident:
		sym := l.info.Uses[lhs]
		if sym.Kind == cminus.SymLocal {
			dst := ir.Reg(sym.Slot)
			if e.Op == "" {
				v := l.expr(e.RHS)
				l.emit(ir.Inst{Op: ir.Mov, Dst: dst, A: v})
			} else {
				v := l.expr(e.RHS)
				l.emit(ir.Inst{Op: binOpcode[e.Op], Dst: dst, A: ir.R(dst), B: v})
			}
			return ir.R(dst)
		}
		g := l.prog().Global(sym.Global.Name)
		var val ir.Operand
		if e.Op == "" {
			val = l.expr(e.RHS)
		} else {
			cur := l.f.NewReg()
			l.emit(ir.Inst{Op: ir.Ld, Dst: cur, A: ir.Imm(g.Addr)})
			v := l.expr(e.RHS)
			res := l.f.NewReg()
			l.emit(ir.Inst{Op: binOpcode[e.Op], Dst: res, A: ir.R(cur), B: v})
			val = ir.R(res)
		}
		l.emit(ir.Inst{Op: ir.St, A: ir.Imm(g.Addr), B: val})
		return val
	case *cminus.IndexExpr:
		addr := l.arrayAddr(lhs)
		// Pin the address in a register: the RHS may clobber temps.
		addrReg := l.regOperand(addr)
		var val ir.Operand
		if e.Op == "" {
			val = l.expr(e.RHS)
		} else {
			cur := l.f.NewReg()
			l.emit(ir.Inst{Op: ir.Ld, Dst: cur, A: ir.R(addrReg)})
			v := l.expr(e.RHS)
			res := l.f.NewReg()
			l.emit(ir.Inst{Op: binOpcode[e.Op], Dst: res, A: ir.R(cur), B: v})
			val = ir.R(res)
		}
		l.emit(ir.Inst{Op: ir.St, A: ir.R(addrReg), B: val})
		return val
	}
	panic("lower: invalid assignment target")
}

func (l *lowerer) incDec(e *cminus.IncDecExpr) ir.Operand {
	op := ir.Add
	if e.Op == "--" {
		op = ir.Sub
	}
	switch x := e.X.(type) {
	case *cminus.Ident:
		sym := l.info.Uses[x]
		if sym.Kind == cminus.SymLocal {
			dst := ir.Reg(sym.Slot)
			var old ir.Operand
			if e.Postfix {
				t := l.f.NewReg()
				l.emit(ir.Inst{Op: ir.Mov, Dst: t, A: ir.R(dst)})
				old = ir.R(t)
			}
			l.emit(ir.Inst{Op: op, Dst: dst, A: ir.R(dst), B: ir.Imm(1)})
			if e.Postfix {
				return old
			}
			return ir.R(dst)
		}
		g := l.prog().Global(sym.Global.Name)
		cur := l.f.NewReg()
		l.emit(ir.Inst{Op: ir.Ld, Dst: cur, A: ir.Imm(g.Addr)})
		upd := l.f.NewReg()
		l.emit(ir.Inst{Op: op, Dst: upd, A: ir.R(cur), B: ir.Imm(1)})
		l.emit(ir.Inst{Op: ir.St, A: ir.Imm(g.Addr), B: ir.R(upd)})
		if e.Postfix {
			return ir.R(cur)
		}
		return ir.R(upd)
	case *cminus.IndexExpr:
		addr := l.arrayAddr(x)
		addrReg := l.regOperand(addr)
		cur := l.f.NewReg()
		l.emit(ir.Inst{Op: ir.Ld, Dst: cur, A: ir.R(addrReg)})
		upd := l.f.NewReg()
		l.emit(ir.Inst{Op: op, Dst: upd, A: ir.R(cur), B: ir.Imm(1)})
		l.emit(ir.Inst{Op: ir.St, A: ir.R(addrReg), B: ir.R(upd)})
		if e.Postfix {
			return ir.R(cur)
		}
		return ir.R(upd)
	}
	panic("lower: invalid ++/-- operand")
}

// call lowers a call; wantValue selects whether the result register is
// allocated.
func (l *lowerer) call(e *cminus.CallExpr, wantValue bool) ir.Operand {
	tgt := l.info.Calls[e]
	switch tgt.Builtin {
	case cminus.BuiltinGetChar:
		r := l.f.NewReg()
		l.emit(ir.Inst{Op: ir.GetChar, Dst: r})
		return ir.R(r)
	case cminus.BuiltinPutChar:
		v := l.expr(e.Args[0])
		l.emit(ir.Inst{Op: ir.PutChar, A: v})
		return ir.Imm(0)
	case cminus.BuiltinPutInt:
		v := l.expr(e.Args[0])
		l.emit(ir.Inst{Op: ir.PutInt, A: v})
		return ir.Imm(0)
	}
	args := make([]ir.Operand, len(e.Args))
	for i, a := range e.Args {
		// Pin register args so later argument evaluation cannot clobber
		// them via assignments to locals.
		v := l.expr(a)
		if !v.IsImm && i < len(e.Args)-1 {
			v = ir.R(l.copyReg(v.Reg))
		}
		args[i] = v
	}
	dst := ir.NoReg
	if wantValue {
		dst = l.f.NewReg()
	}
	l.emit(ir.Inst{Op: ir.Call, Dst: dst, Callee: tgt.Func.Name, Args: args})
	if wantValue {
		return ir.R(dst)
	}
	return ir.Imm(0)
}

func (l *lowerer) copyReg(r ir.Reg) ir.Reg {
	t := l.f.NewReg()
	l.emit(ir.Inst{Op: ir.Mov, Dst: t, A: ir.R(r)})
	return t
}
