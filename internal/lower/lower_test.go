package lower

import (
	"testing"

	"branchreorder/internal/cminus"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
)

// compile builds a program from source, verifying it along the way.
func compile(t *testing.T, src string, opts Options) *ir.Program {
	t.Helper()
	file, err := cminus.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := cminus.Check(file)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := Program(info, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res.Prog.Linearize()
	if err := res.Prog.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, res.Prog.Dump())
	}
	return res.Prog
}

func run(t *testing.T, prog *ir.Program, input string) (int64, string, interp.Stats) {
	t.Helper()
	m := &interp.Machine{Prog: prog, Input: []byte(input)}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Dump())
	}
	return ret, m.Output.String(), m.Stats
}

func TestArithmeticAndLocals(t *testing.T) {
	prog := compile(t, `
int main() {
	int a = 7, b = 3;
	int c;
	c = a * b + 10;
	c += a % b;
	c -= -b;
	return c << 1;
}`, Options{})
	ret, _, _ := run(t, prog, "")
	want := int64(((7*3 + 10 + 7%3) + 3) << 1)
	if ret != want {
		t.Errorf("got %d, want %d", ret, want)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	prog := compile(t, `
int counts[10];
int total = 5;
int main() {
	int i;
	for (i = 0; i < 10; i++)
		counts[i] = i * i;
	total += counts[3] + counts[9];
	return total;
}`, Options{})
	ret, _, _ := run(t, prog, "")
	if want := int64(5 + 9 + 81); ret != want {
		t.Errorf("got %d, want %d", ret, want)
	}
}

func TestStringGlobalAndIO(t *testing.T) {
	prog := compile(t, `
int msg[6] = "hi\n";
int main() {
	int i = 0;
	while (msg[i] != 0) {
		putchar(msg[i]);
		i++;
	}
	putint(42);
	putchar('\n');
	return 0;
}`, Options{})
	_, out, _ := run(t, prog, "")
	if out != "hi\n42\n" {
		t.Errorf("output %q, want %q", out, "hi\n42\n")
	}
}

func TestGetcharLoop(t *testing.T) {
	// The paper's Figure 1 example: classify characters.
	prog := compile(t, `
int blanks = 0, newlines = 0, others = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == ' ')
			blanks++;
		else if (c == '\n')
			newlines++;
		else
			others++;
	}
	putint(blanks); putchar(' ');
	putint(newlines); putchar(' ');
	putint(others); putchar('\n');
	return 0;
}`, Options{})
	_, out, _ := run(t, prog, "ab c\nd ef\n")
	if out != "2 2 6\n" {
		t.Errorf("output %q, want %q", out, "2 2 6\n")
	}
}

func TestShortCircuit(t *testing.T) {
	prog := compile(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
	int x = 0;
	if (x != 0 && bump()) { return 100; }
	if (x == 0 || bump()) { x = 1; }
	return calls * 10 + x;
}`, Options{})
	ret, _, _ := run(t, prog, "")
	if ret != 1 {
		t.Errorf("got %d, want 1 (short-circuit should skip both bump() calls)", ret)
	}
}

func TestTernaryAndIncDec(t *testing.T) {
	prog := compile(t, `
int main() {
	int a = 5;
	int b = a++ + 1;   // b = 6, a = 6
	int c = ++a;       // c = 7, a = 7
	int d = a > b ? a - b : b - a; // 1
	return b * 100 + c * 10 + d;
}`, Options{})
	ret, _, _ := run(t, prog, "")
	if ret != 671 {
		t.Errorf("got %d, want 671", ret)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	prog := compile(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`, Options{})
	ret, _, _ := run(t, prog, "")
	if ret != 144 {
		t.Errorf("got %d, want 144", ret)
	}
}

func TestDoWhileAndContinueBreak(t *testing.T) {
	prog := compile(t, `
int main() {
	int i = 0, sum = 0;
	do {
		i++;
		if (i % 2 == 0) continue;
		if (i > 9) break;
		sum += i;
	} while (i < 100);
	return sum; // 1+3+5+7+9
}`, Options{})
	ret, _, _ := run(t, prog, "")
	if ret != 25 {
		t.Errorf("got %d, want 25", ret)
	}
}

const switchSrc = `
int main() {
	int c, total = 0;
	while ((c = getchar()) != EOF) {
		switch (c) {
		case 'a': total += 1; break;
		case 'b': total += 2; break;
		case 'c': total += 3;        // falls through
		case 'd': total += 4; break;
		case 'e': total += 5; break;
		case 'x': total += 10; break;
		case 'y': total += 20; break;
		case 'z': total += 30; break;
		default: total += 100; break;
		}
	}
	return total;
}`

func switchWant() int64 {
	// Input "abcdezq": a=1 b=2 c=3+4 d=4 e=5 z=30 q=100
	return 1 + 2 + 7 + 4 + 5 + 30 + 100
}

func TestSwitchAllHeuristics(t *testing.T) {
	for _, h := range []HeuristicSet{SetI, SetII, SetIII} {
		prog := compile(t, switchSrc, Options{Switch: h})
		ret, _, _ := run(t, prog, "abcdezq")
		if ret != switchWant() {
			t.Errorf("set %v: got %d, want %d", h, ret, switchWant())
		}
	}
}

func TestSwitchKindSelection(t *testing.T) {
	tests := []struct {
		h    HeuristicSet
		n    int
		m    int64
		want SwitchKind
	}{
		{SetI, 4, 12, SwitchIndirect},
		{SetI, 4, 13, SwitchLinear},
		{SetI, 8, 100, SwitchBinary},
		{SetI, 3, 3, SwitchLinear},
		{SetII, 15, 15, SwitchBinary},
		{SetII, 16, 48, SwitchIndirect},
		{SetII, 16, 49, SwitchBinary},
		{SetII, 7, 7, SwitchLinear},
		{SetIII, 50, 50, SwitchLinear},
	}
	for _, tt := range tests {
		if got := ChooseSwitchKind(tt.h, tt.n, tt.m); got != tt.want {
			t.Errorf("ChooseSwitchKind(%v, %d, %d) = %v, want %v", tt.h, tt.n, tt.m, got, tt.want)
		}
	}
}

func TestSwitchKindsRecorded(t *testing.T) {
	file, err := cminus.Parse(switchSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cminus.Check(file)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Program(info, Options{Switch: SetIII})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchKinds[SwitchLinear] != 1 {
		t.Errorf("SwitchKinds = %v, want one linear", res.SwitchKinds)
	}
}

func TestDynamicCountsSane(t *testing.T) {
	prog := compile(t, `
int main() {
	int i, s = 0;
	for (i = 0; i < 100; i++) s += i;
	return s;
}`, Options{})
	ret, _, stats := run(t, prog, "")
	if ret != 4950 {
		t.Fatalf("got %d, want 4950", ret)
	}
	if stats.CondBranches < 100 || stats.CondBranches > 110 {
		t.Errorf("CondBranches = %d, want ~101", stats.CondBranches)
	}
	if stats.Insts == 0 || stats.Insts < stats.CondBranches {
		t.Errorf("Insts = %d implausible vs branches %d", stats.Insts, stats.CondBranches)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	prog := compile(t, `int main() { int z = 0; return 5 / z; }`, Options{})
	m := &interp.Machine{Prog: prog}
	if _, err := m.Run(); err == nil {
		t.Error("want division-by-zero error, got nil")
	}
}

func TestCompoundAssignOnArray(t *testing.T) {
	prog := compile(t, `
int a[4] = {1, 2, 3, 4};
int main() {
	int i = 2;
	a[i] *= 10;
	a[i+1] += a[i];
	a[0]++;
	return a[0]*1000 + a[2]*10 + a[3];
}`, Options{})
	ret, _, _ := run(t, prog, "")
	if want := int64(2*1000 + 30*10 + 34); ret != want {
		t.Errorf("got %d, want %d", ret, want)
	}
}
