package lower

import (
	"sort"

	"branchreorder/internal/cminus"
	"branchreorder/internal/ir"
)

// ChooseSwitchKind applies the paper's Table 2 heuristics. n is the number
// of cases; m is the number of possible values between the first and last
// case (span of the case range).
func ChooseSwitchKind(h HeuristicSet, n int, m int64) SwitchKind {
	switch h {
	case SetI:
		if n >= 4 && m <= int64(3*n) {
			return SwitchIndirect
		}
		if n >= 8 {
			return SwitchBinary
		}
		return SwitchLinear
	case SetII:
		if n >= 16 && m <= int64(3*n) {
			return SwitchIndirect
		}
		if n >= 8 {
			return SwitchBinary
		}
		return SwitchLinear
	default: // SetIII
		return SwitchLinear
	}
}

// switchStmt lowers a switch statement with C fall-through semantics.
func (l *lowerer) switchStmt(s *cminus.SwitchStmt) {
	tag := l.expr(s.Tag)
	tagReg := l.regOperand(tag)

	end := l.newBlock()

	// One entry block per arm, in source order, for fall-through.
	armBlocks := make([]*ir.Block, len(s.Cases))
	for i := range s.Cases {
		armBlocks[i] = l.newBlock()
	}
	defaultB := end
	var cases []caseVal
	for i, cs := range s.Cases {
		if cs.IsDefault {
			defaultB = armBlocks[i]
		} else {
			cases = append(cases, caseVal{cs.Value, armBlocks[i]})
		}
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].val < cases[j].val })

	n := len(cases)
	var m int64
	if n > 0 {
		m = cases[n-1].val - cases[0].val + 1
	}
	kind := SwitchLinear
	if n > 0 {
		kind = ChooseSwitchKind(l.opts.Switch, n, m)
	}
	l.res.SwitchKinds[kind]++

	switch {
	case n == 0:
		l.jumpTo(defaultB)
	case kind == SwitchIndirect:
		l.lowerIndirect(tagReg, cases2vals(cases), cases2blks(cases), defaultB)
	case kind == SwitchBinary:
		l.lowerBinarySearch(tagReg, cases2vals(cases), cases2blks(cases), defaultB)
	default:
		l.lowerLinear(tagReg, s, armBlocks, defaultB)
	}

	// Lower arm bodies in source order with fall-through.
	l.breaks = append(l.breaks, end)
	for i, cs := range s.Cases {
		l.startBlock(armBlocks[i])
		for _, sub := range cs.Body {
			l.stmt(sub)
		}
		if i+1 < len(armBlocks) {
			l.jumpTo(armBlocks[i+1])
		} else {
			l.jumpTo(end)
		}
	}
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.startBlock(end)
}

type caseVal struct {
	val int64
	blk *ir.Block
}

func cases2vals(cs []caseVal) []int64 {
	out := make([]int64, len(cs))
	for i, c := range cs {
		out[i] = c.val
	}
	return out
}

func cases2blks(cs []caseVal) []*ir.Block {
	out := make([]*ir.Block, len(cs))
	for i, c := range cs {
		out[i] = c.blk
	}
	return out
}

// lowerLinear emits a linear search in source case order: exactly the
// if-else chain a programmer would write, and exactly the shape the
// branch-reordering transformation detects as a reorderable sequence.
func (l *lowerer) lowerLinear(tag ir.Reg, s *cminus.SwitchStmt, armBlocks []*ir.Block, defaultB *ir.Block) {
	for i, cs := range s.Cases {
		if cs.IsDefault {
			continue
		}
		next := l.newBlock()
		l.emit(ir.Inst{Op: ir.Cmp, A: ir.R(tag), B: ir.Imm(cs.Value)})
		l.terminate(ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: armBlocks[i], Next: next})
		l.startBlock(next)
	}
	l.jumpTo(defaultB)
}

// lowerBinarySearch emits the classic compare-and-bisect tree. Flags
// persist across blocks, so each interior node is one Cmp followed by an
// EQ branch and an LT branch, as vpo generated on SPARC. Leaves degrade to
// short linear sequences, each of which the reordering pass may later pick
// up (the paper notes each binary search contributed several reorderable
// sequences).
func (l *lowerer) lowerBinarySearch(tag ir.Reg, vals []int64, blks []*ir.Block, defaultB *ir.Block) {
	start := l.binTree(tag, vals, blks, defaultB, 0, len(vals)-1)
	l.jumpTo(start)
	l.cur = nil
}

// binTree builds blocks for cases[lo..hi] and returns the entry block.
func (l *lowerer) binTree(tag ir.Reg, vals []int64, blks []*ir.Block, defaultB *ir.Block, lo, hi int) *ir.Block {
	const leafMax = 3
	if hi-lo+1 <= leafMax {
		// Linear leaf.
		entry := l.newBlock()
		cur := entry
		for i := lo; i <= hi; i++ {
			cur.Insts = append(cur.Insts, ir.Inst{Op: ir.Cmp, A: ir.R(tag), B: ir.Imm(vals[i])})
			var next *ir.Block
			if i == hi {
				next = defaultB
			} else {
				next = l.newBlock()
			}
			cur.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: blks[i], Next: next}
			cur = next
		}
		return entry
	}
	mid := (lo + hi) / 2
	eqB := l.newBlock()
	ltB := l.newBlock()
	left := l.binTree(tag, vals, blks, defaultB, lo, mid-1)
	right := l.binTree(tag, vals, blks, defaultB, mid+1, hi)
	eqB.Insts = append(eqB.Insts, ir.Inst{Op: ir.Cmp, A: ir.R(tag), B: ir.Imm(vals[mid])})
	eqB.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: blks[mid], Next: ltB}
	// Flags still hold (tag ? vals[mid]); no second compare needed.
	ltB.Term = ir.Term{Kind: ir.TermBr, Rel: ir.LT, Taken: left, Next: right}
	return eqB
}

// lowerIndirect emits a bounds-checked jump through a dense table, the
// translation whose cost motivates Heuristic Set II on the Ultra.
func (l *lowerer) lowerIndirect(tag ir.Reg, vals []int64, blks []*ir.Block, defaultB *ir.Block) {
	lo := vals[0]
	hi := vals[len(vals)-1]
	idx := tag
	if lo != 0 {
		idx = l.f.NewReg()
		l.emit(ir.Inst{Op: ir.Sub, Dst: idx, A: ir.R(tag), B: ir.Imm(lo)})
	}
	inRange := l.newBlock()
	l.emit(ir.Inst{Op: ir.Cmp, A: ir.R(idx), B: ir.Imm(0)})
	l.terminate(ir.Term{Kind: ir.TermBr, Rel: ir.LT, Taken: defaultB, Next: inRange})
	l.startBlock(inRange)
	doJump := l.newBlock()
	l.emit(ir.Inst{Op: ir.Cmp, A: ir.R(idx), B: ir.Imm(hi - lo)})
	l.terminate(ir.Term{Kind: ir.TermBr, Rel: ir.GT, Taken: defaultB, Next: doJump})
	l.startBlock(doJump)
	targets := make([]*ir.Block, hi-lo+1)
	for i := range targets {
		targets[i] = defaultB
	}
	for i, v := range vals {
		targets[v-lo] = blks[i]
	}
	l.terminate(ir.Term{Kind: ir.TermIJmp, Index: ir.R(idx), Targets: targets})
}
