// Package lower translates checked Mini-C ASTs into IR. It plays the role
// of vpo's code generator in the paper, including the three heuristic sets
// of Table 2 for translating switch statements (indirect jump through a
// jump table, binary search, or linear search).
package lower

import (
	"fmt"

	"branchreorder/internal/cminus"
	"branchreorder/internal/ir"
)

// HeuristicSet selects how switch statements are translated (paper
// Table 2, with n the number of cases and m the number of possible values
// between the first and last case).
type HeuristicSet int

const (
	// SetI is the pcc front end's heuristic, used for the SPARC IPC and
	// SPARC 20: indirect jump when n >= 4 && m <= 3n; binary search when
	// no indirect jump and n >= 8; linear search otherwise.
	SetI HeuristicSet = iota + 1
	// SetII is the Ultra I heuristic (indirect jumps are ~4x more
	// expensive there): indirect jump only when n >= 16 && m <= 3n.
	SetII
	// SetIII always generates a linear search, which exposes the maximum
	// number of reorderable sequences.
	SetIII
)

func (h HeuristicSet) String() string {
	switch h {
	case SetI:
		return "I"
	case SetII:
		return "II"
	case SetIII:
		return "III"
	default:
		return fmt.Sprintf("HeuristicSet(%d)", int(h))
	}
}

// SwitchKind reports which translation a switch statement received.
type SwitchKind int

const (
	SwitchLinear SwitchKind = iota
	SwitchBinary
	SwitchIndirect
)

func (k SwitchKind) String() string {
	switch k {
	case SwitchLinear:
		return "linear"
	case SwitchBinary:
		return "binary"
	default:
		return "indirect"
	}
}

// Options configures lowering.
type Options struct {
	Switch HeuristicSet // zero value means SetI
}

// Result is the outcome of lowering a translation unit.
type Result struct {
	Prog *ir.Program
	// SwitchKinds counts, per translation kind, how many source switch
	// statements were lowered that way (for the static reports).
	SwitchKinds map[SwitchKind]int
}

// Program lowers a semantically checked file.
func Program(info *cminus.Info, opts Options) (*Result, error) {
	if opts.Switch == 0 {
		opts.Switch = SetI
	}
	res := &Result{
		Prog:        &ir.Program{},
		SwitchKinds: map[SwitchKind]int{},
	}
	// Lay out globals in declaration order.
	var addr int64
	for _, g := range info.File.Globals {
		init := make([]int64, g.Size)
		copy(init, g.Init)
		res.Prog.Globals = append(res.Prog.Globals, &ir.Global{
			Name: g.Name, Addr: addr, Size: g.Size, Init: init,
		})
		addr += g.Size
	}
	res.Prog.MemSize = addr

	for _, fn := range info.File.Funcs {
		lf, err := lowerFunc(info, fn, opts, res)
		if err != nil {
			return nil, err
		}
		res.Prog.Funcs = append(res.Prog.Funcs, lf)
	}
	return res, nil
}

type lowerer struct {
	info *cminus.Info
	opts Options
	res  *Result
	f    *ir.Func
	cur  *ir.Block // nil when the current position is unreachable

	breaks    []*ir.Block
	continues []*ir.Block
}

func lowerFunc(info *cminus.Info, fn *cminus.FuncDecl, opts Options, res *Result) (*ir.Func, error) {
	l := &lowerer{info: info, opts: opts, res: res}
	l.f = &ir.Func{
		Name:    fn.Name,
		NParams: len(fn.Params),
		NRegs:   info.NumLocals[fn],
	}
	if l.f.NRegs < l.f.NParams {
		l.f.NRegs = l.f.NParams
	}
	l.cur = l.f.NewBlock()
	l.stmt(fn.Body)
	// Implicit "return 0" when control can fall off the end.
	if l.cur != nil {
		l.cur.Term = ir.Term{Kind: ir.TermRet, Val: ir.Imm(0)}
		l.cur = nil
	}
	return l.f, nil
}

// newBlock allocates a block; startBlock makes it the emission point.
func (l *lowerer) newBlock() *ir.Block { return l.f.NewBlock() }

func (l *lowerer) startBlock(b *ir.Block) { l.cur = b }

// emit appends an instruction to the current block; in unreachable
// positions it starts a fresh floating block so lowering can continue (the
// block is removed later as unreachable).
func (l *lowerer) emit(in ir.Inst) {
	if l.cur == nil {
		l.cur = l.newBlock()
	}
	l.cur.Insts = append(l.cur.Insts, in)
}

// terminate seals the current block with t and leaves the position
// unreachable.
func (l *lowerer) terminate(t ir.Term) {
	if l.cur == nil {
		l.cur = l.newBlock()
	}
	l.cur.Term = t
	l.cur = nil
}

// jumpTo seals the current block with a goto to b (no-op if unreachable).
func (l *lowerer) jumpTo(b *ir.Block) {
	if l.cur == nil {
		return
	}
	l.cur.Term = ir.Term{Kind: ir.TermGoto, Taken: b}
	l.cur = nil
}

func (l *lowerer) stmt(s cminus.Stmt) {
	switch s := s.(type) {
	case *cminus.BlockStmt:
		for _, sub := range s.Stmts {
			l.stmt(sub)
		}
	case *cminus.EmptyStmt:
	case *cminus.DeclStmt:
		slots := l.info.DeclSlots[s]
		for i := range s.Names {
			if s.Inits[i] != nil {
				v := l.expr(s.Inits[i])
				l.emit(ir.Inst{Op: ir.Mov, Dst: ir.Reg(slots[i]), A: v})
			} else {
				l.emit(ir.Inst{Op: ir.Mov, Dst: ir.Reg(slots[i]), A: ir.Imm(0)})
			}
		}
	case *cminus.ExprStmt:
		l.expr(s.X)
	case *cminus.IfStmt:
		thenB := l.newBlock()
		endB := l.newBlock()
		elseB := endB
		if s.Else != nil {
			elseB = l.newBlock()
		}
		l.cond(s.Cond, thenB, elseB)
		l.startBlock(thenB)
		l.stmt(s.Then)
		l.jumpTo(endB)
		if s.Else != nil {
			l.startBlock(elseB)
			l.stmt(s.Else)
			l.jumpTo(endB)
		}
		l.startBlock(endB)
	case *cminus.WhileStmt:
		head := l.newBlock()
		body := l.newBlock()
		end := l.newBlock()
		l.jumpTo(head)
		l.startBlock(head)
		l.cond(s.Cond, body, end)
		l.pushLoop(end, head)
		l.startBlock(body)
		l.stmt(s.Body)
		l.jumpTo(head)
		l.popLoop()
		l.startBlock(end)
	case *cminus.DoWhileStmt:
		body := l.newBlock()
		check := l.newBlock()
		end := l.newBlock()
		l.jumpTo(body)
		l.pushLoop(end, check)
		l.startBlock(body)
		l.stmt(s.Body)
		l.jumpTo(check)
		l.popLoop()
		l.startBlock(check)
		l.cond(s.Cond, body, end)
		l.startBlock(end)
	case *cminus.ForStmt:
		if s.Init != nil {
			l.expr(s.Init)
		}
		head := l.newBlock()
		body := l.newBlock()
		post := l.newBlock()
		end := l.newBlock()
		l.jumpTo(head)
		l.startBlock(head)
		if s.Cond != nil {
			l.cond(s.Cond, body, end)
		} else {
			l.jumpTo(body)
		}
		l.pushLoop(end, post)
		l.startBlock(body)
		l.stmt(s.Body)
		l.jumpTo(post)
		l.popLoop()
		l.startBlock(post)
		if s.Post != nil {
			l.expr(s.Post)
		}
		l.jumpTo(head)
		l.startBlock(end)
	case *cminus.SwitchStmt:
		l.switchStmt(s)
	case *cminus.BreakStmt:
		l.jumpTo(l.breaks[len(l.breaks)-1])
	case *cminus.ContinueStmt:
		l.jumpTo(l.continues[len(l.continues)-1])
	case *cminus.ReturnStmt:
		v := ir.Imm(0)
		if s.X != nil {
			v = l.expr(s.X)
		}
		l.terminate(ir.Term{Kind: ir.TermRet, Val: v})
	default:
		panic(fmt.Sprintf("lower: unknown statement %T", s))
	}
}

func (l *lowerer) pushLoop(brk, cont *ir.Block) {
	l.breaks = append(l.breaks, brk)
	l.continues = append(l.continues, cont)
}

func (l *lowerer) popLoop() {
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.continues = l.continues[:len(l.continues)-1]
}

// regOperand materializes an operand into a register (immediates get a
// fresh register via Mov).
func (l *lowerer) regOperand(o ir.Operand) ir.Reg {
	if !o.IsImm {
		return o.Reg
	}
	r := l.f.NewReg()
	l.emit(ir.Inst{Op: ir.Mov, Dst: r, A: o})
	return r
}
