package machine

import (
	"testing"

	"branchreorder/internal/lower"
)

func TestConfigsAreDistinctAndComplete(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("have %d machines, want the paper's 3", len(all))
	}
	names := map[string]bool{}
	for _, c := range all {
		if names[c.Name] {
			t.Errorf("duplicate machine %q", c.Name)
		}
		names[c.Name] = true
		if c.IJmpInsts == 0 {
			t.Errorf("%s: zero indirect-jump instruction cost", c.Name)
		}
		if !c.StaticPipeline && (c.PredictorBits == 0 || c.PredictorEntries == 0) {
			t.Errorf("%s: dynamic predictor unspecified", c.Name)
		}
	}
	if UltraI.Switch != lower.SetII {
		t.Error("Ultra I must pair with Heuristic Set II (Table 2)")
	}
	if UltraI.IJmpExtra < 4*SPARCIPC.IJmpExtra {
		t.Error("Ultra I indirect jumps must be ~4x the IPC's (dual-loop result)")
	}
}
