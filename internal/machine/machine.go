// Package machine models the three SPARC generations of the paper's
// evaluation as simple timing configurations layered over the dynamic
// instruction counts of the interpreter.
//
// The paper calibrated real hardware with the dual-loop method and found
// indirect jumps on the SPARC Ultra I roughly four times as expensive as
// on the SPARC IPC or SPARC 20, which motivates Heuristic Set II. We
// reproduce that relationship as configuration parameters: cycles =
// instructions + branch-misprediction penalties + extra indirect-jump
// latency. Absolute cycle counts are not meaningful; ratios between the
// baseline and reordered executables are.
package machine

import "branchreorder/internal/lower"

// Config is one machine model.
type Config struct {
	Name string

	// Switch is the switch-translation heuristic set the front end used
	// for this machine in the paper (Table 2).
	Switch lower.HeuristicSet

	// BranchPenalty is the extra cycles per mispredicted conditional
	// branch (machines without dynamic prediction charge it per taken
	// branch instead — see StaticPipeline).
	BranchPenalty uint64

	// StaticPipeline marks machines without a dynamic predictor (IPC,
	// SS20): every taken branch pays BranchPenalty, untaken ones none.
	StaticPipeline bool

	// PredictorBits and PredictorEntries describe the dynamic predictor
	// used when StaticPipeline is false. PredictorName is the predictor's
	// precomputed display name ("(0,Bits)xEntries"), so the cycle model
	// does not re-format it on every evaluation.
	PredictorBits    int
	PredictorEntries int
	PredictorName    string

	// IJmpExtra is the extra latency per indirect jump beyond its
	// instruction cost.
	IJmpExtra uint64

	// IJmpInsts is the instruction cost of the indirect jump itself.
	IJmpInsts uint64

	// DelaySlots charges one cycle per executed control transfer whose
	// delay slot holds a nop (all three SPARC generations expose a
	// single architectural delay slot).
	DelaySlots bool
}

// The three machines of the paper's evaluation.
var (
	// SPARCIPC: early scalar SPARC, shallow pipeline, no dynamic branch
	// prediction, cheap indirect jumps. Compiled with Heuristic Set I.
	SPARCIPC = Config{
		Name:           "SPARC IPC",
		Switch:         lower.SetI,
		BranchPenalty:  1,
		StaticPipeline: true,
		IJmpExtra:      2,
		IJmpInsts:      3,
		DelaySlots:     true,
	}
	// SPARC20: superscalar SuperSPARC, still without the Ultra's deep
	// pipeline. Compiled with Heuristic Set I.
	SPARC20 = Config{
		Name:           "SPARC 20",
		Switch:         lower.SetI,
		BranchPenalty:  2,
		StaticPipeline: true,
		IJmpExtra:      2,
		IJmpInsts:      3,
		DelaySlots:     true,
	}
	// UltraI: deep pipeline, (0,2) predictor with 2048 entries, indirect
	// jumps ~4x the IPC's. Compiled with Heuristic Set II.
	UltraI = Config{
		Name:             "SPARC Ultra I",
		Switch:           lower.SetII,
		BranchPenalty:    4,
		PredictorBits:    2,
		PredictorEntries: 2048,
		PredictorName:    "(0,2)x2048",
		IJmpExtra:        8,
		IJmpInsts:        3,
		DelaySlots:       true,
	}
)

// All returns the evaluation machines in presentation order.
func All() []Config { return []Config{SPARCIPC, SPARC20, UltraI} }
