package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomArms builds a normalized arm set: probabilities sum to 1, costs
// are 2 or 4, and targets are drawn from a small pool so several arms can
// share one (as default ranges of a target do).
func randomArms(rng *rand.Rand, n, ntargets int) []Arm {
	arms := make([]Arm, n)
	var total float64
	for i := range arms {
		w := rng.Float64()
		if rng.Intn(5) == 0 {
			w = 0 // never-observed ranges happen in real profiles
		}
		arms[i] = Arm{
			R:        Range{int64(i * 10), int64(i*10) + rng.Int63n(5)},
			Target:   rng.Intn(ntargets),
			P:        w,
			C:        float64(2 + 2*rng.Intn(2)),
			Explicit: rng.Intn(2) == 0,
		}
		total += w
	}
	if total == 0 {
		arms[0].P = 1
		total = 1
	}
	for i := range arms {
		arms[i].P /= total
	}
	return arms
}

func TestSeqCostTwoArms(t *testing.T) {
	arms := []Arm{
		{P: 0.7, C: 2, Target: 0},
		{P: 0.3, C: 2, Target: 1},
	}
	got := SeqCost(arms, []int{0, 1}, nil)
	want := 0.7*2 + 0.3*4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SeqCost = %v, want %v", got, want)
	}
	// Omit arm 1: its mass pays for the single explicit test.
	got = SeqCost(arms, []int{0}, []int{1})
	want = 0.7*2 + 0.3*2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SeqCost with omission = %v, want %v", got, want)
	}
}

// Theorem 3: for two explicit arms, [Ri,Rj] is optimal iff pi/ci >= pj/cj.
func TestTheorem3TwoArms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		a := Arm{P: rng.Float64(), C: float64(2 + rng.Intn(3))}
		b := Arm{P: rng.Float64(), C: float64(2 + rng.Intn(3))}
		arms := []Arm{a, b}
		c01 := SeqCost(arms, []int{0, 1}, nil)
		c10 := SeqCost(arms, []int{1, 0}, nil)
		if a.P/a.C >= b.P/b.C {
			if c01 > c10+1e-12 {
				t.Fatalf("ratio order not optimal: %+v %+v", a, b)
			}
		} else if c10 > c01+1e-12 {
			t.Fatalf("ratio order not optimal (swapped): %+v %+v", a, b)
		}
	}
}

// The incremental Figure 8 cost bookkeeping must agree with the direct
// Equation 1/2 evaluation of the ordering it returns.
func TestSelectCostConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		arms := randomArms(rng, 1+rng.Intn(10), 1+rng.Intn(4))
		got := Select(arms)
		direct := SeqCost(arms, got.Explicit, got.Omitted)
		if math.Abs(got.Cost-direct) > 1e-9 {
			t.Fatalf("trial %d: incremental cost %v != direct %v (%+v)", trial, got.Cost, direct, got)
		}
		// Structural sanity: explicit+omitted partition the arms, and all
		// omitted arms share DefaultTarget.
		seen := map[int]bool{}
		for _, i := range append(append([]int(nil), got.Explicit...), got.Omitted...) {
			if seen[i] {
				t.Fatalf("trial %d: arm %d appears twice", trial, i)
			}
			seen[i] = true
		}
		if len(seen) != len(arms) {
			t.Fatalf("trial %d: partition covers %d of %d arms", trial, len(seen), len(arms))
		}
		for _, i := range got.Omitted {
			if arms[i].Target != got.DefaultTarget {
				t.Fatalf("trial %d: omitted arm %d has target %d, default is %d",
					trial, i, arms[i].Target, got.DefaultTarget)
			}
		}
	}
}

// The paper reports their heuristic always matched the exhaustive optimum
// on their benchmarks; verify on random inputs.
func TestSelectMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6) // keep permutations tractable
		arms := randomArms(rng, n, 1+rng.Intn(3))
		fast := Select(arms)
		slow := SelectExhaustive(arms)
		if fast.Cost > slow.Cost+1e-9 {
			t.Fatalf("trial %d: Select cost %v worse than exhaustive %v\narms=%+v\nfast=%+v\nslow=%+v",
				trial, fast.Cost, slow.Cost, arms, fast, slow)
		}
	}
}

// Select must never be worse than testing everything explicitly in
// descending P/C order, and never worse than the original order.
func TestSelectUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		arms := randomArms(rng, 2+rng.Intn(8), 1+rng.Intn(4))
		sel := Select(arms)
		allExplicit := sortByRatio(arms)
		if c := SeqCost(arms, allExplicit, nil); sel.Cost > c+1e-9 {
			t.Fatalf("trial %d: Select %v worse than all-explicit %v", trial, sel.Cost, c)
		}
		var original []int
		for i := range arms {
			original = append(original, i)
		}
		if c := SeqCost(arms, original, nil); sel.Cost > c+1e-9 {
			t.Fatalf("trial %d: Select %v worse than original %v", trial, sel.Cost, c)
		}
	}
}

func TestSelectEmptyAndSingle(t *testing.T) {
	if got := Select(nil); len(got.Explicit) != 0 || got.Cost != 0 {
		t.Errorf("Select(nil) = %+v", got)
	}
	arms := []Arm{{P: 1, C: 2, Target: 7}}
	got := Select(arms)
	// A single arm is cheapest fully omitted: control just falls to it.
	if len(got.Omitted) != 1 || got.DefaultTarget != 7 || got.Cost != 0 {
		t.Errorf("Select(single) = %+v, want fully omitted", got)
	}
}

func TestSelectPrefersCheapHighProbabilityFirst(t *testing.T) {
	// Three targets so nothing can be omitted for free; the cheap, likely
	// arm must be tested first.
	arms := []Arm{
		{P: 0.1, C: 4, Target: 0},
		{P: 0.6, C: 2, Target: 1},
		{P: 0.3, C: 2, Target: 2},
	}
	got := Select(arms)
	if len(got.Explicit) == 0 || got.Explicit[0] != 1 {
		t.Errorf("expected arm 1 first, got %+v", got)
	}
}
