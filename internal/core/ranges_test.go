package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"branchreorder/internal/ir"
)

func TestRangeBasics(t *testing.T) {
	r := Range{10, 20}
	if !r.Contains(10) || !r.Contains(20) || r.Contains(9) || r.Contains(21) {
		t.Error("Contains wrong at boundaries")
	}
	if !r.Overlaps(Range{20, 30}) || r.Overlaps(Range{21, 30}) {
		t.Error("Overlaps wrong at boundaries")
	}
	if !r.BoundedBothEnds() || r.NumBranches() != 2 || r.CondCost() != 4 {
		t.Error("bounded-range classification wrong")
	}
	single := Range{5, 5}
	if single.BoundedBothEnds() || single.NumBranches() != 1 || single.CondCost() != 2 {
		t.Error("single-value classification wrong")
	}
	lowOpen := Range{ir.MinVal, 7}
	if lowOpen.BoundedBothEnds() || lowOpen.NumBranches() != 1 {
		t.Error("half-unbounded classification wrong")
	}
}

func TestGapsSimple(t *testing.T) {
	gaps := Gaps([]Range{{10, 20}, {30, 30}})
	want := []Range{{ir.MinVal, 9}, {21, 29}, {31, ir.MaxVal}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
}

func TestGapsEdges(t *testing.T) {
	if g := Gaps(nil); len(g) != 1 || g[0] != FullRange {
		t.Errorf("Gaps(nil) = %v, want full domain", g)
	}
	if g := Gaps([]Range{FullRange}); len(g) != 0 {
		t.Errorf("Gaps(full) = %v, want empty", g)
	}
	g := Gaps([]Range{{ir.MinVal, 0}})
	if len(g) != 1 || g[0] != (Range{1, ir.MaxVal}) {
		t.Errorf("Gaps = %v", g)
	}
	g = Gaps([]Range{{0, ir.MaxVal}})
	if len(g) != 1 || g[0] != (Range{ir.MinVal, -1}) {
		t.Errorf("Gaps = %v", g)
	}
	// Adjacent ranges leave no gap between them.
	g = Gaps([]Range{{0, 5}, {6, 10}})
	if len(g) != 2 {
		t.Errorf("adjacent ranges: gaps = %v", g)
	}
}

// randomDisjointRanges builds up to n pairwise-disjoint ranges over a
// small domain (plus occasional unbounded ends).
func randomDisjointRanges(rng *rand.Rand, n int) []Range {
	bounds := map[int64]bool{}
	for len(bounds) < 2*n {
		bounds[rng.Int63n(2000)-1000] = true
	}
	var vals []int64
	for v := range bounds {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var out []Range
	for i := 0; i+1 < len(vals); i += 2 {
		if rng.Intn(3) == 0 {
			continue // leave a gap in place of this range
		}
		out = append(out, Range{vals[i], vals[i+1]})
	}
	if rng.Intn(4) == 0 && len(out) > 0 {
		out[0].Lo = ir.MinVal
	}
	if rng.Intn(4) == 0 && len(out) > 0 {
		out[len(out)-1].Hi = ir.MaxVal
	}
	return out
}

func TestGapsPropertyCoverAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		ranges := randomDisjointRanges(rng, 1+rng.Intn(8))
		gaps := Gaps(ranges)
		// Gaps must be valid and disjoint from the inputs and each other.
		all := append(append([]Range(nil), ranges...), gaps...)
		for i, r := range all {
			if !r.Valid() {
				t.Fatalf("invalid range %v (trial %d)", r, trial)
			}
			for j := i + 1; j < len(all); j++ {
				if r.Overlaps(all[j]) {
					t.Fatalf("overlap %v and %v (trial %d, ranges=%v gaps=%v)",
						r, all[j], trial, ranges, gaps)
				}
			}
		}
		if !CoversDomain(all) {
			t.Fatalf("ranges+gaps do not cover the domain (trial %d): %v + %v", trial, ranges, gaps)
		}
	}
}

func TestGapsQuickSampledMembership(t *testing.T) {
	// Every sampled value lies in exactly one of ranges ∪ gaps.
	f := func(seed int64, probe int16) bool {
		rng := rand.New(rand.NewSource(seed))
		ranges := randomDisjointRanges(rng, 1+rng.Intn(6))
		gaps := Gaps(ranges)
		v := int64(probe)
		n := 0
		for _, r := range append(append([]Range(nil), ranges...), gaps...) {
			if r.Contains(v) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNonOverlapping(t *testing.T) {
	set := []Range{{0, 10}, {20, 30}}
	if NonOverlapping(Range{5, 15}, set) {
		t.Error("overlap not detected")
	}
	if !NonOverlapping(Range{11, 19}, set) {
		t.Error("disjoint range rejected")
	}
}
