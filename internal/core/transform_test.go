package core

import (
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
)

// buildEqProgram makes: main() { v = getchar(); if v==10 ret 100; if
// v==20 ret 101; if v==30 ret 102; ret 999 } as raw IR.
func buildEqProgram() (*ir.Program, *ir.Func) {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	head := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	e0 := f.NewBlock()
	e1 := f.NewBlock()
	e2 := f.NewBlock()
	def := f.NewBlock()
	head.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 1}}
	condBlock(head, 1, 10, ir.EQ, e0, b1)
	condBlock(b1, 1, 20, ir.EQ, e1, b2)
	condBlock(b2, 1, 30, ir.EQ, e2, def)
	retBlock(e0, 100)
	retBlock(e1, 101)
	retBlock(e2, 102)
	retBlock(def, 999)
	return p, f
}

// trainAndReorder detects, profiles with the given inputs, and reorders.
func trainAndReorder(t *testing.T, p *ir.Program, train []byte) (seq *Sequence, res Result) {
	t.Helper()
	seqs := Detect(p, 0)
	if len(seqs) != 1 {
		t.Fatalf("detected %d sequences", len(seqs))
	}
	seq = seqs[0]
	seq.BuildArms()
	prof := NewProfile(seqs)
	p.Linearize()
	m := &interp.Machine{Prog: p, Input: train, OnProf: prof.Hook()}
	if _, err := m.Run(); err != nil {
		t.Fatalf("training run: %v", err)
	}
	res = Reorder(seq, prof.Seqs[seq.ID])
	StripProf(p)
	p.Linearize()
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after reorder: %v\n%s", err, p.Dump())
	}
	return seq, res
}

func runByte(t *testing.T, p *ir.Program, c byte) int64 {
	t.Helper()
	m := &interp.Machine{Prog: p, Input: []byte{c}}
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p.Dump())
	}
	return ret
}

func TestReorderSkipsUnexecutedSequence(t *testing.T) {
	// The sequence sits behind a guard on a different variable, so an
	// input that fails the guard never reaches it — the paper's most
	// common reason for leaving a sequence alone.
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	guard := f.NewBlock()
	out := f.NewBlock()
	head := f.NewBlock()
	b1 := f.NewBlock()
	e0 := f.NewBlock()
	e1 := f.NewBlock()
	def := f.NewBlock()
	guard.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 2}}
	condBlock(guard, 2, 42, ir.NE, out, head)
	retBlock(out, 0)
	head.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 1}}
	condBlock(head, 1, 10, ir.EQ, e0, b1)
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	retBlock(e0, 100)
	retBlock(e1, 101)
	retBlock(def, 999)

	seqs := Detect(p, 0)
	var seq *Sequence
	for _, s := range seqs {
		if s.V == 1 {
			seq = s
		}
	}
	if seq == nil {
		t.Fatalf("sequence on r1 not detected (%d seqs)", len(seqs))
	}
	for _, s := range seqs {
		s.BuildArms()
	}
	prof := NewProfile(seqs)
	p.Linearize()
	m := &interp.Machine{Prog: p, Input: nil, OnProf: prof.Hook()}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	res := Reorder(seq, prof.Seqs[seq.ID])
	if res.Applied || res.Reason != ReasonNotExecuted {
		t.Errorf("result = %+v, want skip for unexecuted sequence", res)
	}
}

func TestReorderSkipsWhenOriginalOptimal(t *testing.T) {
	p, _ := buildEqProgram()
	// Training heavily favours the first condition: nothing to gain.
	train := make([]byte, 300)
	for i := range train {
		train[i] = 10
	}
	_, res := trainAndReorder(t, p, train)
	if res.Applied {
		t.Errorf("reordered an already-optimal sequence: %+v", res)
	}
	if res.Reason != ReasonNoImprovement {
		t.Errorf("reason = %v, want no-improvement", res.Reason)
	}
	if res.Reason.String() == "" || ReasonApplied.String() == "" || ReasonNotExecuted.String() == "" {
		t.Error("SkipReason strings missing")
	}
}

func TestReorderAppliesAndPreservesBehaviour(t *testing.T) {
	p, _ := buildEqProgram()
	ref := ir.CloneProgram(p)
	ref.Linearize()
	// Training heavily favours the LAST condition (30).
	train := make([]byte, 0, 330)
	for i := 0; i < 300; i++ {
		train = append(train, 30)
	}
	train = append(train, 10, 20, 5)
	_, res := trainAndReorder(t, p, train)
	if !res.Applied {
		t.Fatalf("not reordered: %+v", res)
	}
	if res.NewCost >= res.OrigCost {
		t.Errorf("cost did not improve: %v -> %v", res.OrigCost, res.NewCost)
	}
	if res.OrigBranches != 3 {
		t.Errorf("OrigBranches = %d", res.OrigBranches)
	}
	if res.NewBranches == 0 {
		t.Error("NewBranches not recorded")
	}
	// Behaviour identical on all interesting inputs.
	for _, c := range []byte{10, 20, 30, 5, 0, 255} {
		want := runByte(t, ref, c)
		got := runByte(t, p, c)
		if got != want {
			t.Errorf("input %d: got %d, want %d", c, got, want)
		}
	}
	// The hot value should now cost fewer dynamic branches.
	m := &interp.Machine{Prog: p, Input: []byte{30}}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CondBranches > 2 { // EOF loop? no loop here: just the chain
		t.Errorf("hot value executes %d branches, want <= 2", m.Stats.CondBranches)
	}
}

func TestReorderSinksSideEffects(t *testing.T) {
	// if v==10 ret g; else { g++; if v==20 ret g+50; else ret g+900 }
	p := &ir.Program{MemSize: 1}
	p.Globals = []*ir.Global{{Name: "g", Addr: 0, Size: 1, Init: []int64{5}}}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	head := f.NewBlock()
	b1 := f.NewBlock()
	e0 := f.NewBlock()
	e1 := f.NewBlock()
	def := f.NewBlock()
	head.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 1}}
	condBlock(head, 1, 10, ir.EQ, e0, b1)
	// side effect: g++ before the second compare
	b1.Insts = []ir.Inst{
		{Op: ir.Ld, Dst: 2, A: ir.Imm(0)},
		{Op: ir.Add, Dst: 2, A: ir.R(2), B: ir.Imm(1)},
		{Op: ir.St, A: ir.Imm(0), B: ir.R(2)},
	}
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	// e0: ret g
	e0.Insts = []ir.Inst{{Op: ir.Ld, Dst: 3, A: ir.Imm(0)}}
	e0.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(3)}
	// e1: ret g+50
	e1.Insts = []ir.Inst{
		{Op: ir.Ld, Dst: 3, A: ir.Imm(0)},
		{Op: ir.Add, Dst: 3, A: ir.R(3), B: ir.Imm(50)},
	}
	e1.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(3)}
	// def: ret g+900
	def.Insts = []ir.Inst{
		{Op: ir.Ld, Dst: 3, A: ir.Imm(0)},
		{Op: ir.Add, Dst: 3, A: ir.R(3), B: ir.Imm(900)},
	}
	def.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(3)}

	ref := ir.CloneProgram(p)
	ref.Linearize()

	// Train mostly on the default path so the gap arm leads.
	train := make([]byte, 0, 120)
	for i := 0; i < 100; i++ {
		train = append(train, 77)
	}
	train = append(train, 20, 20, 20, 20, 20, 10)
	seq, res := trainAndReorder(t, p, train)
	if len(seq.Conds[1].SideEffects) != 3 {
		t.Fatalf("side effects not captured: %d", len(seq.Conds[1].SideEffects))
	}
	if !res.Applied {
		t.Fatalf("not applied: %+v", res)
	}
	// v==10: no increment (ret 5); v==20: increment (ret 56);
	// other: increment (ret 906).
	for _, tc := range []struct {
		c    byte
		want int64
	}{{10, 5}, {20, 56}, {77, 906}, {0, 906}} {
		if got := runByte(t, p, tc.c); got != tc.want {
			t.Errorf("input %d: got %d, want %d (reference %d)",
				tc.c, got, tc.want, runByte(t, ref, tc.c))
		}
	}
}

func TestReorderPicksNewDefaultTarget(t *testing.T) {
	p, _ := buildEqProgram()
	// Everything hits 30: its arm should be omitted (fall-through) or
	// tested first; either way 30 must remain correct and cheap.
	train := make([]byte, 500)
	for i := range train {
		train[i] = 30
	}
	_, res := trainAndReorder(t, p, train)
	if !res.Applied {
		t.Fatalf("not applied: %+v", res)
	}
	for _, tc := range []struct {
		c    byte
		want int64
	}{{10, 100}, {20, 101}, {30, 102}, {42, 999}} {
		if got := runByte(t, p, tc.c); got != tc.want {
			t.Errorf("input %d: got %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestStripProf(t *testing.T) {
	p, _ := buildEqProgram()
	Detect(p, 0)
	found := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == ir.Prof {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no instrumentation inserted")
	}
	StripProf(p)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == ir.Prof {
					t.Fatal("Prof survived StripProf")
				}
			}
		}
	}
}

func TestProfileBucketing(t *testing.T) {
	p, _ := buildEqProgram()
	seqs := Detect(p, 0)
	seq := seqs[0]
	seq.BuildArms()
	prof := NewProfile(seqs)
	hook := prof.Hook()
	// 3 hits on [10], 1 on [20], 2 in the gap below 10, 4 above 30.
	for _, v := range []int64{10, 10, 10, 20, -5, 3, 40, 50, 60, 70} {
		hook(seq.ID, 0, v)
	}
	sp := prof.Seqs[seq.ID]
	if sp.Total != 10 {
		t.Fatalf("total = %d", sp.Total)
	}
	// Arms: [10],[20],[30], then gaps [MIN..9],[11..19],[21..29],[31..MAX].
	want := map[Range]uint64{
		{10, 10}:        3,
		{20, 20}:        1,
		{30, 30}:        0,
		{ir.MinVal, 9}:  2,
		{11, 19}:        0,
		{21, 29}:        0,
		{31, ir.MaxVal}: 4,
	}
	for i, arm := range seq.Arms {
		if w, ok := want[arm.R]; ok {
			if sp.Counts[i] != w {
				t.Errorf("arm %v count = %d, want %d", arm.R, sp.Counts[i], w)
			}
		} else {
			t.Errorf("unexpected arm %v", arm.R)
		}
	}
	// AttachProfile normalizes.
	seq.AttachProfile(sp)
	var sum float64
	for _, a := range seq.Arms {
		sum += a.P
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// Unknown sequence IDs are ignored, not panicking.
	hook(9999, 0, 5)
}
