package core

import (
	"fmt"
	"sort"
)

// BuildArms populates the sequence's ordering candidates: one arm per
// explicit range condition (in original order) followed by one per default
// range (Section 5, Figure 7). Must be called once after detection,
// before profiling.
func (s *Sequence) BuildArms() {
	explicit := make([]Range, len(s.Conds))
	for i, c := range s.Conds {
		explicit[i] = c.R
	}
	s.Arms = s.Arms[:0]
	s.ArmCond = s.ArmCond[:0]
	// An explicit condition's arm may be left untested (omitted) only if
	// no later condition carries side effects: the shared fall-through
	// edge executes every sunk side effect, which is only correct for
	// values that would have traversed the whole original sequence.
	sideAfter := make([]bool, len(s.Conds)+1)
	for i := len(s.Conds) - 1; i >= 0; i-- {
		sideAfter[i] = sideAfter[i+1] || len(s.Conds[i].SideEffects) > 0
	}
	for i, c := range s.Conds {
		s.Arms = append(s.Arms, Arm{
			R:        c.R,
			Target:   c.Exit.ID,
			C:        float64(c.R.CondCost()),
			Explicit: true,
			MustTest: sideAfter[i+1],
		})
		s.ArmCond = append(s.ArmCond, i)
	}
	for _, g := range Gaps(explicit) {
		s.Arms = append(s.Arms, Arm{
			R:      g,
			Target: s.DefaultTarget.ID,
			C:      float64(g.CondCost()),
		})
		s.ArmCond = append(s.ArmCond, len(s.Conds))
	}
}

// SeqProfile holds the training counts for one sequence: Counts is
// parallel to Sequence.Arms.
type SeqProfile struct {
	Counts []uint64
	Total  uint64
}

// Profile accumulates training-run counts for every detected sequence.
type Profile struct {
	Seqs map[int]*SeqProfile

	lookup map[int]lookupTable
}

type lookupEntry struct {
	r   Range
	arm int
}

type lookupTable []lookupEntry

// NewProfile prepares count storage for the given sequences (whose Arms
// must be built).
func NewProfile(seqs []*Sequence) *Profile {
	p := &Profile{
		Seqs:   make(map[int]*SeqProfile, len(seqs)),
		lookup: make(map[int]lookupTable, len(seqs)),
	}
	for _, s := range seqs {
		if len(s.Arms) == 0 {
			panic(fmt.Sprintf("core: sequence %d has no arms; call BuildArms first", s.ID))
		}
		p.Seqs[s.ID] = &SeqProfile{Counts: make([]uint64, len(s.Arms))}
		tbl := make(lookupTable, len(s.Arms))
		for i, a := range s.Arms {
			tbl[i] = lookupEntry{a.R, i}
		}
		sort.Slice(tbl, func(i, j int) bool { return tbl[i].r.Lo < tbl[j].r.Lo })
		p.lookup[s.ID] = tbl
	}
	return p
}

// Hook returns the interpreter callback that attributes each execution of
// a sequence head to the arm whose range contains the branch variable's
// value. The arms of a sequence cover the whole domain, so every value
// lands in exactly one arm. The sub index is unused for range-condition
// sequences (common-successor sequences use OrProfile instead).
func (p *Profile) Hook() func(seqID, sub int, v int64) {
	return func(seqID, sub int, v int64) {
		sp, ok := p.Seqs[seqID]
		if !ok {
			return
		}
		tbl := p.lookup[seqID]
		// Binary search for the entry with the greatest Lo <= v.
		idx := sort.Search(len(tbl), func(i int) bool { return tbl[i].r.Lo > v }) - 1
		if idx < 0 || !tbl[idx].r.Contains(v) {
			return // unreachable for covering arms; be defensive
		}
		sp.Counts[tbl[idx].arm]++
		sp.Total++
	}
}

// AttachProfile fills the arms' exit probabilities (Definition 9) from
// the training counts. With a zero total every probability stays zero and
// the caller skips the sequence, as the paper did for sequences the
// training input never executed.
func (s *Sequence) AttachProfile(sp *SeqProfile) {
	if sp == nil || sp.Total == 0 {
		for i := range s.Arms {
			s.Arms[i].P = 0
		}
		return
	}
	for i := range s.Arms {
		s.Arms[i].P = float64(sp.Counts[i]) / float64(sp.Total)
	}
}
