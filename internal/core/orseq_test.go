package core

import (
	"math/rand"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
)

// buildOrProgram makes: a = getchar(); b = getchar();
// if (a == 1 || b == 2 || a > 50) ret 111; else ret 222;
// lowered the way the front end would: three compare-and-branch blocks
// with a common successor.
func buildOrProgram() *ir.Program {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	h := f.NewBlock()
	c2 := f.NewBlock()
	c3 := f.NewBlock()
	common := f.NewBlock()
	fall := f.NewBlock()
	h.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 1},
		{Op: ir.GetChar, Dst: 2},
		{Op: ir.Cmp, A: ir.R(1), B: ir.Imm(1)},
	}
	h.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: common, Next: c2}
	c2.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(2), B: ir.Imm(2)}}
	c2.Term = ir.Term{Kind: ir.TermBr, Rel: ir.EQ, Taken: common, Next: c3}
	c3.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(1), B: ir.Imm(50)}}
	c3.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GT, Taken: common, Next: fall}
	retBlock(common, 111)
	retBlock(fall, 222)
	return p
}

func TestDetectCommonSucc(t *testing.T) {
	p := buildOrProgram()
	seqs := DetectCommonSucc(p, 0, nil)
	if len(seqs) != 1 {
		t.Fatalf("detected %d or-sequences, want 1\n%s", len(seqs), p.Funcs[0].Dump())
	}
	s := seqs[0]
	if len(s.Conds) != 3 {
		t.Fatalf("got %d conds: %v", len(s.Conds), s)
	}
	if s.PreHead == nil {
		t.Error("head prefix (the getchars) not split")
	}
	wantRels := []ir.Rel{ir.EQ, ir.EQ, ir.GT}
	for i, c := range s.Conds {
		if c.Rel != wantRels[i] {
			t.Errorf("cond %d rel = %v, want %v", i, c.Rel, wantRels[i])
		}
	}
	if s.Common.Term.Kind != ir.TermRet || s.Fall.Term.Kind != ir.TermRet {
		t.Error("common/fall wrong")
	}
	// Instrumentation: three ProfConds at the head.
	n := 0
	for i := range s.Head.Insts {
		if s.Head.Insts[i].Op == ir.ProfCond {
			if s.Head.Insts[i].Sub != n {
				t.Errorf("ProfCond %d has Sub %d", n, s.Head.Insts[i].Sub)
			}
			n++
		}
	}
	if n != 3 {
		t.Errorf("found %d ProfConds, want 3", n)
	}
}

func TestDetectCommonSuccAndChain(t *testing.T) {
	// An && chain: if (a >= 1 && b >= 2) T else F. Both branches send
	// their failure side to F: F is the common successor.
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	h := f.NewBlock()
	c2 := f.NewBlock()
	tBlk := f.NewBlock()
	fBlk := f.NewBlock()
	h.Insts = []ir.Inst{
		{Op: ir.GetChar, Dst: 1},
		{Op: ir.GetChar, Dst: 2},
		{Op: ir.Cmp, A: ir.R(1), B: ir.Imm(1)},
	}
	h.Term = ir.Term{Kind: ir.TermBr, Rel: ir.LT, Taken: fBlk, Next: c2}
	c2.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.R(2), B: ir.Imm(2)}}
	c2.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GE, Taken: tBlk, Next: fBlk}
	retBlock(tBlk, 1)
	retBlock(fBlk, 0)
	seqs := DetectCommonSucc(p, 0, nil)
	if len(seqs) != 1 {
		t.Fatalf("&& chain not detected\n%s", f.Dump())
	}
	s := seqs[0]
	if s.Common != fBlk || s.Fall != tBlk {
		t.Errorf("common/fall wrong: common B%d fall B%d", s.Common.ID, s.Fall.ID)
	}
	// Normalized rels: exit-to-common when a < 1, and when b < 2.
	if s.Conds[0].Rel != ir.LT || s.Conds[1].Rel != ir.LT {
		t.Errorf("normalized rels = %v, %v", s.Conds[0].Rel, s.Conds[1].Rel)
	}
}

func TestDetectCommonSuccRejectsSideEffects(t *testing.T) {
	p := buildOrProgram()
	// Insert a side effect into the middle condition block.
	c2 := p.Funcs[0].Blocks[1]
	c2.Insts = append([]ir.Inst{{Op: ir.PutChar, A: ir.Imm('x')}}, c2.Insts...)
	seqs := DetectCommonSucc(p, 0, nil)
	for _, s := range seqs {
		if len(s.Conds) > 2 {
			t.Fatalf("sequence crossed a side effect: %v", s)
		}
	}
}

func TestDetectCommonSuccRespectsConsumed(t *testing.T) {
	p := buildOrProgram()
	consumed := map[*ir.Block]bool{p.Funcs[0].Blocks[0]: true}
	seqs := DetectCommonSucc(p, 0, consumed)
	for _, s := range seqs {
		for _, c := range s.Conds {
			if consumed[c.Block] {
				t.Fatal("consumed block reused")
			}
		}
	}
}

func TestOrProfileCombos(t *testing.T) {
	sp := &OrSeqProfile{N: 3, Combos: make([]uint64, 8)}
	p := &OrProfile{Seqs: map[int]*OrSeqProfile{5: sp}}
	hook := p.Hook()
	commit := func(bits ...int64) {
		for i, b := range bits {
			hook(5, i, b)
		}
	}
	commit(1, 0, 0) // mask 1
	commit(1, 0, 0) // mask 1
	commit(0, 1, 1) // mask 6
	commit(0, 0, 0) // mask 0
	if sp.Total != 4 {
		t.Fatalf("total = %d", sp.Total)
	}
	if sp.Combos[1] != 2 || sp.Combos[6] != 1 || sp.Combos[0] != 1 {
		t.Errorf("combos = %v", sp.Combos)
	}
	hook(99, 0, 1) // unknown ID ignored
}

func TestOrCostAndSelect(t *testing.T) {
	// Condition 2 is true 90% of the time, condition 0 10%, condition 1
	// never: optimal order tests 2 first.
	sp := &OrSeqProfile{N: 3, Combos: make([]uint64, 8)}
	sp.Combos[1<<2] = 90
	sp.Combos[1<<0] = 10
	sp.Total = 100
	ident := OrCost(sp, []int{0, 1, 2})
	// 10% exit after 1 test, 90% after 3 tests = 0.1 + 2.7 = 2.8.
	if ident < 2.79 || ident > 2.81 {
		t.Errorf("identity cost = %v, want 2.8", ident)
	}
	order, cost := SelectOr(sp)
	// Best: test 2 first (0.9*1), then 0 (0.1*2) = 1.1.
	if cost < 1.09 || cost > 1.11 {
		t.Errorf("best cost = %v (order %v), want 1.1", cost, order)
	}
	if order[0] != 2 {
		t.Errorf("best order %v should test condition 2 first", order)
	}
}

// SelectOr must match brute force on random joint distributions (it is
// exhaustive, so this checks the cost bookkeeping stays consistent).
func TestSelectOrNeverWorseThanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		sp := &OrSeqProfile{N: n, Combos: make([]uint64, 1<<n)}
		for i := range sp.Combos {
			c := uint64(rng.Intn(50))
			sp.Combos[i] = c
			sp.Total += c
		}
		if sp.Total == 0 {
			continue
		}
		ident := make([]int, n)
		for i := range ident {
			ident[i] = i
		}
		_, cost := SelectOr(sp)
		if cost > OrCost(sp, ident)+1e-9 {
			t.Fatalf("trial %d: SelectOr worse than identity", trial)
		}
	}
}

func TestReorderOrPreservesSemantics(t *testing.T) {
	p := buildOrProgram()
	ref := ir.CloneProgram(p)
	ref.Linearize()

	seqs := DetectCommonSucc(p, 0, nil)
	if len(seqs) != 1 {
		t.Fatal("detection failed")
	}
	prof := NewOrProfile(seqs)
	p.Linearize()
	// Training input: mostly a>50 (third condition), so it should lead.
	var train []byte
	for i := 0; i < 100; i++ {
		train = append(train, 60, 0)
	}
	train = append(train, 1, 0, 0, 2)
	m := &interp.Machine{Prog: p, Input: train, OnProf: prof.Hook()}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	res := ReorderOr(seqs[0], prof.Seqs[seqs[0].ID])
	if !res.Applied {
		t.Fatalf("not applied: %+v", res)
	}
	if res.Order[0] != 2 {
		t.Errorf("order %v should lead with the hot condition", res.Order)
	}
	StripProf(p)
	p.Linearize()
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, p.Dump())
	}
	// Exhaustive-ish behavioural check over interesting (a, b) pairs.
	for _, a := range []byte{0, 1, 2, 50, 51, 200} {
		for _, b := range []byte{0, 1, 2, 3} {
			in := []byte{a, b}
			mr := &interp.Machine{Prog: ref, Input: in}
			want, err := mr.Run()
			if err != nil {
				t.Fatal(err)
			}
			mp := &interp.Machine{Prog: p, Input: in}
			got, err := mp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("(a=%d,b=%d): got %d, want %d", a, b, got, want)
			}
		}
	}
	// The hot case must now run fewer branches than the original order.
	hot := []byte{60, 0}
	m1 := &interp.Machine{Prog: ref, Input: hot}
	m1.Run()
	m2 := &interp.Machine{Prog: p, Input: hot}
	m2.Run()
	if m2.Stats.CondBranches >= m1.Stats.CondBranches {
		t.Errorf("hot path branches %d -> %d, want reduction",
			m1.Stats.CondBranches, m2.Stats.CondBranches)
	}
}

func TestReorderOrSkips(t *testing.T) {
	p := buildOrProgram()
	seqs := DetectCommonSucc(p, 0, nil)
	sp := &OrSeqProfile{N: 3, Combos: make([]uint64, 8)}
	res := ReorderOr(seqs[0], sp)
	if res.Applied || res.Reason != ReasonNotExecuted {
		t.Errorf("empty profile: %+v", res)
	}
	// Identity-optimal profile: first condition always true.
	sp.Combos[1] = 100
	sp.Total = 100
	res = ReorderOr(seqs[0], sp)
	if res.Applied {
		t.Errorf("identity-optimal profile reordered: %+v", res)
	}
}
