package core

import (
	"fmt"

	"branchreorder/internal/ir"
)

// Common-successor branch reordering: the paper's first future-work
// extension (Section 10, Figure 14). A sequence of consecutive branches
// with a common successor — the shape short-circuit || and && chains
// lower to — can be reordered using profile data even when the branches
// test different variables, as long as the sequence has no intervening
// side effects. Unlike nonoverlapping range conditions, several branches
// may be true for one execution, so the profile records the joint outcome
// distribution with an array of combination counters; the paper judges
// this reasonable for sequences of up to 7 branches.

// MaxOrConds bounds the combination counter array (2^7 counters), as the
// paper suggests.
const MaxOrConds = 7

// OrCond is one branch of a common-successor sequence: a pure
// compare-and-branch whose Rel (normalized) sends control to the common
// successor when it holds.
type OrCond struct {
	Block *ir.Block
	A, B  ir.Operand
	Rel   ir.Rel // control reaches the common successor iff "A Rel B"
}

// OrSequence is a detected sequence of branches with a common successor.
type OrSequence struct {
	ID      int
	F       *ir.Func
	Head    *ir.Block
	PreHead *ir.Block // split-off instruction prefix, if any
	Conds   []*OrCond
	Common  *ir.Block // reached when any condition holds
	Fall    *ir.Block // reached when none holds
}

func (s *OrSequence) String() string {
	out := fmt.Sprintf("orseq %d in %s:", s.ID, s.F.Name)
	for _, c := range s.Conds {
		out += fmt.Sprintf(" (%s %s %s)", c.A, c.Rel, c.B)
	}
	out += fmt.Sprintf(" -> B%d else B%d", s.Common.ID, s.Fall.ID)
	return out
}

// DetectCommonSucc finds common-successor sequences, skipping blocks in
// consumed (typically the blocks already claimed by range-condition
// detection, which takes precedence). Each detected sequence is
// instrumented with ProfCond pseudo-instructions at its head. IDs start
// at firstID; the program must be re-linearized before execution.
func DetectCommonSucc(p *ir.Program, firstID int, consumed map[*ir.Block]bool) []*OrSequence {
	var seqs []*OrSequence
	id := firstID
	for _, f := range p.Funcs {
		for _, s := range detectOrFunc(f, consumed) {
			s.ID = id
			id++
			instrumentOr(s)
			seqs = append(seqs, s)
		}
	}
	return seqs
}

func detectOrFunc(f *ir.Func, consumed map[*ir.Block]bool) []*OrSequence {
	d := &detector{
		f:         f,
		preds:     ir.Preds(f),
		needFlags: needFlagsIn(f),
		marked:    map[*ir.Block]bool{},
	}
	for b := range consumed {
		d.marked[b] = true
	}
	var seqs []*OrSequence
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		if d.marked[b] {
			continue
		}
		seq := d.tryOrSequence(b)
		if seq == nil {
			continue
		}
		splitOrHead(f, seq)
		for _, c := range seq.Conds {
			d.marked[c.Block] = true
		}
		d.marked[seq.Head] = true
		seqs = append(seqs, seq)
	}
	return seqs
}

// parseOrCond decodes block b as a pure compare-and-branch (prefix
// instructions are allowed only when isHead, as they are split off).
func (d *detector) parseOrCond(b *ir.Block, isHead bool) (cmp ir.Inst, ok bool) {
	if b.Term.Kind != ir.TermBr || len(b.Insts) == 0 {
		return ir.Inst{}, false
	}
	last := b.Insts[len(b.Insts)-1]
	if last.Op != ir.Cmp {
		return ir.Inst{}, false
	}
	if !isHead && len(b.Insts) != 1 {
		// Intervening side effects disqualify a common-successor
		// sequence entirely (Section 10: moving them out would destroy
		// the common successor).
		return ir.Inst{}, false
	}
	for i := 0; i < len(b.Insts)-1; i++ {
		if op := b.Insts[i].Op; op == ir.Prof || op == ir.ProfCond {
			return ir.Inst{}, false
		}
	}
	return last, true
}

// tryOrSequence roots a common-successor sequence at head, trying both of
// the head branch's successors as the candidate common successor and
// keeping the longer chain.
func (d *detector) tryOrSequence(head *ir.Block) *OrSequence {
	headCmp, ok := d.parseOrCond(head, true)
	if !ok {
		return nil
	}
	var best *OrSequence
	for _, commonOnTaken := range []bool{true, false} {
		seq := d.growOrChain(head, headCmp, commonOnTaken)
		if seq != nil && (best == nil || len(seq.Conds) > len(best.Conds)) {
			best = seq
		}
	}
	return best
}

func (d *detector) growOrChain(head *ir.Block, headCmp ir.Inst, commonOnTaken bool) *OrSequence {
	common := d.resolve(head.Term.Taken)
	cont := d.resolve(head.Term.Next)
	rel := head.Term.Rel
	if !commonOnTaken {
		common, cont = cont, common
		rel = rel.Negate()
	}
	if d.needFlags[common] {
		return nil
	}
	conds := []*OrCond{{Block: head, A: headCmp.A, B: headCmp.B, Rel: rel}}
	prev := head
	for len(conds) < MaxOrConds {
		if cont == common || !d.extendable(cont, []*ir.Block{prev}, nil) {
			break
		}
		cmp, ok := d.parseOrCond(cont, false)
		if !ok {
			break
		}
		var nrel ir.Rel
		var next *ir.Block
		switch {
		case d.resolve(cont.Term.Taken) == common:
			nrel = cont.Term.Rel
			next = d.resolve(cont.Term.Next)
		case d.resolve(cont.Term.Next) == common:
			nrel = cont.Term.Rel.Negate()
			next = d.resolve(cont.Term.Taken)
		default:
			break
		}
		if next == nil {
			break
		}
		conds = append(conds, &OrCond{Block: cont, A: cmp.A, B: cmp.B, Rel: nrel})
		prev = cont
		cont = next
	}
	if len(conds) < 2 {
		return nil
	}
	if d.needFlags[cont] {
		return nil
	}
	return &OrSequence{F: d.f, Head: head, Conds: conds, Common: common, Fall: cont}
}

// extendable is shared with range detection; the visited map may be nil
// for the linear or-chains (a repeated block would fail the
// entered-only-from check anyway, since its predecessor inside the chain
// differs).

// splitOrHead moves the head's instruction prefix into its own block, as
// splitHead does for range sequences.
func splitOrHead(f *ir.Func, seq *OrSequence) {
	head := seq.Head
	cmpIdx := len(head.Insts) - 1
	if cmpIdx == 0 {
		return
	}
	cond := f.NewBlock()
	cond.Insts = append(cond.Insts, head.Insts[cmpIdx:]...)
	cond.Term = head.Term
	head.Insts = head.Insts[:cmpIdx]
	head.Term = ir.Term{Kind: ir.TermGoto, Taken: cond}
	seq.Conds[0].Block = cond
	seq.PreHead = head
	seq.Head = cond
}

// instrumentOr inserts one ProfCond per condition at the head, recording
// the joint outcomes ("all combinations of branch results would have to
// be obtained using an array of profile counters").
func instrumentOr(seq *OrSequence) {
	profs := make([]ir.Inst, len(seq.Conds))
	for i, c := range seq.Conds {
		profs[i] = ir.Inst{
			Op: ir.ProfCond, SeqID: seq.ID, Sub: i,
			A: c.A, B: c.B, Rel: c.Rel,
		}
	}
	seq.Head.Insts = append(profs, seq.Head.Insts...)
}

// OrSeqProfile counts the joint branch-outcome combinations of one
// sequence: Combos[mask] is the number of head executions in which
// exactly the conditions whose bit is set in mask held.
type OrSeqProfile struct {
	N      int
	Combos []uint64
	Total  uint64

	pendingMask int
	pendingSubs int
}

// OrProfile accumulates combination counts for every or-sequence.
type OrProfile struct {
	Seqs map[int]*OrSeqProfile
}

// NewOrProfile prepares storage for the given sequences.
func NewOrProfile(seqs []*OrSequence) *OrProfile {
	p := &OrProfile{Seqs: map[int]*OrSeqProfile{}}
	for _, s := range seqs {
		p.Seqs[s.ID] = &OrSeqProfile{N: len(s.Conds), Combos: make([]uint64, 1<<len(s.Conds))}
	}
	return p
}

// Hook returns the interpreter callback. The ProfCond instructions of a
// sequence execute consecutively in sub order, so the hook assembles the
// outcome mask incrementally and commits it on the last condition.
func (p *OrProfile) Hook() func(seqID, sub int, v int64) {
	return func(seqID, sub int, v int64) {
		sp, ok := p.Seqs[seqID]
		if !ok {
			return
		}
		if sub == 0 {
			sp.pendingMask = 0
			sp.pendingSubs = 0
		}
		if v != 0 {
			sp.pendingMask |= 1 << sub
		}
		sp.pendingSubs++
		if sp.pendingSubs == sp.N {
			sp.Combos[sp.pendingMask]++
			sp.Total++
		}
	}
}

// OrCost evaluates the expected number of branches executed per entry
// under the given test order: each entry runs tests until one holds (exit
// to the common successor) or all fail (fall through).
func OrCost(sp *OrSeqProfile, order []int) float64 {
	if sp.Total == 0 {
		return 0
	}
	var sum uint64
	for mask, count := range sp.Combos {
		if count == 0 {
			continue
		}
		tests := len(order)
		for pos, idx := range order {
			if mask&(1<<idx) != 0 {
				tests = pos + 1
				break
			}
		}
		sum += count * uint64(tests)
	}
	return float64(sum) / float64(sp.Total)
}

// SelectOr finds the test order minimizing the expected branch count by
// exhaustive search over permutations (n <= 7, so at most 5040 orders —
// the joint distribution makes greedy ratios unsound here).
func SelectOr(sp *OrSeqProfile) (best []int, cost float64) {
	order := make([]int, sp.N)
	for i := range order {
		order[i] = i
	}
	best = append([]int(nil), order...)
	cost = OrCost(sp, order)
	permute(order, func(perm []int) {
		if c := OrCost(sp, perm); c < cost-1e-12 {
			cost = c
			best = append(best[:0], perm...)
		}
	})
	return best, cost
}

// OrResult reports the decision for one common-successor sequence.
type OrResult struct {
	Seq      *OrSequence
	Applied  bool
	Reason   SkipReason
	Order    []int
	OrigCost float64 // expected branches per entry, original order
	NewCost  float64
}

// ReorderOr selects the cheapest test order for the sequence and rewrites
// the control flow when it beats the original order.
func ReorderOr(seq *OrSequence, sp *OrSeqProfile) OrResult {
	res := OrResult{Seq: seq}
	if sp == nil || sp.Total == 0 {
		res.Reason = ReasonNotExecuted
		return res
	}
	identity := make([]int, len(seq.Conds))
	for i := range identity {
		identity[i] = i
	}
	res.OrigCost = OrCost(sp, identity)
	order, cost := SelectOr(sp)
	res.Order = order
	res.NewCost = cost
	if cost >= res.OrigCost-1e-9 {
		res.Reason = ReasonNoImprovement
		return res
	}

	// Emit the reordered chain back to front.
	f := seq.F
	next := seq.Fall
	for i := len(order) - 1; i >= 0; i-- {
		c := seq.Conds[order[i]]
		b := f.NewBlock()
		b.Insts = []ir.Inst{{Op: ir.Cmp, A: c.A, B: c.B}}
		b.Term = ir.Term{Kind: ir.TermBr, Rel: c.Rel, Taken: seq.Common, Next: next}
		next = b
	}
	// Splice, as for range sequences: the old head becomes a trampoline.
	seq.Head.Insts = nil
	seq.Head.Term = ir.Term{Kind: ir.TermGoto, Taken: next}
	res.Applied = true
	res.Reason = ReasonApplied
	return res
}
