package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profile serialization: the paper's Figure 2 runs two separate
// compilation passes with the profile data stored in between. The format
// is a line-oriented text file, one sequence per line:
//
//	seq <id> total <n> counts <c0> <c1> ... <ck>
//	orseq <id> total <n> combos <c0> <c1> ... <c2^n-1>
//
// Counts are parallel to the sequence's arms (respectively outcome
// masks), which both compilation passes recompute identically from the
// same source: the detector is deterministic, so arm order is stable.

// Write serializes the profile.
func (p *Profile) Write(w io.Writer) error {
	ids := make([]int, 0, len(p.Seqs))
	for id := range p.Seqs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	bw := bufio.NewWriter(w)
	for _, id := range ids {
		sp := p.Seqs[id]
		fmt.Fprintf(bw, "seq %d total %d counts", id, sp.Total)
		for _, c := range sp.Counts {
			fmt.Fprintf(bw, " %d", c)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Write serializes the or-sequence profile.
func (p *OrProfile) Write(w io.Writer) error {
	ids := make([]int, 0, len(p.Seqs))
	for id := range p.Seqs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	bw := bufio.NewWriter(w)
	for _, id := range ids {
		sp := p.Seqs[id]
		fmt.Fprintf(bw, "orseq %d total %d combos", id, sp.Total)
		for _, c := range sp.Combos {
			fmt.Fprintf(bw, " %d", c)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadProfiles parses a profile file, returning range-sequence and
// or-sequence counts keyed by sequence ID.
func ReadProfiles(r io.Reader) (map[int]*SeqProfile, map[int]*OrSeqProfile, error) {
	seqs := map[int]*SeqProfile{}
	orseqs := map[int]*OrSeqProfile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 || fields[2] != "total" {
			return nil, nil, fmt.Errorf("profile line %d: malformed: %q", lineNo, line)
		}
		var id int
		var total uint64
		if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
			return nil, nil, fmt.Errorf("profile line %d: bad id: %w", lineNo, err)
		}
		if _, err := fmt.Sscanf(fields[3], "%d", &total); err != nil {
			return nil, nil, fmt.Errorf("profile line %d: bad total: %w", lineNo, err)
		}
		counts := make([]uint64, 0, len(fields)-5)
		var sum uint64
		for _, f := range fields[5:] {
			var c uint64
			if _, err := fmt.Sscanf(f, "%d", &c); err != nil {
				return nil, nil, fmt.Errorf("profile line %d: bad count %q: %w", lineNo, f, err)
			}
			counts = append(counts, c)
			sum += c
		}
		if sum != total {
			return nil, nil, fmt.Errorf("profile line %d: counts sum %d != total %d", lineNo, sum, total)
		}
		switch fields[0] {
		case "seq":
			if fields[4] != "counts" {
				return nil, nil, fmt.Errorf("profile line %d: expected 'counts'", lineNo)
			}
			seqs[id] = &SeqProfile{Counts: counts, Total: total}
		case "orseq":
			if fields[4] != "combos" {
				return nil, nil, fmt.Errorf("profile line %d: expected 'combos'", lineNo)
			}
			n := 0
			for 1<<n < len(counts) {
				n++
			}
			if 1<<n != len(counts) {
				return nil, nil, fmt.Errorf("profile line %d: combo count %d is not a power of two", lineNo, len(counts))
			}
			orseqs[id] = &OrSeqProfile{N: n, Combos: counts, Total: total}
		default:
			return nil, nil, fmt.Errorf("profile line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return seqs, orseqs, nil
}
