package core

import (
	"testing"

	"branchreorder/internal/ir"
)

// specSeq builds a fake sequence+ordering directly from arms so the
// emission planner can be tested in isolation.
func specsFor(arms []Arm) []testSpec {
	seq := &Sequence{Arms: arms}
	order := make([]int, len(arms))
	for i := range order {
		order[i] = i
	}
	return buildSpecs(seq, Ordering{Explicit: order}, TransformOptions{})
}

func TestSpecSingleValue(t *testing.T) {
	specs := specsFor([]Arm{{R: Range{42, 42}}})
	if len(specs) != 1 || len(specs[0].tests) != 1 {
		t.Fatalf("specs = %+v", specs)
	}
	ts := specs[0].tests[0]
	if ts.rel != ir.EQ || ts.konst != 42 {
		t.Errorf("single-value test = %+v", ts)
	}
}

func TestSpecHalfUnbounded(t *testing.T) {
	specs := specsFor([]Arm{{R: Range{ir.MinVal, 9}}, {R: Range{100, ir.MaxVal}}})
	lo := specs[0].tests[0]
	if lo.rel != ir.LE || lo.konst != 9 {
		t.Errorf("low-unbounded = %+v", lo)
	}
	hi := specs[1].tests[0]
	if hi.rel != ir.GE || hi.konst != 100 {
		t.Errorf("high-unbounded = %+v", hi)
	}
}

// Figure 9's scenario: [c+1..MAX] followed by [c..c]; the second test
// should pick constant c... and the first should be encoded as "> c" so
// the flags carry over and the later pass can delete the second compare.
func TestSpecConstantReuseFigure9(t *testing.T) {
	const c = 57
	specs := specsFor([]Arm{
		{R: Range{c + 1, ir.MaxVal}},
		{R: Range{c, c}},
	})
	first := specs[0].tests[0]
	second := specs[1].tests[0]
	if first.konst != c || first.rel != ir.GT {
		t.Errorf("first test = %+v, want (> %d)", first, c)
	}
	if second.konst != c || second.rel != ir.EQ {
		t.Errorf("second test = %+v, want (== %d)", second, c)
	}
}

// The same reuse works for a low-unbounded range after an equality:
// [c..c] then [MIN..c-1] should encode the second as "< c".
func TestSpecConstantReuseLowSide(t *testing.T) {
	const c = 31
	specs := specsFor([]Arm{
		{R: Range{c, c}},
		{R: Range{ir.MinVal, c - 1}},
	})
	second := specs[1].tests[0]
	if second.konst != c || second.rel != ir.LT {
		t.Errorf("second test = %+v, want (< %d)", second, c)
	}
}

func TestSpecBoundedOrderFollowsProbabilityMass(t *testing.T) {
	// Remaining mass below the range: test the lower bound first.
	armsBelow := []Arm{
		{R: Range{50, 60}},
		{R: Range{10, 10}, P: 0.9},   // below
		{R: Range{100, 100}, P: 0.1}, // above
	}
	specs := specsFor(armsBelow)
	first := specs[0].tests[0]
	if first.rel != ir.LT || first.konst != 50 {
		t.Errorf("below-heavy: first test = %+v, want (< 50)", first)
	}
	second := specs[0].tests[1]
	if second.rel != ir.LE || second.konst != 60 {
		t.Errorf("below-heavy: second test = %+v, want (<= 60)", second)
	}

	// Remaining mass above: test the upper bound first.
	armsAbove := []Arm{
		{R: Range{50, 60}},
		{R: Range{10, 10}, P: 0.1},
		{R: Range{100, 100}, P: 0.9},
	}
	specs = specsFor(armsAbove)
	first = specs[0].tests[0]
	if first.rel != ir.GT || first.konst != 60 {
		t.Errorf("above-heavy: first test = %+v, want (> 60)", first)
	}
	second = specs[0].tests[1]
	if second.rel != ir.GE || second.konst != 50 {
		t.Errorf("above-heavy: second test = %+v, want (>= 50)", second)
	}
}

// Omitted arms count toward the probability mass seen by bound ordering.
func TestSpecBoundedOrderSeesOmittedMass(t *testing.T) {
	seq := &Sequence{Arms: []Arm{
		{R: Range{50, 60}},
		{R: Range{100, 100}, P: 0.95},
	}}
	specs := buildSpecs(seq, Ordering{Explicit: []int{0}, Omitted: []int{1}}, TransformOptions{})
	if specs[0].tests[0].rel != ir.GT {
		t.Errorf("omitted mass ignored: %+v", specs[0].tests[0])
	}
}

// All spec encodings must be semantically correct: the two-test protocol
// (first test branches out on miss, second branches to exit on hit) must
// accept exactly the range, and single tests must match Contains.
func TestSpecEncodingsCorrect(t *testing.T) {
	ranges := []Range{
		{5, 5},
		{ir.MinVal, 7},
		{7, ir.MaxVal},
		{3, 9},
		{-4, 4},
		{0, 0},
		{ir.MinVal, ir.MinVal},
		{ir.MaxVal, ir.MaxVal},
	}
	for _, r := range ranges {
		specs := specsFor([]Arm{{R: r}})
		spec := specs[0]
		for _, v := range []int64{ir.MinVal, -5, -4, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, ir.MaxVal} {
			got := evalSpec(spec, v)
			if got != r.Contains(v) {
				t.Errorf("range %v value %d: spec says %v, want %v (spec %+v)",
					r, v, got, r.Contains(v), spec)
			}
		}
	}
}

// evalSpec interprets a testSpec the way emitChain wires it.
func evalSpec(s testSpec, v int64) bool {
	if len(s.tests) == 1 {
		return s.tests[0].rel.Holds(v, s.tests[0].konst)
	}
	if s.tests[0].rel.Holds(v, s.tests[0].konst) {
		return false // miss: branch out
	}
	return s.tests[1].rel.Holds(v, s.tests[1].konst)
}
