package core

import (
	"branchreorder/internal/ir"
)

// SkipReason explains why a detected sequence was not reordered.
type SkipReason int

const (
	// ReasonApplied: the transformation was applied.
	ReasonApplied SkipReason = iota
	// ReasonNotExecuted: the training input never reached the sequence —
	// the paper's most common cause of unreordered sequences.
	ReasonNotExecuted
	// ReasonNoImprovement: the selected ordering is no cheaper than the
	// original one under the profile and cost estimates.
	ReasonNoImprovement
)

func (r SkipReason) String() string {
	switch r {
	case ReasonApplied:
		return "applied"
	case ReasonNotExecuted:
		return "not executed in training run"
	default:
		return "no improvement over original order"
	}
}

// Result reports what happened to one sequence.
type Result struct {
	Seq      *Sequence
	Applied  bool
	Reason   SkipReason
	Ordering Ordering

	OrigBranches int // branches in the original sequence
	NewBranches  int // branches in the reordered sequence (0 if skipped)
	OrigCost     float64
	NewCost      float64
}

// TransformOptions disable individual design choices of the
// transformation, for ablation studies. The zero value is the paper's
// full transformation.
type TransformOptions struct {
	// NoBoundOrder disables Section 7's first improvement: both-bounded
	// range conditions always test their lower bound first.
	NoBoundOrder bool
	// NoCmpReuse disables Section 7's second improvement: comparison
	// constants are always encoded canonically, so the redundant-
	// comparison elimination pass (Figure 9) finds nothing to delete.
	NoCmpReuse bool
	// NoTailDup disables Section 8's default-target duplication: the
	// fall-through edge always jumps to the default target's original
	// code.
	NoTailDup bool
}

// Reorder selects the best ordering for the sequence under the given
// profile and, when it beats the original order, rewrites the control
// flow (Section 8): a replicated, reordered chain of range conditions is
// built, side effects are sunk onto the exit edges (Theorem 2), the
// default target may be tail-duplicated to avoid an unconditional jump,
// and the old head is rewritten to enter the new chain, leaving the old
// condition blocks to dead-code elimination.
func Reorder(seq *Sequence, sp *SeqProfile) Result {
	return ReorderWith(seq, sp, TransformOptions{})
}

// ReorderWith is Reorder with some design choices disabled.
func ReorderWith(seq *Sequence, sp *SeqProfile, topt TransformOptions) Result {
	res := Result{Seq: seq, OrigBranches: seq.OrigBranches()}
	seq.AttachProfile(sp)
	if sp == nil || sp.Total == 0 {
		res.Reason = ReasonNotExecuted
		return res
	}

	// Cost of the original arrangement: explicit conditions in original
	// order, default ranges untested.
	var origExplicit, origOmitted []int
	for i := range seq.Arms {
		if seq.ArmCond[i] < len(seq.Conds) {
			origExplicit = append(origExplicit, i)
		} else {
			origOmitted = append(origOmitted, i)
		}
	}
	res.OrigCost = SeqCost(seq.Arms, origExplicit, origOmitted)

	sel := Select(seq.Arms)
	res.Ordering = sel
	res.NewCost = sel.Cost
	if sel.Cost >= res.OrigCost-1e-9 {
		res.Reason = ReasonNoImprovement
		return res
	}

	specs := buildSpecs(seq, sel, topt)
	emitChain(seq, sel, specs, topt)
	res.Applied = true
	res.Reason = ReasonApplied
	for _, sp := range specs {
		res.NewBranches += len(sp.tests)
	}
	return res
}

// sunkEffects returns the side effects that must run on an exit through
// the arm whose original condition index is k: the prefixes of conditions
// 1..k inclusive (condition 0 never has any, its prefix was split off).
// Default-range arms use k == len(Conds), collecting everything.
func (s *Sequence) sunkEffects(k int) []ir.Inst {
	var out []ir.Inst
	hi := k
	if hi >= len(s.Conds) {
		hi = len(s.Conds) - 1
	}
	for i := 1; i <= hi; i++ {
		for _, in := range s.Conds[i].SideEffects {
			out = append(out, ir.CloneInst(in))
		}
	}
	return out
}

// emitChain builds the reordered chain and splices it in place of the old
// sequence head.
func emitChain(seq *Sequence, sel Ordering, specs []testSpec, topt TransformOptions) {
	f := seq.F

	// The fall-through destination after all explicit tests is the
	// target of the omitted arms — any target can serve as the default
	// of the reordered sequence (Section 6). With nothing omitted the
	// fall-through is unreachable (the explicit tests exhaust the
	// domain) and the original default stands in.
	fallTarget := seq.DefaultTarget
	if len(sel.Omitted) > 0 {
		fallTarget = seq.armTarget(sel.Omitted[0])
	}
	defaultEntry := buildDefaultEdge(seq, fallTarget, topt)

	// Exit edge for an explicit arm: side effects first, then the
	// target, duplicated from it when that avoids a jump for free.
	exitEdge := func(armIdx int) *ir.Block {
		target := seq.armTarget(armIdx)
		se := seq.sunkEffects(seq.ArmCond[armIdx])
		if len(se) == 0 {
			return target
		}
		b := f.NewBlock()
		b.Insts = se
		b.Term = ir.Term{Kind: ir.TermGoto, Taken: target}
		return b
	}

	// Build the chain back to front so each test knows its fall-through.
	// A one-test arm branches to its exit and falls through to the next
	// arm; a two-test (bounded range) arm first branches *out* to the
	// next arm when the value misses the near bound, then branches to the
	// exit when it is within the far bound.
	next := defaultEntry
	newCmp := func(konst int64) []ir.Inst {
		return []ir.Inst{{Op: ir.Cmp, A: ir.R(seq.V), B: ir.Imm(konst)}}
	}
	for i := len(sel.Explicit) - 1; i >= 0; i-- {
		exit := exitEdge(sel.Explicit[i])
		spec := specs[i]
		last := spec.tests[len(spec.tests)-1]
		b := f.NewBlock()
		b.Insts = newCmp(last.konst)
		b.Term = ir.Term{Kind: ir.TermBr, Rel: last.rel, Taken: exit, Next: next}
		if len(spec.tests) == 2 {
			first := spec.tests[0]
			b0 := f.NewBlock()
			b0.Insts = newCmp(first.konst)
			b0.Term = ir.Term{Kind: ir.TermBr, Rel: first.rel, Taken: next, Next: b}
			b = b0
		}
		next = b
	}
	chainEntry := next

	// Splice: the old head becomes a trampoline into the new chain, so
	// every predecessor (and any stale pointer held by other sequences)
	// funnels through correctly; cleanup chains the goto away.
	seq.Head.Insts = nil
	seq.Head.Term = ir.Term{Kind: ir.TermGoto, Taken: chainEntry}
}

// armTarget resolves the exit block of an arm: the condition's exit for
// explicit arms, the sequence's default target for default-range arms.
func (s *Sequence) armTarget(armIdx int) *ir.Block {
	if k := s.ArmCond[armIdx]; k < len(s.Conds) {
		return s.Conds[k].Exit
	}
	return s.DefaultTarget
}

// buildDefaultEdge constructs the block control falls into after every
// explicit test fails: the sunk side effects followed by the chosen
// default target's code, duplicated "until an unconditional jump, return,
// or indirect jump" when small enough, to avoid a fresh unconditional
// jump (Section 8). Side effects on this edge are the full set: an
// explicit arm may be left untested only when every side effect after its
// condition is empty, which makes the full set correct for it too.
func buildDefaultEdge(seq *Sequence, fallTarget *ir.Block, topt TransformOptions) *ir.Block {
	f := seq.F
	se := seq.sunkEffects(len(seq.Conds))
	var dupInsts []ir.Inst
	var dupTerm ir.Term
	ok := false
	if !topt.NoTailDup {
		dupInsts, dupTerm, ok = tailDuplicate(fallTarget)
	}
	if !ok && len(se) == 0 {
		return fallTarget
	}
	b := f.NewBlock()
	b.Insts = se
	if ok {
		b.Insts = append(b.Insts, dupInsts...)
		b.Term = dupTerm
	} else {
		b.Term = ir.Term{Kind: ir.TermGoto, Taken: fallTarget}
	}
	return b
}

// tailDupMaxInsts bounds how much default-target code is duplicated.
const tailDupMaxInsts = 8

// tailDuplicate clones the default target when it is a small block ending
// in a return. The paper duplicated up to any unconditional transfer, but
// its code generator had already fixed block placement; under our
// explicit linearizer a goto-terminated default target can usually be
// laid out directly after the chain (a free fall-through), and
// duplicating it would steal that slot while the copy pays the jump — the
// ablation study showed exactly that on cb, ctags and ptx. A
// return-terminated target, by contrast, is always a pure win to inline.
// Blocks containing profiling instrumentation (another sequence's head)
// are never duplicated.
func tailDuplicate(b *ir.Block) ([]ir.Inst, ir.Term, bool) {
	if len(b.Insts) > tailDupMaxInsts {
		return nil, ir.Term{}, false
	}
	if b.Term.Kind != ir.TermRet {
		return nil, ir.Term{}, false
	}
	for i := range b.Insts {
		if b.Insts[i].Op == ir.Prof || b.Insts[i].Op == ir.ProfCond {
			return nil, ir.Term{}, false
		}
	}
	insts := make([]ir.Inst, len(b.Insts))
	for i := range b.Insts {
		insts[i] = ir.CloneInst(b.Insts[i])
	}
	return insts, b.Term, true
}

// StripProf removes every profiling pseudo-instruction; the final
// executables the evaluation measures are uninstrumented.
func StripProf(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for i := range b.Insts {
				if op := b.Insts[i].Op; op != ir.Prof && op != ir.ProfCond {
					kept = append(kept, b.Insts[i])
				}
			}
			b.Insts = kept
		}
	}
}
