package core

import (
	"testing"

	"branchreorder/internal/ir"
)

// fixture builds hand-made CFGs for detector tests.
type fixture struct {
	p *ir.Program
	f *ir.Func
}

func newFixture() *fixture {
	p := &ir.Program{}
	f := &ir.Func{Name: "main", NRegs: 4}
	p.Funcs = append(p.Funcs, f)
	return &fixture{p: p, f: f}
}

func (fx *fixture) block() *ir.Block { return fx.f.NewBlock() }

// condBlock fills b with "cmp v, c; b<rel> taken else next".
func condBlock(b *ir.Block, v ir.Reg, c int64, rel ir.Rel, taken, next *ir.Block) {
	b.Insts = append(b.Insts, ir.Inst{Op: ir.Cmp, A: ir.R(v), B: ir.Imm(c)})
	b.Term = ir.Term{Kind: ir.TermBr, Rel: rel, Taken: taken, Next: next}
}

// retBlock makes b return the constant v. The leading Mov gives exit
// targets an instruction so flag analysis and tail duplication see
// ordinary code.
func retBlock(b *ir.Block, v int64) {
	b.Insts = append(b.Insts, ir.Inst{Op: ir.Mov, Dst: 3, A: ir.Imm(v)})
	b.Term = ir.Term{Kind: ir.TermRet, Val: ir.R(3)}
}

// chainEQ builds: head: if v==c0 -> t0; b1: if v==c1 -> t1; default d.
func chainEQ(fx *fixture, v ir.Reg, consts ...int64) (conds []*ir.Block, exits []*ir.Block, def *ir.Block) {
	def = fx.block()
	for range consts {
		conds = append(conds, fx.block())
		exits = append(exits, fx.block())
	}
	for i, c := range consts {
		next := def
		if i+1 < len(conds) {
			next = conds[i+1]
		}
		condBlock(conds[i], v, c, ir.EQ, exits[i], next)
		retBlock(exits[i], int64(100+i))
	}
	retBlock(def, 999)
	// Make the first condition the entry's successor.
	entry := fx.f.Blocks[0]
	if entry != conds[0] {
		// Move cond[0] to entry position by prepending a goto.
		newEntry := &ir.Block{ID: -1, Term: ir.Term{Kind: ir.TermGoto, Taken: conds[0]}}
		_ = newEntry
	}
	return conds, exits, def
}

func detectOne(t *testing.T, fx *fixture) *Sequence {
	t.Helper()
	fx.f.SyncNextID()
	seqs := Detect(fx.p, 0)
	if len(seqs) != 1 {
		t.Fatalf("detected %d sequences, want 1\n%s", len(seqs), fx.f.Dump())
	}
	return seqs[0]
}

func TestDetectEqChain(t *testing.T) {
	fx := newFixture()
	conds, exits, def := chainEQ(fx, 1, 10, 20, 30)
	seq := detectOne(t, fx)
	if seq.V != 1 {
		t.Errorf("variable r%d, want r1", seq.V)
	}
	if len(seq.Conds) != 3 {
		t.Fatalf("got %d conds, want 3: %v", len(seq.Conds), seq)
	}
	for i, want := range []Range{{10, 10}, {20, 20}, {30, 30}} {
		if seq.Conds[i].R != want {
			t.Errorf("cond %d range %v, want %v", i, seq.Conds[i].R, want)
		}
		if seq.Conds[i].Exit != exits[i] {
			t.Errorf("cond %d exit wrong", i)
		}
	}
	if seq.DefaultTarget != def {
		t.Error("default target wrong")
	}
	if seq.Head != conds[0] {
		t.Error("head wrong")
	}
	// Prof must be at the head.
	if len(seq.Head.Insts) == 0 || seq.Head.Insts[0].Op != ir.Prof {
		t.Error("head not instrumented")
	}
	if seq.OrigBranches() != 3 {
		t.Errorf("OrigBranches = %d", seq.OrigBranches())
	}
}

func TestDetectInequalityForms(t *testing.T) {
	// if (v < 10) low; else if (v > 20) high; else mid.
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	low := fx.block()
	high := fx.block()
	mid := fx.block()
	condBlock(b0, 1, 10, ir.LT, low, b1)
	condBlock(b1, 1, 20, ir.GT, high, mid)
	retBlock(low, 1)
	retBlock(high, 2)
	retBlock(mid, 3)
	seq := detectOne(t, fx)
	if len(seq.Conds) != 2 {
		t.Fatalf("got %d conds: %v", len(seq.Conds), seq)
	}
	if seq.Conds[0].R != (Range{ir.MinVal, 9}) {
		t.Errorf("first range %v", seq.Conds[0].R)
	}
	if seq.Conds[1].R != (Range{21, ir.MaxVal}) {
		t.Errorf("second range %v", seq.Conds[1].R)
	}
	if seq.DefaultTarget != mid {
		t.Error("default target should be the mid block")
	}
	// Arms: two explicit + one gap [10..20].
	seq.BuildArms()
	if len(seq.Arms) != 3 {
		t.Fatalf("got %d arms", len(seq.Arms))
	}
	if seq.Arms[2].R != (Range{10, 20}) {
		t.Errorf("gap arm %v", seq.Arms[2].R)
	}
}

func TestDetectForm4BothPolarities(t *testing.T) {
	// Polarity A: bLT exits to common (else), second block bLE exits to
	// the target: if (v >= 10 && v <= 20) in;
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	in := fx.block()
	other := fx.block()
	def := fx.block()
	condBlock(b0, 1, 10, ir.LT, other, b1)
	condBlock(b1, 1, 20, ir.LE, in, other)
	condBlock(other, 1, 99, ir.EQ, def, def)
	// make 'other' a real second condition so a sequence forms:
	other.Insts = other.Insts[:0]
	other.Term = ir.Term{}
	exit99 := fx.block()
	condBlock(other, 1, 99, ir.EQ, exit99, def)
	retBlock(in, 1)
	retBlock(exit99, 2)
	retBlock(def, 3)
	seq := detectOne(t, fx)
	if len(seq.Conds) != 2 {
		t.Fatalf("got %d conds: %v\n%s", len(seq.Conds), seq, fx.f.Dump())
	}
	first := seq.Conds[0]
	if first.R != (Range{10, 20}) || len(first.Blocks) != 2 {
		t.Errorf("Form 4 condition not detected: %v blocks=%d", first.R, len(first.Blocks))
	}
	if first.Exit != in {
		t.Error("Form 4 exit wrong")
	}
	if first.NumBranches() != 2 {
		t.Error("Form 4 must count two branches")
	}

	// Polarity B: bGE continues into the pair's second block.
	fx2 := newFixture()
	c0 := fx2.block()
	c1 := fx2.block()
	in2 := fx2.block()
	n2 := fx2.block()
	e2 := fx2.block()
	d2 := fx2.block()
	condBlock(c0, 1, 10, ir.GE, c1, n2)
	condBlock(c1, 1, 20, ir.LE, in2, n2)
	condBlock(n2, 1, 5, ir.EQ, e2, d2)
	retBlock(in2, 1)
	retBlock(e2, 2)
	retBlock(d2, 3)
	seq2 := detectOne(t, fx2)
	if seq2.Conds[0].R != (Range{10, 20}) || len(seq2.Conds[0].Blocks) != 2 {
		t.Errorf("polarity B not detected: %v", seq2)
	}
}

func TestDetectSplitsHeadPrefix(t *testing.T) {
	fx := newFixture()
	head := fx.block()
	b1 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	def := fx.block()
	// head: v = getchar(); cmp v, 10; beq e0 else b1
	head.Insts = []ir.Inst{{Op: ir.GetChar, Dst: 1}}
	condBlock(head, 1, 10, ir.EQ, e0, b1)
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	retBlock(e0, 1)
	retBlock(e1, 2)
	retBlock(def, 3)
	seq := detectOne(t, fx)
	if seq.PreHead == nil {
		t.Fatal("head prefix not split")
	}
	if seq.PreHead != head {
		t.Error("prefix should stay in the original block")
	}
	if len(head.Insts) != 1 || head.Insts[0].Op != ir.GetChar {
		t.Errorf("prefix block contents wrong: %v", head.Insts)
	}
	if head.Term.Kind != ir.TermGoto || head.Term.Taken != seq.Head {
		t.Error("prefix must fall into the split head")
	}
	// Prof reads v after the getchar.
	if seq.Head.Insts[0].Op != ir.Prof || seq.Head.Insts[0].A != ir.R(1) {
		t.Error("instrumentation wrong after split")
	}
}

func TestDetectRejectsMultiplePreds(t *testing.T) {
	// The second condition has an extra predecessor: sequence must stop
	// after... it cannot even start (only 1 cond).
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	def := fx.block()
	intruder := fx.block()
	condBlock(b0, 1, 10, ir.EQ, e0, b1)
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	// The intruder does real work before entering the middle of the
	// sequence, so it cannot be attributed to the head.
	intruder.Insts = []ir.Inst{{Op: ir.Mov, Dst: 2, A: ir.Imm(1)}}
	intruder.Term = ir.Term{Kind: ir.TermGoto, Taken: b1}
	// Keep the intruder reachable so it is not pruned before detection.
	e0.Insts = []ir.Inst{{Op: ir.Mov, Dst: 2, A: ir.Imm(0)}}
	e0.Term = ir.Term{Kind: ir.TermGoto, Taken: intruder}
	retBlock(e1, 2)
	retBlock(def, 3)
	fx.f.SyncNextID()
	seqs := Detect(fx.p, 0)
	for _, s := range seqs {
		for _, c := range s.Conds {
			for _, blk := range c.Blocks {
				if blk == b1 {
					t.Fatalf("condition with external predecessor was consumed: %v", s)
				}
			}
		}
	}
}

func TestDetectRejectsFlagConsumingExit(t *testing.T) {
	// The exit target consumes the sequence's condition codes: the whole
	// interpretation must be rejected.
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	flagUser := fx.block()
	e1 := fx.block()
	def := fx.block()
	more := fx.block()
	condBlock(b0, 1, 10, ir.EQ, flagUser, b1)
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	// flagUser branches on inherited flags (no Cmp of its own).
	flagUser.Term = ir.Term{Kind: ir.TermBr, Rel: ir.LT, Taken: more, Next: def}
	retBlock(more, 1)
	retBlock(e1, 2)
	retBlock(def, 3)
	fx.f.SyncNextID()
	seqs := Detect(fx.p, 0)
	for _, s := range seqs {
		for _, c := range s.Conds {
			if c.Exit == flagUser {
				t.Fatalf("flag-consuming exit accepted: %v", s)
			}
		}
	}
}

func TestDetectSideEffectsRecorded(t *testing.T) {
	// An internal condition with a store prefix: the side effect must be
	// recorded for sinking, and writing the branch variable must reject.
	fx := newFixture()
	fx.p.MemSize = 4
	fx.p.Globals = []*ir.Global{{Name: "g", Addr: 0, Size: 4}}
	b0 := fx.block()
	b1 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	def := fx.block()
	condBlock(b0, 1, 10, ir.EQ, e0, b1)
	b1.Insts = []ir.Inst{{Op: ir.St, A: ir.Imm(0), B: ir.Imm(7)}}
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	retBlock(e0, 1)
	retBlock(e1, 2)
	retBlock(def, 3)
	seq := detectOne(t, fx)
	if len(seq.Conds) != 2 {
		t.Fatalf("got %d conds", len(seq.Conds))
	}
	if len(seq.Conds[1].SideEffects) != 1 || seq.Conds[1].SideEffects[0].Op != ir.St {
		t.Errorf("side effect not recorded: %+v", seq.Conds[1].SideEffects)
	}

	// Same shape, but the prefix writes the branch variable: the second
	// condition cannot join the sequence.
	fx2 := newFixture()
	c0 := fx2.block()
	c1 := fx2.block()
	x0 := fx2.block()
	x1 := fx2.block()
	d2 := fx2.block()
	condBlock(c0, 1, 10, ir.EQ, x0, c1)
	c1.Insts = []ir.Inst{{Op: ir.Add, Dst: 1, A: ir.R(1), B: ir.Imm(1)}}
	condBlock(c1, 1, 20, ir.EQ, x1, d2)
	retBlock(x0, 1)
	retBlock(x1, 2)
	retBlock(d2, 3)
	fx2.f.SyncNextID()
	seqs := Detect(fx2.p, 0)
	if len(seqs) != 0 {
		t.Fatalf("sequence with branch-variable-writing side effect accepted: %v", seqs[0])
	}
}

func TestDetectStopsAtOverlap(t *testing.T) {
	// Third condition's range overlaps the first: chain must stop at 2.
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	b2 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	e2 := fx.block()
	def := fx.block()
	condBlock(b0, 1, 10, ir.LT, e0, b1) // [MIN..9]
	condBlock(b1, 1, 20, ir.EQ, e1, b2) // [20]
	condBlock(b2, 1, 5, ir.EQ, e2, def) // [5] overlaps [MIN..9]
	retBlock(e0, 1)
	retBlock(e1, 2)
	retBlock(e2, 3)
	retBlock(def, 4)
	seq := detectOne(t, fx)
	if len(seq.Conds) != 2 {
		t.Fatalf("got %d conds, want 2 (overlap must stop the chain): %v", len(seq.Conds), seq)
	}
}

func TestDetectMixedVariablesStops(t *testing.T) {
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	def := fx.block()
	condBlock(b0, 1, 10, ir.EQ, e0, b1)
	condBlock(b1, 2, 20, ir.EQ, e1, def) // different register
	retBlock(e0, 1)
	retBlock(e1, 2)
	retBlock(def, 3)
	fx.f.SyncNextID()
	if seqs := Detect(fx.p, 0); len(seqs) != 0 {
		t.Fatalf("cross-variable sequence accepted: %v", seqs[0])
	}
}

func TestDetectConstOnLeft(t *testing.T) {
	// cmp 10, v with bGT means v < 10; the detector must transpose.
	fx := newFixture()
	b0 := fx.block()
	b1 := fx.block()
	e0 := fx.block()
	e1 := fx.block()
	def := fx.block()
	b0.Insts = []ir.Inst{{Op: ir.Cmp, A: ir.Imm(10), B: ir.R(1)}}
	b0.Term = ir.Term{Kind: ir.TermBr, Rel: ir.GT, Taken: e0, Next: b1}
	condBlock(b1, 1, 20, ir.EQ, e1, def)
	retBlock(e0, 1)
	retBlock(e1, 2)
	retBlock(def, 3)
	seq := detectOne(t, fx)
	if seq.Conds[0].R != (Range{ir.MinVal, 9}) {
		t.Errorf("transposed range = %v, want [MIN..9]", seq.Conds[0].R)
	}
}
