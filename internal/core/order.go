package core

import (
	"math"
	"sort"
)

// Arm is one candidate range condition for the ordering decision: an
// explicit range condition from the original sequence or a default range
// that may be made explicit (paper Section 5, Figure 7).
type Arm struct {
	R        Range
	Target   int     // key identifying the exit target
	P        float64 // probability this range exits the sequence (Def. 9)
	C        float64 // cost of testing the range condition (Def. 10)
	Explicit bool    // explicitly checked in the original sequence

	// MustTest forbids leaving the arm untested. The transformation sets
	// it on explicit arms followed by side-effect-carrying conditions,
	// whose omission would execute the wrong side effects on the shared
	// fall-through edge.
	MustTest bool
}

// Ordering is a selected test order: the arms in Explicit are tested in
// order; the arms in Omitted are never tested and exit through the final
// fall-through to the default target. All omitted arms share a target.
type Ordering struct {
	Explicit      []int // indices into the arms slice
	Omitted       []int // indices into the arms slice
	DefaultTarget int   // target of the omitted arms (-1 if none omitted)
	Cost          float64
}

// SeqCost evaluates the complete expected cost of an ordering from first
// principles (Equations 1 and 2): each explicitly tested arm contributes
// its exit probability times the cost of it and all preceding arms, and
// the omitted probability mass pays for every explicit test.
func SeqCost(arms []Arm, explicit, omitted []int) float64 {
	var cost, prefix float64
	for _, i := range explicit {
		prefix += arms[i].C
		cost += arms[i].P * prefix
	}
	var omittedP float64
	for _, i := range omitted {
		omittedP += arms[i].P
	}
	return cost + omittedP*prefix
}

// sortByRatio returns arm indices in descending P/C order (Theorem 3: an
// explicit sequence is optimally ordered when p_i/c_i >= p_j/c_j for i
// before j). Ties break toward the original index for determinism.
func sortByRatio(arms []Arm) []int {
	idx := make([]int, len(arms))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra := arms[idx[a]].P / arms[idx[a]].C
		rb := arms[idx[b]].P / arms[idx[b]].C
		if ra != rb {
			return ra > rb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Select chooses the lowest-cost ordering using the paper's O(n log n)
// procedure (Figure 8): sort all arms by descending P/C, compute the
// all-explicit cost with Equation 1, then for each potential default
// target incrementally un-check that target's arms from lowest P/C upward
// using Equation 4, keeping the cheapest configuration seen.
func Select(arms []Arm) Ordering {
	if len(arms) == 0 {
		return Ordering{DefaultTarget: -1}
	}
	order := sortByRatio(arms)

	// Explicit_Cost with every arm checked (Equation 1; the default term
	// of Equation 2 is zero because the arms cover the whole domain).
	var explicitCost, prefix float64
	for _, i := range order {
		prefix += arms[i].C
		explicitCost += arms[i].P * prefix
	}

	// tcost[k] = sum of C over sorted positions > k;
	// tprob[k] = sum of P over sorted positions >= k.
	n := len(order)
	tcost := make([]float64, n+1)
	tprob := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		tcost[k] = tcost[k+1] + arms[order[k]].C
		tprob[k] = tprob[k+1] + arms[order[k]].P
	}
	// tcost[k] currently includes position k itself; Figure 8 defines
	// tcost[i] = C[i+1] + ... + C[n].
	for k := 0; k < n; k++ {
		tcost[k] -= arms[order[k]].C
	}

	// Positions of each target's omittable arms, in ascending P/C
	// (descending sorted position).
	posByTarget := map[int][]int{}
	for pos := n - 1; pos >= 0; pos-- {
		if arms[order[pos]].MustTest {
			continue
		}
		t := arms[order[pos]].Target
		posByTarget[t] = append(posByTarget[t], pos)
	}

	best := Ordering{
		Explicit:      append([]int(nil), order...),
		DefaultTarget: -1,
		Cost:          explicitCost,
	}
	targets := make([]int, 0, len(posByTarget))
	for t := range posByTarget {
		targets = append(targets, t)
	}
	sort.Ints(targets)
	for _, target := range targets {
		cost := explicitCost
		elim := 0.0
		omitted := make([]int, 0, len(posByTarget[target]))
		for _, pos := range posByTarget[target] {
			i := order[pos]
			cost += arms[i].P*(tcost[pos]-elim) - arms[i].C*tprob[pos]
			elim += arms[i].C
			omitted = append(omitted, i)
			// Strictly cheaper wins; on a cost tie prefer testing fewer
			// conditions (less static code, e.g. zero-probability arms).
			better := cost < best.Cost-1e-12 ||
				(cost < best.Cost+1e-12 && len(omitted) > len(best.Omitted))
			if better {
				best = Ordering{
					Explicit:      removeAll(order, omitted),
					Omitted:       append([]int(nil), omitted...),
					DefaultTarget: target,
					Cost:          cost,
				}
			}
		}
	}
	return best
}

// removeAll returns order minus the given indices, preserving order.
func removeAll(order, omit []int) []int {
	skip := map[int]bool{}
	for _, i := range omit {
		skip[i] = true
	}
	out := make([]int, 0, len(order)-len(omit))
	for _, i := range order {
		if !skip[i] {
			out = append(out, i)
		}
	}
	return out
}

// SelectExhaustive finds the true optimum by enumerating, for every
// target, every subset of that target's arms as the omitted set, and every
// permutation of the remaining arms. It exists as the testing oracle the
// paper also implemented ("we also implemented an exhaustive approach...
// our approach always selected the optimal sequence"). Exponential: use
// only for small n.
func SelectExhaustive(arms []Arm) Ordering {
	n := len(arms)
	best := Ordering{DefaultTarget: -1, Cost: math.Inf(1)}
	armsByTarget := map[int][]int{}
	for i, a := range arms {
		if a.MustTest {
			continue
		}
		armsByTarget[a.Target] = append(armsByTarget[a.Target], i)
	}

	consider := func(omitted []int, target int) {
		skip := map[int]bool{}
		for _, i := range omitted {
			skip[i] = true
		}
		rest := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !skip[i] {
				rest = append(rest, i)
			}
		}
		permute(rest, func(perm []int) {
			c := SeqCost(arms, perm, omitted)
			if c < best.Cost-1e-12 {
				best = Ordering{
					Explicit:      append([]int(nil), perm...),
					Omitted:       append([]int(nil), omitted...),
					DefaultTarget: target,
					Cost:          c,
				}
			}
		})
	}

	consider(nil, -1)
	for target, idxs := range armsByTarget {
		m := len(idxs)
		for mask := 1; mask < 1<<m; mask++ {
			var omitted []int
			for b := 0; b < m; b++ {
				if mask&(1<<b) != 0 {
					omitted = append(omitted, idxs[b])
				}
			}
			consider(omitted, target)
		}
	}
	return best
}

// permute calls fn with every permutation of s (in place; fn must not
// retain the slice).
func permute(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(s) {
			fn(s)
			return
		}
		for i := k; i < len(s); i++ {
			s[k], s[i] = s[i], s[k]
			rec(k + 1)
			s[k], s[i] = s[i], s[k]
		}
	}
	rec(0)
}
