package core

import "branchreorder/internal/ir"

// Section 7 improvements, applied while deciding how each reordered range
// condition is emitted:
//
//  1. Within a two-branch (Form 4) condition, the bound more likely to
//     disqualify the value is tested first, using the probability mass of
//     the ranges still possible at that point in the sequence.
//
//  2. Comparison constants are chosen among equivalent encodings (e.g.
//     "> c" versus ">= c+1") so that adjacent conditions compare against
//     the same constant whenever possible, letting the later redundant-
//     comparison elimination pass (Figure 9) delete the second compare.

// testSpec describes how one explicit arm is emitted: one compare for
// single-value and half-unbounded ranges, two for bounded ranges. For a
// two-test spec, the first test's branch *leaves* the condition (value
// misses the near bound) and the second's branch takes the exit.
type testSpec struct {
	tests []cmpTest
}

type cmpTest struct {
	konst int64
	rel   ir.Rel
}

// singleCandidates returns the equivalent encodings of a one-compare
// membership test for r (nil when r needs two compares).
func singleCandidates(r Range) []cmpTest {
	switch {
	case r.Single():
		return []cmpTest{{r.Lo, ir.EQ}}
	case r.Lo == ir.MinVal:
		out := []cmpTest{{r.Hi, ir.LE}}
		if r.Hi < ir.MaxVal {
			out = append(out, cmpTest{r.Hi + 1, ir.LT})
		}
		return out
	case r.Hi == ir.MaxVal:
		out := []cmpTest{{r.Lo, ir.GE}}
		if r.Lo > ir.MinVal {
			out = append(out, cmpTest{r.Lo - 1, ir.GT})
		}
		return out
	default:
		return nil
	}
}

// constSet collects the constants an arm could compare against first.
func constSet(r Range) map[int64]bool {
	out := map[int64]bool{}
	for _, c := range singleCandidates(r) {
		out[c.konst] = true
	}
	if r.BoundedBothEnds() {
		out[r.Lo] = true
		out[r.Hi] = true
		if r.Lo > ir.MinVal {
			out[r.Lo-1] = true
		}
		if r.Hi < ir.MaxVal {
			out[r.Hi+1] = true
		}
	}
	return out
}

// pickTest chooses among encodings: one whose constant matches the
// previous comparison (enabling elimination of this compare), else one
// whose constant the next arm can also use (enabling elimination of the
// next compare), else the canonical first candidate.
func pickTest(cands []cmpTest, prev *int64, next map[int64]bool) cmpTest {
	if prev != nil {
		for _, c := range cands {
			if c.konst == *prev {
				return c
			}
		}
	}
	if next != nil {
		for _, c := range cands {
			if next[c.konst] {
				return c
			}
		}
	}
	return cands[0]
}

// buildSpecs computes the emission plan for the selected ordering.
func buildSpecs(seq *Sequence, sel Ordering, topt TransformOptions) []testSpec {
	specs := make([]testSpec, len(sel.Explicit))
	var prev *int64
	for i, armIdx := range sel.Explicit {
		r := seq.Arms[armIdx].R
		var nextConsts map[int64]bool
		if !topt.NoCmpReuse && i+1 < len(sel.Explicit) {
			nextConsts = constSet(seq.Arms[sel.Explicit[i+1]].R)
		}
		if cands := singleCandidates(r); cands != nil {
			t := pickTest(cands, prev, nextConsts)
			specs[i] = testSpec{tests: []cmpTest{t}}
			if !topt.NoCmpReuse {
				k := t.konst
				prev = &k
			}
			continue
		}
		specs[i] = boundedSpec(seq, sel, i, r, prev, topt)
		// Two different constants flow into the next arm; no reuse.
		prev = nil
	}
	return specs
}

// boundedSpec emits a two-test bounded range condition, ordering the
// bound checks by the probability that the value lies below versus above
// the range at this point of the sequence (improvement 1).
func boundedSpec(seq *Sequence, sel Ordering, pos int, r Range, prev *int64, topt TransformOptions) testSpec {
	var pBelow, pAbove float64
	consider := func(armIdx int) {
		a := seq.Arms[armIdx]
		switch {
		case a.R.Hi < r.Lo:
			pBelow += a.P
		case a.R.Lo > r.Hi:
			pAbove += a.P
		}
	}
	for _, armIdx := range sel.Explicit[pos+1:] {
		consider(armIdx)
	}
	for _, armIdx := range sel.Omitted {
		consider(armIdx)
	}

	// Candidate encodings for each check. The "miss" test branches out
	// of the condition; the "hit" test branches to the exit.
	lowMiss := []cmpTest{{r.Lo, ir.LT}}
	if r.Lo > ir.MinVal {
		lowMiss = append(lowMiss, cmpTest{r.Lo - 1, ir.LE})
	}
	highMiss := []cmpTest{{r.Hi, ir.GT}}
	if r.Hi < ir.MaxVal {
		highMiss = append(highMiss, cmpTest{r.Hi + 1, ir.GE})
	}
	var first, second cmpTest
	if topt.NoBoundOrder || pBelow >= pAbove {
		// Test the lower bound first: values below leave immediately.
		first = pickTest(lowMiss, prev, nil)
		second = cmpTest{r.Hi, ir.LE} // hit test
	} else {
		first = pickTest(highMiss, prev, nil)
		second = cmpTest{r.Lo, ir.GE}
	}
	return testSpec{tests: []cmpTest{first, second}}
}
