package core

import (
	"fmt"

	"branchreorder/internal/ir"
)

// Cond is one detected range condition (paper Definition 2): one or two
// compare-and-branch blocks testing whether the sequence's variable lies
// in R, exiting to Exit when it does and falling to the next condition
// otherwise.
type Cond struct {
	R      Range
	Exit   *ir.Block
	Blocks []*ir.Block // 1 block, or 2 for a Form 4 (bounded) condition

	// SideEffects are the instructions preceding the comparison in the
	// condition's first block: the paper's intervening side effects,
	// sunk onto the sequence's exit edges by the transformation
	// (Theorem 2). Always empty for the first condition (the head is
	// split so its prefix stays ahead of the sequence).
	SideEffects []ir.Inst

	next *ir.Block // continuation when the condition is not satisfied
}

// NumBranches reports the conditional branches this condition executes.
func (c *Cond) NumBranches() int { return len(c.Blocks) }

// Sequence is a detected reorderable sequence of range conditions
// (Definition 4) in function F, testing register V.
type Sequence struct {
	ID   int
	F    *ir.Func
	V    ir.Reg
	Head *ir.Block // first block of the first condition; Prof lives here
	// PreHead is the block holding the head's former instruction prefix
	// after splitting, or nil if the head had no prefix.
	PreHead       *ir.Block
	Conds         []*Cond
	DefaultTarget *ir.Block

	// Arms holds the ordering candidates: one per explicit condition, in
	// original order, followed by one per default range. Probabilities
	// are zero until a profile is attached.
	Arms []Arm
	// ArmCond maps arm index to the index of its original condition, or
	// len(Conds) for default-range arms (used when sinking side effects:
	// exiting through arm k means conditions before ArmCond[k] failed).
	ArmCond []int
}

// OrigBranches is the number of conditional branches in the original
// sequence (the "Orig" sequence length of Table 8 and Figures 11-13).
func (s *Sequence) OrigBranches() int {
	n := 0
	for _, c := range s.Conds {
		n += c.NumBranches()
	}
	return n
}

// String renders a sequence compactly for debugging.
func (s *Sequence) String() string {
	out := fmt.Sprintf("seq %d in %s on r%d:", s.ID, s.F.Name, s.V)
	for _, c := range s.Conds {
		out += fmt.Sprintf(" %v->B%d", c.R, c.Exit.ID)
	}
	out += fmt.Sprintf(" default B%d", s.DefaultTarget.ID)
	return out
}

// Detect finds every reorderable sequence in the program, splits sequence
// heads so external predecessors stay ahead of the conditions, and inserts
// a Prof instruction at each head so a training run can record how often
// each range exits the sequence. Sequence IDs start at firstID. The
// program must be re-linearized before execution.
func Detect(p *ir.Program, firstID int) []*Sequence {
	var seqs []*Sequence
	id := firstID
	for _, f := range p.Funcs {
		for _, s := range detectFunc(f) {
			s.ID = id
			id++
			instrument(s)
			seqs = append(seqs, s)
		}
	}
	return seqs
}

// detectFunc implements the Figure 4 search over one function.
func detectFunc(f *ir.Func) []*Sequence {
	d := &detector{
		f:         f,
		preds:     ir.Preds(f),
		needFlags: needFlagsIn(f),
		marked:    map[*ir.Block]bool{},
	}
	var seqs []*Sequence
	// Walk a snapshot of the block list in layout order; blocks created
	// by head splitting are deliberately not revisited.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		if d.marked[b] {
			continue
		}
		seq := d.trySequence(b)
		if seq == nil {
			continue
		}
		splitHead(f, seq)
		for _, c := range seq.Conds {
			for _, blk := range c.Blocks {
				d.marked[blk] = true
			}
		}
		d.marked[seq.Head] = true
		seqs = append(seqs, seq)
	}
	return seqs
}

type detector struct {
	f         *ir.Func
	preds     map[*ir.Block][]*ir.Block
	needFlags map[*ir.Block]bool
	marked    map[*ir.Block]bool
	budget    int
}

// parse is one interpretation of a block (or block pair) as a range
// condition.
type parse struct {
	cond Cond
	v    ir.Reg
}

// trySequence attempts to root a reorderable sequence at head, returning
// the longest interpretation with at least two conditions (the
// Find_First_Two_Conds + extension loop of Figure 4).
func (d *detector) trySequence(head *ir.Block) *Sequence {
	d.budget = 4096
	visited := map[*ir.Block]bool{}
	cands := d.parseBlock(head, 0, false, true, nil, visited)
	var best []*Cond
	var bestV ir.Reg
	for _, c := range cands {
		conds := d.chain(c, nil, visited)
		if len(conds) > len(best) {
			best = conds
			bestV = c.v
		}
	}
	if len(best) < 2 {
		return nil
	}
	last := best[len(best)-1]
	if d.needFlags[last.next] {
		return nil // default target consumes flags set inside the sequence
	}
	return &Sequence{
		F:             d.f,
		V:             bestV,
		Head:          head,
		Conds:         best,
		DefaultTarget: last.next,
	}
}

// chain accepts condition c and recursively extends the sequence through
// its continuation, returning the longest chain found (nil if c itself is
// unusable).
func (d *detector) chain(c parse, acc []Range, visited map[*ir.Block]bool) []*Cond {
	if d.needFlags[c.cond.Exit] {
		// The exit target consumes flags set inside the sequence;
		// reordering would change what it sees.
		return nil
	}
	if d.budget <= 0 {
		return []*Cond{cloneCond(c.cond)}
	}
	d.budget--

	for _, b := range c.cond.Blocks {
		visited[b] = true
	}
	defer func() {
		for _, b := range c.cond.Blocks {
			delete(visited, b)
		}
	}()

	out := []*Cond{cloneCond(c.cond)}
	next := c.cond.next
	if !d.extendable(next, c.cond.Blocks, visited) {
		return out
	}
	acc = append(acc, c.cond.R)
	var bestTail []*Cond
	for _, cc := range d.parseBlock(next, c.v, true, false, acc, visited) {
		tail := d.chain(cc, acc, visited)
		if len(tail) > len(bestTail) {
			bestTail = tail
		}
	}
	return append(out, bestTail...)
}

// extendable reports whether block b can be an internal condition of the
// current sequence: unmarked, unvisited, and entered only through the
// blocks of the preceding condition (possibly via empty trampoline
// blocks), so the whole sequence is entered only at its head (Theorem 1's
// entry requirement).
func (d *detector) extendable(b *ir.Block, sources []*ir.Block, visited map[*ir.Block]bool) bool {
	return b != nil && !d.marked[b] && !visited[b] && d.enteredOnlyFrom(b, sources, 4)
}

// enteredOnlyFrom reports whether every predecessor of b is one of the
// source blocks, or an empty goto block (a layout trampoline) itself
// entered only from the sources.
func (d *detector) enteredOnlyFrom(b *ir.Block, sources []*ir.Block, depth int) bool {
	if len(d.preds[b]) == 0 {
		return false // entry block or unreachable
	}
predLoop:
	for _, p := range d.preds[b] {
		for _, s := range sources {
			if p == s {
				continue predLoop
			}
		}
		if depth > 0 && isEmptyGoto(p) && d.enteredOnlyFrom(p, sources, depth-1) {
			continue
		}
		return false
	}
	return true
}

func isEmptyGoto(b *ir.Block) bool {
	return len(b.Insts) == 0 && b.Term.Kind == ir.TermGoto
}

// resolve follows empty goto blocks (layout trampolines) to the block
// that actually does something, so detection sees the logical CFG.
func (d *detector) resolve(b *ir.Block) *ir.Block {
	for hops := 0; hops < 8 && b != nil && isEmptyGoto(b); hops++ {
		b = b.Term.Taken
	}
	return b
}

func cloneCond(c Cond) *Cond {
	out := c
	out.Blocks = append([]*ir.Block(nil), c.Blocks...)
	out.SideEffects = append([]ir.Inst(nil), c.SideEffects...)
	return &out
}

// parseBlock returns the interpretations of b as a range condition
// (Find_Range_Cond in Figure 4). If vFixed, only conditions on register v
// qualify. acc holds the ranges already claimed by the sequence;
// interpretations overlapping them are dropped. Form 4 (two-block bounded
// range) interpretations come first, as in the paper's algorithm.
func (d *detector) parseBlock(b *ir.Block, v ir.Reg, vFixed, isHead bool, acc []Range, visited map[*ir.Block]bool) []parse {
	reg, c, rel, prefix, ok := d.parseCmpBr(b)
	if !ok {
		return nil
	}
	if vFixed && reg != v {
		return nil
	}
	// An internal condition's prefix becomes a sunk side effect, which
	// Theorem 2 forbids from modifying the branch variable; profiling
	// pseudo-instructions must stay put in either case. The head's
	// prefix is exempt: it is split off ahead of the sequence, so even a
	// "c = getchar()" feeding the comparison is fine there.
	for i := range prefix {
		if prefix[i].Op == ir.Prof || prefix[i].Op == ir.ProfCond {
			return nil
		}
		if !isHead && instWrites(&prefix[i], reg) {
			return nil
		}
	}

	taken, next := d.resolve(b.Term.Taken), d.resolve(b.Term.Next)
	var out []parse
	single := func(r Range, exit, cont *ir.Block) {
		if !r.Valid() || !NonOverlapping(r, acc) {
			return
		}
		out = append(out, parse{
			v: reg,
			cond: Cond{
				R: r, Exit: exit, Blocks: []*ir.Block{b},
				SideEffects: append([]ir.Inst(nil), prefix...),
				next:        cont,
			},
		})
	}

	tr, nr, eqForm := splitRanges(rel, c)
	if eqForm {
		// EQ/NE: single-value range conditions only.
		if rel == ir.EQ {
			single(tr, taken, next)
		} else {
			single(nr, next, taken)
		}
		return out
	}

	// Form 4: this branch plus a branch in one successor can bound a
	// range, with the other successor common to both. Try both sides.
	for _, side := range []form4Side{
		{cont: next, common: taken, reach: nr},
		{cont: taken, common: next, reach: tr},
	} {
		if p := d.parseForm4(b, reg, side, acc, prefix, visited); p != nil {
			out = append(out, *p)
		}
	}

	// Single-branch interpretations: taken side first, as in Figure 4.
	single(tr, taken, next)
	single(nr, next, taken)
	return out
}

type form4Side struct {
	cont   *ir.Block // block holding the second compare
	common *ir.Block // this branch's own way out (the common successor)
	reach  Range     // values flowing into cont
}

// parseForm4 tries to combine b's branch with a compare-and-branch in
// side.cont, where side.common is b's other successor.
func (d *detector) parseForm4(b *ir.Block, v ir.Reg, side form4Side, acc []Range, prefix []ir.Inst, visited map[*ir.Block]bool) *parse {
	cont := side.cont
	if cont == nil || cont == b || d.marked[cont] || visited[cont] ||
		!d.enteredOnlyFrom(cont, []*ir.Block{b}, 4) {
		return nil
	}
	if !side.reach.Valid() {
		return nil
	}
	reg2, c2, rel2, prefix2, ok := d.parseCmpBr(cont)
	if !ok || reg2 != v || len(prefix2) != 0 {
		// A side effect between the two branches of one condition would
		// execute under different conditions after reordering; reject.
		return nil
	}
	tr2, nr2, eqForm2 := splitRanges(rel2, c2)
	if eqForm2 {
		return nil // EQ/NE as a second bound never yields a Form 4 range
	}
	var r Range
	var exit *ir.Block
	switch {
	case d.resolve(cont.Term.Taken) == side.common:
		r = intersect(side.reach, nr2)
		exit = d.resolve(cont.Term.Next)
	case d.resolve(cont.Term.Next) == side.common:
		r = intersect(side.reach, tr2)
		exit = d.resolve(cont.Term.Taken)
	default:
		return nil
	}
	if !r.Valid() || !r.BoundedBothEnds() || !NonOverlapping(r, acc) {
		return nil
	}
	return &parse{
		v: v,
		cond: Cond{
			R: r, Exit: exit, Blocks: []*ir.Block{b, cont},
			SideEffects: append([]ir.Inst(nil), prefix...),
			next:        side.common,
		},
	}
}

// parseCmpBr decodes a block as [prefix insts] + Cmp(reg, const) +
// conditional branch. Compares with the constant on the left are
// normalized by transposing the relation.
func (d *detector) parseCmpBr(b *ir.Block) (reg ir.Reg, c int64, rel ir.Rel, prefix []ir.Inst, ok bool) {
	if b.Term.Kind != ir.TermBr || len(b.Insts) == 0 {
		return 0, 0, 0, nil, false
	}
	last := b.Insts[len(b.Insts)-1]
	if last.Op != ir.Cmp {
		return 0, 0, 0, nil, false
	}
	rel = b.Term.Rel
	switch {
	case !last.A.IsImm && last.B.IsImm:
		reg, c = last.A.Reg, last.B.Imm
	case last.A.IsImm && !last.B.IsImm:
		reg, c = last.B.Reg, last.A.Imm
		rel = transpose(rel)
	default:
		return 0, 0, 0, nil, false
	}
	return reg, c, rel, b.Insts[:len(b.Insts)-1], true
}

// transpose converts "const REL reg" into "reg REL' const".
func transpose(r ir.Rel) ir.Rel {
	switch r {
	case ir.LT:
		return ir.GT
	case ir.LE:
		return ir.GE
	case ir.GT:
		return ir.LT
	case ir.GE:
		return ir.LE
	default:
		return r // EQ, NE symmetric
	}
}

// splitRanges returns the taken-side and fall-through-side value ranges of
// a "reg REL const" branch. eqForm reports the EQ/NE case where only the
// single-value side is contiguous.
func splitRanges(rel ir.Rel, c int64) (taken, next Range, eqForm bool) {
	switch rel {
	case ir.EQ:
		return Range{c, c}, Range{}, true
	case ir.NE:
		return Range{}, Range{c, c}, true
	case ir.LT:
		return rangeBelow(c), Range{c, ir.MaxVal}, false
	case ir.LE:
		return Range{ir.MinVal, c}, rangeAbove(c), false
	case ir.GT:
		return rangeAbove(c), Range{ir.MinVal, c}, false
	default: // GE
		return Range{c, ir.MaxVal}, rangeBelow(c), false
	}
}

// rangeAbove returns [c+1, MAX]; invalid when c is already MAX.
func rangeAbove(c int64) Range {
	if c == ir.MaxVal {
		return Range{1, 0}
	}
	return Range{c + 1, ir.MaxVal}
}

// rangeBelow returns [MIN, c-1]; invalid when c is already MIN.
func rangeBelow(c int64) Range {
	if c == ir.MinVal {
		return Range{1, 0}
	}
	return Range{ir.MinVal, c - 1}
}

func intersect(a, b Range) Range {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return Range{lo, hi}
}

func instWrites(in *ir.Inst, r ir.Reg) bool {
	switch in.Op {
	case ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
		ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not, ir.Ld, ir.GetChar:
		return in.Dst == r
	case ir.Call:
		return in.Dst == r
	default:
		return false
	}
}

// needFlagsIn computes, per block, whether the condition codes on entry
// may be consumed before being redefined: true when the block (or some
// successor path with no intervening Cmp) ends in a conditional branch.
// Sequence exit targets with this property cannot be accepted, because
// reordering changes which comparison's flags they would inherit.
func needFlagsIn(f *ir.Func) map[*ir.Block]bool {
	hasCmp := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == ir.Cmp {
				hasCmp[b] = true
				break
			}
		}
	}
	need := map[*ir.Block]bool{}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			v := false
			if !hasCmp[b] {
				if b.Term.Kind == ir.TermBr {
					v = true
				} else {
					var succs []*ir.Block
					for _, s := range b.Term.Succs(succs) {
						if need[s] {
							v = true
							break
						}
					}
				}
			}
			if v != need[b] {
				need[b] = v
				changed = true
			}
		}
	}
	return need
}

// splitHead separates the head block's instruction prefix from its
// comparison so the sequence proper contains only compares and branches
// (Section 4: "it could be split apart into the portion with the side
// effect and the portion without one"). The original block keeps the
// prefix (so external edges still execute it) and jumps to a new block
// holding the comparison, which becomes the sequence head.
func splitHead(f *ir.Func, seq *Sequence) {
	head := seq.Head
	cmpIdx := len(head.Insts) - 1 // parseCmpBr guarantees the Cmp is last
	if cmpIdx == 0 {
		return // no prefix; the head is already pure
	}
	cond := f.NewBlock()
	cond.Insts = append(cond.Insts, head.Insts[cmpIdx:]...)
	cond.Term = head.Term
	head.Insts = head.Insts[:cmpIdx]
	head.Term = ir.Term{Kind: ir.TermGoto, Taken: cond}

	first := seq.Conds[0]
	for i, b := range first.Blocks {
		if b == head {
			first.Blocks[i] = cond
		}
	}
	first.SideEffects = nil
	seq.PreHead = head
	seq.Head = cond
}

// instrument inserts the profiling pseudo-instruction at the sequence
// head (Section 5: "the instrumentation code ... was entirely inserted at
// the head of the sequence").
func instrument(seq *Sequence) {
	prof := ir.Inst{Op: ir.Prof, SeqID: seq.ID, A: ir.R(seq.V)}
	seq.Head.Insts = append([]ir.Inst{prof}, seq.Head.Insts...)
}
