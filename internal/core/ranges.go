// Package core implements the paper's contribution: detection of
// reorderable sequences of range conditions (Section 3, Figure 4), their
// normalization (Section 4), profiling support (Section 5), selection of
// the most beneficial ordering (Section 6, Equations 1-4, Figure 8), the
// post-ordering improvements (Section 7), and the application of the
// transformation to the control flow (Section 8, Figure 10).
package core

import (
	"fmt"
	"sort"

	"branchreorder/internal/ir"
)

// Range is a set of contiguous integer values [Lo, Hi], inclusive on both
// ends (paper Definition 1). The full machine domain is
// [ir.MinVal, ir.MaxVal].
type Range struct {
	Lo, Hi int64
}

// FullRange covers every representable value.
var FullRange = Range{ir.MinVal, ir.MaxVal}

func (r Range) String() string {
	switch {
	case r.Lo == r.Hi:
		return fmt.Sprintf("[%d]", r.Lo)
	case r.Lo == ir.MinVal && r.Hi == ir.MaxVal:
		return "[MIN..MAX]"
	case r.Lo == ir.MinVal:
		return fmt.Sprintf("[MIN..%d]", r.Hi)
	case r.Hi == ir.MaxVal:
		return fmt.Sprintf("[%d..MAX]", r.Lo)
	default:
		return fmt.Sprintf("[%d..%d]", r.Lo, r.Hi)
	}
}

// Valid reports Lo <= Hi.
func (r Range) Valid() bool { return r.Lo <= r.Hi }

// Contains reports whether v lies in the range.
func (r Range) Contains(v int64) bool { return r.Lo <= v && v <= r.Hi }

// Overlaps reports whether two ranges share any value (Definition 5
// negated).
func (r Range) Overlaps(o Range) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Single reports whether the range holds exactly one value.
func (r Range) Single() bool { return r.Lo == r.Hi }

// BoundedBothEnds reports whether the range needs two comparisons to test
// (Table 1 Form 4): bounded on both sides and wider than a single value.
func (r Range) BoundedBothEnds() bool {
	return r.Lo != ir.MinVal && r.Hi != ir.MaxVal && r.Lo != r.Hi
}

// NumBranches is the number of conditional branches needed to test
// membership (Table 1): 1 for single values and half-unbounded ranges,
// 2 for ranges bounded on both ends.
func (r Range) NumBranches() int {
	if r.BoundedBothEnds() {
		return 2
	}
	return 1
}

// CondCost estimates the instructions needed to test the range when the
// variable is already in a register: a comparison and a branch per bound
// (paper Definition 10; the estimate is deliberately conservative, both
// branches of a Form 4 condition are assumed executed).
func (r Range) CondCost() int { return 2 * r.NumBranches() }

// NonOverlapping reports whether r is disjoint from every range in set.
func NonOverlapping(r Range, set []Range) bool {
	for _, s := range set {
		if r.Overlaps(s) {
			return false
		}
	}
	return true
}

// Gaps returns the minimal set of ranges covering every value of the full
// domain not covered by ranges (the paper's default ranges, Definition 8:
// "the compiler calculated these remaining ranges by sorting the explicit
// ranges and adding the minimum number of ranges to cover the remaining
// values"). ranges must be pairwise nonoverlapping.
func Gaps(ranges []Range) []Range {
	sorted := append([]Range(nil), ranges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	var gaps []Range
	cursor := int64(ir.MinVal)
	cursorValid := true // cursor is the lowest value not yet covered
	for _, r := range sorted {
		if cursorValid && cursor < r.Lo {
			gaps = append(gaps, Range{cursor, r.Lo - 1})
		}
		if r.Hi == ir.MaxVal {
			cursorValid = false
		} else {
			cursor = r.Hi + 1
		}
	}
	if cursorValid {
		gaps = append(gaps, Range{cursor, ir.MaxVal})
	}
	return gaps
}

// merged coalesces adjacent/overlapping ranges (helper for sanity checks).
func merged(ranges []Range) []Range {
	if len(ranges) == 0 {
		return nil
	}
	s := append([]Range(nil), ranges...)
	sort.Slice(s, func(i, j int) bool { return s[i].Lo < s[j].Lo })
	out := []Range{s[0]}
	for _, r := range s[1:] {
		last := &out[len(out)-1]
		if last.Hi != ir.MaxVal && r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		if r.Lo <= last.Hi { // overlap at MaxVal edge
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoversDomain reports whether the union of ranges is the full domain.
func CoversDomain(ranges []Range) bool {
	m := merged(ranges)
	return len(m) == 1 && m[0] == FullRange
}
