package predictor

import "testing"

// lcg gives the tests a deterministic branch stream.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

// TestBankMatchesBimodals drives the Table-6 bank and the 14 individual
// Bimodal predictors with the same stream and demands bit-identical
// mispredict counts — the property that lets sim.Run swap the fan-out
// for a single Observe per branch.
func TestBankMatchesBimodals(t *testing.T) {
	specs := Table6Specs()
	bank := NewBank(specs)
	var ref []*Bimodal
	for _, s := range specs {
		ref = append(ref, NewBimodal(s.Bits, s.Entries))
	}
	g := &lcg{s: 7}
	for i := 0; i < 200000; i++ {
		// Mostly dense small IDs (linearization's shape), some huge,
		// some negative to exercise the modulo fallback.
		id := int(g.next() % 4096)
		switch g.next() % 16 {
		case 0:
			id = int(g.next())
		case 1:
			id = -id
		}
		taken := g.next()&3 != 0 // biased-taken, like loop branches
		bank.Observe(id, taken)
		for _, p := range ref {
			p.Observe(id, taken)
		}
	}
	if bank.Len() != len(ref) {
		t.Fatalf("bank has %d predictors, want %d", bank.Len(), len(ref))
	}
	byName := bank.Mispredicts()
	for i, p := range ref {
		if bank.Name(i) != p.Name() {
			t.Errorf("predictor %d named %q, want %q", i, bank.Name(i), p.Name())
		}
		if bank.MispredictsOf(i) != p.Mispredicts {
			t.Errorf("%s: bank %d mispredicts, bimodal %d",
				p.Name(), bank.MispredictsOf(i), p.Mispredicts)
		}
		if byName[p.Name()] != p.Mispredicts {
			t.Errorf("%s: map reports %d, want %d",
				p.Name(), byName[p.Name()], p.Mispredicts)
		}
		if bank.Branches != p.Branches {
			t.Errorf("%s: bank saw %d branches, bimodal %d",
				p.Name(), bank.Branches, p.Branches)
		}
	}
}

func TestBankReset(t *testing.T) {
	bank := NewTable6Bank()
	fresh := NewTable6Bank()
	g := &lcg{s: 99}
	for i := 0; i < 5000; i++ {
		bank.Observe(int(g.next()%512), g.next()&1 == 0)
	}
	bank.Reset()
	if bank.Branches != 0 {
		t.Errorf("Branches = %d after Reset", bank.Branches)
	}
	g2 := &lcg{s: 31}
	for i := 0; i < 5000; i++ {
		id, taken := int(g2.next()%512), g2.next()&1 == 0
		bank.Observe(id, taken)
		fresh.Observe(id, taken)
	}
	for i := 0; i < bank.Len(); i++ {
		if bank.MispredictsOf(i) != fresh.MispredictsOf(i) {
			t.Errorf("%s: reset bank %d mispredicts, fresh %d",
				bank.Name(i), bank.MispredictsOf(i), fresh.MispredictsOf(i))
		}
	}
}

func TestBankNonPowerOfTwo(t *testing.T) {
	bank := NewBank([]Spec{{Bits: 2, Entries: 100}})
	ref := NewBimodal(2, 100)
	g := &lcg{s: 5}
	for i := 0; i < 50000; i++ {
		id, taken := int(g.next()%1000), g.next()&1 == 0
		bank.Observe(id, taken)
		ref.Observe(id, taken)
	}
	if bank.MispredictsOf(0) != ref.Mispredicts {
		t.Errorf("bank %d mispredicts, bimodal %d", bank.MispredictsOf(0), ref.Mispredicts)
	}
}

func TestTable6SpecsShape(t *testing.T) {
	specs := Table6Specs()
	if len(specs) != 14 {
		t.Fatalf("%d specs, want 14", len(specs))
	}
	bank := NewBank(specs)
	if bank.Name(0) != "(0,1)x32" || bank.Name(13) != "(0,2)x2048" {
		t.Errorf("unexpected endpoints %q, %q", bank.Name(0), bank.Name(13))
	}
}
