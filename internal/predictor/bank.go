package predictor

import "fmt"

// Bank simulates a battery of bimodal predictors over one branch stream
// in a single pass. Where sim.Run used to fan every executed branch out
// to 14 separate Bimodal.Observe calls (one per Table-6 configuration),
// a Bank holds every counter table as a flat byte slice carved from one
// backing array and updates all of them in one tight loop per
// (branchID, taken) event. The update rule is bit-for-bit the Bimodal
// one, so mispredict counts are identical; Bimodal stays as the
// reference implementation and the one-predictor API.
type Bank struct {
	preds []bankPred

	// Branches is the number of events observed — the same for every
	// predictor in the bank.
	Branches uint64
}

// bankPred is one predictor's configuration and state inside a Bank.
type bankPred struct {
	name    string
	entries int
	mask    uint32 // entries-1 when entries is a power of two, else 0
	pow2    bool
	thresh  uint8
	max     uint8
	init    uint8
	table   []uint8

	mispredicts uint64
}

// Spec describes one predictor of a Bank: a (0,Bits) predictor with
// Entries table entries, exactly as NewBimodal takes them.
type Spec struct {
	Bits    int
	Entries int
}

// Table6Specs is the (0,1)/(0,2) × 32..2048 battery of the paper's
// Table 6, in presentation order.
func Table6Specs() []Spec {
	var out []Spec
	for _, bits := range []int{1, 2} {
		for entries := 32; entries <= 2048; entries *= 2 {
			out = append(out, Spec{Bits: bits, Entries: entries})
		}
	}
	return out
}

// NewBank builds a bank from the given specs. Counter semantics match
// NewBimodal: width 1..8 bits, counters start weakly not taken.
func NewBank(specs []Spec) *Bank {
	total := 0
	for _, s := range specs {
		if s.Bits < 1 || s.Bits > 8 {
			panic(fmt.Sprintf("predictor: counter width %d out of range", s.Bits))
		}
		if s.Entries <= 0 {
			panic("predictor: table must have at least one entry")
		}
		total += s.Entries
	}
	b := &Bank{preds: make([]bankPred, len(specs))}
	backing := make([]uint8, total)
	off := 0
	for i, s := range specs {
		max := uint8(1<<s.Bits - 1)
		thresh := uint8(1 << (s.Bits - 1))
		p := &b.preds[i]
		p.name = fmt.Sprintf("(0,%d)x%d", s.Bits, s.Entries)
		p.entries = s.Entries
		p.pow2 = s.Entries&(s.Entries-1) == 0
		if p.pow2 {
			p.mask = uint32(s.Entries - 1)
		}
		p.thresh = thresh
		p.max = max
		if s.Bits > 1 {
			p.init = thresh - 1 // weakly not taken
		}
		p.table = backing[off : off+s.Entries : off+s.Entries]
		off += s.Entries
	}
	b.Reset()
	return b
}

// NewTable6Bank builds the full Table-6 sweep bank.
func NewTable6Bank() *Bank { return NewBank(Table6Specs()) }

// Len reports how many predictors the bank simulates.
func (b *Bank) Len() int { return len(b.preds) }

// Name identifies predictor i, e.g. "(0,2)x2048".
func (b *Bank) Name(i int) string { return b.preds[i].name }

// MispredictsOf reports predictor i's mispredicted branches.
func (b *Bank) MispredictsOf(i int) uint64 { return b.preds[i].mispredicts }

// Mispredicts returns every predictor's mispredict count keyed by name —
// the map sim.Measurement carries.
func (b *Bank) Mispredicts() map[string]uint64 {
	out := make(map[string]uint64, len(b.preds))
	for i := range b.preds {
		out[b.preds[i].name] = b.preds[i].mispredicts
	}
	return out
}

// Observe records one executed branch in every predictor of the bank.
// The hot path: branch IDs from linearization are dense non-negative
// ints and every Table-6 size is a power of two, so indexing is a mask;
// the general case falls back to Bimodal's modulo rule.
func (b *Bank) Observe(id int, taken bool) {
	b.Branches++
	if id >= 0 {
		u := uint32(id)
		for i := range b.preds {
			p := &b.preds[i]
			var idx uint32
			if p.pow2 {
				idx = u & p.mask
			} else {
				idx = u % uint32(p.entries)
			}
			ctr := p.table[idx]
			if (ctr >= p.thresh) != taken {
				p.mispredicts++
			}
			if taken {
				if ctr < p.max {
					p.table[idx] = ctr + 1
				}
			} else if ctr > 0 {
				p.table[idx] = ctr - 1
			}
		}
		return
	}
	for i := range b.preds {
		p := &b.preds[i]
		idx := id % p.entries
		if idx < 0 {
			idx += p.entries
		}
		ctr := p.table[idx]
		if (ctr >= p.thresh) != taken {
			p.mispredicts++
		}
		if taken {
			if ctr < p.max {
				p.table[idx] = ctr + 1
			}
		} else if ctr > 0 {
			p.table[idx] = ctr - 1
		}
	}
}

// Reset restores initial counters and clears counts.
func (b *Bank) Reset() {
	b.Branches = 0
	for i := range b.preds {
		p := &b.preds[i]
		p.mispredicts = 0
		for j := range p.table {
			p.table[j] = p.init
		}
	}
}
