// Package predictor implements the dynamic branch predictors of the
// paper's evaluation: (m,n) predictors with m=0, i.e. per-branch tables of
// n-bit saturating counters indexed by branch identity. Table 5 uses a
// (0,2) predictor with 2048 entries (the SPARC Ultra I's); Table 6 sweeps
// (0,1) and (0,2) predictors from 32 to 2048 entries.
package predictor

import "fmt"

// Bimodal is a (0,n) predictor: a table of n-bit saturating up/down
// counters indexed by branch ID modulo the table size. Prediction is
// taken when the counter is in the upper half of its range.
type Bimodal struct {
	name    string
	bits    int
	entries int
	table   []uint8
	max     uint8
	thresh  uint8

	Mispredicts uint64
	Branches    uint64
}

// NewBimodal builds a (0,bits) predictor with the given number of table
// entries. Counters start at the weakly-not-taken value.
func NewBimodal(bits, entries int) *Bimodal {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("predictor: counter width %d out of range", bits))
	}
	if entries <= 0 {
		panic("predictor: table must have at least one entry")
	}
	max := uint8(1<<bits - 1)
	b := &Bimodal{
		name:    fmt.Sprintf("(0,%d)x%d", bits, entries),
		bits:    bits,
		entries: entries,
		table:   make([]uint8, entries),
		max:     max,
		thresh:  uint8(1 << (bits - 1)),
	}
	if bits > 1 {
		for i := range b.table {
			b.table[i] = b.thresh - 1 // weakly not taken
		}
	}
	return b
}

// Name identifies the configuration, e.g. "(0,2)x2048".
func (b *Bimodal) Name() string { return b.name }

// Entries reports the table size.
func (b *Bimodal) Entries() int { return b.entries }

// Bits reports the counter width.
func (b *Bimodal) Bits() int { return b.bits }

// Observe records one executed branch: it predicts, updates the counter,
// and returns whether the prediction was correct.
func (b *Bimodal) Observe(id int, taken bool) bool {
	idx := id % b.entries
	if idx < 0 {
		idx += b.entries
	}
	ctr := b.table[idx]
	predictTaken := ctr >= b.thresh
	if taken && ctr < b.max {
		b.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.Branches++
	correct := predictTaken == taken
	if !correct {
		b.Mispredicts++
	}
	return correct
}

// Reset clears counts and counters.
func (b *Bimodal) Reset() {
	for i := range b.table {
		if b.bits > 1 {
			b.table[i] = b.thresh - 1
		} else {
			b.table[i] = 0
		}
	}
	b.Mispredicts = 0
	b.Branches = 0
}
