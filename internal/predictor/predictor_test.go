package predictor

import (
	"math/rand"
	"testing"
)

func TestBimodal2BitWarmup(t *testing.T) {
	p := NewBimodal(2, 16)
	// Counters start weakly-not-taken; the first taken branch is a
	// misprediction, the second is predicted correctly.
	if correct := p.Observe(0, true); correct {
		t.Error("first taken branch should mispredict from weakly-not-taken")
	}
	if correct := p.Observe(0, true); !correct {
		t.Error("second taken branch should be predicted")
	}
	if p.Branches != 2 || p.Mispredicts != 1 {
		t.Errorf("counts = %d/%d, want 2/1", p.Branches, p.Mispredicts)
	}
}

func TestBimodal2BitHysteresis(t *testing.T) {
	p := NewBimodal(2, 16)
	for i := 0; i < 10; i++ {
		p.Observe(5, true)
	}
	// One not-taken blip must not flip the prediction.
	p.Observe(5, false)
	if correct := p.Observe(5, true); !correct {
		t.Error("2-bit counter lost its bias after a single blip")
	}
}

func TestBimodal1BitFlipsImmediately(t *testing.T) {
	p := NewBimodal(1, 16)
	p.Observe(5, true)  // mispredict, counter -> 1
	p.Observe(5, true)  // correct
	p.Observe(5, false) // mispredict, counter -> 0
	if correct := p.Observe(5, true); correct {
		t.Error("1-bit counter should have flipped to not-taken")
	}
}

func TestAliasingBySize(t *testing.T) {
	// Branches 0 and 8 alias in an 8-entry table but not in a 16-entry
	// one; with opposite outcomes the small table must mispredict more.
	small := NewBimodal(2, 8)
	big := NewBimodal(2, 16)
	for i := 0; i < 200; i++ {
		for _, p := range []*Bimodal{small, big} {
			p.Observe(0, true)
			p.Observe(8, false)
		}
	}
	if small.Mispredicts <= big.Mispredicts {
		t.Errorf("aliasing not visible: small=%d big=%d", small.Mispredicts, big.Mispredicts)
	}
	if big.Mispredicts > 4 {
		t.Errorf("big table should track both branches nearly perfectly, got %d", big.Mispredicts)
	}
}

func TestAlternatingWorstCase(t *testing.T) {
	// Strict alternation defeats a 1-bit counter completely (after
	// warmup every branch mispredicts) but a 2-bit counter gets ~50%.
	one := NewBimodal(1, 4)
	two := NewBimodal(2, 4)
	taken := false
	for i := 0; i < 1000; i++ {
		one.Observe(1, taken)
		two.Observe(1, taken)
		taken = !taken
	}
	if one.Mispredicts < 990 {
		t.Errorf("1-bit on alternation: %d mispredicts, want ~1000", one.Mispredicts)
	}
	if two.Mispredicts < 400 || two.Mispredicts > 600 {
		t.Errorf("2-bit on alternation: %d mispredicts, want ~500", two.Mispredicts)
	}
}

func TestBiasedBranchAccuracy(t *testing.T) {
	p := NewBimodal(2, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		p.Observe(i%32, rng.Intn(100) < 95) // 95% taken
	}
	rate := float64(p.Mispredicts) / float64(p.Branches)
	if rate > 0.12 {
		t.Errorf("misprediction rate %.3f on 95%%-biased branches, want < 0.12", rate)
	}
}

func TestResetAndName(t *testing.T) {
	p := NewBimodal(2, 2048)
	if p.Name() != "(0,2)x2048" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Bits() != 2 || p.Entries() != 2048 {
		t.Error("accessors wrong")
	}
	p.Observe(1, true)
	p.Reset()
	if p.Branches != 0 || p.Mispredicts != 0 {
		t.Error("Reset did not clear counts")
	}
	if correct := p.Observe(1, true); correct {
		t.Error("Reset did not clear counters")
	}
}

func TestNegativeIDsWrapSafely(t *testing.T) {
	p := NewBimodal(2, 8)
	p.Observe(-3, true) // must not panic
	if p.Branches != 1 {
		t.Error("negative ID not counted")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewBimodal(0, 8) },
		func() { NewBimodal(9, 8) },
		func() { NewBimodal(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			bad()
		}()
	}
}
