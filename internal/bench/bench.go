// Package bench regenerates the paper's evaluation: Tables 3-8 and
// Figures 11-13. Each experiment builds the 17 workloads under the
// relevant switch heuristic set, measures baseline and reordered
// executables on the test inputs, and renders rows shaped like the
// paper's.
//
// Build+measure jobs run through Engine: a bounded worker pool with a
// per-(workload, options) memo cache, so every table, figure and the
// ablation study share one set of builds, results aggregate in roster
// order regardless of completion order, and the first failure cancels
// the rest.
package bench

import (
	"context"
	"fmt"
	"io"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/profile"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// TrainInput returns the input a build under opts trains on: the
// workload's training input normally, or the test input itself when the
// profile configuration asks for no train/test drift — the profile
// study's "how good could a perfectly fresh profile be" arm.
func TrainInput(w workload.Workload, opts pipeline.Options) []byte {
	if opts.Profile.Drift == profile.DriftNone {
		return w.Test()
	}
	return w.Train()
}

// SeqStat is one sequence's outcome in serializable form; see
// store.SeqStat.
type SeqStat = store.SeqStat

// ProgramRun is one workload built under one configuration and measured
// on its test input. Everything the tables and figures consume lives in
// the measurement and summary fields, so a run round-trips through the
// disk store and shard exports; Build carries the compiled programs only
// for runs produced in this process.
type ProgramRun struct {
	Workload workload.Workload
	Set      lower.HeuristicSet
	Opts     pipeline.Options
	// Build is nil for runs loaded from the disk store or a merged
	// shard: the compiled programs are not persisted.
	Build *pipeline.BuildResult
	Base  *sim.Measurement
	Reord *sim.Measurement

	StaticBase  int64
	StaticReord int64

	// Seqs records every detected sequence's outcome in detection order.
	Seqs []SeqStat
}

// PctChange returns 100*(after/before - 1).
func PctChange(before, after uint64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (float64(after)/float64(before) - 1)
}

// Run builds and measures one workload under one heuristic set.
func Run(w workload.Workload, set lower.HeuristicSet) (*ProgramRun, error) {
	return RunOpts(w, BaseOptions(set))
}

// RunOpts builds and measures one workload under a full pipeline
// configuration (ablation variants and the Section 10 extension
// included), using the monolithic pipeline.Build.
func RunOpts(w workload.Workload, opts pipeline.Options) (*ProgramRun, error) {
	b, err := pipeline.Build(w.Source, TrainInput(w, opts), opts)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v): %w", w.Name, opts.Switch, err)
	}
	return measureBuild(w, opts, b, sim.Options{})
}

// RunStaged is RunOpts through a stage cache: the frontend and training
// stages are shared with every other build of the same configuration,
// and only the finalize stage runs per variant. Output is byte-identical
// to RunOpts.
func RunStaged(cache *pipeline.StageCache, w workload.Workload, opts pipeline.Options) (*ProgramRun, error) {
	return RunStagedWith(cache, w, opts, sim.Options{})
}

// RunStagedWith is RunStaged with explicit measurement-engine options
// (e.g. superinstruction fusion off). Measured results are identical
// for any mo; only wall-clock and the Fusion report change.
func RunStagedWith(cache *pipeline.StageCache, w workload.Workload, opts pipeline.Options, mo sim.Options) (*ProgramRun, error) {
	b, err := cache.Build(w.Source, TrainInput(w, opts), opts)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v): %w", w.Name, opts.Switch, err)
	}
	return measureBuild(w, opts, b, mo)
}

// measureBuild runs both executables of a finished build on the test
// input and assembles the ProgramRun every table and figure consumes.
func measureBuild(w workload.Workload, opts pipeline.Options, b *pipeline.BuildResult, mo sim.Options) (*ProgramRun, error) {
	set := opts.Switch
	test := w.Test()
	base, err := sim.RunWith(b.Baseline, test, nil, mo)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v) baseline: %w", w.Name, set, err)
	}
	reord, err := sim.RunWith(b.Reordered, test, nil, mo)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v) reordered: %w", w.Name, set, err)
	}
	if base.Output != reord.Output || base.Ret != reord.Ret {
		return nil, fmt.Errorf("%s (set %v): reordered output differs from baseline", w.Name, set)
	}
	const ijmpInsts = 3
	seqs := make([]SeqStat, len(b.Results))
	for i, res := range b.Results {
		seqs[i] = SeqStat{
			Applied:      res.Applied,
			OrigBranches: res.OrigBranches,
			NewBranches:  res.NewBranches,
			Default:      -1,
		}
		// The selected ordering is only meaningful for applied
		// sequences; a skipped one would record the zero Ordering,
		// whose default target of 0 reads as a real arm.
		if res.Applied {
			seqs[i].Order = append([]int(nil), res.Ordering.Explicit...)
			seqs[i].Omitted = append([]int(nil), res.Ordering.Omitted...)
			seqs[i].Default = res.Ordering.DefaultTarget
		}
	}
	return &ProgramRun{
		Workload:    w,
		Set:         set,
		Opts:        opts,
		Build:       b,
		Base:        base,
		Reord:       reord,
		StaticBase:  pipeline.StaticInsts(b.Baseline, ijmpInsts),
		StaticReord: pipeline.StaticInsts(b.Reordered, ijmpInsts),
		Seqs:        seqs,
	}, nil
}

// Suite holds every (heuristic set × workload) run; tables and figures
// are derived from it without re-running anything.
type Suite struct {
	Runs map[lower.HeuristicSet][]*ProgramRun
}

// AllRuns returns every run of the suite in deterministic matrix order
// (heuristic sets in presentation order, workloads in roster order) —
// the same order SuiteJobs enumerates.
func (s *Suite) AllRuns() []*ProgramRun {
	var out []*ProgramRun
	for _, set := range Sets() {
		out = append(out, s.Runs[set]...)
	}
	return out
}

// Sets lists the heuristic sets in presentation order.
func Sets() []lower.HeuristicSet {
	return []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
}

// RunSuite executes the full evaluation on a GOMAXPROCS-wide worker pool
// (use NewEngine directly to pick the parallelism or share the cache with
// other experiments). Progress lines go to progress when non-nil.
func RunSuite(progress io.Writer) (*Suite, error) {
	return NewEngine(0, progress).Suite(context.Background())
}

// TotalSeqs reports how many reorderable sequences were detected.
func (r *ProgramRun) TotalSeqs() int { return len(r.Seqs) }

// ReorderedSeqs reports how many sequences were actually reordered.
func (r *ProgramRun) ReorderedSeqs() int {
	n := 0
	for _, s := range r.Seqs {
		if s.Applied {
			n++
		}
	}
	return n
}

// AppliedSeqs returns the stats of the sequences that were reordered.
func (r *ProgramRun) AppliedSeqs() []SeqStat {
	var out []SeqStat
	for _, s := range r.Seqs {
		if s.Applied {
			out = append(out, s)
		}
	}
	return out
}

// Record converts the run to its serializable form for the disk store,
// shard exports, and the -json dump.
func (r *ProgramRun) Record() *store.Record {
	return &store.Record{
		Workload:    r.Workload.Name,
		Set:         int(r.Set),
		Opts:        r.Opts,
		Base:        store.FromSim(r.Base),
		Reord:       store.FromSim(r.Reord),
		StaticBase:  r.StaticBase,
		StaticReord: r.StaticReord,
		Seqs:        append([]SeqStat(nil), r.Seqs...),
	}
}

// RunFromRecord reconstitutes a run for workload w from its serialized
// form. Build is nil; every measurement and summary a table or figure
// consumes is restored exactly.
func RunFromRecord(rec *store.Record, w workload.Workload) (*ProgramRun, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if rec.Workload != w.Name {
		return nil, fmt.Errorf("bench: record is for workload %q, not %q", rec.Workload, w.Name)
	}
	return &ProgramRun{
		Workload:    w,
		Set:         lower.HeuristicSet(rec.Set),
		Opts:        rec.Opts,
		Base:        rec.Base.Sim(),
		Reord:       rec.Reord.Sim(),
		StaticBase:  rec.StaticBase,
		StaticReord: rec.StaticReord,
		Seqs:        append([]SeqStat(nil), rec.Seqs...),
	}, nil
}

// Records converts runs to their serializable form, preserving order.
func Records(runs []*ProgramRun) []*store.Record {
	out := make([]*store.Record, len(runs))
	for i, r := range runs {
		out[i] = r.Record()
	}
	return out
}
