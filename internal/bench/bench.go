// Package bench regenerates the paper's evaluation: Tables 3-8 and
// Figures 11-13. Each experiment builds the 17 workloads under the
// relevant switch heuristic set, measures baseline and reordered
// executables on the test inputs, and renders rows shaped like the
// paper's.
//
// Build+measure jobs run through Engine: a bounded worker pool with a
// per-(workload, options) memo cache, so every table, figure and the
// ablation study share one set of builds, results aggregate in roster
// order regardless of completion order, and the first failure cancels
// the rest.
package bench

import (
	"context"
	"fmt"
	"io"

	"branchreorder/internal/core"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// ProgramRun is one workload built under one configuration and measured
// on its test input.
type ProgramRun struct {
	Workload workload.Workload
	Set      lower.HeuristicSet
	Opts     pipeline.Options
	Build    *pipeline.BuildResult
	Base     *sim.Measurement
	Reord    *sim.Measurement

	StaticBase  int64
	StaticReord int64
}

// PctChange returns 100*(after/before - 1).
func PctChange(before, after uint64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (float64(after)/float64(before) - 1)
}

// Run builds and measures one workload under one heuristic set.
func Run(w workload.Workload, set lower.HeuristicSet) (*ProgramRun, error) {
	return RunOpts(w, BaseOptions(set))
}

// RunOpts builds and measures one workload under a full pipeline
// configuration (ablation variants and the Section 10 extension included).
func RunOpts(w workload.Workload, opts pipeline.Options) (*ProgramRun, error) {
	set := opts.Switch
	b, err := pipeline.Build(w.Source, w.Train(), opts)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v): %w", w.Name, set, err)
	}
	test := w.Test()
	base, err := sim.Run(b.Baseline, test, nil)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v) baseline: %w", w.Name, set, err)
	}
	reord, err := sim.Run(b.Reordered, test, nil)
	if err != nil {
		return nil, fmt.Errorf("%s (set %v) reordered: %w", w.Name, set, err)
	}
	if base.Output != reord.Output || base.Ret != reord.Ret {
		return nil, fmt.Errorf("%s (set %v): reordered output differs from baseline", w.Name, set)
	}
	const ijmpInsts = 3
	return &ProgramRun{
		Workload:    w,
		Set:         set,
		Opts:        opts,
		Build:       b,
		Base:        base,
		Reord:       reord,
		StaticBase:  pipeline.StaticInsts(b.Baseline, ijmpInsts),
		StaticReord: pipeline.StaticInsts(b.Reordered, ijmpInsts),
	}, nil
}

// Suite holds every (heuristic set × workload) run; tables and figures
// are derived from it without re-running anything.
type Suite struct {
	Runs map[lower.HeuristicSet][]*ProgramRun
}

// Sets lists the heuristic sets in presentation order.
func Sets() []lower.HeuristicSet {
	return []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
}

// RunSuite executes the full evaluation on a GOMAXPROCS-wide worker pool
// (use NewEngine directly to pick the parallelism or share the cache with
// other experiments). Progress lines go to progress when non-nil.
func RunSuite(progress io.Writer) (*Suite, error) {
	return NewEngine(0, progress).Suite(context.Background())
}

// ReorderedSeqResults returns the per-sequence results that were applied.
func (r *ProgramRun) ReorderedSeqResults() []core.Result {
	var out []core.Result
	for _, res := range r.Build.Results {
		if res.Applied {
			out = append(out, res)
		}
	}
	return out
}
