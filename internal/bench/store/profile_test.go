package store

import (
	"strings"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/pipeline"
)

func sampleTrain() *pipeline.TrainProduct {
	return &pipeline.TrainProduct{
		SeqProfiles: map[int]*core.SeqProfile{
			0: {Counts: []uint64{3, 5, 2}, Total: 10},
		},
		OrSeqProfiles: map[int]*core.OrSeqProfile{
			1: {N: 2, Combos: []uint64{1, 2, 3, 4}, Total: 10},
		},
		NumSeqs:   1,
		NumOrSeqs: 1,
	}
}

func profileFP() string {
	return ProfileFingerprint("int main() { return 0; }", []byte("train"),
		pipeline.FrontendOptions{Optimize: true}, pipeline.DetectOptions{})
}

func TestProfileRecordRoundTrip(t *testing.T) {
	tp := sampleTrain()
	rec := FromTrain(tp)
	fp := profileFP()
	data, err := EncodeProfile(fp, rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProfile(data, fp)
	if err != nil {
		t.Fatal(err)
	}
	tp2 := back.Train()
	if tp2.NumSeqs != tp.NumSeqs || tp2.NumOrSeqs != tp.NumOrSeqs {
		t.Fatalf("counts lost: %+v", tp2)
	}
	sp := tp2.SeqProfiles[0]
	if sp == nil || sp.Total != 10 || len(sp.Counts) != 3 || sp.Counts[1] != 5 {
		t.Fatalf("seq profile lost: %+v", sp)
	}
	op := tp2.OrSeqProfiles[1]
	if op == nil || op.N != 2 || len(op.Combos) != 4 || op.Combos[3] != 4 {
		t.Fatalf("or-seq profile lost: %+v", op)
	}
}

func TestProfileRecordValidateRejects(t *testing.T) {
	cases := map[string]*ProfileRecord{
		"counts-dont-sum": {NumSeqs: 1, Seqs: []ProfileCounts{{ID: 0, Total: 9, Counts: []uint64{3, 5}}}},
		"too-many-seqs":   {NumSeqs: 0, Seqs: []ProfileCounts{{ID: 0, Total: 0}}},
		"combo-shape":     {NumOrSeqs: 1, OrSeqs: []OrProfileCounts{{ID: 0, N: 2, Total: 3, Combos: []uint64{1, 2}}}},
		"negative":        {NumSeqs: -1},
	}
	for name, rec := range cases {
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	var nilRec *ProfileRecord
	if err := nilRec.Validate(); err == nil {
		t.Error("nil record accepted")
	}
}

// Build and profile entries share the pool; kind must dispatch correctly
// and cross-kind decodes must fail.
func TestEntryKindDispatch(t *testing.T) {
	fp := profileFP()
	data, err := EncodeProfile(fp, FromTrain(sampleTrain()))
	if err != nil {
		t.Fatal(err)
	}
	kind, err := EntryKind(data)
	if err != nil || kind != KindProfile {
		t.Fatalf("EntryKind = %q, %v", kind, err)
	}
	if _, err := Decode(data, fp); err == nil {
		t.Error("build decoder accepted a profile entry")
	}
	if k, err := VerifyEntry(data, fp); err != nil || k != KindProfile {
		t.Errorf("VerifyEntry = %q, %v", k, err)
	}
	if _, err := VerifyEntry(data, strings.Repeat("0", 64)); err == nil {
		t.Error("VerifyEntry accepted a wrong fingerprint")
	}
}

func TestStoreProfilePutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := profileFP()
	if _, status := st.GetProfile(fp); status != Miss {
		t.Fatalf("empty store: %v", status)
	}
	rec := FromTrain(sampleTrain())
	if err := st.PutProfile(fp, rec); err != nil {
		t.Fatal(err)
	}
	back, status := st.GetProfile(fp)
	if status != Hit || back.NumSeqs != 1 {
		t.Fatalf("get after put: %v %+v", status, back)
	}
	// GetRaw serves the canonical bytes of either kind.
	raw, status := st.GetRaw(fp)
	if status != Hit {
		t.Fatalf("GetRaw: %v", status)
	}
	if _, err := DecodeProfile(raw, fp); err != nil {
		t.Fatalf("raw bytes do not decode: %v", err)
	}
	// A build-kind Get on a profile entry must be Invalid, not a crash.
	if _, status := st.Get(fp); status != Invalid {
		t.Fatalf("build Get on profile entry: %v", status)
	}
}

// ProfileFingerprint must move with every input and ignore none.
func TestProfileFingerprintSensitivity(t *testing.T) {
	base := ProfileFingerprint("src", []byte("train"), pipeline.FrontendOptions{Optimize: true}, pipeline.DetectOptions{})
	variants := []string{
		ProfileFingerprint("src2", []byte("train"), pipeline.FrontendOptions{Optimize: true}, pipeline.DetectOptions{}),
		ProfileFingerprint("src", []byte("train2"), pipeline.FrontendOptions{Optimize: true}, pipeline.DetectOptions{}),
		ProfileFingerprint("src", []byte("train"), pipeline.FrontendOptions{Switch: 1, Optimize: true}, pipeline.DetectOptions{}),
		ProfileFingerprint("src", []byte("train"), pipeline.FrontendOptions{Optimize: false}, pipeline.DetectOptions{}),
		ProfileFingerprint("src", []byte("train"), pipeline.FrontendOptions{Optimize: true}, pipeline.DetectOptions{CommonSuccessor: true}),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides", i)
		}
		seen[v] = true
	}
}
