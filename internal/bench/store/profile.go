package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"branchreorder/internal/core"
	"branchreorder/internal/pipeline"
)

// Stage-2 training products as content-addressed store entries. A build
// result's fingerprint covers the full pipeline configuration, so a new
// TransformOptions combination always misses the whole-build tier — but
// its frontend and training run are identical to ones already paid for.
// Persisting the training product under its own (narrower) fingerprint
// lets warm disk and fleet caches skip the training run even when the
// whole build misses: only the cheap finalize stage re-runs.

// ProfileCounts is one range-condition sequence's training counts.
type ProfileCounts struct {
	ID     int      `json:"id"`
	Total  uint64   `json:"total"`
	Counts []uint64 `json:"counts"`
}

// OrProfileCounts is one common-successor sequence's combination counts.
type OrProfileCounts struct {
	ID     int      `json:"id"`
	N      int      `json:"n"`
	Total  uint64   `json:"total"`
	Combos []uint64 `json:"combos"`
}

// ProfileRecord is the serializable form of a pipeline.TrainProduct:
// the profile data the paper's Figure 2 stores between its two passes,
// content-addressed so any machine with the same source, training input
// and detection configuration can reuse it.
type ProfileRecord struct {
	NumSeqs   int               `json:"numSeqs"`
	NumOrSeqs int               `json:"numOrSeqs"`
	Seqs      []ProfileCounts   `json:"seqs,omitempty"`
	OrSeqs    []OrProfileCounts `json:"orSeqs,omitempty"`
}

// Validate rejects records that could not have come from a real
// training run.
func (r *ProfileRecord) Validate() error {
	switch {
	case r == nil:
		return errors.New("store: nil profile record")
	case r.NumSeqs < 0 || r.NumOrSeqs < 0:
		return errors.New("store: profile record with negative sequence counts")
	case len(r.Seqs) > r.NumSeqs || len(r.OrSeqs) > r.NumOrSeqs:
		return errors.New("store: profile record counts more sequences than detected")
	}
	for _, s := range r.Seqs {
		var sum uint64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Total {
			return fmt.Errorf("store: profile record sequence %d: counts sum %d != total %d", s.ID, sum, s.Total)
		}
	}
	for _, s := range r.OrSeqs {
		if s.N < 0 || s.N > 30 || 1<<uint(s.N) != len(s.Combos) {
			return fmt.Errorf("store: profile record or-sequence %d: %d combos for n=%d", s.ID, len(s.Combos), s.N)
		}
		var sum uint64
		for _, c := range s.Combos {
			sum += c
		}
		if sum != s.Total {
			return fmt.Errorf("store: profile record or-sequence %d: combos sum %d != total %d", s.ID, sum, s.Total)
		}
	}
	return nil
}

// FromTrain converts a training product to its serializable form.
// Sequences are emitted in ascending ID order so identical products
// encode to identical bytes.
func FromTrain(tp *pipeline.TrainProduct) *ProfileRecord {
	r := &ProfileRecord{NumSeqs: tp.NumSeqs, NumOrSeqs: tp.NumOrSeqs}
	for id := 0; id < tp.NumSeqs+tp.NumOrSeqs; id++ {
		if sp, ok := tp.SeqProfiles[id]; ok {
			r.Seqs = append(r.Seqs, ProfileCounts{
				ID:     id,
				Total:  sp.Total,
				Counts: append([]uint64(nil), sp.Counts...),
			})
		}
		if sp, ok := tp.OrSeqProfiles[id]; ok {
			r.OrSeqs = append(r.OrSeqs, OrProfileCounts{
				ID:     id,
				N:      sp.N,
				Total:  sp.Total,
				Combos: append([]uint64(nil), sp.Combos...),
			})
		}
	}
	return r
}

// Train converts the record back to the form the finalize stage consumes.
func (r *ProfileRecord) Train() *pipeline.TrainProduct {
	tp := &pipeline.TrainProduct{
		SeqProfiles:   make(map[int]*core.SeqProfile, len(r.Seqs)),
		OrSeqProfiles: make(map[int]*core.OrSeqProfile, len(r.OrSeqs)),
		NumSeqs:       r.NumSeqs,
		NumOrSeqs:     r.NumOrSeqs,
	}
	for _, s := range r.Seqs {
		tp.SeqProfiles[s.ID] = &core.SeqProfile{
			Counts: append([]uint64(nil), s.Counts...),
			Total:  s.Total,
		}
	}
	for _, s := range r.OrSeqs {
		tp.OrSeqProfiles[s.ID] = &core.OrSeqProfile{
			N:      s.N,
			Combos: append([]uint64(nil), s.Combos...),
			Total:  s.Total,
		}
	}
	return tp
}

// ProfileFingerprint derives the content address of one stage-2 product:
// a SHA-256 over the schema version, an entry-kind tag (so profile and
// build entries can never collide), the workload source, the training
// input, and the stage-relevant option subsets. TransformOptions is
// deliberately absent — that is the whole point: every Transform variant
// of a configuration shares one training product.
func ProfileFingerprint(source string, train []byte, fo pipeline.FrontendOptions, d pipeline.DetectOptions) string {
	return fingerprintSections(
		section2{"kind", []byte(KindProfile)},
		section2{"source", []byte(source)},
		section2{"train", train},
		section2{"frontend", mustJSON(fo)},
		section2{"detect", mustJSON(d)},
	)
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Flat structs of ints and bools; Marshal cannot fail.
		panic(err)
	}
	return b
}

// EncodeProfile serializes rec as the profile entry keyed by fp.
func EncodeProfile(fp string, rec *ProfileRecord) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return encodeEnvelope(KindProfile, fp, rec)
}

// DecodeProfile parses one profile entry with the same contract as
// Decode: any malformed input is an error, never a panic, and callers
// treat errors as cache misses.
func DecodeProfile(data []byte, fp string) (*ProfileRecord, error) {
	payload, err := decodeEnvelope(data, KindProfile, fp)
	if err != nil {
		return nil, err
	}
	var rec ProfileRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// VerifyEntry fully validates an encoded entry of any known kind —
// framing, checksum, fingerprint, and payload shape — returning the
// entry's kind. It is the network store's serve/upload gate.
func VerifyEntry(data []byte, fp string) (string, error) {
	kind, err := EntryKind(data)
	if err != nil {
		return "", err
	}
	switch kind {
	case KindBuild:
		_, err = Decode(data, fp)
	case KindProfile:
		_, err = DecodeProfile(data, fp)
	case KindMerged:
		_, err = DecodeMerged(data, fp)
	default:
		err = fmt.Errorf("store: unknown entry kind %q", kind)
	}
	return kind, err
}

// GetRaw returns the verified raw bytes of the entry for fp, whatever
// its kind; same miss/invalid contract as Get. Entries are written
// canonically encoded, so the bytes can be served as-is.
func (s *Store) GetRaw(fp string) ([]byte, Status) {
	data, st := s.read(fp)
	if st != Hit {
		return nil, st
	}
	if _, err := VerifyEntry(data, fp); err != nil {
		return nil, Invalid
	}
	return data, Hit
}

// GetProfile loads the profile entry for fp; same contract as Get.
func (s *Store) GetProfile(fp string) (*ProfileRecord, Status) {
	data, st := s.read(fp)
	if st != Hit {
		return nil, st
	}
	rec, err := DecodeProfile(data, fp)
	if err != nil {
		return nil, Invalid
	}
	return rec, Hit
}

// PutProfile writes the profile entry for fp with Put's atomicity.
func (s *Store) PutProfile(fp string, rec *ProfileRecord) error {
	data, err := EncodeProfile(fp, rec)
	if err != nil {
		return err
	}
	return s.write(fp, data)
}
