package store

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// tmpOrphanAge is how old a put-*.tmp file must be before GC treats it
// as debris from a crashed writer rather than an in-flight Put.
const tmpOrphanAge = time.Hour

// GCResult summarizes one collection pass.
type GCResult struct {
	Scanned int   // entries examined
	Evicted int   // entries removed
	Bytes   int64 // bytes retained after collection
	Freed   int64 // bytes reclaimed
}

// GC evicts stale entries: everything older than maxAge goes first, then
// the least-recently-used entries (by mtime — Touch refreshes it on a
// hit) until the store fits in maxBytes. A zero or negative bound
// disables that criterion, so GC(0, 0) only sweeps orphaned temp files.
// Eviction races are benign: an entry is immutable once written, so a
// concurrent reader either got it before the unlink or misses and
// rebuilds.
func (s *Store) GC(maxAge time.Duration, maxBytes int64) (GCResult, error) {
	type entry struct {
		path  string
		mtime time.Time
		size  int64
	}
	var (
		entries []entry
		total   int64
		now     = time.Now()
	)
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A vanished file just means a concurrent GC or writer won.
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp") {
			if info, ierr := d.Info(); ierr == nil && now.Sub(info.ModTime()) > tmpOrphanAge {
				os.Remove(path)
			}
			return nil
		}
		if !strings.HasSuffix(name, ".json") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		entries = append(entries, entry{path: path, mtime: info.ModTime(), size: info.Size()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return GCResult{}, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })

	res := GCResult{Scanned: len(entries)}
	var firstErr error
	for _, e := range entries {
		stale := maxAge > 0 && now.Sub(e.mtime) > maxAge
		over := maxBytes > 0 && total > maxBytes
		if !stale && !over {
			// Entries are oldest-first, so nothing later is stale either,
			// and the size bound only loosens as we evict.
			break
		}
		if rerr := os.Remove(e.path); rerr != nil && !os.IsNotExist(rerr) {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		res.Evicted++
		res.Freed += e.size
		total -= e.size
	}
	res.Bytes = total
	return res, firstErr
}

// Touch marks fp's entry as recently used so LRU eviction spares it.
// Errors are ignored: a missing entry means a concurrent eviction won,
// and losing one touch costs at worst one early eviction.
func (s *Store) Touch(fp string) {
	if len(fp) < 2 {
		return
	}
	now := time.Now()
	os.Chtimes(s.path(fp), now, now)
}
