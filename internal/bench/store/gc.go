package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// tmpOrphanAge is how old a put-*.tmp file must be before GC treats it
// as debris from a crashed writer rather than an in-flight Put.
const tmpOrphanAge = time.Hour

// GCResult summarizes one collection pass.
type GCResult struct {
	Scanned int   // entries examined
	Evicted int   // entries removed
	Bytes   int64 // bytes retained after collection
	Freed   int64 // bytes reclaimed
}

// GCPolicy configures a collection pass. Profile-kind entries (stage-2
// profiles and merged profiles) are policed separately from build
// results: they are tiny but represent training runs the whole fleet
// reuses for a long time, so the result LRU bytes budget must not churn
// them out. A zero or negative bound disables that criterion.
type GCPolicy struct {
	// MaxAge evicts build-result entries older than this.
	MaxAge time.Duration
	// MaxBytes is the LRU bytes budget for build-result entries (by
	// mtime — Touch refreshes it on a hit). Profile-kind entries neither
	// count against nor are evicted by it.
	MaxBytes int64
	// ProfileMaxAge evicts profile-kind entries older than this — the
	// only bound that applies to them, typically much longer than MaxAge.
	ProfileMaxAge time.Duration
}

// GC evicts stale entries with a single age bound for every kind and
// the bytes budget for results — the pre-policy behaviour, kept as the
// simple entry point. Eviction races are benign: an entry is immutable
// once written, so a concurrent reader either got it before the unlink
// or misses and rebuilds. GC(0, 0) only sweeps orphaned temp files.
func (s *Store) GC(maxAge time.Duration, maxBytes int64) (GCResult, error) {
	return s.GCWith(GCPolicy{MaxAge: maxAge, MaxBytes: maxBytes, ProfileMaxAge: maxAge})
}

// GCWith runs one collection pass under the given policy.
func (s *Store) GCWith(p GCPolicy) (GCResult, error) {
	type entry struct {
		path    string
		mtime   time.Time
		size    int64
		profile bool
	}
	var (
		entries []entry
		total   int64 // build-result bytes, the budget MaxBytes polices
		kept    int64 // bytes of entries exempt from the budget
		now     = time.Now()
	)
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A vanished file just means a concurrent GC or writer won.
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp") {
			if info, ierr := d.Info(); ierr == nil && now.Sub(info.ModTime()) > tmpOrphanAge {
				os.Remove(path)
			}
			return nil
		}
		if !strings.HasSuffix(name, ".json") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		e := entry{path: path, mtime: info.ModTime(), size: info.Size(), profile: isProfileEntry(path)}
		entries = append(entries, e)
		if e.profile {
			kept += e.size
		} else {
			total += e.size
		}
		return nil
	})
	if err != nil {
		return GCResult{}, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })

	res := GCResult{Scanned: len(entries)}
	var firstErr error
	evict := func(e entry) {
		if rerr := os.Remove(e.path); rerr != nil && !os.IsNotExist(rerr) {
			if firstErr == nil {
				firstErr = rerr
			}
			return
		}
		res.Evicted++
		res.Freed += e.size
		if e.profile {
			kept -= e.size
		} else {
			total -= e.size
		}
	}
	for _, e := range entries {
		if e.profile {
			if p.ProfileMaxAge > 0 && now.Sub(e.mtime) > p.ProfileMaxAge {
				evict(e)
			}
			continue
		}
		stale := p.MaxAge > 0 && now.Sub(e.mtime) > p.MaxAge
		over := p.MaxBytes > 0 && total > p.MaxBytes
		if stale || over {
			// Entries are oldest-first, so once a result is neither stale
			// nor over budget no later result is either — but profile
			// entries interleave, so keep scanning rather than break.
			evict(e)
		}
	}
	res.Bytes = total + kept
	return res, firstErr
}

// profileHeadWindow bounds how much of an entry is read to classify its
// kind: the envelope leads with schema, then kind, so the tag (when
// present) always sits in the first few dozen bytes.
const profileHeadWindow = 256

// isProfileEntry reports whether the entry at path is a profile-kind
// record (stage-2 profile or merged profile) by scanning the head of
// its envelope for the kind tag. Build entries omit the field entirely.
// Unreadable or unrecognizable files classify as build entries, so
// corruption stays subject to the ordinary result bounds.
func isProfileEntry(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	head := make([]byte, profileHeadWindow)
	n, _ := io.ReadFull(f, head)
	f.Close()
	head = head[:n]
	i := strings.Index(string(head), `"kind": "`)
	if i < 0 {
		return false
	}
	rest := string(head[i+len(`"kind": "`):])
	end := strings.IndexByte(rest, '"')
	if end < 0 {
		return false
	}
	kind := rest[:end]
	return kind == KindProfile || kind == KindMerged
}

// Touch marks fp's entry as recently used so LRU eviction spares it.
// Errors are ignored: a missing entry means a concurrent eviction won,
// and losing one touch costs at worst one early eviction.
func (s *Store) Touch(fp string) {
	if len(fp) < 2 {
		return
	}
	now := time.Now()
	os.Chtimes(s.path(fp), now, now)
}
