package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"branchreorder/internal/pipeline"
)

// Cross-input merged profiles: the fleet's accumulated profile wisdom
// for one (source, frontend, detection) configuration. Each training
// input contributes its exact or sampled counts as one generation-
// stamped entry; consumers fold the contributions with exponential
// decay — a contribution's weight halves every HalfLife generations it
// falls behind the newest one — so old training inputs fade instead of
// dominating forever.
//
// Byte-stability is the design constraint: contributions are kept in
// canonical (train-digest-sorted) order, the fold uses integer
// power-of-two shifts rather than floating-point weights, and the
// record is bounded, so the same set of contributions encodes to the
// same bytes and folds to the same counts on every machine regardless
// of arrival order.

// MaxMergeContribs bounds a merged record. With HalfLife 1 an entry 8
// generations stale is attenuated 256x — effectively gone — so keeping
// more would only grow the record, not the signal. When full, the
// lowest-generation (stalest) contribution is dropped.
const MaxMergeContribs = 8

// MergedContribution is one training input's counts inside a merged
// record.
type MergedContribution struct {
	// TrainDigest content-addresses the training input (SHA-256 hex), so
	// re-training on the same input replaces its contribution instead of
	// double-counting it.
	TrainDigest string `json:"trainDigest"`
	// Generation orders contributions by recency: the newest
	// contribution of a record carries its highest generation. Decay is
	// computed from the distance to the maximum, so generations never
	// need renumbering.
	Generation int           `json:"generation"`
	Profile    ProfileRecord `json:"profile"`
}

// MergedRecord is the serializable merged profile for one
// configuration.
type MergedRecord struct {
	HalfLife int                  `json:"halfLife"`
	Contribs []MergedContribution `json:"contribs"`
}

// TrainDigest content-addresses a training input for contribution
// identity.
func TrainDigest(train []byte) string {
	sum := sha256.Sum256(train)
	return hex.EncodeToString(sum[:])
}

// Validate rejects records that could not have been produced by Merge.
func (r *MergedRecord) Validate() error {
	switch {
	case r == nil:
		return errors.New("store: nil merged record")
	case r.HalfLife < 1:
		return fmt.Errorf("store: merged record half-life %d < 1", r.HalfLife)
	case len(r.Contribs) == 0:
		return errors.New("store: merged record with no contributions")
	case len(r.Contribs) > MaxMergeContribs:
		return fmt.Errorf("store: merged record with %d contributions (max %d)", len(r.Contribs), MaxMergeContribs)
	}
	first := &r.Contribs[0].Profile
	// Count-array lengths must agree across contributions per sequence
	// ID, or the fold would index out of shape; the detection config in
	// the fingerprint guarantees this for honest writers, so a mismatch
	// is corruption or a hostile upload.
	seqLen := map[int]int{}
	orLen := map[int]int{}
	for i := range r.Contribs {
		c := &r.Contribs[i]
		if len(c.TrainDigest) != 64 {
			return fmt.Errorf("store: merged record contribution %d: bad train digest", i)
		}
		if i > 0 && c.TrainDigest <= r.Contribs[i-1].TrainDigest {
			return errors.New("store: merged record contributions not in canonical digest order")
		}
		if c.Generation < 1 {
			return fmt.Errorf("store: merged record contribution %d: generation %d < 1", i, c.Generation)
		}
		if err := c.Profile.Validate(); err != nil {
			return fmt.Errorf("store: merged record contribution %d: %w", i, err)
		}
		if c.Profile.NumSeqs != first.NumSeqs || c.Profile.NumOrSeqs != first.NumOrSeqs {
			return fmt.Errorf("store: merged record contribution %d: detection shape %d/%d, want %d/%d",
				i, c.Profile.NumSeqs, c.Profile.NumOrSeqs, first.NumSeqs, first.NumOrSeqs)
		}
		for _, s := range c.Profile.Seqs {
			if n, ok := seqLen[s.ID]; ok && n != len(s.Counts) {
				return fmt.Errorf("store: merged record: sequence %d count length varies across contributions", s.ID)
			}
			seqLen[s.ID] = len(s.Counts)
		}
		for _, s := range c.Profile.OrSeqs {
			if n, ok := orLen[s.ID]; ok && n != len(s.Combos) {
				return fmt.Errorf("store: merged record: or-sequence %d combo length varies across contributions", s.ID)
			}
			orLen[s.ID] = len(s.Combos)
		}
	}
	return nil
}

// Merge folds one training input's counts into the record: a
// contribution with the same train digest is replaced (and promoted to
// the newest generation — re-training on an input refreshes it), a new
// digest is inserted in canonical order, and the stalest contribution
// is dropped when the record is full. The result is independent of
// arrival order given the same final generation assignment.
func (r *MergedRecord) Merge(digest string, p *ProfileRecord) {
	gen := 0
	for i := range r.Contribs {
		if r.Contribs[i].Generation > gen {
			gen = r.Contribs[i].Generation
		}
	}
	gen++
	for i := range r.Contribs {
		if r.Contribs[i].TrainDigest == digest {
			r.Contribs[i].Generation = gen
			r.Contribs[i].Profile = *p
			return
		}
	}
	r.Contribs = append(r.Contribs, MergedContribution{TrainDigest: digest, Generation: gen, Profile: *p})
	sort.Slice(r.Contribs, func(i, j int) bool { return r.Contribs[i].TrainDigest < r.Contribs[j].TrainDigest })
	if len(r.Contribs) > MaxMergeContribs {
		stalest := 0
		for i := range r.Contribs {
			if r.Contribs[i].Generation < r.Contribs[stalest].Generation {
				stalest = i
			}
		}
		r.Contribs = append(r.Contribs[:stalest], r.Contribs[stalest+1:]...)
	}
}

// Fold collapses the contributions into one training product with
// exponential decay: a contribution d = maxGen − generation behind the
// newest is attenuated by 2^(d/HalfLife) via integer right shifts, then
// the attenuated counts are summed per sequence. Totals are recomputed
// from the summed counts so the count/total invariant holds exactly.
// Contribution order cannot affect the result: addition commutes and
// each contribution's shift depends only on its own generation.
func (r *MergedRecord) Fold() *pipeline.TrainProduct {
	if len(r.Contribs) == 0 {
		return nil
	}
	shift := func(gen, maxGen int) uint {
		s := (maxGen - gen) / r.HalfLife
		if s > 63 {
			s = 63
		}
		if s < 0 {
			s = 0
		}
		return uint(s)
	}
	maxGen := 0
	for i := range r.Contribs {
		if g := r.Contribs[i].Generation; g > maxGen {
			maxGen = g
		}
	}
	acc := ProfileRecord{
		NumSeqs:   r.Contribs[0].Profile.NumSeqs,
		NumOrSeqs: r.Contribs[0].Profile.NumOrSeqs,
	}
	seqAt := map[int]int{}
	orAt := map[int]int{}
	for i := range r.Contribs {
		c := &r.Contribs[i]
		sh := shift(c.Generation, maxGen)
		for _, s := range c.Profile.Seqs {
			at, ok := seqAt[s.ID]
			if !ok {
				at = len(acc.Seqs)
				seqAt[s.ID] = at
				acc.Seqs = append(acc.Seqs, ProfileCounts{ID: s.ID, Counts: make([]uint64, len(s.Counts))})
			}
			dst := &acc.Seqs[at]
			for k, v := range s.Counts {
				dst.Counts[k] += v >> sh
				dst.Total += v >> sh
			}
		}
		for _, s := range c.Profile.OrSeqs {
			at, ok := orAt[s.ID]
			if !ok {
				at = len(acc.OrSeqs)
				orAt[s.ID] = at
				acc.OrSeqs = append(acc.OrSeqs, OrProfileCounts{ID: s.ID, N: s.N, Combos: make([]uint64, len(s.Combos))})
			}
			dst := &acc.OrSeqs[at]
			for k, v := range s.Combos {
				dst.Combos[k] += v >> sh
				dst.Total += v >> sh
			}
		}
	}
	// Contributions carry counts only for executed sequences, so the
	// accumulator's slices follow first-seen order; Train() rebuilds maps
	// where order is irrelevant, but sort for canonical shape anyway.
	sort.Slice(acc.Seqs, func(i, j int) bool { return acc.Seqs[i].ID < acc.Seqs[j].ID })
	sort.Slice(acc.OrSeqs, func(i, j int) bool { return acc.OrSeqs[i].ID < acc.OrSeqs[j].ID })
	return acc.Train()
}

// MergedFingerprint derives the content address of a configuration's
// merged profile. Unlike ProfileFingerprint the training input is
// deliberately absent — accumulating across training inputs is the
// record's purpose — and so is the drift axis (different drift choices
// feed different inputs to the same accumulator). The sampling mode,
// rate, seed and bias all stay in: sampled or biased contributions must
// never poison the exact-profile record.
func MergedFingerprint(source string, fo pipeline.FrontendOptions, d pipeline.DetectOptions) string {
	d.Profile.Drift = 0
	return fingerprintSections(
		section2{"kind", []byte(KindMerged)},
		section2{"source", []byte(source)},
		section2{"frontend", mustJSON(fo)},
		section2{"detect", mustJSON(d)},
	)
}

// EncodeMerged serializes rec as the merged-profile entry keyed by fp.
func EncodeMerged(fp string, rec *MergedRecord) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return encodeEnvelope(KindMerged, fp, rec)
}

// DecodeMerged parses one merged-profile entry with the same contract
// as Decode: any malformed input is an error, never a panic, and
// callers treat errors as cache misses.
func DecodeMerged(data []byte, fp string) (*MergedRecord, error) {
	payload, err := decodeEnvelope(data, KindMerged, fp)
	if err != nil {
		return nil, err
	}
	var rec MergedRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// GetMerged loads the merged-profile entry for fp; same contract as Get.
func (s *Store) GetMerged(fp string) (*MergedRecord, Status) {
	data, st := s.read(fp)
	if st != Hit {
		return nil, st
	}
	rec, err := DecodeMerged(data, fp)
	if err != nil {
		return nil, Invalid
	}
	return rec, Hit
}

// PutMerged writes the merged-profile entry for fp with Put's atomicity.
func (s *Store) PutMerged(fp string, rec *MergedRecord) error {
	data, err := EncodeMerged(fp, rec)
	if err != nil {
		return err
	}
	return s.write(fp, data)
}
