package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"branchreorder/internal/interp"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/sim"
)

// SeqStat is the per-sequence outcome the static table and the
// sequence-length figures consume: whether the sequence was reordered,
// and its length in conditional branches before and after (NewBranches
// is 0 when the reordering was skipped).
type SeqStat struct {
	Applied      bool `json:"applied"`
	OrigBranches int  `json:"origBranches"`
	NewBranches  int  `json:"newBranches"`
	// The selected ordering (core.Ordering), recorded so the profile
	// quality study can compare a sampled/drifted build's selections
	// against the exact build's without re-deriving them: the explicit
	// test order (arm indices), the omitted arms, and the Figure-8
	// default-choice target (-1 when nothing is omitted).
	Order   []int `json:"order,omitempty"`
	Omitted []int `json:"omitted,omitempty"`
	Default int   `json:"default"`
}

// Measurement mirrors sim.Measurement with a lossless output encoding:
// JSON strings must be valid UTF-8, so program output travels as bytes
// (base64) and survives arbitrary content byte-for-byte.
type Measurement struct {
	Stats       interp.Stats      `json:"stats"`
	Output      []byte            `json:"output"`
	Ret         int64             `json:"ret"`
	Mispredicts map[string]uint64 `json:"mispredicts"`
	Cycles      map[string]uint64 `json:"cycles"`

	// Fusion describes the measuring engine's superinstruction fusion,
	// not the measured program — results are byte-identical with fusion
	// on or off, which is why records written before the field existed
	// (or with fusion off) remain valid without a schema bump.
	Fusion *interp.FusionStats `json:"fusion,omitempty"`

	// Compile describes the measuring engine's closure compilation,
	// absent unless the closure engine ran. Like Fusion it never
	// affects record validity: results are engine-independent.
	Compile *interp.CompileStats `json:"compile,omitempty"`
}

// FromSim converts a measurement to its serializable form.
func FromSim(m *sim.Measurement) *Measurement {
	if m == nil {
		return nil
	}
	out := &Measurement{
		Stats:       m.Stats,
		Output:      []byte(m.Output),
		Ret:         m.Ret,
		Mispredicts: m.Mispredicts,
		Cycles:      m.Cycles,
	}
	if m.Fusion.Ops > 0 {
		f := m.Fusion
		out.Fusion = &f
	}
	if m.Compile != (interp.CompileStats{}) {
		c := m.Compile
		out.Compile = &c
	}
	return out
}

// Sim converts the measurement back for the tables and figures.
func (m *Measurement) Sim() *sim.Measurement {
	out := &sim.Measurement{
		Stats:       m.Stats,
		Output:      string(m.Output),
		Ret:         m.Ret,
		Mispredicts: m.Mispredicts,
		Cycles:      m.Cycles,
	}
	if m.Fusion != nil {
		out.Fusion = *m.Fusion
	}
	if m.Compile != nil {
		out.Compile = *m.Compile
	}
	return out
}

// Record is the serializable form of one build+measure result: a
// bench.ProgramRun without the in-memory programs. Everything any table,
// figure or ablation row derives is here.
type Record struct {
	Workload    string           `json:"workload"`
	Set         int              `json:"set"`
	Opts        pipeline.Options `json:"options"`
	Base        *Measurement     `json:"base"`
	Reord       *Measurement     `json:"reord"`
	StaticBase  int64            `json:"staticBase"`
	StaticReord int64            `json:"staticReord"`
	Seqs        []SeqStat        `json:"seqs"`
}

// Validate rejects records that could not have come from a real run.
func (r *Record) Validate() error {
	switch {
	case r == nil:
		return errors.New("store: nil record")
	case r.Workload == "":
		return errors.New("store: record has no workload name")
	case r.Base == nil || r.Reord == nil:
		return errors.New("store: record missing measurements")
	case r.Set != int(r.Opts.Switch):
		return fmt.Errorf("store: record set %d disagrees with options set %d", r.Set, int(r.Opts.Switch))
	}
	return nil
}

// Entry kinds. Build records predate the kind field, so theirs encodes
// as the absent zero value and old entries decode unchanged.
const (
	KindBuild   = ""               // a whole build+measure Record
	KindProfile = "profile"        // a stage-2 ProfileRecord
	KindMerged  = "merged-profile" // a cross-input MergedRecord
)

// envelope is the on-disk framing of one store entry. Record is kept as
// raw JSON so the checksum covers the exact serialized payload.
type envelope struct {
	Schema      int             `json:"schema"`
	Kind        string          `json:"kind,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	Sum         string          `json:"sum"`
	Record      json.RawMessage `json:"record"`
}

// encodeEnvelope frames an already-validated payload as a store entry.
func encodeEnvelope(kind, fp string, payload interface{}) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(body)
	data, err := json.MarshalIndent(envelope{
		Schema:      SchemaVersion,
		Kind:        kind,
		Fingerprint: fp,
		Sum:         hex.EncodeToString(sum[:]),
		Record:      body,
	}, "", "\t")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return append(data, '\n'), nil
}

// decodeEnvelope verifies one store entry's framing — schema, kind,
// fingerprint, checksum — and returns the raw payload. Every malformed
// input yields an error, never a panic.
func decodeEnvelope(data []byte, kind, fp string) (json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if env.Schema != SchemaVersion {
		return nil, fmt.Errorf("store: entry schema %d, want %d", env.Schema, SchemaVersion)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("store: entry kind %q, want %q", env.Kind, kind)
	}
	if fp != "" && env.Fingerprint != fp {
		return nil, errors.New("store: entry fingerprint does not match its key")
	}
	// The checksum covers the compact payload: indentation inside the
	// envelope is cosmetic, content is not.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Record); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, errors.New("store: payload checksum mismatch")
	}
	return env.Record, nil
}

// EntryKind reports which kind of entry data frames, without validating
// its payload. Used by the network store's upload gate to pick the right
// validator.
func EntryKind(data []byte) (string, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return env.Kind, nil
}

// Encode serializes rec as the store entry keyed by fp.
func Encode(fp string, rec *Record) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return encodeEnvelope(KindBuild, fp, rec)
}

// Decode parses one store entry. fp, when non-empty, must match the
// fingerprint recorded inside the entry — a file renamed to the wrong
// key is not a usable result. Every malformed input yields an error,
// never a panic; callers treat any error as a cache miss.
func Decode(data []byte, fp string) (*Record, error) {
	payload, err := decodeEnvelope(data, KindBuild, fp)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// exportFile frames a list of records: the -export shard interchange and
// the -json dump share this format, so a -json dump can also be merged.
// Stats carries the exporting engine's cache counters so a merge can
// account for every shard's activity; it is optional, so pre-stats
// exports still read cleanly (as a nil Stats).
type exportFile struct {
	Schema  int        `json:"schema"`
	Stats   *TierStats `json:"stats,omitempty"`
	Records []*Record  `json:"records"`
}

// WriteExport serializes records, preserving their order. stats, when
// non-nil, rides along so the merging side can total cache activity
// across shards.
func WriteExport(w io.Writer, recs []*Record, stats *TierStats) error {
	for i, rec := range recs {
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(exportFile{Schema: SchemaVersion, Stats: stats, Records: recs}); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReadExport parses an exported shard. Unlike store entries — where a
// bad file is just a cache miss — corruption here is a hard error: the
// caller asked to merge exactly this data. The returned stats are nil
// for exports written before stats existed.
func ReadExport(r io.Reader) ([]*Record, *TierStats, error) {
	var f exportFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("store: export: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, nil, fmt.Errorf("store: export schema %d, want %d", f.Schema, SchemaVersion)
	}
	for i, rec := range f.Records {
		if err := rec.Validate(); err != nil {
			return nil, nil, fmt.Errorf("store: export record %d: %w", i, err)
		}
	}
	return f.Records, f.Stats, nil
}
