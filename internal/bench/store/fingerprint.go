package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"

	"branchreorder/internal/pipeline"
)

// Fingerprint derives the content address of one build+measure job: a
// SHA-256 over the store schema version, the workload source, the
// training and test inputs, and the full pipeline configuration. Each
// section is length-prefixed so concatenations cannot collide. Any
// change to an input changes the fingerprint, which is the store's whole
// invalidation story; a new Options field changes the JSON encoding and
// so invalidates automatically.
func Fingerprint(source string, train, test []byte, opts pipeline.Options) string {
	ob, err := json.Marshal(opts)
	if err != nil {
		// Options is a flat struct of ints and bools; Marshal cannot fail.
		panic(err)
	}
	return fingerprintSections(
		section2{"source", []byte(source)},
		section2{"train", train},
		section2{"test", test},
		section2{"options", ob},
	)
}

// section2 is one named, length-prefixed fingerprint input.
type section2 struct {
	name string
	data []byte
}

// fingerprintSections hashes the schema version plus every section, each
// length-prefixed so concatenations cannot collide.
func fingerprintSections(secs ...section2) string {
	h := sha256.New()
	fmt.Fprintf(h, "brbench store schema %d\n", SchemaVersion)
	for _, s := range secs {
		section(h, s.name, s.data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func section(h hash.Hash, name string, data []byte) {
	fmt.Fprintf(h, "%s %d\n", name, len(data))
	h.Write(data)
}
