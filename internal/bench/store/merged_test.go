package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"branchreorder/internal/pipeline"
	"branchreorder/internal/profile"
)

// trainWith returns a sampleTrain-shaped product with scaled counts so
// different contributions are distinguishable.
func trainWith(scale uint64) *ProfileRecord {
	tp := sampleTrain()
	for _, sp := range tp.SeqProfiles {
		for i := range sp.Counts {
			sp.Counts[i] *= scale
		}
		sp.Total *= scale
	}
	for _, op := range tp.OrSeqProfiles {
		for i := range op.Combos {
			op.Combos[i] *= scale
		}
		op.Total *= scale
	}
	return FromTrain(tp)
}

func mergedFP() string {
	return MergedFingerprint("int main() { return 0; }",
		pipeline.FrontendOptions{Optimize: true},
		pipeline.DetectOptions{Profile: profile.Config{Merge: true}})
}

func TestMergedRecordRoundTrip(t *testing.T) {
	rec := &MergedRecord{HalfLife: 2}
	rec.Merge(TrainDigest([]byte("input-a")), trainWith(1))
	rec.Merge(TrainDigest([]byte("input-b")), trainWith(2))
	fp := mergedFP()
	data, err := EncodeMerged(fp, rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMerged(data, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec) {
		t.Fatalf("round trip changed the record:\ngot  %+v\nwant %+v", back, rec)
	}

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, status := st.GetMerged(fp); status != Miss {
		t.Fatalf("empty store: %v", status)
	}
	if err := st.PutMerged(fp, rec); err != nil {
		t.Fatal(err)
	}
	got, status := st.GetMerged(fp)
	if status != Hit || !reflect.DeepEqual(got, rec) {
		t.Fatalf("disk round trip: %v %+v", status, got)
	}
	// Kind isolation: the other decoders must reject a merged entry.
	if _, status := st.Get(fp); status != Invalid {
		t.Fatalf("build Get on merged entry: %v", status)
	}
	if _, status := st.GetProfile(fp); status != Invalid {
		t.Fatalf("profile Get on merged entry: %v", status)
	}
	raw, status := st.GetRaw(fp)
	if status != Hit {
		t.Fatalf("GetRaw: %v", status)
	}
	if kind, err := VerifyEntry(raw, fp); err != nil || kind != KindMerged {
		t.Fatalf("VerifyEntry = %q, %v", kind, err)
	}
}

// Within one half-life no contribution is attenuated, so the fold is a
// plain sum and arrival order cannot matter. The encoded records are
// also byte-identical up to the generation stamps' recency semantics.
func TestMergeFoldOrderIndependent(t *testing.T) {
	digests := []string{
		TrainDigest([]byte("input-a")),
		TrainDigest([]byte("input-b")),
		TrainDigest([]byte("input-c")),
	}
	fold := func(order []int) *pipeline.TrainProduct {
		rec := &MergedRecord{HalfLife: 10}
		for _, i := range order {
			rec.Merge(digests[i], trainWith(uint64(i+1)))
		}
		if err := rec.Validate(); err != nil {
			t.Fatal(err)
		}
		return rec.Fold()
	}
	want := fold([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := fold(order); !reflect.DeepEqual(got, want) {
			t.Fatalf("fold depends on arrival order %v:\ngot  %+v\nwant %+v", order, got.SeqProfiles[0], want.SeqProfiles[0])
		}
	}
	// Determinism: the same merge sequence encodes to identical bytes.
	build := func() []byte {
		rec := &MergedRecord{HalfLife: 10}
		for i, d := range digests {
			rec.Merge(d, trainWith(uint64(i+1)))
		}
		data, err := EncodeMerged(mergedFP(), rec)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("same merge sequence produced different bytes")
	}
}

func TestMergeDecayAndReplacement(t *testing.T) {
	rec := &MergedRecord{HalfLife: 1}
	rec.Merge(TrainDigest([]byte("old")), trainWith(4)) // generation 1
	rec.Merge(TrainDigest([]byte("new")), trainWith(4)) // generation 2
	tp := rec.Fold()
	// sampleTrain seq 0 counts {3,5,2}*4; the stale contribution is one
	// generation behind at half-life 1, so it folds in halved.
	sp := tp.SeqProfiles[0]
	want := []uint64{12 + 6, 20 + 10, 8 + 4}
	if !reflect.DeepEqual(sp.Counts, want) {
		t.Fatalf("decayed fold: %v, want %v", sp.Counts, want)
	}
	if sp.Total != 60 {
		t.Fatalf("folded total %d, want 60", sp.Total)
	}

	// Re-merging an existing digest replaces its counts and refreshes
	// its generation instead of duplicating it.
	rec.Merge(TrainDigest([]byte("old")), trainWith(8))
	if len(rec.Contribs) != 2 {
		t.Fatalf("replacement grew the record to %d contributions", len(rec.Contribs))
	}
	maxGen := 0
	for _, c := range rec.Contribs {
		if c.Generation > maxGen {
			maxGen = c.Generation
		}
		if c.TrainDigest == TrainDigest([]byte("old")) && c.Profile.Seqs[0].Counts[0] != 24 {
			t.Fatalf("replacement kept stale counts: %v", c.Profile.Seqs[0].Counts)
		}
	}
	if maxGen != 3 {
		t.Fatalf("refreshed generation %d, want 3", maxGen)
	}
}

func TestMergeBoundDropsStalest(t *testing.T) {
	rec := &MergedRecord{HalfLife: 1}
	for i := 0; i < MaxMergeContribs+3; i++ {
		rec.Merge(TrainDigest([]byte(fmt.Sprintf("input-%d", i))), trainWith(1))
	}
	if len(rec.Contribs) != MaxMergeContribs {
		t.Fatalf("record holds %d contributions, want %d", len(rec.Contribs), MaxMergeContribs)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	minGen := rec.Contribs[0].Generation
	for _, c := range rec.Contribs {
		if c.Generation < minGen {
			minGen = c.Generation
		}
	}
	// 11 merges; the three stalest (generations 1-3) must be gone.
	if minGen != 4 {
		t.Fatalf("stalest surviving generation %d, want 4", minGen)
	}
}

func TestMergedRecordValidateRejects(t *testing.T) {
	good := func() *MergedRecord {
		rec := &MergedRecord{HalfLife: 1}
		rec.Merge(TrainDigest([]byte("a")), trainWith(1))
		rec.Merge(TrainDigest([]byte("b")), trainWith(1))
		return rec
	}
	cases := map[string]func() *MergedRecord{
		"zero half-life": func() *MergedRecord { r := good(); r.HalfLife = 0; return r },
		"no contribs":    func() *MergedRecord { return &MergedRecord{HalfLife: 1} },
		"bad digest":     func() *MergedRecord { r := good(); r.Contribs[0].TrainDigest = "xyz"; return r },
		"unsorted": func() *MergedRecord {
			r := good()
			r.Contribs[0], r.Contribs[1] = r.Contribs[1], r.Contribs[0]
			return r
		},
		"duplicate digest": func() *MergedRecord {
			r := good()
			r.Contribs[1].TrainDigest = r.Contribs[0].TrainDigest
			return r
		},
		"zero generation": func() *MergedRecord { r := good(); r.Contribs[0].Generation = 0; return r },
		"bad profile": func() *MergedRecord {
			r := good()
			r.Contribs[0].Profile.Seqs[0].Total++
			return r
		},
		"shape mismatch": func() *MergedRecord {
			r := good()
			r.Contribs[0].Profile.NumSeqs++
			return r
		},
		"count length varies": func() *MergedRecord {
			r := good()
			s := &r.Contribs[0].Profile.Seqs[0]
			s.Counts = append(s.Counts, 0)
			return r
		},
		"oversized": func() *MergedRecord {
			// Merge would have trimmed; a hostile writer would not.
			digests := make([]string, MaxMergeContribs+1)
			for i := range digests {
				digests[i] = TrainDigest([]byte(fmt.Sprintf("%02d", i)))
			}
			sort.Strings(digests)
			r := &MergedRecord{HalfLife: 1}
			for i, d := range digests {
				r.Contribs = append(r.Contribs, MergedContribution{
					TrainDigest: d, Generation: i + 1, Profile: *trainWith(1),
				})
			}
			return r
		},
	}
	for name, make := range cases {
		if err := make().Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	var nilRec *MergedRecord
	if err := nilRec.Validate(); err == nil {
		t.Error("nil record accepted")
	}
	if err := good().Validate(); err != nil {
		t.Errorf("good record rejected: %v", err)
	}
}

// The merged fingerprint accumulates across training inputs and drift
// choices but must keep sampled/biased configurations apart.
func TestMergedFingerprintAxes(t *testing.T) {
	fo := pipeline.FrontendOptions{Optimize: true}
	d := func(cfg profile.Config) pipeline.DetectOptions {
		return pipeline.DetectOptions{Profile: cfg}
	}
	base := MergedFingerprint("src", fo, d(profile.Config{Merge: true}))
	cross := MergedFingerprint("src", fo, d(profile.Config{Merge: true, Drift: profile.DriftNone}))
	if base != cross {
		t.Error("drift changed the merged fingerprint; cross-drift runs cannot accumulate")
	}
	sampled := MergedFingerprint("src", fo, d(profile.Config{Merge: true, Mode: profile.EveryNth, Rate: 8}))
	biased := MergedFingerprint("src", fo, d(profile.Config{Merge: true, Bias: 5}))
	otherSrc := MergedFingerprint("src2", fo, d(profile.Config{Merge: true}))
	seen := map[string]bool{base: true}
	for i, v := range []string{sampled, biased, otherSrc} {
		if seen[v] {
			t.Errorf("axis %d collides with another configuration", i)
		}
		seen[v] = true
	}
	if strings.Contains(base, "/") {
		t.Error("fingerprint not hex")
	}
}
