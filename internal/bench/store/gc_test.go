package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// gcStore populates a store with n entries whose mtimes step backwards
// in time: entry 0 is the oldest. It returns the store and the
// fingerprints in creation order.
func gcStore(t *testing.T, n int) (*Store, []string) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]string, n)
	now := time.Now()
	for i := 0; i < n; i++ {
		fp := Fingerprint(fmt.Sprintf("src%d", i), nil, nil,
			pipeline.Options{Switch: lower.SetI, Optimize: true})
		if err := s.Put(fp, testRecord()); err != nil {
			t.Fatal(err)
		}
		mtime := now.Add(-time.Duration(n-i) * time.Hour)
		if err := os.Chtimes(s.path(fp), mtime, mtime); err != nil {
			t.Fatal(err)
		}
		fps[i] = fp
	}
	return s, fps
}

func entryStatus(s *Store, fp string) Status {
	_, st := s.Get(fp)
	return st
}

// Age-based GC must evict exactly the entries older than the bound.
func TestGCEvictsByAge(t *testing.T) {
	s, fps := gcStore(t, 4) // ages 4h, 3h, 2h, 1h
	res, err := s.GC(150*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 || res.Scanned != 4 {
		t.Fatalf("GC: %+v, want 2 of 4 evicted", res)
	}
	for i, want := range []Status{Miss, Miss, Hit, Hit} {
		if got := entryStatus(s, fps[i]); got != want {
			t.Errorf("entry %d: %v, want %v", i, got, want)
		}
	}
}

// Size-based GC must evict least-recently-used first and stop as soon
// as the store fits.
func TestGCEvictsLRUBySize(t *testing.T) {
	s, fps := gcStore(t, 4)
	var sizes []int64
	var total int64
	for _, fp := range fps {
		info, err := os.Stat(s.path(fp))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
		total += info.Size()
	}
	// Budget for the two newest entries (plus slack below one entry):
	// exactly the two oldest must go.
	budget := sizes[2] + sizes[3] + sizes[0]/2
	res, err := s.GC(0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 {
		t.Fatalf("GC evicted %d, want 2 (%+v)", res.Evicted, res)
	}
	if res.Bytes != sizes[2]+sizes[3] || res.Freed != total-res.Bytes {
		t.Errorf("GC byte accounting off: %+v", res)
	}
	for i, want := range []Status{Miss, Miss, Hit, Hit} {
		if got := entryStatus(s, fps[i]); got != want {
			t.Errorf("entry %d: %v, want %v", i, got, want)
		}
	}
}

// Touch must refresh an entry's LRU position: the oldest entry, once
// touched, survives a size-bound GC that evicts its untouched peers.
func TestTouchProtectsFromEviction(t *testing.T) {
	s, fps := gcStore(t, 3)
	s.Touch(fps[0])
	info, err := os.Stat(s.path(fps[2]))
	if err != nil {
		t.Fatal(err)
	}
	// Room for roughly two entries: the untouched older pair loses.
	if _, err := s.GC(0, 2*info.Size()+info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if got := entryStatus(s, fps[0]); got != Hit {
		t.Errorf("touched entry evicted (%v)", got)
	}
	if got := entryStatus(s, fps[1]); got != Miss {
		t.Errorf("LRU entry survived (%v)", got)
	}
}

// GC(0,0) must be a no-op for entries but still sweep orphaned temp
// files old enough that no live writer owns them.
func TestGCSweepsOrphanedTempFiles(t *testing.T) {
	s, fps := gcStore(t, 2)
	sub := filepath.Dir(s.path(fps[0]))
	oldTmp := filepath.Join(sub, "put-dead.tmp")
	newTmp := filepath.Join(sub, "put-live.tmp")
	for _, p := range []string{oldTmp, newTmp} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * tmpOrphanAge)
	if err := os.Chtimes(oldTmp, stale, stale); err != nil {
		t.Fatal(err)
	}

	res, err := s.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 0 {
		t.Errorf("GC(0,0) evicted %d entries", res.Evicted)
	}
	if _, err := os.Stat(oldTmp); !os.IsNotExist(err) {
		t.Error("orphaned temp file survived")
	}
	if _, err := os.Stat(newTmp); err != nil {
		t.Error("fresh temp file was swept")
	}
	for i, fp := range fps {
		if got := entryStatus(s, fp); got != Hit {
			t.Errorf("entry %d: %v, want hit", i, got)
		}
	}
}

// gcProfileStore adds profile-kind entries (one stage-2 profile, one
// merged profile) to a build-entry store, all backdated to be the
// oldest files present.
func gcProfileStore(t *testing.T, builds int) (*Store, []string, []string) {
	t.Helper()
	s, fps := gcStore(t, builds)
	pfp := profileFP()
	if err := s.PutProfile(pfp, FromTrain(sampleTrain())); err != nil {
		t.Fatal(err)
	}
	mrec := &MergedRecord{HalfLife: 1}
	mrec.Merge(TrainDigest([]byte("input-a")), FromTrain(sampleTrain()))
	mfp := mergedFP()
	if err := s.PutMerged(mfp, mrec); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Duration(builds+2) * time.Hour)
	for _, fp := range []string{pfp, mfp} {
		if err := os.Chtimes(s.path(fp), old, old); err != nil {
			t.Fatal(err)
		}
	}
	return s, fps, []string{pfp, mfp}
}

// The result LRU bytes budget must never evict profile-kind entries,
// even when they are the oldest files in the store.
func TestGCBytesBudgetSparesProfiles(t *testing.T) {
	s, fps, pfps := gcProfileStore(t, 4)
	// A budget of one byte forces out every result; the (older!)
	// profile entries must all survive.
	res, err := s.GCWith(GCPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != len(fps) {
		t.Fatalf("evicted %d, want all %d results", res.Evicted, len(fps))
	}
	for i, fp := range fps {
		if got := entryStatus(s, fp); got != Miss {
			t.Errorf("result %d survived a 1-byte budget (%v)", i, got)
		}
	}
	if _, st := s.GetProfile(pfps[0]); st != Hit {
		t.Errorf("profile entry evicted by the result bytes budget (%v)", st)
	}
	if _, st := s.GetMerged(pfps[1]); st != Hit {
		t.Errorf("merged entry evicted by the result bytes budget (%v)", st)
	}
}

// ProfileMaxAge is the profile entries' own bound: a pass with a short
// profile age and no result bounds must evict exactly them.
func TestGCProfileMaxAge(t *testing.T) {
	s, fps, pfps := gcProfileStore(t, 2)
	res, err := s.GCWith(GCPolicy{ProfileMaxAge: time.Duration(len(fps)+1) * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 {
		t.Fatalf("evicted %d, want the 2 profile entries", res.Evicted)
	}
	if _, st := s.GetProfile(pfps[0]); st != Miss {
		t.Errorf("stale profile survived ProfileMaxAge (%v)", st)
	}
	if _, st := s.GetMerged(pfps[1]); st != Miss {
		t.Errorf("stale merged record survived ProfileMaxAge (%v)", st)
	}
	for i, fp := range fps {
		if got := entryStatus(s, fp); got != Hit {
			t.Errorf("result %d evicted by the profile age bound (%v)", i, got)
		}
	}
}

// The legacy GC(a, b) wrapper applies the age bound to every kind —
// pre-policy behaviour, preserved for callers that never split ages.
func TestGCWrapperAgesAllKinds(t *testing.T) {
	s, _, pfps := gcProfileStore(t, 2)
	if _, err := s.GC(time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	if _, st := s.GetProfile(pfps[0]); st != Miss {
		t.Errorf("GC(age, bytes) spared a stale profile entry (%v)", st)
	}
}
