// Package store persists build+measure results on disk so repeated
// brbench invocations skip unchanged builds and shards of the job matrix
// can run on separate machines and be merged.
//
// The store is content-addressed: an entry's name is the SHA-256
// fingerprint of everything that determines its result (workload source,
// training and test inputs, the full pipeline configuration, and the
// store schema version), so a change to any input simply misses and
// rebuilds — there is no invalidation protocol, no locking, and merging
// two stores is a file copy. Entries are written atomically (temp file +
// rename in the same directory) and carry an internal checksum; anything
// corrupt, truncated, schema-mismatched, or misplaced decodes as a miss,
// never an error and never a panic.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// SchemaVersion identifies the on-disk layout. Any change to the record
// shape, the fingerprint inputs, or the measurement semantics must bump
// it; entries written under any other version are treated as misses.
// Version 2: Options/DetectOptions gained the profile configuration
// (changing every fingerprint), SeqStat records the selected ordering,
// and merged-profile entries are a third record kind.
const SchemaVersion = 2

// Status classifies the outcome of a Get.
type Status int

const (
	// Miss: no entry exists for the fingerprint.
	Miss Status = iota
	// Hit: the entry decoded and validated.
	Hit
	// Invalid: an entry exists but is corrupt, truncated, unreadable, or
	// written under a different schema. Callers treat it as a miss; the
	// status exists so the engine can count invalidations separately.
	Invalid
)

func (s Status) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Store is one on-disk result cache rooted at a directory. The zero
// value is not usable; call Open. A Store is safe for concurrent use by
// any number of processes: entries are immutable once renamed into
// place, and concurrent writers of the same fingerprint write identical
// content.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path places entries in two-hex-digit subdirectories (like git's object
// store) so no single directory grows unboundedly.
func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+".json")
}

// Get loads the entry for fp. A Hit returns the decoded record; Miss and
// Invalid return nil, and differ only in whether a file was present.
func (s *Store) Get(fp string) (*Record, Status) {
	data, st := s.read(fp)
	if st != Hit {
		return nil, st
	}
	rec, err := Decode(data, fp)
	if err != nil {
		return nil, Invalid
	}
	return rec, Hit
}

// read loads the raw bytes of the entry for fp.
func (s *Store) read(fp string) ([]byte, Status) {
	if len(fp) < 2 {
		return nil, Miss
	}
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, Miss
		}
		return nil, Invalid
	}
	return data, Hit
}

// Put writes the entry for fp atomically: the encoded record goes to a
// temp file in the destination directory first and is renamed over the
// final name, so a concurrent reader sees either nothing or a complete
// entry, and a crash leaves at worst an orphaned temp file.
func (s *Store) Put(fp string, rec *Record) error {
	data, err := Encode(fp, rec)
	if err != nil {
		return err
	}
	return s.write(fp, data)
}

// write lands already-encoded entry bytes for fp with Put's atomicity.
func (s *Store) write(fp string, data []byte) error {
	if len(fp) < 2 {
		return fmt.Errorf("store: unusable fingerprint %q", fp)
	}
	dst := s.path(fp)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}
