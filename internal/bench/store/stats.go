package store

// TierStats counts one engine's cache activity across its tiers
// (in-memory memo → disk store → network store). It lives in this
// package, not bench, because shard export files carry it: a merged
// run's summary can then account for every shard's cache behaviour,
// not just its own. Zero counters for a tier just mean the tier was
// not attached.
type TierStats struct {
	// Builds is the number of build+measure jobs actually executed.
	Builds int `json:"builds"`
	// Hits is the number of lookups served from the in-memory memo
	// (including callers that joined an in-flight build).
	Hits int `json:"memoHits"`
	// Seeded is the number of pre-measured runs installed into the memo
	// from outside — merged shard exports or a farm collect — rather
	// than built or fetched by this engine.
	Seeded int `json:"seeded,omitempty"`

	// Disk-tier counters; all stay zero when no store is attached.
	DiskHits    int `json:"diskHits,omitempty"`    // jobs served from the disk store without building
	DiskMisses  int `json:"diskMisses,omitempty"`  // jobs with no usable entry on disk
	DiskInvalid int `json:"diskInvalid,omitempty"` // corrupt, truncated or schema-mismatched entries, treated as misses

	// Remote-tier counters; all stay zero when no network store is
	// attached.
	RemoteHits      int `json:"remoteHits,omitempty"`      // jobs served from the network store
	RemoteMisses    int `json:"remoteMisses,omitempty"`    // reachable server, no entry
	RemoteFallbacks int `json:"remoteFallbacks,omitempty"` // remote failures absorbed by the local tiers
	RemotePuts      int `json:"remotePuts,omitempty"`      // fresh results uploaded to the network store

	// Staged-build counters: the engine composes every fresh build from
	// cached stages (frontend → detect+train → finalize), so these count
	// how often the expensive stages actually ran versus were reused.
	// All stay zero for runs served entirely from the memo/disk/remote
	// tiers.
	FrontendRuns int `json:"frontendRuns,omitempty"` // stage-1 frontends actually compiled
	FrontendHits int `json:"frontendHits,omitempty"` // stage-1 lookups served from the stage cache
	TrainRuns    int `json:"trainRuns,omitempty"`    // stage-2 training runs actually executed
	TrainHits    int `json:"trainHits,omitempty"`    // stage-2 lookups served from the stage cache
	ProfileHits  int `json:"profileHits,omitempty"`  // training runs avoided by a stored profile record (disk or fleet)
	ProfilePuts  int `json:"profilePuts,omitempty"`  // fresh profile records persisted for later runs
	// Profile-subsystem counters: training runs that collected sampled
	// (non-exact) counts, and training runs whose counts were folded into
	// a pre-existing merged profile record (fleet warm start).
	SampledTrainRuns int `json:"sampledTrainRuns,omitempty"`
	ProfileMergeHits int `json:"profileMergeHits,omitempty"`

	// Superinstruction counters, aggregated over freshly built
	// executables only (like BuildSeconds; cache hits add nothing):
	// how many fused superinstruction sites their decoded code holds,
	// how many original ops those sites absorb, and how many dispatch
	// slots it has pre-fusion, so a summary can report static coverage
	// (FusedOps/DecodedOps).
	FusedSites int `json:"fusedSites,omitempty"`
	FusedOps   int `json:"fusedOps,omitempty"`
	DecodedOps int `json:"decodedOps,omitempty"`

	// Closure-compiler counters, aggregated over freshly built
	// executables only (the FusedSites discipline): functions compiled
	// to closure graphs, non-empty basic blocks those graphs hold, and
	// functions the compiler declined. All stay zero unless the closure
	// engine measured the run.
	CompiledFuncs    int `json:"compiledFuncs,omitempty"`
	ClosureBlocks    int `json:"closureBlocks,omitempty"`
	ClosureFallbacks int `json:"closureFallbacks,omitempty"`

	// BuildSeconds is the wall-clock cost of the jobs behind Builds,
	// keyed by workload and summed over every configuration built for
	// it. Cache hits add nothing, so a BENCH trajectory over exports
	// tracks engine speed separately from cache effectiveness.
	BuildSeconds map[string]float64 `json:"buildSeconds,omitempty"`
}

// Add accumulates o into s, counter by counter — how a merge totals the
// cache activity of every exported shard.
func (s *TierStats) Add(o TierStats) {
	s.Builds += o.Builds
	s.Hits += o.Hits
	s.Seeded += o.Seeded
	s.DiskHits += o.DiskHits
	s.DiskMisses += o.DiskMisses
	s.DiskInvalid += o.DiskInvalid
	s.RemoteHits += o.RemoteHits
	s.RemoteMisses += o.RemoteMisses
	s.RemoteFallbacks += o.RemoteFallbacks
	s.RemotePuts += o.RemotePuts
	s.FrontendRuns += o.FrontendRuns
	s.FrontendHits += o.FrontendHits
	s.TrainRuns += o.TrainRuns
	s.TrainHits += o.TrainHits
	s.ProfileHits += o.ProfileHits
	s.ProfilePuts += o.ProfilePuts
	s.SampledTrainRuns += o.SampledTrainRuns
	s.ProfileMergeHits += o.ProfileMergeHits
	s.FusedSites += o.FusedSites
	s.FusedOps += o.FusedOps
	s.DecodedOps += o.DecodedOps
	s.CompiledFuncs += o.CompiledFuncs
	s.ClosureBlocks += o.ClosureBlocks
	s.ClosureFallbacks += o.ClosureFallbacks
	for w, sec := range o.BuildSeconds {
		if s.BuildSeconds == nil {
			s.BuildSeconds = make(map[string]float64, len(o.BuildSeconds))
		}
		s.BuildSeconds[w] += sec
	}
}
