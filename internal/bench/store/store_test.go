package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// testRecord is a synthetic but fully-populated record; the output holds
// invalid UTF-8 on purpose, to prove serialization is byte-lossless.
func testRecord() *Record {
	return &Record{
		Workload: "wc",
		Set:      int(lower.SetI),
		Opts:     pipeline.Options{Switch: lower.SetI, Optimize: true},
		Base: &Measurement{
			Stats:       interp.Stats{Insts: 123456, CondBranches: 789, TakenBranches: 400, SlotNops: 7},
			Output:      []byte("42 lines\xff\xfe\x00raw"),
			Ret:         0,
			Mispredicts: map[string]uint64{"(0,2)x2048": 55, "(0,1)x32": 99},
			Cycles:      map[string]uint64{"SPARC Ultra I": 130000},
		},
		Reord: &Measurement{
			Stats:       interp.Stats{Insts: 120000, CondBranches: 700},
			Output:      []byte("42 lines\xff\xfe\x00raw"),
			Ret:         0,
			Mispredicts: map[string]uint64{"(0,2)x2048": 60, "(0,1)x32": 90},
			Cycles:      map[string]uint64{"SPARC Ultra I": 128000},
		},
		StaticBase:  500,
		StaticReord: 520,
		Seqs: []SeqStat{
			{Applied: true, OrigBranches: 4, NewBranches: 3},
			{Applied: false, OrigBranches: 2, NewBranches: 0},
		},
	}
}

func testFingerprint() string {
	return Fingerprint("int main() {}", []byte("train"), []byte("test"),
		pipeline.Options{Switch: lower.SetI, Optimize: true})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec, fp := testRecord(), testFingerprint()
	data, err := Encode(fp, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip changed the record:\ngot  %+v\nwant %+v", got, rec)
	}
	if !bytes.Equal(got.Base.Output, rec.Base.Output) {
		t.Error("binary output not byte-identical after round trip")
	}
}

func TestDecodeRejectsBadEntries(t *testing.T) {
	rec, fp := testRecord(), testFingerprint()
	good, err := Encode(fp, rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      nil,
		"garbage":    []byte("not json at all"),
		"half json":  good[:len(good)/2],
		"truncated":  good[:len(good)-10],
		"bit flip":   bytes.Replace(good, []byte(`"wc"`), []byte(`"Wc"`), 1),
		"emptied":    []byte("{}"),
		"bad schema": bytes.Replace(good, []byte(fmt.Sprintf(`"schema": %d`, SchemaVersion)), []byte(`"schema": 99`), 1),
	}
	for name, data := range cases {
		if _, err := Decode(data, fp); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
	// A valid entry filed under the wrong key is not a usable result.
	if _, err := Decode(good, strings.Repeat("ab", 32)); err == nil {
		t.Error("fingerprint mismatch accepted")
	}
	// The empty fingerprint skips only the key check, nothing else.
	if _, err := Decode(good, ""); err != nil {
		t.Errorf("decode without key check failed: %v", err)
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, fp := testRecord(), testFingerprint()

	if got, st := s.Get(fp); st != Miss || got != nil {
		t.Fatalf("empty store Get = %v, %v; want nil, miss", got, st)
	}
	if err := s.Put(fp, rec); err != nil {
		t.Fatal(err)
	}
	got, st := s.Get(fp)
	if st != Hit {
		t.Fatalf("Get after Put = %v, want hit", st)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("stored record differs:\ngot  %+v\nwant %+v", got, rec)
	}

	// Overwrite is idempotent.
	if err := s.Put(fp, rec); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Get(fp); st != Hit {
		t.Errorf("Get after second Put = %v, want hit", st)
	}

	// No orphaned temp files after successful Puts.
	var leftovers []string
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) > 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestStoreCorruptEntryIsInvalid(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, fp := testRecord(), testFingerprint()
	if err := s.Put(fp, rec); err != nil {
		t.Fatal(err)
	}
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"truncated": data[:len(data)/3],
		"flipped":   bytes.Replace(data, []byte("123456"), []byte("654321"), 1),
		"empty":     {},
	} {
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, st := s.Get(fp); st != Invalid || got != nil {
			t.Errorf("%s entry: Get = %v, %v; want nil, invalid", name, got, st)
		}
	}
	// Rewriting heals it.
	if err := s.Put(fp, rec); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Get(fp); st != Hit {
		t.Errorf("Get after heal = %v, want hit", st)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testFingerprint()
	if base != testFingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if len(base) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(base))
	}
	opts := pipeline.Options{Switch: lower.SetI, Optimize: true}
	for name, fp := range map[string]string{
		"source":  Fingerprint("int main() { }", []byte("train"), []byte("test"), opts),
		"train":   Fingerprint("int main() {}", []byte("train2"), []byte("test"), opts),
		"test":    Fingerprint("int main() {}", []byte("train"), []byte("test2"), opts),
		"options": Fingerprint("int main() {}", []byte("train"), []byte("test"), pipeline.Options{Switch: lower.SetII, Optimize: true}),
		"ablation": Fingerprint("int main() {}", []byte("train"), []byte("test"),
			pipeline.Options{Switch: lower.SetI, Optimize: true,
				Transform: core.TransformOptions{NoBoundOrder: true}}),
	} {
		if fp == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	// Length-prefixed sections: moving a byte across a boundary differs.
	a := Fingerprint("ab", []byte("c"), nil, opts)
	b := Fingerprint("a", []byte("bc"), nil, opts)
	if a == b {
		t.Error("section boundaries are ambiguous")
	}
}

func TestExportRoundTrip(t *testing.T) {
	recs := []*Record{testRecord(), testRecord()}
	recs[1].Workload = "sort"
	stats := &TierStats{Builds: 2, DiskHits: 1, RemoteHits: 3, RemoteFallbacks: 1}
	var buf bytes.Buffer
	if err := WriteExport(&buf, recs, stats); err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("export round trip changed records")
	}
	if !reflect.DeepEqual(gotStats, stats) {
		t.Errorf("export round trip changed stats: %+v != %+v", gotStats, stats)
	}

	// Exports written without stats (including pre-stats files) read
	// back with nil stats, not zeroes.
	buf.Reset()
	if err := WriteExport(&buf, recs, nil); err != nil {
		t.Fatal(err)
	}
	if _, s, err := ReadExport(&buf); err != nil || s != nil {
		t.Errorf("stats-less export: stats=%+v err=%v, want nil,nil", s, err)
	}
}

func TestTierStatsAdd(t *testing.T) {
	a := TierStats{Builds: 1, Hits: 2, DiskHits: 3, DiskMisses: 4, DiskInvalid: 5,
		RemoteHits: 6, RemoteMisses: 7, RemoteFallbacks: 8, RemotePuts: 9,
		BuildSeconds: map[string]float64{"wc": 0.5, "sort": 2}}
	sum := TierStats{Builds: 1, BuildSeconds: map[string]float64{"wc": 0.25}}
	sum.Add(a)
	sum.Add(a)
	want := TierStats{Builds: 3, Hits: 4, DiskHits: 6, DiskMisses: 8, DiskInvalid: 10,
		RemoteHits: 12, RemoteMisses: 14, RemoteFallbacks: 16, RemotePuts: 18,
		BuildSeconds: map[string]float64{"wc": 1.25, "sort": 4}}
	if !reflect.DeepEqual(sum, want) {
		t.Errorf("Add: %+v, want %+v", sum, want)
	}

	// Adding a stats value without timings must leave the target's nil.
	var zero TierStats
	zero.Add(TierStats{Builds: 1})
	if zero.BuildSeconds != nil {
		t.Errorf("Add materialized an empty BuildSeconds map")
	}
}

func TestReadExportRejects(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":    "nope",
		"bad schema": `{"schema":99,"records":[]}`,
		"bad record": `{"schema":1,"records":[{"workload":""}]}`,
	} {
		if _, _, err := ReadExport(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The export format must stay JSON-parseable by external tooling:
// spot-check the envelope keys.
func TestExportIsPlainJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExport(&buf, []*Record{testRecord()}, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != float64(SchemaVersion) {
		t.Errorf("schema key = %v", doc["schema"])
	}
	if _, ok := doc["records"].([]any); !ok {
		t.Errorf("records key missing or not a list")
	}
}
