package store

import (
	"bytes"
	"testing"
)

// FuzzStoreDecode drives Decode (and the export reader) with hostile
// inputs: truncated, corrupted, or adversarially-crafted store files
// must come back as errors — i.e. cache misses — never panics and never
// records that fail their own validation.
func FuzzStoreDecode(f *testing.F) {
	// Seed corpus: a valid entry and targeted corruptions of it, plus
	// structurally-interesting JSON.
	fp := testFingerprint()
	good, err := Encode(fp, testRecord())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-3])
	f.Add(bytes.ToUpper(good))
	f.Add(bytes.Replace(good, []byte(`"schema": 1`), []byte(`"schema": 2`), 1))
	f.Add(bytes.Replace(good, []byte(`"sum"`), []byte(`"sun"`), 1))
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":1,"fingerprint":"","sum":"","record":null}`))
	f.Add([]byte(`{"schema":1,"fingerprint":"x","sum":"00","record":{}}`))
	f.Add([]byte(`{"schema":1,"records":[{"workload":"wc"}]}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, key := range []string{"", fp} {
			rec, err := Decode(data, key)
			if err != nil {
				continue
			}
			// Whatever decodes must be internally consistent and
			// re-encodable: the store may later serve it.
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("Decode returned an invalid record: %v", verr)
			}
			if _, eerr := Encode(key, rec); eerr != nil {
				t.Fatalf("decoded record does not re-encode: %v", eerr)
			}
		}
		// The shard reader faces the same hostile bytes on -merge.
		if recs, _, err := ReadExport(bytes.NewReader(data)); err == nil {
			for _, rec := range recs {
				if verr := rec.Validate(); verr != nil {
					t.Fatalf("ReadExport returned an invalid record: %v", verr)
				}
			}
		}
	})
}
