package store

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzStoreDecode drives Decode (and the export reader) with hostile
// inputs: truncated, corrupted, or adversarially-crafted store files
// must come back as errors — i.e. cache misses — never panics and never
// records that fail their own validation.
func FuzzStoreDecode(f *testing.F) {
	// Seed corpus: a valid entry and targeted corruptions of it, plus
	// structurally-interesting JSON.
	fp := testFingerprint()
	good, err := Encode(fp, testRecord())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-3])
	f.Add(bytes.ToUpper(good))
	f.Add(bytes.Replace(good, []byte(fmt.Sprintf(`"schema": %d`, SchemaVersion)), []byte(`"schema": 99`), 1))
	f.Add(bytes.Replace(good, []byte(`"sum"`), []byte(`"sun"`), 1))
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":1,"fingerprint":"","sum":"","record":null}`))
	f.Add([]byte(`{"schema":1,"fingerprint":"x","sum":"00","record":{}}`))
	f.Add([]byte(`{"schema":1,"records":[{"workload":"wc"}]}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, key := range []string{"", fp} {
			rec, err := Decode(data, key)
			if err != nil {
				continue
			}
			// Whatever decodes must be internally consistent and
			// re-encodable: the store may later serve it.
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("Decode returned an invalid record: %v", verr)
			}
			if _, eerr := Encode(key, rec); eerr != nil {
				t.Fatalf("decoded record does not re-encode: %v", eerr)
			}
		}
		// The shard reader faces the same hostile bytes on -merge.
		if recs, _, err := ReadExport(bytes.NewReader(data)); err == nil {
			for _, rec := range recs {
				if verr := rec.Validate(); verr != nil {
					t.Fatalf("ReadExport returned an invalid record: %v", verr)
				}
			}
		}
	})
}

// FuzzProfileDecode drives the profile-kind decoders with hostile
// inputs: malformed, truncated, or oversized profile and merged-profile
// documents must come back as errors — cache misses — never panics, and
// whatever does decode must survive its own validation and re-encode.
// The same bytes also face VerifyEntry, the network store's upload
// gate, which must reject anything the decoders reject.
func FuzzProfileDecode(f *testing.F) {
	pfp := profileFP()
	goodProfile, err := EncodeProfile(pfp, FromTrain(sampleTrain()))
	if err != nil {
		f.Fatal(err)
	}
	mrec := &MergedRecord{HalfLife: 1}
	mrec.Merge(TrainDigest([]byte("input-a")), FromTrain(sampleTrain()))
	mrec.Merge(TrainDigest([]byte("input-b")), FromTrain(sampleTrain()))
	mfp := mergedFP()
	goodMerged, err := EncodeMerged(mfp, mrec)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{
		goodProfile,
		goodMerged,
		goodMerged[:len(goodMerged)/2],
		goodMerged[:len(goodMerged)-3],
		bytes.ToUpper(goodMerged),
		bytes.Replace(goodMerged, []byte(`"halfLife": 1`), []byte(`"halfLife": 0`), 1),
		bytes.Replace(goodMerged, []byte(`"generation": 1`), []byte(`"generation": -7`), 1),
		bytes.Replace(goodMerged, []byte(`"sum"`), []byte(`"sun"`), 1),
		bytes.Replace(goodProfile, []byte(`"kind": "profile"`), []byte(`"kind": "merged-profile"`), 1),
		[]byte(`{"schema":2,"kind":"merged-profile","fingerprint":"","sum":"","record":null}`),
		[]byte(`{"schema":2,"kind":"profile","fingerprint":"x","sum":"00","record":{}}`),
		nil,
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, key := range []string{"", pfp, mfp} {
			if rec, err := DecodeProfile(data, key); err == nil {
				if verr := rec.Validate(); verr != nil {
					t.Fatalf("DecodeProfile returned an invalid record: %v", verr)
				}
				if _, eerr := EncodeProfile(key, rec); eerr != nil {
					t.Fatalf("decoded profile does not re-encode: %v", eerr)
				}
			}
			if rec, err := DecodeMerged(data, key); err == nil {
				if verr := rec.Validate(); verr != nil {
					t.Fatalf("DecodeMerged returned an invalid record: %v", verr)
				}
				if _, eerr := EncodeMerged(key, rec); eerr != nil {
					t.Fatalf("decoded merged record does not re-encode: %v", eerr)
				}
				if rec.Fold() == nil {
					t.Fatal("validated merged record folds to nothing")
				}
			}
			// The upload gate must agree with the decoders: anything it
			// accepts must be decodable by the kind it reports.
			if kind, err := VerifyEntry(data, key); err == nil {
				switch kind {
				case KindProfile:
					if _, derr := DecodeProfile(data, key); derr != nil {
						t.Fatalf("VerifyEntry accepted a profile the decoder rejects: %v", derr)
					}
				case KindMerged:
					if _, derr := DecodeMerged(data, key); derr != nil {
						t.Fatalf("VerifyEntry accepted a merged record the decoder rejects: %v", derr)
					}
				}
			}
		}
	})
}
