package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// ReportKind tags a load report's JSON document so brperf -compare can
// tell it from a benchmark document.
const ReportKind = "load"

// ReportSchema versions the report format.
const ReportSchema = 1

// HostInfo identifies the hardware a result document was produced on —
// diagnostic context for cross-host baseline drift. Comparisons print
// it but never gate on it: the numbers decide, the host explains.
type HostInfo struct {
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpuModel,omitempty"`
}

// CollectHost gathers the running host's info. The CPU model comes from
// /proc/cpuinfo when readable (Linux); elsewhere it stays empty.
func CollectHost() *HostInfo {
	h := &HostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, val, ok := strings.Cut(name, ":"); ok {
					h.CPUModel = strings.TrimSpace(val)
					break
				}
			}
		}
	}
	return h
}

func (h *HostInfo) String() string {
	if h == nil {
		return "unknown host"
	}
	s := fmt.Sprintf("%d cpus, gomaxprocs %d", h.NumCPU, h.GOMAXPROCS)
	if h.CPUModel != "" {
		s += ", " + h.CPUModel
	}
	return s
}

// Latency is one op class's latency profile in milliseconds. Quantiles
// are bucket upper edges (conservative, ≤19% high — see Histogram);
// Mean and Max are exact.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// OpStats is one op class's outcome in the report.
type OpStats struct {
	Requests  uint64            `json:"requests"`
	Errors    uint64            `json:"errors"` // failures and fallbacks; expected misses/conflicts are outcomes, not errors
	ReqPerSec float64           `json:"reqPerSec"`
	Outcomes  map[string]uint64 `json:"outcomes,omitempty"`
	LatencyMs Latency           `json:"latencyMs"`
}

// ServerDelta is the growth of the server's own counters over the run,
// diffed from /metrics.json snapshots taken before and after — the
// server-side cross-check of what the clients claim they did. Only
// monotonic counters appear; gauges like queue depth have no meaningful
// delta.
type ServerDelta struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Puts           int64 `json:"puts"`
	PutRejects     int64 `json:"putRejects"`
	BytesIn        int64 `json:"bytesIn"`
	BytesOut       int64 `json:"bytesOut"`
	Enqueues       int64 `json:"enqueues,omitempty"`
	Leases         int64 `json:"leases,omitempty"`
	QueueDone      int64 `json:"queueDone,omitempty"`
	QueueExpired   int64 `json:"queueExpired,omitempty"`
	QueueReclaimed int64 `json:"queueReclaimed,omitempty"`
}

// Report is one load run's result document — the LOAD_baseline.json
// format, sibling to brperf's benchmark document.
type Report struct {
	Kind      string `json:"kind"`
	Schema    int    `json:"schema"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Host records where the load ran. Diagnostic only: comparisons
	// never gate on it.
	Host *HostInfo `json:"host,omitempty"`

	Clients     int     `json:"clients"`
	Seed        uint64  `json:"seed"`
	Mix         string  `json:"mix"` // canonical ParseMix syntax
	Abandon     float64 `json:"abandon,omitempty"`
	DurationSec float64 `json:"durationSeconds"`

	Requests  uint64              `json:"requests"`
	Errors    uint64              `json:"errors"`
	ReqPerSec float64             `json:"reqPerSec"`
	Ops       map[string]*OpStats `json:"ops"`
	Server    *ServerDelta        `json:"server,omitempty"`
}

// newReport assembles the document header.
func newReport(cfg Config, elapsed time.Duration) *Report {
	return &Report{
		Kind:        ReportKind,
		Schema:      ReportSchema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Host:        CollectHost(),
		Clients:     cfg.Clients,
		Seed:        cfg.Seed,
		Mix:         cfg.Mix.String(),
		Abandon:     cfg.Abandon,
		DurationSec: elapsed.Seconds(),
		Ops:         map[string]*OpStats{},
	}
}

// WriteJSON renders the report, indented, trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// latencyOf summarizes a histogram.
func latencyOf(h *Histogram) Latency {
	return Latency{
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Mean: ms(h.Mean()),
		Max:  ms(h.Max()),
	}
}

// errorRate is errors over requests, 0 for an empty class.
func errorRate(errors, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(errors) / float64(requests)
}

// maxErrorRate is the error-rate ceiling CompareReports enforces
// regardless of threshold: tail latencies mean nothing if the server
// answered a meaningful slice of the traffic with failures.
const maxErrorRate = 0.05

// CompareReports prints per-class deltas between two load reports and
// returns an error — a nonzero brperf exit — when new regressed:
//
//   - throughput (global and per shared class) fell by more than
//     threshold percent (compared only when clients and mix match;
//     different configs make req/s incomparable and are noted instead);
//   - a shared class's p99 or p99.9 grew by more than threshold percent;
//   - the global error rate exceeds 5% where old was at or under it.
//
// Classes present in only one report are listed but never count as
// regressions, so reshaping the mix does not break CI. The threshold is
// shared with benchmark comparison and deliberately generous in CI:
// this gate catches collapses, not nanoseconds.
func CompareReports(w io.Writer, oldR, newR *Report, threshold float64) error {
	var regressed []string
	// Host context for cross-machine diffs; informational only, never a
	// gate.
	if oldR.Host != nil || newR.Host != nil {
		fmt.Fprintf(w, "old host: %s\nnew host: %s\n", oldR.Host, newR.Host)
	}
	sameShape := oldR.Clients == newR.Clients && oldR.Mix == newR.Mix
	if !sameShape {
		fmt.Fprintf(w, "note: run shapes differ (old %d clients, mix %s; new %d clients, mix %s); throughput not compared\n",
			oldR.Clients, oldR.Mix, newR.Clients, newR.Mix)
	}

	slower := func(class, metric string, oldV, newV float64) {
		if oldV > 0 && newV > oldV*(1+threshold/100) {
			regressed = append(regressed, fmt.Sprintf("%s %s +%.0f%%", class, metric, 100*(newV/oldV-1)))
		}
	}
	fewer := func(class string, oldV, newV float64) {
		if sameShape && oldV > 0 && newV < oldV*(1-threshold/100) {
			regressed = append(regressed, fmt.Sprintf("%s req/s %.0f%%", class, 100*(newV/oldV-1)))
		}
	}

	fmt.Fprintf(w, "%-10s %12s %12s %10s %10s %10s %10s\n",
		"class", "old req/s", "new req/s", "old p99", "new p99", "old p99.9", "new p99.9")
	fmt.Fprintf(w, "%-10s %12.0f %12.0f %10s %10s %10s %10s\n",
		"(all)", oldR.ReqPerSec, newR.ReqPerSec, "-", "-", "-", "-")
	fewer("overall", oldR.ReqPerSec, newR.ReqPerSec)

	names := make([]string, 0, len(oldR.Ops)+len(newR.Ops))
	for name := range oldR.Ops {
		names = append(names, name)
	}
	for name := range newR.Ops {
		if _, ok := oldR.Ops[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, okOld := oldR.Ops[name]
		n, okNew := newR.Ops[name]
		switch {
		case !okOld:
			fmt.Fprintf(w, "%-10s %12s %12.0f %10s %9.2fms %10s %9.2fms  (new)\n",
				name, "-", n.ReqPerSec, "-", n.LatencyMs.P99, "-", n.LatencyMs.P999)
		case !okNew:
			fmt.Fprintf(w, "%-10s %12.0f %12s %9.2fms %10s %9.2fms %10s  (gone)\n",
				name, o.ReqPerSec, "-", o.LatencyMs.P99, "-", o.LatencyMs.P999, "-")
		default:
			fmt.Fprintf(w, "%-10s %12.0f %12.0f %9.2fms %9.2fms %9.2fms %9.2fms\n",
				name, o.ReqPerSec, n.ReqPerSec,
				o.LatencyMs.P99, n.LatencyMs.P99, o.LatencyMs.P999, n.LatencyMs.P999)
			fewer(name, o.ReqPerSec, n.ReqPerSec)
			slower(name, "p99", o.LatencyMs.P99, n.LatencyMs.P99)
			slower(name, "p99.9", o.LatencyMs.P999, n.LatencyMs.P999)
		}
	}

	oldRate := errorRate(oldR.Errors, oldR.Requests)
	newRate := errorRate(newR.Errors, newR.Requests)
	fmt.Fprintf(w, "errors: old %.2f%% new %.2f%%\n", 100*oldRate, 100*newRate)
	if newRate > maxErrorRate && oldRate <= maxErrorRate {
		regressed = append(regressed, fmt.Sprintf("error rate %.1f%%", 100*newRate))
	}

	if len(regressed) > 0 {
		return fmt.Errorf("load regressed beyond %.0f%%: %s", threshold, strings.Join(regressed, ", "))
	}
	return nil
}
