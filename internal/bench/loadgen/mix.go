package loadgen

import (
	"fmt"
	"strconv"
	"strings"
)

// Mix weighs the four op classes of the generated workload. Weights are
// relative, not percentages: {Get: 7, Put: 2, Batch: 1, Queue: 1} and
// {Get: 70, Put: 20, Batch: 10, Queue: 10} draw the same stream. A zero
// weight disables the class entirely.
type Mix struct {
	Get   int `json:"get"`   // single-entry GET on the fingerprint distribution
	Put   int `json:"put"`   // single-entry PUT of a fresh synthetic record
	Batch int `json:"batch"` // batched multi-entry get/put (alternating)
	Queue int `json:"queue"` // full lease lifecycle: enqueue → lease → heartbeat → complete
}

// DefaultMix is a read-heavy cache-plus-coordinator profile: what a
// build farm's traffic actually looks like once the pool is warm.
func DefaultMix() Mix { return Mix{Get: 70, Put: 20, Batch: 5, Queue: 5} }

// classNames is the canonical op-class order, everywhere a mix or a
// report enumerates classes.
var classNames = []string{"get", "put", "batch", "queue"}

// ParseMix parses the -mix flag syntax: comma-separated class=weight
// pairs, e.g. "get=70,put=20,batch=5,queue=5". Omitted classes weigh
// zero; at least one class must be positive; repeating a class,
// negative weights, and unknown classes are errors.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, fmt.Errorf("loadgen: empty mix")
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return m, fmt.Errorf("loadgen: empty mix component in %q", s)
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix component %q is not class=weight", part)
		}
		name = strings.TrimSpace(name)
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return m, fmt.Errorf("loadgen: mix weight in %q: %v", part, err)
		}
		if w < 0 {
			return m, fmt.Errorf("loadgen: negative mix weight in %q", part)
		}
		if seen[name] {
			return m, fmt.Errorf("loadgen: class %q repeated in mix %q", name, s)
		}
		seen[name] = true
		switch name {
		case "get":
			m.Get = w
		case "put":
			m.Put = w
		case "batch":
			m.Batch = w
		case "queue":
			m.Queue = w
		default:
			return m, fmt.Errorf("loadgen: unknown op class %q (valid: %s)",
				name, strings.Join(classNames, ", "))
		}
	}
	if m.Total() == 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

// Total is the sum of the weights.
func (m Mix) Total() int { return m.Get + m.Put + m.Batch + m.Queue }

// weight returns the class's weight by canonical name.
func (m Mix) weight(class string) int {
	switch class {
	case "get":
		return m.Get
	case "put":
		return m.Put
	case "batch":
		return m.Batch
	case "queue":
		return m.Queue
	}
	return 0
}

// Classes lists the requested (positive-weight) op classes in canonical
// order — what a report must have non-zero counts for.
func (m Mix) Classes() []string {
	var out []string
	for _, c := range classNames {
		if m.weight(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// String renders the mix in the -mix flag syntax, canonical order,
// zero-weight classes omitted.
func (m Mix) String() string {
	var parts []string
	for _, c := range classNames {
		if w := m.weight(c); w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, w))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, ",")
}
