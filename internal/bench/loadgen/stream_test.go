package loadgen

import (
	"regexp"
	"testing"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

// drawOps plans n operations from a fresh stream.
func drawOps(seed uint64, client int, mix Mix, n int) []Op {
	s := NewStream(seed, client, mix, 256, 0.1, 0.2)
	out := make([]Op, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// The determinism contract behind -seed: the op stream is a pure
// function of (seed, client).
func TestStreamDeterministic(t *testing.T) {
	a := drawOps(42, 3, DefaultMix(), 5000)
	b := drawOps(42, 3, DefaultMix(), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs on replay: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Different seeds and different clients must draw different streams —
// otherwise "8 clients" is one client with an echo.
func TestStreamsIndependent(t *testing.T) {
	same := func(a, b []Op) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := drawOps(42, 3, DefaultMix(), 200)
	if same(base, drawOps(42, 4, DefaultMix(), 200)) {
		t.Error("clients 3 and 4 drew identical streams")
	}
	if same(base, drawOps(43, 3, DefaultMix(), 200)) {
		t.Error("seeds 42 and 43 drew identical streams")
	}
}

// The planned stream must honor the mix weights, the miss fraction and
// the abandon fraction within sampling noise.
func TestStreamHonorsMix(t *testing.T) {
	const n = 100000
	mix := DefaultMix()
	counts := map[string]int{}
	misses, gets, abandons, queues := 0, 0, 0, 0
	s := NewStream(7, 0, mix, 256, 0.1, 0.25)
	for i := 0; i < n; i++ {
		op := s.Next()
		counts[op.Kind.Class()]++
		if op.Kind == OpGet {
			gets++
			if op.Miss {
				misses++
			}
		}
		if op.Kind == OpQueue {
			queues++
			if op.Abandon {
				abandons++
			}
		}
	}
	for _, class := range mix.Classes() {
		want := float64(n) * float64(mix.weight(class)) / float64(mix.Total())
		got := float64(counts[class])
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("class %s: %d ops, want ≈%.0f", class, counts[class], want)
		}
	}
	if frac := float64(misses) / float64(gets); frac < 0.08 || frac > 0.12 {
		t.Errorf("miss fraction %.3f, want ≈0.1", frac)
	}
	if frac := float64(abandons) / float64(queues); frac < 0.2 || frac > 0.3 {
		t.Errorf("abandon fraction %.3f, want ≈0.25", frac)
	}
}

// A zero-weight class must never be planned.
func TestStreamSkipsDisabledClasses(t *testing.T) {
	for _, op := range drawOps(9, 0, Mix{Get: 1, Queue: 1}, 10000) {
		if c := op.Kind.Class(); c != "get" && c != "queue" {
			t.Fatalf("zero-weight class %s was planned", c)
		}
	}
}

// GET indices must show the configured hot-set skew: the first 12.5% of
// the population takes ~80% of the non-miss traffic.
func TestStreamHotSetSkew(t *testing.T) {
	const population = 256
	s := NewStream(11, 0, Mix{Get: 1}, population, 0, 0)
	hot, total := 0, 0
	for i := 0; i < 50000; i++ {
		op := s.Next()
		if op.Index >= population {
			t.Fatalf("index %d beyond population %d", op.Index, population)
		}
		total++
		if op.Index < population/8 {
			hot++
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.75 || frac > 0.90 {
		t.Errorf("hot-set fraction %.3f, want ≈0.8+", frac)
	}
}

var fpPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Every generated fingerprint must be a valid store key, stable across
// calls, and the three namespaces must never collide.
func TestFingerprints(t *testing.T) {
	seen := map[string]string{}
	check := func(kind, fp string) {
		if !fpPattern.MatchString(fp) {
			t.Fatalf("%s fingerprint %q is not a store key", kind, fp)
		}
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision between %s and %s", prev, kind)
		}
		seen[fp] = kind
	}
	for i := uint64(0); i < 50; i++ {
		check("pop", popFingerprint(1, i))
		check("miss", missFingerprint(1, 0, i))
		check("put", putFingerprint(1, 0, i, 0))
		check("put-batch", putFingerprint(1, 0, i, 1))
	}
	if popFingerprint(1, 7) != popFingerprint(1, 7) {
		t.Error("popFingerprint not stable")
	}
	if popFingerprint(1, 7) == popFingerprint(2, 7) {
		t.Error("popFingerprint ignores seed")
	}
}

// Synthetic entries must survive the server's real upload validation:
// decode, checksum, record shape.
func TestSyntheticRecordValid(t *testing.T) {
	for i := uint64(0); i < 10; i++ {
		fp := popFingerprint(3, i)
		data, err := encodedEntry(fp, i)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := store.Decode(data, fp)
		if err != nil {
			t.Fatalf("entry %d fails validation: %v", i, err)
		}
		if rec.Workload != "loadgen" {
			t.Errorf("entry %d workload %q", i, rec.Workload)
		}
	}
}

// Queue specs must draw from the real roster with valid heuristic sets,
// and the space must be finite but non-trivial so concurrent clients
// both collide (idempotent enqueue) and spread (several distinct jobs).
func TestJobSpecSpace(t *testing.T) {
	ids := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		spec := jobSpecAt(i)
		if _, ok := workload.Named(spec.Workload); !ok {
			t.Fatalf("spec %d names unknown workload %q", i, spec.Workload)
		}
		switch spec.Opts.Switch {
		case lower.SetI, lower.SetII, lower.SetIII:
		default:
			t.Fatalf("spec %d has invalid heuristic set %v", i, spec.Opts.Switch)
		}
		ids[spec.ID()] = true
	}
	if len(ids) < 10 {
		t.Errorf("only %d distinct specs in 1000 draws", len(ids))
	}
	if jobSpecAt(5).ID() != jobSpecAt(5).ID() {
		t.Error("jobSpecAt not stable")
	}
}
