// Package loadgen drives a running brstored with a deterministic mixed
// workload and reports per-op-class latency and throughput — the brperf
// -server subsystem.
//
// The generator is closed-loop: each of N clients issues its next
// operation when the previous one finishes, so measured latency is
// honest server latency rather than coordinated-omission noise from an
// open-loop arrival schedule. Each client plans its operations with a
// Stream — a pure function of (seed, client) — so two runs with the
// same flags replay identical traffic, and every request travels
// through storenet.Client, the production path with its retries, gzip,
// single-flight and validation, observed via the client's Observer
// hook rather than a parallel HTTP stack.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
)

// Config shapes one load run.
type Config struct {
	// URL is the brstored base URL. Required.
	URL string
	// Clients is the number of concurrent closed-loop clients.
	// <= 0 means 8.
	Clients int
	// Duration is how long to generate load. <= 0 means 10s.
	Duration time.Duration
	// Mix weighs the op classes. Zero value means DefaultMix.
	Mix Mix
	// Seed selects the deterministic workload stream. 0 means 1.
	Seed uint64
	// Abandon is the fraction of queue lifecycles that lease and walk
	// away, feeding the server's TTL expiry sweep. 0 disables.
	Abandon float64
	// Population is the pre-seeded entry count GETs draw from.
	// <= 0 means 256.
	Population int
	// MissFrac is the fraction of GETs aimed at never-stored
	// fingerprints. 0 means 0.1; negative disables misses.
	MissFrac float64
	// BatchSize is the entry count per batch op. <= 0 means 16.
	BatchSize int
	// Timeout bounds each HTTP request. <= 0 means 5s.
	Timeout time.Duration
	// Logf receives progress notices. Nil discards them.
	Logf func(format string, args ...interface{})
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix.Total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Population <= 0 {
		c.Population = 256
	}
	if c.MissFrac == 0 {
		c.MissFrac = 0.1
	} else if c.MissFrac < 0 {
		c.MissFrac = 0
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// classAcc accumulates one op class on one client.
type classAcc struct {
	hist     Histogram
	errors   uint64
	outcomes map[string]uint64
}

// recorder is one client's latency sink. Not locked: the closed loop
// guarantees one observation at a time, and recorders are merged after
// the run.
type recorder struct {
	classes map[string]*classAcc
}

// classFor maps an Observation's op name onto the report's op classes.
// Every queue-protocol request is one "queue" observation: the class
// measures coordinator round-trips, not whole lifecycles, so an
// abandoned lease contributes its enqueue and lease like any other.
func classFor(op string) string {
	switch op {
	case "get", "head":
		return "get"
	case "put":
		return "put"
	case "batch-get", "batch-put":
		return "batch"
	case "enqueue", "lease", "heartbeat", "complete", "status":
		return "queue"
	}
	return op
}

// classify folds the client's outcome vocabulary into the report's.
// Misses are planned (MissFrac) and lease conflicts are the expected
// sound of contention under expiry churn — both are outcomes, not
// errors. Fallback means the breaker path answered instead of the
// server, which for a load generator is always a failure.
func classify(o storenet.Observation) (outcome string, isErr bool) {
	switch o.Outcome {
	case "error":
		if errors.Is(o.Err, queue.ErrLeaseConflict) || errors.Is(o.Err, queue.ErrGone) {
			return "conflict", false
		}
		return "error", true
	case "fallback":
		return "fallback", true
	default: // ok, hit, miss
		return o.Outcome, false
	}
}

// observe records one client observation.
func (r *recorder) observe(o storenet.Observation) {
	class := classFor(o.Op)
	acc := r.classes[class]
	if acc == nil {
		acc = &classAcc{outcomes: map[string]uint64{}}
		r.classes[class] = acc
	}
	outcome, isErr := classify(o)
	acc.hist.Record(o.Duration)
	acc.outcomes[outcome]++
	if isErr {
		acc.errors++
	}
}

// Run executes one load run: snapshot the server, seed the GET
// population, fire cfg.Clients closed-loop clients for cfg.Duration,
// snapshot again, and fold the per-client recorders into a Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no server URL")
	}

	// The setup client is unobserved — seeding the population is not load.
	setup, err := storenet.NewClient(cfg.URL, storenet.ClientConfig{
		Timeout: cfg.Timeout,
		// A load generator that trips its breaker stops generating load
		// and measures nothing; errors must surface per-op instead.
		BreakerThreshold: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	if err := seedPopulation(ctx, setup, cfg); err != nil {
		return nil, fmt.Errorf("loadgen: seeding population: %w", err)
	}

	// Snapshot after seeding, so the delta is the load and only the load.
	before, err := setup.Metrics(ctx)
	if err != nil {
		// An older server without /metrics.json still takes load fine;
		// the report just loses its server-side cross-check.
		cfg.Logf("loadgen: no server metrics snapshot: %v", err)
		before = nil
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	recorders := make([]*recorder, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		rec := &recorder{classes: map[string]*classAcc{}}
		recorders[i] = rec
		client, err := storenet.NewClient(cfg.URL, storenet.ClientConfig{
			Timeout:          cfg.Timeout,
			BreakerThreshold: 1 << 30,
			Observer: func(o storenet.Observation) {
				// An op cut off by the run deadline measures the
				// deadline, not the server: drop it.
				if runCtx.Err() != nil {
					return
				}
				rec.observe(o)
			},
		})
		if err != nil {
			cancel()
			return nil, err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(runCtx, client, rec, cfg, id)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > cfg.Duration {
		// In-flight ops past the deadline are unrecorded; rate against
		// the window that was actually measured.
		elapsed = cfg.Duration
	}

	var after *storenet.MetricsSnapshot
	if before != nil {
		if after, err = setup.Metrics(ctx); err != nil {
			cfg.Logf("loadgen: closing metrics snapshot: %v", err)
			after = nil
		}
	}

	return assemble(cfg, elapsed, recorders, before, after), nil
}

// seedChunk bounds one seeding batch upload.
const seedChunk = 64

// seedPopulation uploads the shared GET population. Re-seeding an
// already-seeded server is an idempotent overwrite of identical bytes.
func seedPopulation(ctx context.Context, c *storenet.Client, cfg Config) error {
	cfg.Logf("loadgen: seeding %d population entries", cfg.Population)
	for base := 0; base < cfg.Population; base += seedChunk {
		entries := map[string][]byte{}
		for i := base; i < base+seedChunk && i < cfg.Population; i++ {
			fp := popFingerprint(cfg.Seed, uint64(i))
			data, err := encodedEntry(fp, uint64(i))
			if err != nil {
				return err
			}
			entries[fp] = data
		}
		stored, rejected, err := c.PutBatch(ctx, entries)
		if err != nil {
			return err
		}
		if len(rejected) > 0 {
			return fmt.Errorf("server rejected %d of %d seed entries: %s",
				len(rejected), stored+len(rejected), rejected[0].Error)
		}
	}
	return nil
}

// runClient is one closed-loop client: plan the next op, execute it
// through the production client, repeat until the run deadline. Errors
// are not fatal here — they are what the recorder is for.
func runClient(ctx context.Context, c *storenet.Client, rec *recorder, cfg Config, id int) {
	stream := NewStream(cfg.Seed, id, cfg.Mix, cfg.Population, cfg.MissFrac, cfg.Abandon)
	worker := fmt.Sprintf("loadgen-%04d", id)
	for ctx.Err() == nil {
		op := stream.Next()
		switch op.Kind {
		case OpGet:
			fp := popFingerprint(cfg.Seed, op.Index)
			if op.Miss {
				fp = missFingerprint(cfg.Seed, id, op.Index)
			}
			c.Get(ctx, fp)
		case OpPut:
			fp := putFingerprint(cfg.Seed, id, op.Index, 0)
			c.Put(ctx, fp, syntheticRecord(op.Index))
		case OpBatchGet:
			fps := make([]string, cfg.BatchSize)
			for j := range fps {
				fps[j] = popFingerprint(cfg.Seed, (op.Index+uint64(j))%uint64(cfg.Population))
			}
			c.GetBatch(ctx, fps)
		case OpBatchPut:
			entries := map[string][]byte{}
			for j := 0; j < cfg.BatchSize; j++ {
				fp := putFingerprint(cfg.Seed, id, op.Index, uint64(j))
				data, err := encodedEntry(fp, op.Index+uint64(j))
				if err != nil {
					continue
				}
				entries[fp] = data
			}
			c.PutBatch(ctx, entries)
		case OpQueue:
			runQueueLifecycle(ctx, c, worker, op)
		}
	}
}

// runQueueLifecycle exercises the coordinator path: enqueue one spec
// from the shared finite grid, lease whatever job the coordinator
// offers (usually someone's enqueue, possibly an expired abandonment),
// then heartbeat and complete it — unless this lifecycle was planned as
// an abandonment, in which case the lease is deliberately left to the
// TTL sweep.
func runQueueLifecycle(ctx context.Context, c *storenet.Client, worker string, op Op) {
	c.EnqueueJobs(ctx, []queue.JobSpec{jobSpecAt(op.Index)})
	lease, _, err := c.LeaseJob(ctx, worker)
	if err != nil || lease == nil {
		return
	}
	if op.Abandon {
		return
	}
	c.HeartbeatJob(ctx, lease.ID, lease.Token)
	c.CompleteJob(ctx, lease.ID, lease.Token, worker, "")
}

// assemble folds the per-client recorders and metrics snapshots into
// the report document.
func assemble(cfg Config, elapsed time.Duration, recorders []*recorder, before, after *storenet.MetricsSnapshot) *Report {
	r := newReport(cfg, elapsed)
	merged := map[string]*classAcc{}
	for _, rec := range recorders {
		for class, acc := range rec.classes {
			m := merged[class]
			if m == nil {
				m = &classAcc{outcomes: map[string]uint64{}}
				merged[class] = m
			}
			m.hist.Merge(&acc.hist)
			m.errors += acc.errors
			for outcome, n := range acc.outcomes {
				m.outcomes[outcome] += n
			}
		}
	}
	secs := elapsed.Seconds()
	for class, acc := range merged {
		stats := &OpStats{
			Requests:  acc.hist.Count(),
			Errors:    acc.errors,
			Outcomes:  acc.outcomes,
			LatencyMs: latencyOf(&acc.hist),
		}
		if secs > 0 {
			stats.ReqPerSec = float64(stats.Requests) / secs
		}
		r.Ops[class] = stats
		r.Requests += stats.Requests
		r.Errors += stats.Errors
	}
	if secs > 0 {
		r.ReqPerSec = float64(r.Requests) / secs
	}
	if before != nil && after != nil {
		r.Server = serverDelta(before, after)
	}
	return r
}

// serverDelta diffs the monotonic counters of two snapshots.
func serverDelta(before, after *storenet.MetricsSnapshot) *ServerDelta {
	d := &ServerDelta{
		Hits:       after.Store.Hits - before.Store.Hits,
		Misses:     after.Store.Misses - before.Store.Misses,
		Puts:       after.Store.Puts - before.Store.Puts,
		PutRejects: after.Store.PutRejects - before.Store.PutRejects,
		BytesIn:    after.Store.BytesIn - before.Store.BytesIn,
		BytesOut:   after.Store.BytesOut - before.Store.BytesOut,
	}
	if before.Queue != nil && after.Queue != nil {
		d.Enqueues = after.Queue.Enqueued - before.Queue.Enqueued
		d.Leases = after.Store.Leases - before.Store.Leases
		d.QueueDone = after.Queue.Done - before.Queue.Done
		d.QueueExpired = after.Queue.Expired - before.Queue.Expired
		d.QueueReclaimed = after.Queue.Reclaimed - before.Queue.Reclaimed
	}
	return d
}
