package loadgen

import (
	"math"
	"sort"
	"testing"
	"time"
)

// The histogram's contract: a reported quantile is never below the true
// quantile and never more than one bucket ratio (2^¼ ≈ 1.19×) above it.
func TestQuantileBounds(t *testing.T) {
	distributions := map[string][]time.Duration{
		"uniform": func() []time.Duration {
			out := make([]time.Duration, 10000)
			for i := range out {
				out[i] = time.Duration(i+1) * time.Microsecond
			}
			return out
		}(),
		"bimodal": func() []time.Duration {
			out := make([]time.Duration, 0, 2000)
			for i := 0; i < 1900; i++ {
				out = append(out, 100*time.Microsecond)
			}
			for i := 0; i < 100; i++ {
				out = append(out, 50*time.Millisecond)
			}
			return out
		}(),
		"geometric": func() []time.Duration {
			out := make([]time.Duration, 0, 1000)
			for i := 0; i < 1000; i++ {
				out = append(out, time.Duration(1<<(i%20))*time.Microsecond)
			}
			return out
		}(),
	}
	ratio := math.Pow(2, 0.25)
	for name, values := range distributions {
		var h Histogram
		for _, v := range values {
			h.Record(v)
		}
		sorted := append([]time.Duration{}, values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(len(sorted)))
			if rank < 1 {
				rank = 1
			}
			truth := sorted[rank-1]
			got := h.Quantile(q)
			if got < truth {
				t.Errorf("%s q%.3f: %v below true %v", name, q, got, truth)
			}
			if float64(got) > float64(truth)*ratio+1 {
				t.Errorf("%s q%.3f: %v more than %.2f× true %v", name, q, got, ratio, truth)
			}
		}
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	values := []time.Duration{3 * time.Microsecond, 7 * time.Millisecond, 50 * time.Microsecond, time.Second}
	var sum time.Duration
	for _, v := range values {
		h.Record(v)
		sum += v
	}
	if h.Count() != uint64(len(values)) {
		t.Errorf("count %d", h.Count())
	}
	if h.Min() != 3*time.Microsecond || h.Max() != time.Second {
		t.Errorf("min %v max %v", h.Min(), h.Max())
	}
	if h.Mean() != sum/time.Duration(len(values)) {
		t.Errorf("mean %v want %v", h.Mean(), sum/time.Duration(len(values)))
	}
}

// Overflow observations (beyond ~71 minutes) keep exact max and count.
func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Hour)
	h.Record(time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Quantile(1); got != 2*time.Hour {
		t.Errorf("overflow quantile %v", got)
	}
}

// A quantile never exceeds the observed maximum, even when the bucket's
// upper edge does.
func TestQuantileClampedToMax(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(1000 * time.Microsecond) // bucket edge for 1000µs is ~1024µs
	}
	if got := h.Quantile(0.99); got != 1000*time.Microsecond {
		t.Errorf("q99 %v beyond observed max", got)
	}
}

func TestHistogramZero(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("zero histogram is not zero-valued")
	}
}

// Merging per-client histograms must equal recording everything in one.
func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		all.Record(d)
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if merged != all {
		t.Error("merged histogram differs from single-recorder histogram")
	}
	var empty Histogram
	merged.Merge(&empty)
	if merged != all {
		t.Error("merging an empty histogram changed the result")
	}
}

// Bucket bounds must be strictly increasing with exact powers of two at
// octave starts — the drift-free property the quantile error bound
// depends on.
func TestHistogramBounds(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v then %v", i, histBounds[i-1], histBounds[i])
		}
	}
	for oct := 0; oct*histBucketsPerOctave < histBuckets; oct++ {
		i := oct*histBucketsPerOctave + histBucketsPerOctave - 1
		want := time.Duration(1) << (oct + 1) * time.Microsecond
		if histBounds[i] != want {
			t.Errorf("octave %d end bound %v, want %v", oct, histBounds[i], want)
		}
	}
}
