package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
)

// bootServer runs a full brstored — store plus work queue with a short
// lease TTL, so abandoned leases actually expire inside the test — on a
// loopback listener.
func bootServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := storenet.NewServer(st)
	srv.AttachQueue(queue.New(200*time.Millisecond, 0))
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// The end-to-end contract of the subsystem: a short mixed run against a
// real brstored finishes with zero unexpected errors, non-zero counts
// for every requested op class, sane latencies, and a server-side
// counter delta that corroborates the client-side story.
func TestRunEndToEnd(t *testing.T) {
	hs := bootServer(t)
	cfg := Config{
		URL:        hs.URL,
		Clients:    4,
		Duration:   1200 * time.Millisecond,
		Seed:       7,
		Abandon:    0.3,
		Population: 64,
	}
	report, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if report.Kind != ReportKind || report.Schema != ReportSchema {
		t.Errorf("report kind/schema %q/%d", report.Kind, report.Schema)
	}
	if report.Errors != 0 {
		t.Errorf("%d unexpected errors; ops: %+v", report.Errors, report.Ops)
	}
	if report.Requests == 0 || report.ReqPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", report)
	}
	for _, class := range DefaultMix().Classes() {
		s := report.Ops[class]
		if s == nil || s.Requests == 0 {
			t.Errorf("requested class %q has no operations", class)
			continue
		}
		if s.LatencyMs.P50 <= 0 || s.LatencyMs.P999 < s.LatencyMs.P50 {
			t.Errorf("class %q latencies implausible: %+v", class, s.LatencyMs)
		}
		if s.LatencyMs.Max < s.LatencyMs.Mean {
			t.Errorf("class %q max below mean: %+v", class, s.LatencyMs)
		}
	}
	if gets := report.Ops["get"]; gets != nil {
		if gets.Outcomes["hit"] == 0 || gets.Outcomes["miss"] == 0 {
			t.Errorf("get outcomes missing hits or misses: %v", gets.Outcomes)
		}
	}

	if report.Server == nil {
		t.Fatal("report carries no server counter delta")
	}
	if report.Server.Hits <= 0 || report.Server.Misses <= 0 || report.Server.Puts <= 0 {
		t.Errorf("server delta implausible: %+v", report.Server)
	}
	if report.Server.PutRejects != 0 {
		t.Errorf("server rejected %d uploads — synthetic records failed validation", report.Server.PutRejects)
	}
	if report.Server.Enqueues <= 0 || report.Server.QueueDone <= 0 {
		t.Errorf("queue delta implausible: %+v", report.Server)
	}

	// The document round-trips through its JSON form.
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != ReportKind || back.Requests != report.Requests || len(back.Ops) != len(report.Ops) {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

// With abandonment on and a 200ms TTL, a slightly longer run must show
// the server expiring leases — the churn path satellite #4 verifies at
// the queue layer, exercised here over the wire.
func TestRunExercisesExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("needs real TTL waits")
	}
	hs := bootServer(t)
	report, err := Run(context.Background(), Config{
		URL:        hs.URL,
		Clients:    4,
		Duration:   1500 * time.Millisecond,
		Mix:        Mix{Queue: 1},
		Seed:       3,
		Abandon:    0.5,
		Population: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Errorf("%d unexpected errors: %+v", report.Errors, report.Ops["queue"])
	}
	if report.Server == nil || report.Server.QueueExpired == 0 {
		t.Errorf("no leases expired under 50%% abandonment: %+v", report.Server)
	}
}

// Run must refuse a missing URL and survive a dead server by reporting
// errors rather than hanging.
func TestRunBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Run without URL succeeded")
	}
	hs := bootServer(t)
	url := hs.URL
	hs.Close()
	if _, err := Run(context.Background(), Config{URL: url, Duration: 100 * time.Millisecond}); err == nil {
		t.Error("Run against dead server succeeded (seeding should fail)")
	}
}

// loadReportFixture builds a plausible report for comparison tests.
func loadReportFixture() *Report {
	mk := func(req uint64, rps, p99 float64) *OpStats {
		return &OpStats{
			Requests:  req,
			ReqPerSec: rps,
			LatencyMs: Latency{P50: p99 / 4, P90: p99 / 2, P99: p99, P999: p99 * 2, Mean: p99 / 3, Max: p99 * 3},
		}
	}
	return &Report{
		Kind: ReportKind, Schema: ReportSchema,
		Clients: 8, Seed: 1, Mix: DefaultMix().String(), DurationSec: 10,
		Requests: 10000, ReqPerSec: 1000,
		Ops: map[string]*OpStats{
			"get":   mk(7000, 700, 2),
			"put":   mk(2000, 200, 5),
			"batch": mk(500, 50, 20),
			"queue": mk(500, 50, 4),
		},
	}
}

func TestCompareReportsPasses(t *testing.T) {
	var out strings.Builder
	if err := CompareReports(&out, loadReportFixture(), loadReportFixture(), 50); err != nil {
		t.Fatalf("identical reports regressed: %v\n%s", err, out.String())
	}
}

// An injected tail-latency collapse must fail the comparison — the CI
// regression gate.
func TestCompareReportsCatchesLatencyRegression(t *testing.T) {
	bad := loadReportFixture()
	bad.Ops["get"].LatencyMs.P99 *= 10
	var out strings.Builder
	err := CompareReports(&out, loadReportFixture(), bad, 100)
	if err == nil {
		t.Fatalf("10× p99 growth passed a 100%% threshold\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "get p99") {
		t.Errorf("regression error does not name the class: %v", err)
	}
}

func TestCompareReportsCatchesThroughputCollapse(t *testing.T) {
	bad := loadReportFixture()
	bad.ReqPerSec /= 10
	bad.Requests /= 10
	for _, s := range bad.Ops {
		s.ReqPerSec /= 10
		s.Requests /= 10
	}
	if err := CompareReports(&strings.Builder{}, loadReportFixture(), bad, 50); err == nil {
		t.Fatal("10× throughput collapse passed a 50% threshold")
	}
}

// Throughput is only comparable between equal run shapes; a reshaped
// run must not be flagged for being smaller.
func TestCompareReportsIgnoresThroughputAcrossShapes(t *testing.T) {
	smaller := loadReportFixture()
	smaller.Clients = 2
	smaller.ReqPerSec /= 4
	for _, s := range smaller.Ops {
		s.ReqPerSec /= 4
	}
	var out strings.Builder
	if err := CompareReports(&out, loadReportFixture(), smaller, 50); err != nil {
		t.Fatalf("cross-shape throughput flagged: %v", err)
	}
	if !strings.Contains(out.String(), "shapes differ") {
		t.Error("comparison did not note the shape difference")
	}
}

// A class present in only one report is informational, not a failure.
func TestCompareReportsTolleratesMixReshape(t *testing.T) {
	noQueue := loadReportFixture()
	delete(noQueue.Ops, "queue")
	if err := CompareReports(&strings.Builder{}, loadReportFixture(), noQueue, 50); err != nil {
		t.Fatalf("dropped class flagged: %v", err)
	}
	if err := CompareReports(&strings.Builder{}, noQueue, loadReportFixture(), 50); err != nil {
		t.Fatalf("added class flagged: %v", err)
	}
}

// An error-rate explosion fails regardless of latency, because a server
// answering 500s quickly is not healthy.
func TestCompareReportsCatchesErrorRate(t *testing.T) {
	bad := loadReportFixture()
	bad.Errors = bad.Requests / 2
	if err := CompareReports(&strings.Builder{}, loadReportFixture(), bad, 50); err == nil {
		t.Fatal("50% error rate passed")
	}
}
