package loadgen

import (
	"sort"
	"time"
)

// The latency histogram is fixed-bucket and log-scale: 4 buckets per
// octave starting at 1µs, 128 buckets spanning 1µs..2³²µs (≈71min),
// plus an overflow bucket. Recording is two array writes — no
// allocation, no dependency — and quantiles are read as the upper edge
// of the bucket holding the target rank, so a reported percentile is
// conservative and never more than 2^(1/4)−1 ≈ 19% above the true
// value. That resolution is plenty to gate "p99 collapsed 5×" in CI,
// which is the job; exact-value histograms are not.
const (
	histBucketsPerOctave = 4
	histBuckets          = 128
)

// histBounds[i] is the inclusive upper edge of bucket i.
var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	// Successive bounds differ by 2^(1/4); computing each octave from an
	// exact power of two keeps float drift from compounding.
	ratios := [histBucketsPerOctave]float64{1.1892071150027210667, 1.4142135623730950488, 1.6817928305074290860, 2}
	for i := range b {
		octave := time.Duration(1) << (i / histBucketsPerOctave) * time.Microsecond
		b[i] = time.Duration(float64(octave) * ratios[i%histBucketsPerOctave])
	}
	return b
}()

// Histogram accumulates one op class's latencies. The zero value is
// ready to use. Not safe for concurrent use: each load client owns one
// and they are merged after the run, so the hot path takes no lock.
type Histogram struct {
	counts   [histBuckets + 1]uint64 // +1: overflow
	total    uint64
	sum      time.Duration
	min, max time.Duration
}

// bucketFor returns the bucket index holding d.
func bucketFor(d time.Duration) int {
	if d <= histBounds[0] {
		return 0
	}
	if d > histBounds[histBuckets-1] {
		return histBuckets
	}
	return sort.Search(histBuckets, func(i int) bool { return d <= histBounds[i] })
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count is the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean is the exact arithmetic mean (the sum is tracked outside the
// buckets).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max is the exact largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Min is the exact smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Quantile returns the upper edge of the bucket holding the q-quantile
// observation (0 < q <= 1); for the overflow bucket it returns the
// exact maximum. Zero observations quantile to 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			if i == histBuckets {
				return h.max
			}
			// Never report past the observed extremes: a single-bucket
			// distribution quantiles to its own range, not the edge.
			b := histBounds[i]
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}
