package loadgen

import (
	"reflect"
	"testing"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		in   string
		want Mix
	}{
		{"get=70,put=20,batch=5,queue=5", Mix{70, 20, 5, 5}},
		{"get=7,put=2,batch=1,queue=1", Mix{7, 2, 1, 1}},
		{"get=1", Mix{Get: 1}},
		{"queue=3,get=1", Mix{Get: 1, Queue: 3}},
		{" get = 10 , put = 5 ", Mix{Get: 10, Put: 5}},
		{"get=1,put=0", Mix{Get: 1}},
	}
	for _, c := range cases {
		got, err := ParseMix(c.in)
		if err != nil {
			t.Errorf("ParseMix(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, in := range []string{
		"",                  // empty
		"   ",               // blank
		"get=1,,put=2",      // empty component
		"get",               // no weight
		"get=",              // empty weight
		"get=x",             // non-numeric
		"get=-1",            // negative
		"get=1,get=2",       // repeated class
		"fetch=1",           // unknown class
		"get=0,put=0",       // nothing positive
	} {
		if _, err := ParseMix(in); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", in)
		}
	}
}

func TestMixStringRoundTrip(t *testing.T) {
	for _, m := range []Mix{DefaultMix(), {Get: 1}, {Get: 3, Queue: 2}, {Put: 1, Batch: 1}} {
		got, err := ParseMix(m.String())
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %+v → %q → %+v", m, m.String(), got)
		}
	}
}

func TestMixClasses(t *testing.T) {
	if got := DefaultMix().Classes(); !reflect.DeepEqual(got, []string{"get", "put", "batch", "queue"}) {
		t.Errorf("DefaultMix classes %v", got)
	}
	if got := (Mix{Queue: 1, Get: 2}).Classes(); !reflect.DeepEqual(got, []string{"get", "queue"}) {
		t.Errorf("sparse mix classes %v", got)
	}
}
