package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

// rng is a splitmix64 generator: tiny, fast, and — unlike math/rand's
// global state — fully determined by its seed, which is what makes a
// load run replayable: same -seed, same op stream per client, byte for
// byte.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform integer in [0, n). The modulo bias is far
// below anything a load distribution can notice.
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// OpKind is one planned operation's class.
type OpKind int

const (
	OpGet      OpKind = iota // single-entry fetch
	OpPut                    // single-entry upload
	OpBatchGet               // batched multi-entry fetch
	OpBatchPut               // batched multi-entry upload
	OpQueue                  // full lease lifecycle
)

// Class maps the op kind onto the report's op classes (both batch
// directions report as "batch").
func (k OpKind) Class() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpBatchGet, OpBatchPut:
		return "batch"
	case OpQueue:
		return "queue"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one planned operation. Index is a population index for hot/cold
// gets and a per-stream uniqueness counter for everything that creates
// state (puts, batch puts, queue specs); Miss marks a get aimed at a
// fingerprint that was never stored; Abandon marks a queue lifecycle
// that leases and then walks away, so the server's TTL expiry sweep has
// something to do.
type Op struct {
	Kind    OpKind
	Index   uint64
	Miss    bool
	Abandon bool
}

// Stream plans one client's operations: a deterministic function of
// (seed, client), independent of timing, server behaviour, and every
// other client. Replaying a seed replays the exact op sequence — the
// property the determinism tests pin and the property that makes two
// load runs comparable.
type Stream struct {
	rng        rng
	mix        Mix
	total      uint64
	population uint64
	hot        uint64
	missFrac   float64
	abandon    float64
	seq        uint64
}

// hotFraction and hotWeight shape the fingerprint distribution: the
// first hotFraction of the population receives hotWeight of the non-miss
// GET traffic — the classic skewed cache profile (a small working set
// plus a long uniform tail) rather than a flat scan no cache ever sees.
const (
	hotFraction = 0.125
	hotWeight   = 0.8
)

// NewStream returns client's op stream for seed. population is the
// number of pre-seeded entries GETs draw from; missFrac is the fraction
// of GETs aimed at never-stored fingerprints; abandon is the fraction
// of queue lifecycles that walk away after leasing.
func NewStream(seed uint64, client int, mix Mix, population int, missFrac, abandon float64) *Stream {
	if population < 1 {
		population = 1
	}
	hot := uint64(float64(population) * hotFraction)
	if hot < 1 {
		hot = 1
	}
	s := &Stream{
		// Scramble the (seed, client) pair through the mixer so streams
		// for adjacent seeds or clients share nothing.
		rng:        rng{state: seed ^ (uint64(client)+1)*0xA24BAED4963EE407},
		mix:        mix,
		total:      uint64(mix.Total()),
		population: uint64(population),
		hot:        hot,
		missFrac:   missFrac,
		abandon:    abandon,
	}
	for i := 0; i < 4; i++ {
		s.rng.next()
	}
	return s
}

// Next plans the next operation.
func (s *Stream) Next() Op {
	s.seq++
	pick := s.rng.intn(s.total)
	switch {
	case pick < uint64(s.mix.Get):
		if s.rng.float() < s.missFrac {
			return Op{Kind: OpGet, Index: s.seq, Miss: true}
		}
		return Op{Kind: OpGet, Index: s.pickEntry()}
	case pick < uint64(s.mix.Get+s.mix.Put):
		return Op{Kind: OpPut, Index: s.seq}
	case pick < uint64(s.mix.Get+s.mix.Put+s.mix.Batch):
		// Batches alternate direction by a dedicated draw so the ratio
		// stays 50/50 regardless of what else the stream planned.
		if s.rng.next()&1 == 0 {
			return Op{Kind: OpBatchGet, Index: s.pickEntry()}
		}
		return Op{Kind: OpBatchPut, Index: s.seq}
	default:
		return Op{Kind: OpQueue, Index: s.seq, Abandon: s.rng.float() < s.abandon}
	}
}

// pickEntry draws a population index with hot-set skew.
func (s *Stream) pickEntry() uint64 {
	if s.population <= s.hot || s.rng.float() < hotWeight {
		return s.rng.intn(s.hot)
	}
	return s.hot + s.rng.intn(s.population-s.hot)
}

// fingerprintOf derives a valid store key (lowercase SHA-256 hex) from a
// namespaced description. Everything loadgen stores is keyed this way,
// so a run's traffic can never collide with real build entries — the
// hash input vocabulary is disjoint from store.Fingerprint's.
func fingerprintOf(format string, args ...interface{}) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("loadgen "+format, args...)))
	return hex.EncodeToString(sum[:])
}

// popFingerprint is population entry i's key. All clients of one run
// share the population, so only the run seed and the index feed it.
func popFingerprint(seed, i uint64) string {
	return fingerprintOf("pop seed=%d i=%d", seed, i)
}

// missFingerprint is a key no run ever stores: the cold-miss side of the
// GET distribution.
func missFingerprint(seed uint64, client int, i uint64) string {
	return fingerprintOf("miss seed=%d client=%d i=%d", seed, client, i)
}

// putFingerprint is a fresh key for one uploaded entry. (client, i, j)
// is unique per run — i is the per-stream op counter, j the position
// within a batch — so PUTs always exercise the write path, never the
// idempotent-overwrite one.
func putFingerprint(seed uint64, client int, i, j uint64) string {
	return fingerprintOf("put seed=%d client=%d i=%d j=%d", seed, client, i, j)
}

// syntheticRecord builds a valid build record whose content varies with
// i. It must survive the server's full upload validation — schema,
// checksum, record shape — because loadgen measures the production
// trust boundary, not a bypass; the "loadgen" workload name keeps the
// traffic recognizable in a shared pool.
func syntheticRecord(i uint64) *store.Record {
	out := []byte(fmt.Sprintf("loadgen entry %d\n", i))
	// Pad the payload toward ~1KB encoded so wire and disk costs resemble
	// a real (if small) result entry rather than an empty envelope.
	pad := make([]byte, 256)
	for j := range pad {
		pad[j] = byte(i + uint64(j)*31)
	}
	return &store.Record{
		Workload: "loadgen",
		Set:      int(lower.SetI),
		Opts:     pipeline.Options{Switch: lower.SetI, Optimize: true},
		Base: &store.Measurement{
			Stats:  interp.Stats{Insts: i%100000 + 1000, CondBranches: i % 997},
			Output: append(out, pad...),
		},
		Reord: &store.Measurement{
			Stats:  interp.Stats{Insts: i%100000 + 900, CondBranches: i % 991},
			Output: append([]byte{}, out...),
		},
		StaticBase:  int64(i % 512),
		StaticReord: int64(i % 480),
		Seqs:        []store.SeqStat{{Applied: i%2 == 0, OrigBranches: int(i%7) + 2, NewBranches: int(i % 7)}},
	}
}

// encodedEntry is population/put entry i serialized under fp, ready for
// the single or batch PUT path.
func encodedEntry(fp string, i uint64) ([]byte, error) {
	return store.Encode(fp, syntheticRecord(i))
}

// rosterNames is the workload roster, fixed at init: queue job specs
// must name workloads the coordinator's enqueue validation knows.
var rosterNames = func() []string {
	all := workload.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}()

// jobSpecAt maps a stream index onto the finite (workload × options)
// spec space — 8 transform/common-successor combinations × 3 heuristic
// sets × the roster. Clients deliberately share this space: concurrent
// enqueues of the same spec exercise the coordinator's idempotency
// exactly the way a resumed farm does.
func jobSpecAt(i uint64) queue.JobSpec {
	sets := [...]lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
	return queue.JobSpec{
		Workload: rosterNames[(i/24)%uint64(len(rosterNames))],
		Opts: pipeline.Options{
			Switch:          sets[(i/8)%3],
			Optimize:        true,
			CommonSuccessor: i&1 != 0,
			Transform: core.TransformOptions{
				NoBoundOrder: i&2 != 0,
				NoCmpReuse:   i&4 != 0,
			},
		},
	}
}
