package bench

import (
	"context"

	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

// Job is one build+measure request of the evaluation matrix.
type Job struct {
	Workload workload.Workload
	Opts     pipeline.Options
}

// SuiteJobs enumerates the standard evaluation matrix — every heuristic
// set (in presentation order) × every workload (in the given order) —
// exactly as SuiteOf and Suite.AllRuns do. The fixed enumeration is what
// lets distinct machines shard it without coordination.
func SuiteJobs(ws []workload.Workload) []Job {
	sets := Sets()
	jobs := make([]Job, 0, len(sets)*len(ws))
	for _, set := range sets {
		for _, w := range ws {
			jobs = append(jobs, Job{Workload: w, Opts: BaseOptions(set)})
		}
	}
	return jobs
}

// ModJobs returns a copy of jobs with every job's options passed
// through mod — how a cross-cutting configuration such as -profile-merge
// applies to an enumerated matrix. A nil mod returns jobs unchanged.
func ModJobs(jobs []Job, mod func(pipeline.Options) pipeline.Options) []Job {
	if mod == nil {
		return jobs
	}
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Opts = mod(j.Opts)
		out[i] = j
	}
	return out
}

// ShardJobs returns partition shard of n: job i goes to shard i mod n,
// so every job lands in exactly one shard, shards differ in size by at
// most one job, and the assignment depends only on the job order.
func ShardJobs(jobs []Job, shard, n int) []Job {
	var out []Job
	for i, j := range jobs {
		if i%n == shard {
			out = append(out, j)
		}
	}
	return out
}

// RunJobs builds and measures every job on the engine's worker pool,
// returning results in job order regardless of completion order. The
// first non-cancellation error cancels the remaining jobs.
func (e *Engine) RunJobs(ctx context.Context, jobs []Job) ([]*ProgramRun, error) {
	runs := make([]*ProgramRun, len(jobs))
	err := e.gather(ctx, len(jobs), func(ctx context.Context, i int) error {
		r, err := e.Get(ctx, jobs[i].Workload, jobs[i].Opts)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}
