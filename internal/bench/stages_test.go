package bench

import (
	"context"
	"reflect"
	"testing"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// The ablation grid is the staged pipeline's reason to exist: five
// variants of one workload must share one frontend and two training runs
// (the four CommonSuccessor=false variants share one, "+common-succ"
// needs its own).
func TestAblationGridSharesStages(t *testing.T) {
	e := NewEngine(4, nil)
	rows, err := RunAblationWith(context.Background(), e, lower.SetIII, []string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	st := e.Stats()
	nvar := len(AblationVariants(lower.SetIII))
	if st.Builds != nvar {
		t.Errorf("builds: %d, want %d", st.Builds, nvar)
	}
	if st.FrontendRuns != 1 {
		t.Errorf("frontend runs: %d, want 1 (variants did not share stage 1)", st.FrontendRuns)
	}
	if st.TrainRuns != 2 {
		t.Errorf("training runs: %d, want 2 (one per detection config)", st.TrainRuns)
	}
	if st.FrontendHits == 0 || st.TrainHits == 0 {
		t.Errorf("no stage hits recorded: %+v", st)
	}
}

// A warm disk tier must hand a new engine the stage-2 profile even when
// the whole-build record misses (a Transform variant it has never seen),
// so only the cheap finalize stage runs — and the result must be
// identical to a fully cold build of that variant.
func TestProfileTierSkipsTraining(t *testing.T) {
	ws := subset(t, "wc")
	ctx := context.Background()
	dir := t.TempDir()

	a := NewEngine(2, nil)
	a.UseStore(openStore(t, dir))
	if _, err := a.Get(ctx, ws[0], BaseOptions(lower.SetI)); err != nil {
		t.Fatal(err)
	}
	as := a.Stats()
	if as.ProfilePuts != 1 || as.TrainRuns != 1 {
		t.Fatalf("machine A did not persist its training product: %+v", as)
	}

	// Machine B asks for a Transform variant A never built: whole-build
	// record misses, profile record hits.
	vary := BaseOptions(lower.SetI)
	vary.Transform.NoTailDup = true

	b := NewEngine(2, nil)
	b.UseStore(openStore(t, dir))
	rb, err := b.Get(ctx, ws[0], vary)
	if err != nil {
		t.Fatal(err)
	}
	bs := b.Stats()
	if bs.DiskHits != 0 || bs.Builds != 1 {
		t.Fatalf("variant unexpectedly served from the whole-build tier: %+v", bs)
	}
	if bs.ProfileHits != 1 || bs.TrainRuns != 0 {
		t.Errorf("training was not skipped via the profile tier: %+v", bs)
	}
	if bs.FrontendRuns != 1 {
		t.Errorf("frontend runs: %d, want 1", bs.FrontendRuns)
	}

	cold := NewEngine(2, nil)
	rc, err := cold.Get(ctx, ws[0], vary)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rb.Record(), rc.Record()) {
		t.Errorf("profile-warm build differs from cold build:\nwarm: %+v\ncold: %+v", rb.Record(), rc.Record())
	}
}

// Profile records must travel the remote tier like build records: machine
// A uploads its training product, machine B — cold disk — skips the
// training run for a variant the fleet has never finalized.
func TestRemoteProfileWarmsSecondMachine(t *testing.T) {
	_, client := remoteFixture(t)
	ws := subset(t, "wc")
	ctx := context.Background()

	a := NewEngine(2, nil)
	a.UseRemote(client)
	if _, err := a.Get(ctx, ws[0], BaseOptions(lower.SetI)); err != nil {
		t.Fatal(err)
	}
	if as := a.Stats(); as.ProfilePuts != 1 {
		t.Fatalf("machine A did not upload its training product: %+v", as)
	}

	vary := BaseOptions(lower.SetI)
	vary.Transform.NoBoundOrder = true
	bDisk := t.TempDir()
	b := NewEngine(2, nil)
	b.UseStore(openStore(t, bDisk))
	b.UseRemote(client)
	if _, err := b.Get(ctx, ws[0], vary); err != nil {
		t.Fatal(err)
	}
	bs := b.Stats()
	if bs.ProfileHits != 1 || bs.TrainRuns != 0 {
		t.Errorf("remote profile did not skip the training run: %+v", bs)
	}

	// The remote hit was written through to B's disk: a third engine on
	// the same disk (dead remote) still skips training.
	c := NewEngine(2, nil)
	c.UseStore(openStore(t, bDisk))
	varyMore := vary
	varyMore.Transform.NoCmpReuse = true
	if _, err := c.Get(ctx, ws[0], varyMore); err != nil {
		t.Fatal(err)
	}
	if cs := c.Stats(); cs.ProfileHits != 1 || cs.TrainRuns != 0 {
		t.Errorf("write-through profile missing from B's disk: %+v", cs)
	}
}

// AutoBuild's three candidate sets share one stage cache; handing it a
// pre-warmed cache must skip every frontend and training run.
func TestAutoBuildSharesStageCache(t *testing.T) {
	ws := subset(t, "wc")
	w := ws[0]
	cache := pipeline.NewStageCache(0)
	for _, set := range Sets() {
		if _, err := cache.Build(w.Source, w.Train(), BaseOptions(set)); err != nil {
			t.Fatal(err)
		}
	}
	warm := cache.Stats()
	if _, err := pipeline.AutoBuildWith(cache, w.Source, w.Train(), pipeline.Options{Optimize: true}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.FrontendRuns != warm.FrontendRuns || st.TrainRuns != warm.TrainRuns {
		t.Errorf("AutoBuild recomputed warmed stages: before %+v, after %+v", warm, st)
	}
	if st.TrainHits <= warm.TrainHits {
		t.Errorf("AutoBuild did not consult the shared cache: before %+v, after %+v", warm, st)
	}
}
