package bench

import (
	"context"
	"reflect"
	"testing"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/profile"
)

// The zero profile configuration and the study's rate-1 reference must
// be invisible: builds carrying them measure exactly what a plain build
// measures. This is the differential guard for the whole subsystem —
// when nobody asks for sampling, nothing changes.
func TestExactModeMatchesPlainBuild(t *testing.T) {
	ws := subset(t, "wc", "sort")
	for _, w := range ws {
		plain, err := RunOpts(w, BaseOptions(lower.SetII))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RunOpts(w, ProfileStudyOptions(profile.DriftCross, 1, 7, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Base, ref.Base) || !reflect.DeepEqual(plain.Reord, ref.Reord) {
			t.Errorf("%s: rate-1 reference measured differently from a plain build", w.Name)
		}
		if !reflect.DeepEqual(plain.Seqs, ref.Seqs) {
			t.Errorf("%s: rate-1 reference selected different orderings", w.Name)
		}
	}
}

// A sampled build must degrade gracefully: same sequence count, and the
// injected-bias arm must actually corrupt selection inputs (the study's
// proof that its metrics are live).
func TestProfileStudyRowsReactToBias(t *testing.T) {
	ws := subset(t, "wc", "sort", "lex")
	ctx := context.Background()
	rates := []int{1, 8}
	clean, err := RunProfileStudyWith(ctx, NewEngine(4, nil), ws, rates, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ws) * len(ProfileStudyDrifts()) * len(rates); len(clean) != want {
		t.Fatalf("%d rows, want %d", len(clean), want)
	}
	for _, r := range clean {
		if r.Rate == 1 && (r.OrderAgree != 100 || r.DefaultAgree != 100 || r.CycleDelta != 0) {
			t.Errorf("%s/%s rate 1: reference row disagrees with itself: %+v", r.Workload, r.Drift, r)
		}
		if r.Seqs == 0 {
			t.Errorf("%s/%s 1/%d: no sequences compared", r.Workload, r.Drift, r.Rate)
		}
	}
	// A large bias swamps every sampled count; some selection must move.
	biased, err := RunProfileStudyWith(ctx, NewEngine(4, nil), ws, rates, 1, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(clean, biased) {
		t.Error("bias injection left every study row unchanged")
	}
	for _, r := range biased {
		if r.Rate == 1 && (r.OrderAgree != 100 || r.CycleDelta != 0) {
			t.Errorf("%s/%s: bias leaked into the rate-1 reference: %+v", r.Workload, r.Drift, r)
		}
	}
}

// The study table must not leak worker-pool completion order.
func TestProfileStudyDeterministicAcrossJobs(t *testing.T) {
	ws := subset(t, "wc", "sort")
	ctx := context.Background()
	rates := []int{1, 64}
	serial, err := RunProfileStudyWith(ctx, NewEngine(1, nil), ws, rates, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunProfileStudyWith(ctx, NewEngine(8, nil), ws, rates, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, want := ProfileStudyTable(parallel), ProfileStudyTable(serial)
	if got != want {
		t.Errorf("-j 8 study differs from -j 1:\n--- j=8 ---\n%s\n--- j=1 ---\n%s", got, want)
	}
}

func TestRunProfileStudyRejectsBadRates(t *testing.T) {
	ws := subset(t, "wc")
	ctx := context.Background()
	if _, err := RunProfileStudyWith(ctx, NewEngine(1, nil), ws, []int{8, 64}, 1, 0); err == nil {
		t.Error("missing reference rate accepted")
	}
	if _, err := RunProfileStudyWith(ctx, NewEngine(1, nil), ws, []int{1, 0}, 1, 0); err == nil {
		t.Error("rate 0 accepted")
	}
}

// Two runs over a shared disk store must accumulate profile wisdom: the
// first run's training product lands in a merged-profile record, and a
// second run that trains again (different drift arm, so the whole-build
// and stage-2 keys miss while the merged fingerprint matches) folds it
// back in as a merge hit.
func TestMergedProfileWarmStart(t *testing.T) {
	dir := t.TempDir()
	w := subset(t, "wc")[0]
	ctx := context.Background()
	withMerge := func(drift profile.Drift) pipeline.Options {
		o := BaseOptions(lower.SetII)
		o.Profile = profile.Config{Merge: true, Drift: drift}
		return o
	}

	run := func(drift profile.Drift) EngineStats {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(1, nil)
		e.UseStore(st)
		if _, err := e.Get(ctx, w, withMerge(drift)); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}

	first := run(profile.DriftCross)
	if first.TrainRuns != 1 || first.ProfileMergeHits != 0 {
		t.Fatalf("cold run stats: %+v", first)
	}
	if first.ProfilePuts == 0 {
		t.Fatalf("cold run persisted no merged profile: %+v", first)
	}
	second := run(profile.DriftNone)
	if second.TrainRuns != 1 {
		t.Fatalf("warm run did not train: %+v", second)
	}
	if second.ProfileMergeHits != 1 {
		t.Errorf("warm run stats: %+v, want 1 merged-profile reuse", second)
	}

	// The merged record now carries both training inputs.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := withMerge(profile.DriftNone)
	fp := store.MergedFingerprint(w.Source, opts.Frontend(), opts.Detection())
	rec, status := st.GetMerged(fp)
	if status != store.Hit {
		t.Fatalf("merged record missing: %v", status)
	}
	if len(rec.Contribs) != 2 {
		t.Errorf("merged record has %d contributions, want 2", len(rec.Contribs))
	}
}
