package bench

import (
	"fmt"
	"strings"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

// Ablation studies for the transformation's design choices (DESIGN.md's
// per-experiment index): each variant disables one Section 7/8 mechanism
// and reports the dynamic cost the full transformation saves, plus the
// effect of the Section 10 common-successor extension.

// AblationVariant names one configuration.
type AblationVariant struct {
	Name string
	Opts pipeline.Options
}

// AblationVariants returns the studied configurations, full first.
func AblationVariants(set lower.HeuristicSet) []AblationVariant {
	base := pipeline.Options{Switch: set, Optimize: true}
	v := func(name string, mod func(*pipeline.Options)) AblationVariant {
		o := base
		mod(&o)
		return AblationVariant{Name: name, Opts: o}
	}
	return []AblationVariant{
		v("full", func(o *pipeline.Options) {}),
		v("no-bound-order", func(o *pipeline.Options) { o.Transform.NoBoundOrder = true }),
		v("no-cmp-reuse", func(o *pipeline.Options) { o.Transform.NoCmpReuse = true }),
		v("no-tail-dup", func(o *pipeline.Options) { o.Transform.NoTailDup = true }),
		v("+common-succ", func(o *pipeline.Options) { o.CommonSuccessor = true }),
	}
}

// AblationRow is one workload's dynamic instruction count per variant.
type AblationRow struct {
	Workload string
	Insts    map[string]uint64
	Baseline uint64
}

// RunAblation measures the given workloads (all when names is empty)
// under every variant.
func RunAblation(set lower.HeuristicSet, names []string) ([]AblationRow, error) {
	var ws []workload.Workload
	if len(names) == 0 {
		ws = workload.All()
	} else {
		for _, n := range names {
			w, ok := workload.Named(n)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", n)
			}
			ws = append(ws, w)
		}
	}
	var rows []AblationRow
	for _, w := range ws {
		row := AblationRow{Workload: w.Name, Insts: map[string]uint64{}}
		train, test := w.Train(), w.Test()
		var refOut string
		for i, v := range AblationVariants(set) {
			b, err := pipeline.Build(w.Source, train, v.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, v.Name, err)
			}
			m := &interp.Machine{Prog: b.Reordered, Input: test}
			if _, err := m.Run(); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, v.Name, err)
			}
			if i == 0 {
				refOut = m.Output.String()
				mb := &interp.Machine{Prog: b.Baseline, Input: test}
				if _, err := mb.Run(); err != nil {
					return nil, err
				}
				row.Baseline = mb.Stats.Insts
			} else if m.Output.String() != refOut {
				return nil, fmt.Errorf("%s/%s: output diverged", w.Name, v.Name)
			}
			row.Insts[v.Name] = m.Stats.Insts
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTable renders the study.
func AblationTable(set lower.HeuristicSet, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: dynamic instructions by disabled mechanism (Heuristic Set %v)\n\n", set)
	w := newTab(&sb)
	variants := AblationVariants(set)
	header := "Program\tbaseline\t"
	for _, v := range variants {
		header += v.Name + "\t"
	}
	fmt.Fprintln(w, header)
	for _, r := range rows {
		line := fmt.Sprintf("%s\t%d\t", r.Workload, r.Baseline)
		for _, v := range variants {
			line += fmt.Sprintf("%d\t", r.Insts[v.Name])
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	return sb.String()
}
