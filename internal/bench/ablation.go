package bench

import (
	"context"
	"fmt"
	"strings"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

// Ablation studies for the transformation's design choices (DESIGN.md's
// per-experiment index): each variant disables one Section 7/8 mechanism
// and reports the dynamic cost the full transformation saves, plus the
// effect of the Section 10 common-successor extension.

// AblationVariant names one configuration.
type AblationVariant struct {
	Name string
	Opts pipeline.Options
}

// AblationVariants returns the studied configurations, full first.
func AblationVariants(set lower.HeuristicSet) []AblationVariant {
	base := BaseOptions(set)
	v := func(name string, mod func(*pipeline.Options)) AblationVariant {
		o := base
		mod(&o)
		return AblationVariant{Name: name, Opts: o}
	}
	return []AblationVariant{
		v("full", func(o *pipeline.Options) {}),
		v("no-bound-order", func(o *pipeline.Options) { o.Transform.NoBoundOrder = true }),
		v("no-cmp-reuse", func(o *pipeline.Options) { o.Transform.NoCmpReuse = true }),
		v("no-tail-dup", func(o *pipeline.Options) { o.Transform.NoTailDup = true }),
		v("+common-succ", func(o *pipeline.Options) { o.CommonSuccessor = true }),
	}
}

// AblationRow is one workload's dynamic instruction count per variant.
type AblationRow struct {
	Workload string
	Insts    map[string]uint64
	Baseline uint64
}

// RunAblation measures the given workloads (all when names is empty)
// under every variant on a fresh GOMAXPROCS-wide engine.
func RunAblation(set lower.HeuristicSet, names []string) ([]AblationRow, error) {
	return RunAblationWith(context.Background(), NewEngine(0, nil), set, names)
}

// AblationJobs enumerates the (workload × variant) grid in deterministic
// order — workloads outer, variants inner — the way SuiteJobs enumerates
// the standard matrix. The "full" variant's options equal BaseOptions, so
// its jobs hit the same memo slots (and the same disk-store fingerprints)
// as the standard evaluation builds.
func AblationJobs(set lower.HeuristicSet, ws []workload.Workload) []Job {
	variants := AblationVariants(set)
	jobs := make([]Job, 0, len(ws)*len(variants))
	for _, w := range ws {
		for _, v := range variants {
			jobs = append(jobs, Job{Workload: w, Opts: v.Opts})
		}
	}
	return jobs
}

// RunAblationWith measures every (workload, variant) pair on e's worker
// pool. The "full" variant shares its cache slot with the standard
// evaluation builds, so running the ablation after the suite recompiles
// nothing for it. Rows come back in workload order regardless of which
// build finishes first.
func RunAblationWith(ctx context.Context, e *Engine, set lower.HeuristicSet, names []string) ([]AblationRow, error) {
	return RunAblationOpts(ctx, e, set, names, nil)
}

// RunAblationOpts is RunAblationWith with every variant's options passed
// through mod (when non-nil) — how -profile-merge applies to the whole
// grid while the variants keep their distinct Transform axes.
func RunAblationOpts(ctx context.Context, e *Engine, set lower.HeuristicSet, names []string, mod func(pipeline.Options) pipeline.Options) ([]AblationRow, error) {
	var ws []workload.Workload
	if len(names) == 0 {
		ws = workload.All()
	} else {
		for _, n := range names {
			w, ok := workload.Named(n)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", n)
			}
			ws = append(ws, w)
		}
	}
	variants := AblationVariants(set)
	if mod != nil {
		for i := range variants {
			variants[i].Opts = mod(variants[i].Opts)
		}
	}
	jobs := ModJobs(AblationJobs(set, ws), mod)
	grid := make([]*ProgramRun, len(jobs))
	err := e.gather(ctx, len(grid), func(ctx context.Context, i int) error {
		r, err := e.Get(ctx, jobs[i].Workload, jobs[i].Opts)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", jobs[i].Workload.Name, variants[i%len(variants)].Name, err)
		}
		grid[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(ws))
	for wi, w := range ws {
		row := AblationRow{Workload: w.Name, Insts: map[string]uint64{}}
		full := grid[wi*len(variants)]
		row.Baseline = full.Base.Stats.Insts
		for vi, v := range variants {
			r := grid[wi*len(variants)+vi]
			// Every run's reordered output already matched its own
			// baseline; requiring it to match the full variant's output
			// too makes the check transitive across variants.
			if r.Reord.Output != full.Reord.Output || r.Reord.Ret != full.Reord.Ret {
				return nil, fmt.Errorf("%s/%s: output diverged", w.Name, v.Name)
			}
			row.Insts[v.Name] = r.Reord.Stats.Insts
		}
		rows[wi] = row
	}
	return rows, nil
}

// AblationTable renders the study.
func AblationTable(set lower.HeuristicSet, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: dynamic instructions by disabled mechanism (Heuristic Set %v)\n\n", set)
	w := newTab(&sb)
	variants := AblationVariants(set)
	header := "Program\tbaseline\t"
	for _, v := range variants {
		header += v.Name + "\t"
	}
	fmt.Fprintln(w, header)
	for _, r := range rows {
		line := fmt.Sprintf("%s\t%d\t", r.Workload, r.Baseline)
		for _, v := range variants {
			line += fmt.Sprintf("%d\t", r.Insts[v.Name])
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	return sb.String()
}
