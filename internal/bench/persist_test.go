package bench

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// A second suite against a warm disk cache must execute zero
// build+measure jobs and render byte-identical tables and figures.
func TestDiskCacheWarmSuite(t *testing.T) {
	dir := t.TempDir()
	ws := subset(t, "wc", "sort")
	ctx := context.Background()

	cold := NewEngine(4, nil)
	cold.UseStore(openStore(t, dir))
	s1, err := cold.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Stats()
	if want := len(Sets()) * len(ws); cs.Builds != want || cs.DiskMisses != want {
		t.Errorf("cold run: %d builds, %d disk misses; want %d of each", cs.Builds, cs.DiskMisses, want)
	}
	if cs.DiskHits != 0 {
		t.Errorf("cold run reported %d disk hits", cs.DiskHits)
	}

	warm := NewEngine(4, nil)
	warm.UseStore(openStore(t, dir))
	s2, err := warm.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	hs := warm.Stats()
	if hs.Builds != 0 {
		t.Errorf("warm run executed %d builds, want 0", hs.Builds)
	}
	if want := len(Sets()) * len(ws); hs.DiskHits != want {
		t.Errorf("warm run: %d disk hits, want %d", hs.DiskHits, want)
	}
	if got, want := renderAll(t, s2), renderAll(t, s1); got != want {
		t.Errorf("warm-cache output differs from cold output:\n--- warm ---\n%s\n--- cold ---\n%s", got, want)
	}
}

// The ablation study must warm-start from the same store too: variant
// options get distinct fingerprints and so distinct entries.
func TestDiskCacheWarmAblation(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold := NewEngine(4, nil)
	cold.UseStore(openStore(t, dir))
	r1, err := RunAblationWith(ctx, cold, lower.SetIII, []string{"wc"})
	if err != nil {
		t.Fatal(err)
	}

	warm := NewEngine(4, nil)
	warm.UseStore(openStore(t, dir))
	r2, err := RunAblationWith(ctx, warm, lower.SetIII, []string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Builds != 0 {
		t.Errorf("warm ablation executed %d builds, want 0", st.Builds)
	}
	if got, want := AblationTable(lower.SetIII, r2), AblationTable(lower.SetIII, r1); got != want {
		t.Errorf("warm ablation table differs:\n%s\nvs\n%s", got, want)
	}
}

// A run serialized to a record and reloaded must render every table and
// figure byte-for-byte identically to the in-memory run.
func TestRecordRoundTripRendersIdentically(t *testing.T) {
	ws := subset(t, "wc", "sort", "lex")
	ctx := context.Background()
	live, err := NewEngine(4, nil).SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}

	reloaded := &Suite{Runs: map[lower.HeuristicSet][]*ProgramRun{}}
	for _, set := range Sets() {
		for _, r := range live.Runs[set] {
			rec := r.Record()
			fp := store.Fingerprint(r.Workload.Source, r.Workload.Train(), r.Workload.Test(), r.Opts)
			data, err := store.Encode(fp, rec)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := store.Decode(data, fp)
			if err != nil {
				t.Fatal(err)
			}
			run, err := RunFromRecord(dec, r.Workload)
			if err != nil {
				t.Fatal(err)
			}
			if run.Build != nil {
				t.Error("reloaded run claims to carry compiled programs")
			}
			reloaded.Runs[set] = append(reloaded.Runs[set], run)
		}
	}
	if got, want := renderAll(t, reloaded), renderAll(t, live); got != want {
		t.Errorf("reloaded suite renders differently:\n--- reloaded ---\n%s\n--- live ---\n%s", got, want)
	}
}

// Corrupting entries on disk must count as invalidations and rebuild,
// never fail or panic.
func TestCorruptDiskEntriesRebuild(t *testing.T) {
	dir := t.TempDir()
	ws := subset(t, "wc")
	ctx := context.Background()

	cold := NewEngine(2, nil)
	cold.UseStore(openStore(t, dir))
	s1, err := cold.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every entry in place.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	warm := NewEngine(2, nil)
	warm.UseStore(openStore(t, dir))
	s2, err := warm.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatalf("suite over corrupt cache failed: %v", err)
	}
	st := warm.Stats()
	if want := len(Sets()) * len(ws); st.Builds != want || st.DiskInvalid != want {
		t.Errorf("corrupt cache: %d builds, %d invalidations; want %d of each", st.Builds, st.DiskInvalid, want)
	}
	if got, want := renderAll(t, s2), renderAll(t, s1); got != want {
		t.Errorf("rebuild after corruption rendered differently")
	}
}

// Sharding must partition the matrix exactly: every job in exactly one
// shard, order-deterministic, and reassembling shards via export records
// plus Seed reproduces the suite byte-for-byte with zero builds.
func TestShardPartitionAndMerge(t *testing.T) {
	ws := subset(t, "wc", "sort", "lex")
	jobs := SuiteJobs(ws)
	if want := len(Sets()) * len(ws); len(jobs) != want {
		t.Fatalf("SuiteJobs: %d jobs, want %d", len(jobs), want)
	}
	const n = 3
	seen := map[Key]int{}
	var shards [][]Job
	for i := 0; i < n; i++ {
		shard := ShardJobs(jobs, i, n)
		shards = append(shards, shard)
		for _, j := range shard {
			seen[Key{Workload: j.Workload.Name, Opts: j.Opts}]++
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("shards cover %d distinct jobs, want %d", len(seen), len(jobs))
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("job %+v appears in %d shards", k, c)
		}
	}

	// Run each shard on its own engine (as separate machines would),
	// export, merge into a fresh engine, and compare against a
	// single-process suite.
	ctx := context.Background()
	single, err := NewEngine(4, nil).SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewEngine(4, nil)
	for i, shard := range shards {
		e := NewEngine(4, nil)
		runs, err := e.RunJobs(ctx, shard)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		var buf bytes.Buffer
		st := e.Stats()
		if err := store.WriteExport(&buf, Records(runs), &st); err != nil {
			t.Fatalf("shard %d export: %v", i, err)
		}
		recs, shardStats, err := store.ReadExport(&buf)
		if err == nil && (shardStats == nil || shardStats.Builds != len(shard)) {
			t.Errorf("shard %d stats did not round-trip: %+v", i, shardStats)
		}
		if err != nil {
			t.Fatalf("shard %d reimport: %v", i, err)
		}
		for _, rec := range recs {
			run, err := RunFromRecord(rec, mustNamed(t, rec.Workload))
			if err != nil {
				t.Fatal(err)
			}
			merged.Seed(run)
		}
	}
	s, err := merged.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	if st := merged.Stats(); st.Builds != 0 {
		t.Errorf("merged suite executed %d builds, want 0", st.Builds)
	}
	if got, want := renderAll(t, s), renderAll(t, single); got != want {
		t.Errorf("merged output differs from single-process output:\n--- merged ---\n%s\n--- single ---\n%s", got, want)
	}
}

func mustNamed(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.Named(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	return w
}
