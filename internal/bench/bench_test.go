package bench

import (
	"strings"
	"testing"

	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

// miniSuite builds a reduced suite (3 workloads × 3 sets) so table
// rendering is exercised quickly; the full suite runs in the repository
// benchmarks and cmd/brbench.
func miniSuite(t *testing.T) *Suite {
	t.Helper()
	s := &Suite{Runs: map[lower.HeuristicSet][]*ProgramRun{}}
	for _, set := range Sets() {
		for _, name := range []string{"wc", "sort", "lex"} {
			w, ok := workload.Named(name)
			if !ok {
				t.Fatalf("workload %s missing", name)
			}
			r, err := Run(w, set)
			if err != nil {
				t.Fatalf("Run(%s, %v): %v", name, set, err)
			}
			s.Runs[set] = append(s.Runs[set], r)
		}
	}
	return s
}

func TestPctChange(t *testing.T) {
	approx := func(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }
	if got := PctChange(100, 90); !approx(got, -10) {
		t.Errorf("PctChange(100,90) = %v, want -10", got)
	}
	if got := PctChange(100, 103); !approx(got, 3) {
		t.Errorf("PctChange(100,103) = %v, want 3", got)
	}
	if got := PctChange(0, 5); got != 0 {
		t.Errorf("PctChange(0,5) = %v, want 0", got)
	}
}

func TestRunChecksOutputs(t *testing.T) {
	w, _ := workload.Named("wc")
	r, err := Run(w, lower.SetI)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Stats.Insts == 0 || r.Reord.Stats.Insts == 0 {
		t.Error("zero instruction counts")
	}
	if r.StaticBase <= 0 || r.StaticReord <= 0 {
		t.Error("nonpositive static counts")
	}
	if r.StaticReord < r.StaticBase {
		t.Errorf("reordering shrank static code (%d -> %d); it should replicate",
			r.StaticBase, r.StaticReord)
	}
	if len(r.Base.Mispredicts) != 14 { // (0,1),(0,2) × 32..2048
		t.Errorf("predictor battery has %d configs, want 14", len(r.Base.Mispredicts))
	}
}

func TestTablesRender(t *testing.T) {
	s := miniSuite(t)
	for name, text := range map[string]string{
		"Table2": Table2(),
		"Table3": Table3(),
		"Table4": s.Table4(),
		"Table5": s.Table5(),
		"Table6": s.Table6(),
		"Table7": s.Table7(),
		"Table8": s.Table8(),
	} {
		if len(text) == 0 {
			t.Errorf("%s rendered empty", name)
		}
		if !strings.Contains(text, "Table") {
			t.Errorf("%s missing caption: %q", name, text[:40])
		}
	}
	if !strings.Contains(s.Table4(), "average") {
		t.Error("Table4 missing averages")
	}
	if !strings.Contains(s.Table5(), "(0,2)") {
		t.Error("Table5 missing predictor description")
	}
	for _, n := range []int{11, 12, 13} {
		fig, err := s.Figure(n)
		if err != nil {
			t.Fatalf("Figure(%d): %v", n, err)
		}
		if !strings.Contains(fig, "Sequence Length") {
			t.Errorf("Figure %d missing caption", n)
		}
	}
	if _, err := s.Figure(9); err == nil {
		t.Error("Figure(9) should fail")
	}
}

func TestTable4ShowsReductions(t *testing.T) {
	s := miniSuite(t)
	tbl := s.Table4()
	if !strings.Contains(tbl, "-") {
		t.Errorf("Table 4 shows no reductions:\n%s", tbl)
	}
	t.Logf("\n%s", tbl)
}
