package bench

import (
	"context"
	"strings"
	"testing"

	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

func subset(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, n := range names {
		w, ok := workload.Named(n)
		if !ok {
			t.Fatalf("workload %s missing", n)
		}
		ws = append(ws, w)
	}
	return ws
}

// renderAll is the deterministic fingerprint of a suite: every derived
// table and figure concatenated.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(s.Table4())
	sb.WriteString(s.Table5())
	sb.WriteString(s.Table6())
	sb.WriteString(s.Table7())
	sb.WriteString(s.Table8())
	for _, n := range []int{11, 12, 13} {
		fig, err := s.Figure(n)
		if err != nil {
			t.Fatalf("Figure(%d): %v", n, err)
		}
		sb.WriteString(fig)
	}
	return sb.String()
}

// The worker pool must not leak completion order into rendered output:
// a wide engine and a serial one must produce byte-identical tables.
func TestSuiteDeterministicAcrossJobs(t *testing.T) {
	ws := subset(t, "wc", "sort", "lex")
	ctx := context.Background()
	serial, err := NewEngine(1, nil).SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEngine(8, nil).SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	got, want := renderAll(t, parallel), renderAll(t, serial)
	if got != want {
		t.Errorf("-j 8 output differs from -j 1 output:\n--- j=8 ---\n%s\n--- j=1 ---\n%s", got, want)
	}
}

// Every (workload, options) pair must build exactly once per engine, no
// matter how many experiments ask for it.
func TestEngineMemoizes(t *testing.T) {
	ws := subset(t, "wc", "sort")
	e := NewEngine(4, nil)
	ctx := context.Background()
	s1, err := e.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if want := len(Sets()) * len(ws); st.Builds != want {
		t.Errorf("first suite: %d builds, want %d", st.Builds, want)
	}
	if st.Hits != 0 {
		t.Errorf("first suite: %d hits, want 0", st.Hits)
	}
	s2, err := e.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.Builds != st.Builds {
		t.Errorf("second suite rebuilt: %d builds, want %d", st2.Builds, st.Builds)
	}
	if want := len(Sets()) * len(ws); st2.Hits != want {
		t.Errorf("second suite: %d hits, want %d", st2.Hits, want)
	}
	for _, set := range Sets() {
		for i := range s1.Runs[set] {
			if s1.Runs[set][i] != s2.Runs[set][i] {
				t.Fatalf("set %v run %d not shared between suites", set, i)
			}
		}
	}

	// The ablation's full variant must also come from the same slot.
	rows, err := RunAblationWith(ctx, e, lower.SetIII, []string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Insts["full"] == 0 {
		t.Fatalf("bad ablation rows: %+v", rows)
	}
	st3 := e.Stats()
	// 5 variants, one (full under SetIII) already cached by the suites.
	if want := st2.Builds + len(AblationVariants(lower.SetIII)) - 1; st3.Builds != want {
		t.Errorf("ablation after suite: %d builds, want %d", st3.Builds, want)
	}
}

// A failing build must surface its own error — not a cancellation — and
// stop the remaining work.
func TestSuiteFirstErrorPropagation(t *testing.T) {
	bad := workload.Workload{
		Name:   "bad",
		Desc:   "unparseable",
		Source: "int main( {",
		Train:  func() []byte { return nil },
		Test:   func() []byte { return nil },
	}
	ws := append(subset(t, "wc"), bad)
	_, err := NewEngine(4, nil).SuiteOf(context.Background(), ws)
	if err == nil {
		t.Fatal("suite with unparseable workload succeeded")
	}
	if !strings.Contains(err.Error(), "bad") || !strings.Contains(err.Error(), "parse") {
		t.Errorf("error does not identify the failing build: %v", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Errorf("cancellation masked the real error: %v", err)
	}
}

func TestSuiteHonoursContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(2, nil)
	ws := subset(t, "wc")
	if _, err := e.SuiteOf(ctx, ws); err == nil {
		t.Fatal("canceled suite succeeded")
	}
	// Cancellations must not poison the cache: the same engine with a
	// live context rebuilds and succeeds.
	if _, err := e.SuiteOf(context.Background(), ws); err != nil {
		t.Fatalf("engine poisoned by earlier cancellation: %v", err)
	}
	if st := e.Stats(); st.Builds != len(Sets())*len(ws) {
		t.Errorf("after retry: %d builds, want %d", st.Builds, len(Sets())*len(ws))
	}
}
