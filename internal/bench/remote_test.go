package bench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
)

// remoteFixture is one brstored-equivalent server over a fresh pool.
func remoteFixture(t *testing.T) (*storenet.Server, *storenet.Client) {
	t.Helper()
	pool, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := storenet.NewServer(pool)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	client, err := storenet.NewClient(hs.URL, storenet.ClientConfig{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

// Machine A populates the shared store; machine B — cold memo, cold
// disk — must run the whole suite with zero builds, byte-identically,
// and warm its own disk tier from the remote hits.
func TestRemoteTierWarmsSecondMachine(t *testing.T) {
	_, clientA := remoteFixture(t)
	ws := subset(t, "wc", "sort")
	ctx := context.Background()
	want := len(Sets()) * len(ws)

	a := NewEngine(4, nil)
	a.UseStore(openStore(t, t.TempDir()))
	a.UseRemote(clientA)
	s1, err := a.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	as := a.Stats()
	if as.Builds != want || as.RemoteMisses != want || as.RemotePuts != want {
		t.Errorf("machine A: %+v, want %d builds/remote misses/puts", as, want)
	}

	bDisk := t.TempDir()
	b := NewEngine(4, nil)
	b.UseStore(openStore(t, bDisk))
	b.UseRemote(clientA)
	s2, err := b.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	bs := b.Stats()
	if bs.Builds != 0 || bs.RemoteHits != want || bs.DiskMisses != want {
		t.Errorf("machine B: %+v, want 0 builds, %d remote hits", bs, want)
	}
	if got, wantOut := renderAll(t, s2), renderAll(t, s1); got != wantOut {
		t.Errorf("remote-warmed output differs from the originating machine's")
	}

	// Remote hits were written through to B's disk: a third run on B
	// needs neither builds nor the network.
	c := NewEngine(4, nil)
	c.UseStore(openStore(t, bDisk))
	s3, err := c.SuiteOf(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	if cs := c.Stats(); cs.Builds != 0 || cs.DiskHits != want {
		t.Errorf("write-through run: %+v, want %d disk hits", cs, want)
	}
	if renderAll(t, s3) != renderAll(t, s1) {
		t.Errorf("write-through output differs")
	}
}

// The remote tier alone (no disk store) must also serve a cold engine.
func TestRemoteTierWithoutDisk(t *testing.T) {
	_, client := remoteFixture(t)
	ws := subset(t, "wc")
	ctx := context.Background()
	want := len(Sets()) * len(ws)

	a := NewEngine(2, nil)
	a.UseRemote(client)
	if _, err := a.SuiteOf(ctx, ws); err != nil {
		t.Fatal(err)
	}
	b := NewEngine(2, nil)
	b.UseRemote(client)
	if _, err := b.SuiteOf(ctx, ws); err != nil {
		t.Fatal(err)
	}
	if bs := b.Stats(); bs.Builds != 0 || bs.RemoteHits != want {
		t.Errorf("disk-less remote run: %+v, want 0 builds, %d remote hits", bs, want)
	}
}

// A dead remote must cost fallbacks, not correctness: the run builds
// locally and succeeds.
func TestRemoteTierDeadServerFallsBack(t *testing.T) {
	client, err := storenet.NewClient("http://127.0.0.1:1", storenet.ClientConfig{
		MaxAttempts: 1, BreakerThreshold: 2, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := subset(t, "wc")
	e := NewEngine(2, nil)
	e.UseRemote(client)
	s, err := e.SuiteOf(context.Background(), ws)
	if err != nil {
		t.Fatalf("suite failed because the remote is dead: %v", err)
	}
	st := e.Stats()
	if want := len(Sets()) * len(ws); st.Builds != want {
		t.Errorf("%d builds, want %d", st.Builds, want)
	}
	if st.RemoteHits != 0 || st.RemoteFallbacks == 0 {
		t.Errorf("dead remote stats: %+v, want only fallbacks", st)
	}
	if ref, err := NewEngine(2, nil).SuiteOf(context.Background(), ws); err != nil {
		t.Fatal(err)
	} else if renderAll(t, s) != renderAll(t, ref) {
		t.Errorf("fallback run rendered differently from a local-only run")
	}
}

// The ablation grid must shard exactly like the suite matrix: each job
// in one shard, and the sharded-and-merged study byte-identical to the
// direct one with zero rebuilds.
func TestAblationJobsShardAndMerge(t *testing.T) {
	ws := subset(t, "wc", "sort")
	set := Sets()[2]
	jobs := AblationJobs(set, ws)
	if want := len(ws) * len(AblationVariants(set)); len(jobs) != want {
		t.Fatalf("AblationJobs: %d jobs, want %d", len(jobs), want)
	}
	const n = 2
	seen := map[Key]int{}
	var shards [][]Job
	for i := 0; i < n; i++ {
		shard := ShardJobs(jobs, i, n)
		shards = append(shards, shard)
		for _, j := range shard {
			seen[Key{Workload: j.Workload.Name, Opts: j.Opts}]++
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("shards cover %d jobs, want %d", len(seen), len(jobs))
	}

	ctx := context.Background()
	direct, err := RunAblationWith(ctx, NewEngine(4, nil), set, []string{"wc", "sort"})
	if err != nil {
		t.Fatal(err)
	}
	merged := NewEngine(4, nil)
	for i, shard := range shards {
		e := NewEngine(4, nil)
		runs, err := e.RunJobs(ctx, shard)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for _, r := range runs {
			merged.Seed(r)
		}
	}
	rows, err := RunAblationWith(ctx, merged, set, []string{"wc", "sort"})
	if err != nil {
		t.Fatal(err)
	}
	if st := merged.Stats(); st.Builds != 0 {
		t.Errorf("merged ablation executed %d builds, want 0", st.Builds)
	}
	if got, want := AblationTable(set, rows), AblationTable(set, direct); got != want {
		t.Errorf("sharded ablation differs:\n--- merged ---\n%s--- direct ---\n%s", got, want)
	}
}
