package bench

import (
	"context"
	"fmt"
	"strings"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/profile"
	"branchreorder/internal/workload"
)

// The profile-quality study: how much selection quality survives
// sampled collection and train/test drift. For every workload it builds
// an exact reference (sample rate 1) and sampled variants at the given
// rates, under two drift arms — training on the training input as the
// paper does ("train→test"), and training on the test input itself
// ("test→test", the freshest profile a build could ever have). Each
// sampled build is scored against its drift arm's exact reference on
// how often it selects the same Theorem-3 ordering and Figure-8 default
// choice, and on the modelled cycle cost of the divergences.

// ProfileStudyDrifts lists the drift arms in presentation order.
func ProfileStudyDrifts() []profile.Drift {
	return []profile.Drift{profile.DriftCross, profile.DriftNone}
}

// ProfileStudyOptions is the build configuration of one study cell. The
// study runs the paper's main evaluation set (Set II). Rate 1 is the
// exact reference: sampling and bias are withheld so the row is
// byte-identical to a plain build — only the drift axis remains.
func ProfileStudyOptions(drift profile.Drift, rate int, seed, bias uint64) pipeline.Options {
	o := BaseOptions(lower.SetII)
	o.Profile = profile.Config{Drift: drift}
	if rate > 1 {
		o.Profile.Mode = profile.EveryNth
		o.Profile.Rate = rate
		o.Profile.Seed = seed
		o.Profile.Bias = bias
	}
	return o
}

// ProfileStudyJobs enumerates the study grid in deterministic order —
// workloads outer, drift arms middle, rates inner — so distinct
// machines can shard it with ShardJobs exactly like the standard
// matrix. Rates must include 1: every drift arm needs its reference.
func ProfileStudyJobs(ws []workload.Workload, rates []int, seed, bias uint64) []Job {
	drifts := ProfileStudyDrifts()
	jobs := make([]Job, 0, len(ws)*len(drifts)*len(rates))
	for _, w := range ws {
		for _, drift := range drifts {
			for _, rate := range rates {
				jobs = append(jobs, Job{Workload: w, Opts: ProfileStudyOptions(drift, rate, seed, bias)})
			}
		}
	}
	return jobs
}

// ProfileStudyRow scores one (workload, drift, rate) cell against the
// exact reference of the same workload and drift arm.
type ProfileStudyRow struct {
	Workload     string
	Drift        profile.Drift
	Rate         int
	Seqs         int     // sequences compared
	Defaults     int     // reference sequences with a Figure-8 default choice
	OrderAgree   float64 // % of sequences selecting the reference's exact ordering
	DefaultAgree float64 // % of Figure-8 default choices preserved
	CycleDelta   float64 // % modelled cycle delta vs the reference build
}

// cycleModel is the machine whose modelled cycles the study scores;
// the SPARC Ultra I is the paper's primary evaluation machine.
const cycleModel = "SPARC Ultra I"

// scoreStudyRun compares a sampled run against its exact reference.
func scoreStudyRun(ref, r *ProgramRun, rate int) ProfileStudyRow {
	row := ProfileStudyRow{
		Workload: ref.Workload.Name,
		Drift:    ref.Opts.Profile.Drift,
		Rate:     rate,
		Seqs:     len(ref.Seqs),
	}
	orderMatch, defMatch := 0, 0
	for i, want := range ref.Seqs {
		var got SeqStat
		if i < len(r.Seqs) {
			got = r.Seqs[i]
		}
		if got.Applied == want.Applied && got.Default == want.Default &&
			intsEqual(got.Order, want.Order) && intsEqual(got.Omitted, want.Omitted) {
			orderMatch++
		}
		// The Figure-8 default choice exists only where the reference
		// omitted arms behind a default target.
		if want.Applied && want.Default >= 0 {
			row.Defaults++
			if got.Applied && got.Default == want.Default {
				defMatch++
			}
		}
	}
	row.OrderAgree = 100
	if row.Seqs > 0 {
		row.OrderAgree = 100 * float64(orderMatch) / float64(row.Seqs)
	}
	row.DefaultAgree = 100
	if row.Defaults > 0 {
		row.DefaultAgree = 100 * float64(defMatch) / float64(row.Defaults)
	}
	row.CycleDelta = PctChange(ref.Reord.Cycles[cycleModel], r.Reord.Cycles[cycleModel])
	return row
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunProfileStudyWith builds the study grid on e's worker pool and
// scores every cell. Rows come back in grid order regardless of which
// build finishes first, so the rendered table is byte-identical across
// -j values. Runs may come from the engine's caches or seeded shards;
// only the (workload, drift) pairs whose reference and sampled runs are
// both present can be scored, so a sharded study is merged before
// scoring (exactly like the ablation grid).
func RunProfileStudyWith(ctx context.Context, e *Engine, ws []workload.Workload, rates []int, seed, bias uint64) ([]ProfileStudyRow, error) {
	hasRef := false
	for _, r := range rates {
		if r == 1 {
			hasRef = true
		} else if r < 1 {
			return nil, fmt.Errorf("bench: invalid sample rate %d", r)
		}
	}
	if !hasRef {
		return nil, fmt.Errorf("bench: profile study needs rate 1 (the exact reference)")
	}
	jobs := ProfileStudyJobs(ws, rates, seed, bias)
	grid := make([]*ProgramRun, len(jobs))
	err := e.gather(ctx, len(grid), func(ctx context.Context, i int) error {
		r, err := e.Get(ctx, jobs[i].Workload, jobs[i].Opts)
		if err != nil {
			return fmt.Errorf("profile study %s: %w", jobs[i].Workload.Name, err)
		}
		grid[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	drifts := ProfileStudyDrifts()
	rows := make([]ProfileStudyRow, 0, len(jobs))
	for wi := range ws {
		for di := range drifts {
			cell := func(ri int) *ProgramRun {
				return grid[(wi*len(drifts)+di)*len(rates)+ri]
			}
			refIdx := -1
			for ri, rate := range rates {
				if rate == 1 {
					refIdx = ri
				}
			}
			ref := cell(refIdx)
			for ri, rate := range rates {
				rows = append(rows, scoreStudyRun(ref, cell(ri), rate))
			}
		}
	}
	return rows, nil
}

// ProfileStudyTable renders the study: selection quality by sample rate
// and train/test drift.
func ProfileStudyTable(rows []ProfileStudyRow) string {
	var sb strings.Builder
	sb.WriteString("Profile quality: sampled collection vs the exact profile (Heuristic Set II)\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Program\tdrift\trate\tseqs\torder agree\tdefault agree\tcycle delta\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t1/%d\t%d\t%.1f%%\t%.1f%%\t%+.2f%%\t\n",
			r.Workload, r.Drift, r.Rate, r.Seqs, r.OrderAgree, r.DefaultAgree, r.CycleDelta)
	}
	w.Flush()
	return sb.String()
}
