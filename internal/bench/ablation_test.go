package bench

import (
	"strings"
	"testing"

	"branchreorder/internal/lower"
)

func TestAblation(t *testing.T) {
	rows, err := RunAblation(lower.SetIII, []string{"wc", "sort", "lex"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		full := r.Insts["full"]
		if full == 0 || r.Baseline == 0 {
			t.Fatalf("%s: zero counts", r.Workload)
		}
		if full > r.Baseline {
			t.Errorf("%s: full transformation worse than baseline (%d > %d)",
				r.Workload, full, r.Baseline)
		}
		// Comparison reuse and tail duplication are deterministic wins:
		// disabling them can only cost instructions (or tie).
		for _, name := range []string{"no-cmp-reuse", "no-tail-dup"} {
			if r.Insts[name] < full {
				t.Errorf("%s: %s ran fewer insts (%d) than the full transform (%d)",
					r.Workload, name, r.Insts[name], full)
			}
		}
		// Bound ordering is a training-profile heuristic, so on test
		// input it may lose by a whisker; it must stay within 1%.
		if nb := r.Insts["no-bound-order"]; nb < full {
			if float64(full-nb) > 0.01*float64(full) {
				t.Errorf("%s: bound ordering hurt by more than noise: %d vs %d",
					r.Workload, full, nb)
			}
		}
		if r.Insts["+common-succ"] > full {
			t.Errorf("%s: common-successor extension made things worse (%d > %d)",
				r.Workload, r.Insts["+common-succ"], full)
		}
	}
	text := AblationTable(lower.SetIII, rows)
	if !strings.Contains(text, "no-cmp-reuse") || !strings.Contains(text, "wc") {
		t.Errorf("table malformed:\n%s", text)
	}
	t.Logf("\n%s", text)
}
