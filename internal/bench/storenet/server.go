package storenet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet/queue"
)

// ServerStats is a point-in-time snapshot of a server's counters, as
// rendered by /metrics.
type ServerStats struct {
	Hits       int64 // entries served
	Misses     int64 // lookups with no entry
	Invalid    int64 // entries on disk that failed validation (served as misses)
	Puts       int64 // entries accepted and stored
	PutRejects int64 // uploads refused by validation
	BytesIn    int64 // payload bytes accepted
	BytesOut   int64 // payload bytes served
	Evictions  int64 // entries removed by GC
	Enqueues   int64 // work-queue jobs accepted (0 without a queue)
	Leases     int64 // work-queue leases granted (0 without a queue)
}

// Server exposes a store.Store over HTTP. All durability properties —
// atomic writes, checksummed entries, corrupt-entry-as-miss — are
// inherited from the store; the server adds validation at the trust
// boundary (an uploaded entry must decode, checksum, and carry the
// fingerprint it is stored under) so no client, hostile or truncated,
// can poison the pool.
//
// With AttachQueue, the same server additionally coordinates a build
// farm: workers lease (workload × options) jobs over the work-queue API
// and write results back through the entry API, so the store and the
// queue share one trust boundary and one /metrics page. A Server is
// safe for concurrent use.
type Server struct {
	st    *store.Store
	queue *queue.Queue                             // nil for a plain cache server
	logf  func(format string, args ...interface{}) // request log sink; nil means off

	hits, misses, invalid        atomic.Int64
	puts, putRejects             atomic.Int64
	bytesIn, bytesOut, evictions atomic.Int64
	enqueues, leases             atomic.Int64
}

// NewServer returns a server backed by st.
func NewServer(st *store.Store) *Server { return &Server{st: st} }

// LogRequests turns on structured request logging: one line per request
// (method, path, status, bytes, duration, peer) to logf. Call before
// Handler.
func (s *Server) LogRequests(logf func(format string, args ...interface{})) { s.logf = logf }

// Handler returns the HTTP API:
//
//	GET  /v1/entry/{fp}    fetch one entry (404 on miss; HEAD works too)
//	PUT  /v1/entry/{fp}    upload one entry (400 if it fails validation)
//	POST /v1/batch/get     fetch many entries in one round trip
//	POST /v1/batch/put     upload many entries in one round trip
//	GET  /metrics          plaintext counters
//	GET  /metrics.json     the same counters as one JSON document
//
// and, when a queue is attached (the build-farm coordinator):
//
//	POST /v1/queue         enqueue a job matrix
//	GET  /v1/queue         queue status (counts, drained, failures)
//	POST /v1/lease         pull one job under a TTL lease
//	POST /v1/heartbeat     extend a lease
//	POST /v1/complete      finish (or fail) a leased job
//
// Request bodies may be gzip-compressed (Content-Encoding: gzip);
// responses are gzip-compressed for clients that accept it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/entry/{fp}", gzipped(s.handleGet)) // GET patterns match HEAD too
	mux.HandleFunc("PUT /v1/entry/{fp}", s.handlePut)
	mux.HandleFunc("POST /v1/batch/get", gzipped(s.handleBatchGet))
	mux.HandleFunc("POST /v1/batch/put", gzipped(s.handleBatchPut))
	mux.HandleFunc("GET /metrics", gzipped(s.handleMetrics))
	mux.HandleFunc("GET /metrics.json", gzipped(s.handleMetricsJSON))
	if s.queue != nil {
		mux.HandleFunc("POST /v1/queue", gzipped(s.handleEnqueue))
		mux.HandleFunc("GET /v1/queue", gzipped(s.handleQueueStatus))
		mux.HandleFunc("POST /v1/lease", gzipped(s.handleLease))
		mux.HandleFunc("POST /v1/complete", s.handleComplete)   // 204: no body to compress
		mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat) // 204: no body to compress
	}
	var h http.Handler = decompressRequests(mux)
	if s.logf != nil {
		h = logRequests(s.logf, h)
	}
	return h
}

// statusRecorder captures the status code and body size a handler wrote,
// for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// logRequests emits one structured line per request. The format is
// logfmt-shaped key=value pairs so the log is grep-able and parseable
// without being a dependency.
func logRequests(logf func(format string, args ...interface{}), h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		logf("brstored: req method=%s path=%s status=%d bytes=%d dur=%s remote=%s\n",
			r.Method, r.URL.Path, rec.status, rec.bytes,
			time.Since(start).Round(time.Microsecond), r.RemoteAddr)
	})
}

// Stats snapshots the counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Invalid:    s.invalid.Load(),
		Puts:       s.puts.Load(),
		PutRejects: s.putRejects.Load(),
		BytesIn:    s.bytesIn.Load(),
		BytesOut:   s.bytesOut.Load(),
		Evictions:  s.evictions.Load(),
		Enqueues:   s.enqueues.Load(),
		Leases:     s.leases.Load(),
	}
}

// GC collects the backing store and folds evictions into the metrics.
func (s *Server) GC(maxAge time.Duration, maxBytes int64) (store.GCResult, error) {
	res, err := s.st.GC(maxAge, maxBytes)
	s.evictions.Add(int64(res.Evicted))
	return res, err
}

// GCWith collects under a split policy — profile-kind entries policed
// by their own age bound, exempt from the result bytes budget — and
// folds evictions into the metrics.
func (s *Server) GCWith(p store.GCPolicy) (store.GCResult, error) {
	res, err := s.st.GCWith(p)
	s.evictions.Add(int64(res.Evicted))
	return res, err
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	// GetRaw verifies and serves entries of either kind (build results
	// and stage-2 profile records) from their canonical stored bytes.
	data, st := s.st.GetRaw(fp)
	switch st {
	case store.Miss:
		s.misses.Add(1)
		http.NotFound(w, r)
		return
	case store.Invalid:
		// Same contract as the disk tier: a corrupt entry is a miss,
		// never an error. The counter keeps the rot visible.
		s.invalid.Add(1)
		http.NotFound(w, r)
		return
	}
	s.hits.Add(1)
	// A hit refreshes the entry's mtime so LRU eviction spares what the
	// fleet actually uses.
	s.st.Touch(fp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	n, _ := w.Write(data)
	s.bytesOut.Add(int64(n))
}

// writeError marks a storage failure on an entry that validated — the
// server's fault (500), not the uploader's (400).
type writeError struct{ err error }

func (e *writeError) Error() string { return e.err.Error() }
func (e *writeError) Unwrap() error { return e.err }

// storeValidated lands one already-read entry body under fp, running the
// full kind-dispatched validation — schema, checksum, record shape, and
// that the payload's fingerprint matches the key it is stored under —
// so nothing unverifiable reaches disk. The single PUT and the batch
// PUT share it, so both paths enforce exactly the same trust boundary.
func (s *Server) storeValidated(fp string, body []byte) error {
	// The pool holds two entry kinds: whole build results and stage-2
	// profile records; each gets its kind's validator.
	kind, err := store.EntryKind(body)
	if err != nil {
		return err
	}
	switch kind {
	case store.KindBuild:
		rec, err := store.Decode(body, fp)
		if err != nil {
			return err
		}
		if err := s.st.Put(fp, rec); err != nil {
			return &writeError{err}
		}
		return nil
	case store.KindProfile:
		rec, err := store.DecodeProfile(body, fp)
		if err != nil {
			return err
		}
		if err := s.st.PutProfile(fp, rec); err != nil {
			return &writeError{err}
		}
		return nil
	case store.KindMerged:
		rec, err := store.DecodeMerged(body, fp)
		if err != nil {
			return err
		}
		if err := s.st.PutMerged(fp, rec); err != nil {
			return &writeError{err}
		}
		return nil
	default:
		return fmt.Errorf("unknown entry kind %q", kind)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		s.putRejects.Add(1)
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	// A declared length lets us refuse oversized uploads before reading
	// a byte, and detect truncated ones after. (A gzip body was already
	// inflated by the middleware, which set the true length.)
	if r.ContentLength < 0 {
		s.putRejects.Add(1)
		http.Error(w, "Content-Length required", http.StatusLengthRequired)
		return
	}
	if r.ContentLength > MaxEntryBytes {
		s.putRejects.Add(1)
		http.Error(w, "entry exceeds size limit", http.StatusRequestEntityTooLarge)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxEntryBytes))
	if err != nil {
		s.putRejects.Add(1)
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) != r.ContentLength {
		s.putRejects.Add(1)
		http.Error(w, "body shorter than Content-Length", http.StatusBadRequest)
		return
	}
	if err := s.storeValidated(fp, body); err != nil {
		var we *writeError
		if errors.As(err, &we) {
			// The entry validated; the disk failed. That is the server's
			// fault, not the client's.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.putRejects.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.puts.Add(1)
	s.bytesIn.Add(int64(len(body)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?format=json is an alias for /metrics.json; the plaintext rendering
	// below stays byte-stable for everything that greps it.
	if r.URL.Query().Get("format") == "json" {
		s.handleMetricsJSON(w, r)
		return
	}
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "brstored_hits %d\n", st.Hits)
	fmt.Fprintf(w, "brstored_misses %d\n", st.Misses)
	fmt.Fprintf(w, "brstored_invalid %d\n", st.Invalid)
	fmt.Fprintf(w, "brstored_puts %d\n", st.Puts)
	fmt.Fprintf(w, "brstored_put_rejects %d\n", st.PutRejects)
	fmt.Fprintf(w, "brstored_bytes_in %d\n", st.BytesIn)
	fmt.Fprintf(w, "brstored_bytes_out %d\n", st.BytesOut)
	fmt.Fprintf(w, "brstored_evictions %d\n", st.Evictions)
	if s.queue != nil {
		s.queueMetrics(w)
	}
}
