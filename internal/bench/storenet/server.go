package storenet

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"branchreorder/internal/bench/store"
)

// ServerStats is a point-in-time snapshot of a server's counters, as
// rendered by /metrics.
type ServerStats struct {
	Hits       int64 // entries served
	Misses     int64 // lookups with no entry
	Invalid    int64 // entries on disk that failed validation (served as misses)
	Puts       int64 // entries accepted and stored
	PutRejects int64 // uploads refused by validation
	BytesIn    int64 // payload bytes accepted
	BytesOut   int64 // payload bytes served
	Evictions  int64 // entries removed by GC
}

// Server exposes a store.Store over HTTP. All durability properties —
// atomic writes, checksummed entries, corrupt-entry-as-miss — are
// inherited from the store; the server adds validation at the trust
// boundary (an uploaded entry must decode, checksum, and carry the
// fingerprint it is stored under) so no client, hostile or truncated,
// can poison the pool. A Server is safe for concurrent use.
type Server struct {
	st *store.Store

	hits, misses, invalid       atomic.Int64
	puts, putRejects            atomic.Int64
	bytesIn, bytesOut, evictions atomic.Int64
}

// NewServer returns a server backed by st.
func NewServer(st *store.Store) *Server { return &Server{st: st} }

// Handler returns the HTTP API:
//
//	GET  /v1/entry/{fp}   fetch one entry (404 on miss; HEAD works too)
//	PUT  /v1/entry/{fp}   upload one entry (400 if it fails validation)
//	GET  /metrics         plaintext counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/entry/{fp}", s.handleGet) // GET patterns match HEAD too
	mux.HandleFunc("PUT /v1/entry/{fp}", s.handlePut)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Stats snapshots the counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Invalid:    s.invalid.Load(),
		Puts:       s.puts.Load(),
		PutRejects: s.putRejects.Load(),
		BytesIn:    s.bytesIn.Load(),
		BytesOut:   s.bytesOut.Load(),
		Evictions:  s.evictions.Load(),
	}
}

// GC collects the backing store and folds evictions into the metrics.
func (s *Server) GC(maxAge time.Duration, maxBytes int64) (store.GCResult, error) {
	res, err := s.st.GC(maxAge, maxBytes)
	s.evictions.Add(int64(res.Evicted))
	return res, err
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	// GetRaw verifies and serves entries of either kind (build results
	// and stage-2 profile records) from their canonical stored bytes.
	data, st := s.st.GetRaw(fp)
	switch st {
	case store.Miss:
		s.misses.Add(1)
		http.NotFound(w, r)
		return
	case store.Invalid:
		// Same contract as the disk tier: a corrupt entry is a miss,
		// never an error. The counter keeps the rot visible.
		s.invalid.Add(1)
		http.NotFound(w, r)
		return
	}
	s.hits.Add(1)
	// A hit refreshes the entry's mtime so LRU eviction spares what the
	// fleet actually uses.
	s.st.Touch(fp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	n, _ := w.Write(data)
	s.bytesOut.Add(int64(n))
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		s.putRejects.Add(1)
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	// A declared length lets us refuse oversized uploads before reading
	// a byte, and detect truncated ones after.
	if r.ContentLength < 0 {
		s.putRejects.Add(1)
		http.Error(w, "Content-Length required", http.StatusLengthRequired)
		return
	}
	if r.ContentLength > MaxEntryBytes {
		s.putRejects.Add(1)
		http.Error(w, "entry exceeds size limit", http.StatusRequestEntityTooLarge)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxEntryBytes))
	if err != nil {
		s.putRejects.Add(1)
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) != r.ContentLength {
		s.putRejects.Add(1)
		http.Error(w, "body shorter than Content-Length", http.StatusBadRequest)
		return
	}
	// Decoding re-runs the full entry validation — schema, checksum,
	// record shape, and that the payload's fingerprint matches the key
	// it would be stored under — so nothing unverifiable reaches disk.
	// The pool holds two entry kinds: whole build results and stage-2
	// profile records; each gets its kind's validator.
	kind, err := store.EntryKind(body)
	if err != nil {
		s.putRejects.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var putErr error
	switch kind {
	case store.KindBuild:
		rec, err := store.Decode(body, fp)
		if err != nil {
			s.putRejects.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		putErr = s.st.Put(fp, rec)
	case store.KindProfile:
		rec, err := store.DecodeProfile(body, fp)
		if err != nil {
			s.putRejects.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		putErr = s.st.PutProfile(fp, rec)
	default:
		s.putRejects.Add(1)
		http.Error(w, fmt.Sprintf("unknown entry kind %q", kind), http.StatusBadRequest)
		return
	}
	if putErr != nil {
		http.Error(w, putErr.Error(), http.StatusInternalServerError)
		return
	}
	s.puts.Add(1)
	s.bytesIn.Add(int64(len(body)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "brstored_hits %d\n", st.Hits)
	fmt.Fprintf(w, "brstored_misses %d\n", st.Misses)
	fmt.Fprintf(w, "brstored_invalid %d\n", st.Invalid)
	fmt.Fprintf(w, "brstored_puts %d\n", st.Puts)
	fmt.Fprintf(w, "brstored_put_rejects %d\n", st.PutRejects)
	fmt.Fprintf(w, "brstored_bytes_in %d\n", st.BytesIn)
	fmt.Fprintf(w, "brstored_bytes_out %d\n", st.BytesOut)
	fmt.Fprintf(w, "brstored_evictions %d\n", st.Evictions)
}
