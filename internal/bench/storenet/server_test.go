package storenet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// testRecord is a synthetic but fully-populated record (same shape the
// store package uses for its own tests).
func testRecord() *store.Record {
	return &store.Record{
		Workload: "wc",
		Set:      int(lower.SetI),
		Opts:     pipeline.Options{Switch: lower.SetI, Optimize: true},
		Base: &store.Measurement{
			Stats:  interp.Stats{Insts: 123456, CondBranches: 789},
			Output: []byte("42 lines\xff\x00raw"),
		},
		Reord: &store.Measurement{
			Stats:  interp.Stats{Insts: 120000, CondBranches: 700},
			Output: []byte("42 lines\xff\x00raw"),
		},
		StaticBase:  500,
		StaticReord: 520,
		Seqs:        []store.SeqStat{{Applied: true, OrigBranches: 4, NewBranches: 3}},
	}
}

// zeros is an endless stream of zero bytes.
type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func testFingerprint(source string) string {
	return store.Fingerprint(source, []byte("train"), []byte("test"),
		pipeline.Options{Switch: lower.SetI, Optimize: true})
}

// newTestServer returns a Server over a fresh directory store plus an
// httptest frontend.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func testClient(t *testing.T, base string, cfg ClientConfig) *Client {
	t.Helper()
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	c, err := NewClient(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A PUT then GET/HEAD must round-trip the record byte-exactly, and the
// metrics endpoint must account for the traffic.
func TestServerRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()
	fp, rec := testFingerprint("a"), testRecord()

	if _, out := c.Get(ctx, fp); out != Miss {
		t.Fatalf("Get before Put: %v, want miss", out)
	}
	if ok, err := c.Head(ctx, fp); err != nil || ok {
		t.Fatalf("Head before Put: %v, %v", ok, err)
	}
	if err := c.Put(ctx, fp, rec); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Head(ctx, fp); err != nil || !ok {
		t.Fatalf("Head after Put: %v, %v", ok, err)
	}
	got, out := c.Get(ctx, fp)
	if out != Hit {
		t.Fatalf("Get after Put: %v, want hit", out)
	}
	if !bytes.Equal(got.Base.Output, rec.Base.Output) || got.Workload != rec.Workload {
		t.Errorf("round trip changed the record")
	}

	st := srv.Stats()
	if st.Puts != 1 || st.Hits != 2 || st.Misses < 1 || st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("stats after round trip: %+v", st)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"brstored_hits 2", "brstored_puts 1", "brstored_evictions 0"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// Uploads that fail validation must be rejected and never reach disk:
// a fingerprint-mismatched entry, corrupted payload bytes, garbage, an
// oversized declared length, and a length-less chunked upload.
func TestServerPutRejects(t *testing.T) {
	srv, hs := newTestServer(t)
	ctx := context.Background()
	fpA, fpB := testFingerprint("a"), testFingerprint("b")
	good, err := store.Encode(fpA, testRecord())
	if err != nil {
		t.Fatal(err)
	}

	put := func(fp string, body []byte, length int64) int {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, hs.URL+entryPath(fp), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.ContentLength = length
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		return resp.StatusCode
	}

	corrupt := bytes.Replace(good, []byte(`"workload"`), []byte(`"workl0ad"`), 1)
	cases := []struct {
		name string
		fp   string
		body []byte
		len  int64
		want int
	}{
		{"fingerprint mismatch", fpB, good, int64(len(good)), http.StatusBadRequest},
		{"corrupted payload", fpA, corrupt, int64(len(corrupt)), http.StatusBadRequest},
		{"garbage", fpA, []byte("not json"), 8, http.StatusBadRequest},
		{"no content length", fpA, good, -1, http.StatusLengthRequired},
		{"malformed fingerprint", "zz", good, int64(len(good)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := put(tc.fp, tc.body, tc.len); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Oversized: declare MaxEntryBytes+1 and stream zeros. With
	// Expect: 100-continue the server refuses before the body is sent.
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, hs.URL+entryPath(fpA),
		io.LimitReader(zeros{}, MaxEntryBytes+1))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = MaxEntryBytes + 1
	req.Header.Set("Expect", "100-continue")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized: status %d, want 413", resp.StatusCode)
	}

	if st := srv.Stats(); st.Puts != 0 || st.PutRejects != int64(len(cases)+1) {
		t.Errorf("stats after rejects: %+v, want 0 puts / %d rejects", st, len(cases)+1)
	}

	// Nothing hostile landed: both keys still miss.
	c := testClient(t, hs.URL, ClientConfig{})
	for _, fp := range []string{fpA, fpB} {
		if _, out := c.Get(ctx, fp); out != Miss {
			t.Errorf("poisoned pool: %s is a %v", fp[:8], out)
		}
	}
}

// An entry corrupted on the server's disk must serve as a miss (404),
// counted as invalid — the same contract the local disk tier has.
func TestServerCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	fp := testFingerprint("a")
	if err := st.Put(fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp[:2], fp+".json")
	if err := os.WriteFile(path, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := testClient(t, hs.URL, ClientConfig{})
	if _, out := c.Get(context.Background(), fp); out != Miss {
		t.Fatalf("corrupt entry served as %v, want miss", out)
	}
	if stats := srv.Stats(); stats.Invalid != 1 {
		t.Errorf("invalid counter = %d, want 1", stats.Invalid)
	}
}

// GET with a non-fingerprint key must be a 400, not a filesystem probe.
func TestServerRejectsMalformedFingerprint(t *testing.T) {
	_, hs := newTestServer(t)
	for _, fp := range []string{"zz", strings.Repeat("A", 64), strings.Repeat("a", 63)} {
		resp, err := http.Get(hs.URL + entryPath(fp))
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("fp %q: status %d, want 400", fp, resp.StatusCode)
		}
	}
}

// Server.GC must evict and count; /metrics must show it.
func TestServerGCCountsEvictions(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	for i := 0; i < 3; i++ {
		fp := testFingerprint(fmt.Sprintf("src%d", i))
		if err := st.Put(fp, testRecord()); err != nil {
			t.Fatal(err)
		}
		// Backdate so a max-age pass evicts everything.
		old := time.Now().Add(-2 * time.Hour)
		os.Chtimes(filepath.Join(dir, fp[:2], fp+".json"), old, old)
	}
	res, err := srv.GC(time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 3 {
		t.Fatalf("evicted %d, want 3", res.Evicted)
	}
	if st := srv.Stats(); st.Evictions != 3 {
		t.Errorf("evictions counter = %d, want 3", st.Evictions)
	}
}
