package storenet

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"branchreorder/internal/bench/store"
)

// A batch put then batch get must round-trip every entry — the JSON
// transport may compact whitespace, but each returned entry must still
// pass the full decode+checksum validation and carry identical content —
// with misses reported by fingerprint.
func TestBatchRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()

	entries := map[string][]byte{}
	var fps []string
	for _, src := range []string{"a", "b", "c"} {
		fp := testFingerprint(src)
		data, err := store.Encode(fp, testRecord())
		if err != nil {
			t.Fatal(err)
		}
		entries[fp] = data
		fps = append(fps, fp)
	}
	stored, rejected, err := c.PutBatch(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 3 || len(rejected) != 0 {
		t.Fatalf("PutBatch: stored %d rejected %v, want 3/none", stored, rejected)
	}

	missing := testFingerprint("never-built")
	got, err := c.GetBatch(ctx, append(fps, missing))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("GetBatch returned %d entries, want 3", len(got))
	}
	want := testRecord()
	for fp := range entries {
		// The returned bytes must still pass full per-entry validation
		// (schema, checksum, fingerprint) and carry the same record.
		rec, err := store.Decode(got[fp], fp)
		if err != nil {
			t.Errorf("entry %s no longer decodes: %v", fp[:8], err)
			continue
		}
		if rec.Workload != want.Workload || !bytes.Equal(rec.Base.Output, want.Base.Output) ||
			rec.Base.Stats.Insts != want.Base.Stats.Insts {
			t.Errorf("entry %s changed in batch round trip", fp[:8])
		}
	}
	if _, ok := got[missing]; ok {
		t.Error("GetBatch fabricated an entry for a never-stored fingerprint")
	}
	if st := srv.Stats(); st.Puts != 3 || st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats after batch round trip: %+v", st)
	}
}

// A bad entry inside a batch must be rejected alone; the rest of the
// batch still lands. This is what lets a worker flush a whole grid
// without one corrupt record losing the flush.
func TestBatchPutRejectsPerEntry(t *testing.T) {
	srv, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()

	fpGood, fpBad := testFingerprint("good"), testFingerprint("bad")
	good, err := store.Encode(fpGood, testRecord())
	if err != nil {
		t.Fatal(err)
	}
	// A structurally-valid entry stored under the wrong key must fail
	// the fingerprint check.
	wrongKey, err := store.Encode(fpGood, testRecord())
	if err != nil {
		t.Fatal(err)
	}
	stored, rejected, err := c.PutBatch(ctx, map[string][]byte{
		fpGood: good,
		fpBad:  wrongKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored != 1 || len(rejected) != 1 || rejected[0].Fingerprint != fpBad {
		t.Fatalf("PutBatch: stored %d rejected %+v, want 1 stored and %s rejected",
			stored, rejected, fpBad[:8])
	}
	got, err := c.GetBatch(ctx, []string{fpGood, fpBad})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[fpGood]; !ok {
		t.Error("good entry did not land")
	}
	if _, ok := got[fpBad]; ok {
		t.Error("rejected entry landed anyway")
	}
	if st := srv.Stats(); st.PutRejects != 1 {
		t.Errorf("put_rejects = %d, want 1", st.PutRejects)
	}
}

// Malformed batch requests are clean 4xx answers.
func TestBatchRejectsMalformedRequests(t *testing.T) {
	_, hs := newTestServer(t)
	for _, tc := range []struct {
		name, path, body string
	}{
		{"garbage get", "/v1/batch/get", "{not json"},
		{"empty get", "/v1/batch/get", `{"fingerprints":[]}`},
		{"malformed fp", "/v1/batch/get", `{"fingerprints":["zz"]}`},
		{"empty put", "/v1/batch/put", `{"entries":[]}`},
	} {
		resp, err := http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// A gzip-compressed request body must be inflated before validation, so
// a compressed PUT lands exactly like a plain one.
func TestGzipRequestBodies(t *testing.T) {
	srv, hs := newTestServer(t)
	ctx := context.Background()
	fp := testFingerprint("a")
	plain, err := store.Encode(fp, testRecord())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(plain) {
		t.Fatalf("test entry did not compress (%d -> %d)", len(plain), buf.Len())
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPut, hs.URL+entryPath(fp), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("gzip PUT: status %d, want 204", resp.StatusCode)
	}
	c := testClient(t, hs.URL, ClientConfig{})
	got, out := c.Get(ctx, fp)
	if out != Hit || got.Workload != "wc" {
		t.Fatalf("entry after gzip PUT: %v / %+v", out, got)
	}
	if st := srv.Stats(); st.Puts != 1 || st.PutRejects != 0 {
		t.Errorf("stats after gzip PUT: %+v", st)
	}

	// Lying about the encoding must be a clean 400, not a poisoned store.
	req, err = http.NewRequestWithContext(ctx, http.MethodPut, hs.URL+entryPath(testFingerprint("b")),
		bytes.NewReader([]byte("definitely not gzip")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus gzip body: status %d, want 400", resp.StatusCode)
	}
}

// Responses must come back gzip-compressed for clients that ask, and
// identical to the plain bytes once inflated.
func TestGzipResponses(t *testing.T) {
	_, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()
	fp := testFingerprint("a")
	if err := c.Put(ctx, fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	plain, err := store.Encode(fp, testRecord())
	if err != nil {
		t.Fatal(err)
	}

	// Setting Accept-Encoding by hand disables the transport's
	// transparent decompression, exposing the raw compressed reply.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL+entryPath(fp), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("response not gzip-encoded (Content-Encoding %q)", resp.Header.Get("Content-Encoding"))
	}
	if len(body) >= len(plain) {
		t.Errorf("compressed reply (%d bytes) not smaller than plain entry (%d bytes)", len(body), len(plain))
	}
	gr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inflated, plain) {
		t.Error("inflated reply differs from the canonical entry bytes")
	}

	// A client that does not accept gzip gets plain bytes.
	req.Header.Set("Accept-Encoding", "identity")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") == "gzip" {
		t.Error("server compressed for a client that refused gzip")
	}
	if !bytes.Equal(body, plain) {
		t.Error("plain reply differs from the canonical entry bytes")
	}
}

// The Client compresses large PUT bodies on its own; the server-side
// byte counter sees the inflated size, proving the middleware ran.
func TestClientGzipsLargePuts(t *testing.T) {
	srv, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()
	fp := testFingerprint("a")
	rec := testRecord()
	if err := c.Put(ctx, fp, rec); err != nil {
		t.Fatal(err)
	}
	plain, err := store.Encode(fp, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) < gzipThreshold {
		t.Skipf("test entry (%d bytes) below gzip threshold", len(plain))
	}
	if st := srv.Stats(); st.BytesIn != int64(len(plain)) {
		t.Errorf("server counted %d bytes in, want inflated size %d", st.BytesIn, len(plain))
	}
	if got, out := c.Get(ctx, fp); out != Hit || got.Workload != rec.Workload {
		t.Fatalf("round trip after compressed put: %v", out)
	}
}
