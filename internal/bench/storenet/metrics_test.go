package storenet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// spec is one enqueueable job over a roster workload.
func spec(w string, set lower.HeuristicSet) queue.JobSpec {
	return queue.JobSpec{Workload: w, Opts: pipeline.Options{Switch: set, Optimize: true}}
}

// newQueueTestServer is newTestServer with a work queue attached, so the
// snapshot grows the queue section.
func newQueueTestServer(t *testing.T, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.AttachQueue(queue.New(ttl, 0))
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// The JSON metrics variant must carry the same counters the plaintext
// page renders — structurally, through both the path and the query-param
// spelling — while the plaintext output stays byte-stable.
func TestMetricsJSONSnapshot(t *testing.T) {
	ctx := context.Background()
	_, hs := newQueueTestServer(t, time.Minute)
	c := testClient(t, hs.URL, ClientConfig{})

	fp := testFingerprint("metrics-json")
	if err := c.Put(ctx, fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	if _, out := c.Get(ctx, fp); out != Hit {
		t.Fatalf("get after put: %v", out)
	}
	if _, out := c.Get(ctx, testFingerprint("absent")); out != Miss {
		t.Fatalf("get absent: %v", out)
	}
	if _, err := c.EnqueueJobs(ctx, []queue.JobSpec{spec("wc", lower.SetI)}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Store.Puts != 1 || snap.Store.Hits != 1 || snap.Store.Misses != 1 {
		t.Errorf("store counters: %+v", snap.Store)
	}
	if snap.Queue == nil || snap.Queue.Pending != 1 || snap.Queue.Enqueued != 1 {
		t.Errorf("queue counters: %+v", snap.Queue)
	}

	// The query-param spelling answers identically.
	resp, err := http.Get(hs.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("?format=json Content-Type %q", ct)
	}
	if !strings.Contains(string(body), `"store"`) || !strings.Contains(string(body), `"queue"`) {
		t.Errorf("?format=json body missing sections:\n%s", body)
	}

	// Plaintext stays plaintext, byte-stable format.
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"brstored_hits 1\n", "brstored_misses 1\n", "brstored_puts 1\n",
		"brstored_queue_depth 1\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("plaintext metrics missing %q:\n%s", want, body)
		}
	}
}

// A plain cache server's snapshot must omit the queue section entirely.
func TestMetricsJSONWithoutQueue(t *testing.T) {
	_, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Queue != nil {
		t.Errorf("plain cache server reported queue counters: %+v", snap.Queue)
	}
}

// obsLog collects observations concurrently-safely.
type obsLog struct {
	mu  sync.Mutex
	obs []Observation
}

func (l *obsLog) add(o Observation) {
	l.mu.Lock()
	l.obs = append(l.obs, o)
	l.mu.Unlock()
}

func (l *obsLog) byOp() map[string][]Observation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string][]Observation{}
	for _, o := range l.obs {
		out[o.Op] = append(out[o.Op], o)
	}
	return out
}

// The observer hook must see one observation per operation — op class,
// outcome and a plausible duration — across the entry, batch and queue
// paths, with retries folded into a single observation.
func TestObserverSeesEveryOperation(t *testing.T) {
	ctx := context.Background()
	_, hs := newQueueTestServer(t, time.Minute)
	var log obsLog
	c := testClient(t, hs.URL, ClientConfig{Observer: log.add})

	fp := testFingerprint("observed")
	if err := c.Put(ctx, fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	if _, out := c.Get(ctx, fp); out != Hit {
		t.Fatal("get did not hit")
	}
	if _, out := c.Get(ctx, testFingerprint("observed-absent")); out != Miss {
		t.Fatal("get did not miss")
	}
	if _, err := c.GetBatch(ctx, []string{fp}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueJobs(ctx, []queue.JobSpec{spec("wc", lower.SetI)}); err != nil {
		t.Fatal(err)
	}
	l, _, err := c.LeaseJob(ctx, "obs-worker")
	if err != nil || l == nil {
		t.Fatalf("lease: %v %v", l, err)
	}
	if err := c.HeartbeatJob(ctx, l.ID, l.Token); err != nil {
		t.Fatal(err)
	}
	if err := c.CompleteJob(ctx, l.ID, l.Token, "obs-worker", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}

	got := log.byOp()
	want := map[string]string{
		"put":       "ok",
		"batch-get": "ok",
		"enqueue":   "ok",
		"lease":     "ok",
		"heartbeat": "ok",
		"complete":  "ok",
		"metrics":   "ok",
	}
	for op, outcome := range want {
		obs := got[op]
		if len(obs) != 1 {
			t.Errorf("op %q observed %d times, want 1", op, len(obs))
			continue
		}
		if obs[0].Outcome != outcome || obs[0].Err != nil {
			t.Errorf("op %q: outcome %q err %v, want %q/nil", op, obs[0].Outcome, obs[0].Err, outcome)
		}
		if obs[0].Duration < 0 {
			t.Errorf("op %q: negative duration %v", op, obs[0].Duration)
		}
	}
	gets := got["get"]
	if len(gets) != 2 {
		t.Fatalf("get observed %d times, want 2", len(gets))
	}
	if gets[0].Outcome != "hit" || gets[1].Outcome != "miss" {
		t.Errorf("get outcomes %q/%q, want hit/miss", gets[0].Outcome, gets[1].Outcome)
	}
}

// A failing operation must be observed as one "error" observation whose
// duration spans the whole retry sequence, and a typed queue error must
// ride along on Err.
func TestObserverSeesFailures(t *testing.T) {
	ctx := context.Background()
	_, hs := newQueueTestServer(t, time.Minute)
	var log obsLog
	c := testClient(t, hs.URL, ClientConfig{Observer: log.add})

	// Heartbeat on a job that was never enqueued: typed 404, one observation.
	err := c.HeartbeatJob(ctx, "nope", "token")
	if err == nil {
		t.Fatal("heartbeat on unknown job succeeded")
	}
	obs := log.byOp()["heartbeat"]
	if len(obs) != 1 || obs[0].Outcome != "error" || obs[0].Err == nil {
		t.Fatalf("heartbeat failure observations: %+v", obs)
	}

	// A dead server: the whole bounded retry sequence is one observation.
	hs.Close()
	var dead obsLog
	dc := testClient(t, hs.URL, ClientConfig{Observer: dead.add, MaxAttempts: 2})
	if _, out := dc.Get(ctx, testFingerprint("dead")); out != Fallback {
		t.Fatalf("get against dead server: %v", out)
	}
	gets := dead.byOp()["get"]
	if len(gets) != 1 || gets[0].Outcome != "fallback" {
		t.Fatalf("dead-server get observations: %+v", gets)
	}
}
