package storenet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
)

// A server that 5xxes transiently must be retried with backoff until it
// recovers, within the attempt budget.
func TestClientRetriesServerErrors(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(st).Handler()
	fp := testFingerprint("a")
	if err := st.Put(fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "catching fire", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, ClientConfig{MaxAttempts: 3})
	rec, out := c.Get(context.Background(), fp)
	if out != Hit || rec == nil {
		t.Fatalf("Get after two 503s: %v, want hit", out)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d requests, want 3 (two retries)", got)
	}
}

// A request that exceeds the per-request timeout must be retried, and
// succeed once the server answers in time.
func TestClientRetriesTimeouts(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(st).Handler()
	fp := testFingerprint("a")
	if err := st.Put(fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // beyond the client timeout
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, ClientConfig{Timeout: 50 * time.Millisecond, MaxAttempts: 3})
	if _, out := c.Get(context.Background(), fp); out != Hit {
		t.Fatalf("Get after a timeout: %v, want hit", out)
	}
	if got := calls.Load(); got < 2 {
		t.Errorf("%d requests, want at least 2", got)
	}
}

// A dead server must degrade to Fallback — never an error — log exactly
// once, and trip the breaker so later calls don't pay the timeout tax.
func TestClientDeadServerFallsBack(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
	}
	// Port 1 is essentially never listening: instant connection refused.
	c := testClient(t, "http://127.0.0.1:1", ClientConfig{
		MaxAttempts: 2, BreakerThreshold: 2, Logf: logf,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, out := c.Get(ctx, testFingerprint("a")); out != Fallback {
			t.Fatalf("Get %d against dead server: %v, want fallback", i, out)
		}
	}
	if err := c.Put(ctx, testFingerprint("b"), testRecord()); err == nil {
		t.Error("Put against tripped breaker reported success")
	}
	mu.Lock()
	defer mu.Unlock()
	var unavailable, disabled int
	for _, l := range lines {
		if strings.Contains(l, "unavailable") {
			unavailable++
		}
		if strings.Contains(l, "disabling") {
			disabled++
		}
	}
	if unavailable != 1 || disabled != 1 {
		t.Errorf("logged %d unavailable + %d disabling notices, want exactly 1 of each: %q",
			unavailable, disabled, lines)
	}
}

// Concurrent Gets of one fingerprint must share a single HTTP request.
func TestClientSingleFlight(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(st).Handler()
	fp := testFingerprint("a")
	if err := st.Put(fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release // hold every caller in the single flight
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, ClientConfig{})
	const n = 8
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i] = c.Get(context.Background(), fp)
		}(i)
	}
	// Wait until the one real request is in the handler, then make sure
	// no duplicate follows before releasing it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("%d HTTP requests for %d concurrent Gets, want 1", got, n)
	}
	for i, out := range outs {
		if out != Hit {
			t.Errorf("caller %d: %v, want hit", i, out)
		}
	}
}

// A 4xx rejection of a Put must surface as an error without retrying —
// re-sending a rejected payload cannot help.
func TestClientPutRejectionDoesNotRetry(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, ClientConfig{MaxAttempts: 3})
	if err := c.Put(context.Background(), testFingerprint("a"), testRecord()); err == nil {
		t.Fatal("rejected Put reported success")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d requests for a 4xx Put, want 1", got)
	}
}

// A response that decodes but fails validation is a miss, not a hit and
// not a fallback: the corrupt-entry-as-miss contract extends over HTTP.
func TestClientGarbageResponseIsMiss(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"schema":1,"fingerprint":"x","sum":"00","record":{}}`))
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, ClientConfig{})
	if _, out := c.Get(context.Background(), testFingerprint("a")); out != Miss {
		t.Fatalf("garbage 200 body: %v, want miss", out)
	}
}

func TestNewClientRejectsBadURLs(t *testing.T) {
	for _, u := range []string{"", "not a url", "host:8370/no-scheme", "http://"} {
		if _, err := NewClient(u, ClientConfig{}); err == nil {
			t.Errorf("NewClient(%q) accepted", u)
		}
	}
}
