package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

func spec(w string, set lower.HeuristicSet) JobSpec {
	return JobSpec{Workload: w, Opts: pipeline.Options{Switch: set, Optimize: true}}
}

func specs(n int) []JobSpec {
	out := make([]JobSpec, n)
	for i := range out {
		out[i] = spec(fmt.Sprintf("w%03d", i), lower.SetI)
	}
	return out
}

// fakeClock is a settable time source so expiry tests need no sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestQueue(ttl time.Duration) (*Queue, *fakeClock) {
	q := New(ttl, 0)
	c := &fakeClock{t: time.Unix(1000, 0)}
	q.SetClock(c.now)
	return q, c
}

func TestSpecIDDeterministicAndDistinct(t *testing.T) {
	a := spec("wc", lower.SetI)
	if a.ID() != spec("wc", lower.SetI).ID() {
		t.Error("identical specs got different IDs")
	}
	seen := map[string]bool{}
	for _, s := range []JobSpec{
		a,
		spec("wc", lower.SetII),
		spec("sort", lower.SetI),
		{Workload: "wc", Opts: pipeline.Options{Switch: lower.SetI, Optimize: true, CommonSuccessor: true}},
	} {
		id := s.ID()
		if seen[id] {
			t.Errorf("duplicate ID %s for distinct spec %+v", id, s)
		}
		seen[id] = true
	}
}

func TestEnqueueIdempotent(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	acc, known := q.Enqueue(specs(5))
	if acc != 5 || known != 0 {
		t.Fatalf("first enqueue: accepted %d known %d, want 5/0", acc, known)
	}
	acc, known = q.Enqueue(specs(5))
	if acc != 0 || known != 5 {
		t.Fatalf("re-enqueue: accepted %d known %d, want 0/5", acc, known)
	}
	if c := q.Counts(); c.Pending != 5 || c.Enqueued != 5 {
		t.Fatalf("counts after duplicate enqueue: %+v", c)
	}
}

func TestLeaseCompleteLifecycle(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	q.Enqueue(specs(2))
	l1, ok, drained := q.Lease("w1")
	if !ok || drained {
		t.Fatalf("first lease: ok=%v drained=%v", ok, drained)
	}
	// FIFO: oldest job first.
	if l1.Spec.Workload != "w000" {
		t.Errorf("lease order: got %s, want w000", l1.Spec.Workload)
	}
	if l1.TTL != time.Minute {
		t.Errorf("lease TTL %v, want 1m", l1.TTL)
	}
	l2, ok, _ := q.Lease("w2")
	if !ok {
		t.Fatal("second lease refused")
	}
	if _, ok, drained := q.Lease("w3"); ok || drained {
		t.Fatalf("empty queue lease: ok=%v drained=%v (leases still live)", ok, drained)
	}
	if err := q.Complete(l1.ID, l1.Token, "w1", ""); err != nil {
		t.Fatalf("complete 1: %v", err)
	}
	if err := q.Complete(l2.ID, l2.Token, "w2", ""); err != nil {
		t.Fatalf("complete 2: %v", err)
	}
	_, ok, drained = q.Lease("w3")
	if ok || !drained {
		t.Fatalf("drained queue: ok=%v drained=%v", ok, drained)
	}
	c := q.Counts()
	if !c.Drained || c.Done != 2 || c.Workers["w1"] != 1 || c.Workers["w2"] != 1 {
		t.Fatalf("final counts: %+v", c)
	}
}

func TestEmptyQueueIsNotDrained(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	if _, ok, drained := q.Lease("w"); ok || drained {
		t.Fatalf("never-enqueued queue: ok=%v drained=%v, want false/false", ok, drained)
	}
	if q.Counts().Drained {
		t.Error("never-enqueued queue reports drained")
	}
}

func TestExpiredLeaseIsReoffered(t *testing.T) {
	q, clock := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	l1, ok, _ := q.Lease("dead")
	if !ok {
		t.Fatal("lease refused")
	}
	// Before the deadline the job is not re-offered.
	clock.advance(59 * time.Second)
	if _, ok, _ := q.Lease("w2"); ok {
		t.Fatal("job re-offered before its lease expired")
	}
	clock.advance(2 * time.Second)
	l2, ok, _ := q.Lease("w2")
	if !ok {
		t.Fatal("expired job not re-offered")
	}
	if l2.ID != l1.ID || l2.Token == l1.Token {
		t.Fatalf("re-lease: id %s→%s token reused=%v", l1.ID, l2.ID, l2.Token == l1.Token)
	}
	// The dead worker's stale token must be rejected, not retried.
	if err := q.Complete(l1.ID, l1.Token, "dead", ""); !errors.Is(err, ErrLeaseConflict) {
		t.Errorf("stale complete: %v, want ErrLeaseConflict", err)
	}
	if err := q.Heartbeat(l1.ID, l1.Token); !errors.Is(err, ErrLeaseConflict) {
		t.Errorf("stale heartbeat: %v, want ErrLeaseConflict", err)
	}
	if err := q.Complete(l2.ID, l2.Token, "w2", ""); err != nil {
		t.Fatalf("second worker complete: %v", err)
	}
	c := q.Counts()
	if c.Expired != 1 || c.Done != 1 || c.Workers["w2"] != 1 || c.Workers["dead"] != 0 {
		t.Fatalf("counts after re-lease: %+v", c)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	q, clock := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	l, _, _ := q.Lease("w1")
	for i := 0; i < 5; i++ {
		clock.advance(45 * time.Second)
		if err := q.Heartbeat(l.ID, l.Token); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if c := q.Counts(); c.Expired != 0 || c.Leased != 1 {
		t.Fatalf("heartbeats did not hold the lease: %+v", c)
	}
	if err := q.Complete(l.ID, l.Token, "w1", ""); err != nil {
		t.Fatalf("complete after heartbeats: %v", err)
	}
}

func TestExpiredUnclaimedLeaseCanBeReclaimed(t *testing.T) {
	q, clock := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	l, _, _ := q.Lease("slow")
	clock.advance(2 * time.Minute) // expired, but nobody else took it
	if err := q.Heartbeat(l.ID, l.Token); err != nil {
		t.Fatalf("reclaim heartbeat: %v", err)
	}
	c := q.Counts()
	if c.Reclaimed != 1 || c.Leased != 1 || c.Expired != 1 {
		t.Fatalf("counts after reclaim: %+v", c)
	}
	if err := q.Complete(l.ID, l.Token, "slow", ""); err != nil {
		t.Fatalf("complete after reclaim: %v", err)
	}
}

func TestLateCompleteOnUnclaimedExpiredLease(t *testing.T) {
	q, clock := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	l, _, _ := q.Lease("slow")
	clock.advance(2 * time.Minute)
	// Expired and re-offered, but unclaimed: the late completion is real
	// work and is accepted.
	if err := q.Complete(l.ID, l.Token, "slow", ""); err != nil {
		t.Fatalf("late complete: %v", err)
	}
	if c := q.Counts(); c.Done != 1 || !c.Drained {
		t.Fatalf("counts after late complete: %+v", c)
	}
}

func TestCompleteIsIdempotent(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	l, _, _ := q.Lease("w1")
	if err := q.Complete(l.ID, l.Token, "w1", ""); err != nil {
		t.Fatal(err)
	}
	// A duplicate complete — same token or a stale one — is a no-op, not
	// an error: the content-addressed result already landed.
	if err := q.Complete(l.ID, l.Token, "w1", ""); err != nil {
		t.Errorf("duplicate complete: %v", err)
	}
	if err := q.Complete(l.ID, "stale-token", "w2", ""); err != nil {
		t.Errorf("stale-token complete on done job: %v", err)
	}
	c := q.Counts()
	if c.Done != 1 || c.Workers["w1"] != 1 || c.Workers["w2"] != 0 {
		t.Fatalf("duplicate completes double-counted: %+v", c)
	}
}

func TestUnknownAndFinishedJobs(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	if err := q.Heartbeat("beef00112233", "tok"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown heartbeat: %v", err)
	}
	if err := q.Complete("beef00112233", "tok", "w", ""); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown complete: %v", err)
	}
	l, _, _ := q.Lease("w1")
	q.Complete(l.ID, l.Token, "w1", "")
	if err := q.Heartbeat(l.ID, l.Token); !errors.Is(err, ErrGone) {
		t.Errorf("heartbeat on done job: %v, want ErrGone", err)
	}
}

func TestFailedBuildsRetryThenFailPermanently(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	q.Enqueue(specs(1))
	for attempt := 1; attempt <= DefaultMaxAttempts; attempt++ {
		l, ok, _ := q.Lease(fmt.Sprintf("w%d", attempt))
		if !ok {
			t.Fatalf("attempt %d: job not offered", attempt)
		}
		if err := q.Complete(l.ID, l.Token, l.Spec.Workload, "boom"); err != nil {
			t.Fatalf("attempt %d fail-complete: %v", attempt, err)
		}
	}
	c := q.Counts()
	if c.Failed != 1 || !c.Drained {
		t.Fatalf("counts after exhausted attempts: %+v", c)
	}
	if len(c.Failures) != 1 || c.Failures[0].Error != "boom" || c.Failures[0].Workload != "w000" {
		t.Fatalf("failure report: %+v", c.Failures)
	}
	if _, ok, drained := q.Lease("w9"); ok || !drained {
		t.Fatalf("failed job re-offered: ok=%v drained=%v", ok, drained)
	}
}

// The lease-contention guarantee under the race detector: N workers
// hammering one queue, every job completed exactly once, and — because
// every lease here outlives the test — no job is ever leased twice.
func TestConcurrentLeaseContention(t *testing.T) {
	const workers, jobs = 16, 120
	q, _ := newTestQueue(time.Hour) // no lease can expire mid-test
	q.Enqueue(specs(jobs))

	var built sync.Map // job ID → *int64 build count
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := fmt.Sprintf("worker-%02d", w)
			for {
				l, ok, drained := q.Lease(me)
				if drained {
					return
				}
				if !ok {
					continue // someone holds the last jobs; spin
				}
				n, _ := built.LoadOrStore(l.ID, new(int64))
				atomic.AddInt64(n.(*int64), 1)
				if err := q.Heartbeat(l.ID, l.Token); err != nil {
					t.Errorf("%s heartbeat: %v", me, err)
				}
				if err := q.Complete(l.ID, l.Token, me, ""); err != nil {
					t.Errorf("%s complete: %v", me, err)
				}
			}
		}(w)
	}
	wg.Wait()

	c := q.Counts()
	if c.Done != jobs || c.Pending != 0 || c.Leased != 0 || c.Failed != 0 {
		t.Fatalf("final counts: %+v", c)
	}
	if c.Expired != 0 {
		t.Fatalf("leases expired under an hour-long TTL: %+v", c)
	}
	var total int64
	for _, n := range c.Workers {
		total += n
	}
	if total != jobs {
		t.Errorf("per-worker completions sum to %d, want %d", total, jobs)
	}
	builds := 0
	built.Range(func(id, n interface{}) bool {
		builds++
		if got := atomic.LoadInt64(n.(*int64)); got != 1 {
			t.Errorf("job %v built %d times without an expired lease", id, got)
		}
		if got := q.Leases(id.(string)); got != 1 {
			t.Errorf("job %v leased %d times without an expired lease", id, got)
		}
		return true
	})
	if builds != jobs {
		t.Errorf("%d distinct jobs built, want %d", builds, jobs)
	}
}

// Contention with deliberately dying workers: some holders never
// complete, so jobs are re-offered after expiry and everything still
// drains with exactly one done-transition per job.
func TestConcurrentContentionWithExpiry(t *testing.T) {
	const workers, jobs = 8, 60
	q := New(20*time.Millisecond, 0) // real clock: expiry must happen mid-run
	q.Enqueue(specs(jobs))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := fmt.Sprintf("worker-%02d", w)
			drops := 0
			for {
				l, ok, drained := q.Lease(me)
				if drained {
					return
				}
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				// Every worker abandons its first two leases — takes the
				// job and dies silently, like a crashed machine.
				if drops < 2 {
					drops++
					continue
				}
				if err := q.Complete(l.ID, l.Token, me, ""); err != nil &&
					!errors.Is(err, ErrLeaseConflict) {
					t.Errorf("%s complete: %v", me, err)
				}
			}
		}(w)
	}
	wg.Wait()

	c := q.Counts()
	if c.Done != jobs || !c.Drained {
		t.Fatalf("grid did not drain despite abandoned leases: %+v", c)
	}
	if c.Expired == 0 {
		t.Error("abandoned leases never expired — the fault was not injected")
	}
	var total int64
	for _, n := range c.Workers {
		total += n
	}
	if total != jobs {
		t.Errorf("per-worker completions sum to %d, want %d (double-counted transition)", total, jobs)
	}
}

// A load generator abandoning a fraction of its leases must not eat the
// job's failure budget: expiry is a scheduling event, not a failed build
// attempt, no matter how many times it repeats.
func TestExpiryChurnDoesNotConsumeFailureBudget(t *testing.T) {
	q, clock := newTestQueue(time.Second)
	q.Enqueue(specs(1))
	id := ""
	// Churn well past the attempt budget: lease, walk away, expire.
	for i := 0; i < DefaultMaxAttempts*4; i++ {
		l, ok, _ := q.Lease(fmt.Sprintf("ghost-%d", i))
		if !ok {
			t.Fatalf("churn round %d: job not re-offered: %+v", i, q.Counts())
		}
		id = l.ID
		clock.advance(2 * time.Second)
	}
	c := q.Counts()
	if c.Failed != 0 {
		t.Fatalf("expiry churn marked the job failed: %+v", c)
	}
	if c.Expired != int64(DefaultMaxAttempts*4) {
		t.Errorf("expired %d, want %d", c.Expired, DefaultMaxAttempts*4)
	}
	// An honest worker still gets the job and finishes it.
	l, ok, _ := q.Lease("honest")
	if !ok || l.ID != id {
		t.Fatalf("job not leasable after churn: ok=%v", ok)
	}
	if err := q.Complete(l.ID, l.Token, "honest", ""); err != nil {
		t.Fatalf("complete after churn: %v", err)
	}
	c = q.Counts()
	if c.Done != 1 || !c.Drained || c.Pending != 0 || c.Leased != 0 {
		t.Fatalf("books unbalanced after churn + completion: %+v", c)
	}
}

// The per-worker completions map must stay bounded no matter how many
// distinct worker IDs complete jobs: beyond the cap, completions fold
// into the overflow bucket and totals stay exact.
func TestWorkerCompletionsMapBounded(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	jobs := MaxTrackedWorkers + 50
	q.Enqueue(specs(jobs))
	for i := 0; i < jobs; i++ {
		worker := fmt.Sprintf("soak-worker-%04d", i)
		l, ok, _ := q.Lease(worker)
		if !ok {
			t.Fatalf("lease %d failed", i)
		}
		if err := q.Complete(l.ID, l.Token, worker, ""); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	c := q.Counts()
	if len(c.Workers) > MaxTrackedWorkers+1 {
		t.Errorf("worker map grew to %d entries, cap is %d (+1 overflow)",
			len(c.Workers), MaxTrackedWorkers)
	}
	var total int64
	for _, n := range c.Workers {
		total += n
	}
	if total != int64(jobs) {
		t.Errorf("tracked completions sum to %d, want %d", total, jobs)
	}
	if c.Workers[OverflowWorker] != int64(jobs-MaxTrackedWorkers) {
		t.Errorf("overflow bucket holds %d, want %d", c.Workers[OverflowWorker], jobs-MaxTrackedWorkers)
	}
	// A capped worker keeps incrementing its own entry, not the bucket.
	q.Enqueue(specs(jobs + 1)[jobs:])
	l, ok, _ := q.Lease("soak-worker-0000")
	if !ok {
		t.Fatal("lease for returning worker failed")
	}
	if err := q.Complete(l.ID, l.Token, "soak-worker-0000", ""); err != nil {
		t.Fatal(err)
	}
	if n := q.Counts().Workers["soak-worker-0000"]; n != 2 {
		t.Errorf("returning tracked worker credited %d, want 2", n)
	}
}
