// Package queue is the work-queue heart of the build farm: the
// coordinator state machine that turns a fleet of brbench workers into a
// self-organizing grid.
//
// The static alternative — brbench -shard i/n — decides the partition up
// front, so one slow or dead machine stalls its slice and the merge waits
// forever. Here workers *pull*: the coordinator holds the
// (workload × heuristic set × options) matrix as jobs, hands each out
// under a time-limited lease, and re-offers any lease whose holder stops
// heartbeating. A straggler costs one TTL, never the grid.
//
// Lease protocol (see DESIGN.md §4f):
//
//	          Enqueue                Lease                 Complete
//	(absent) ────────▶ pending ───────────────▶ leased ─────────────▶ done
//	                      ▲                       │  │
//	                      │   deadline passes     │  │ Complete with
//	                      └───────────────────────┘  │ error, attempt
//	                        (expired: re-offered)    ▼ budget exhausted
//	                                               failed
//
// Heartbeat extends a live lease's deadline. An expired job keeps its
// last token, so the original holder can still reclaim it (Heartbeat) or
// land a late Complete — but only until some other worker leases it,
// after which the stale token gets ErrLeaseConflict and the late worker
// drops the job instead of fighting for it. Complete on a done job is
// idempotent: results are content-addressed in the store, so a duplicate
// build produced identical bytes and the transition simply happened
// earlier.
//
// The queue holds only coordination state, never results: workers write
// builds through the same store tier they already share, so the queue
// vanishing (a coordinator restart) loses nothing but the un-drained
// job list.
package queue

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"branchreorder/internal/pipeline"
)

// Typed protocol errors. The HTTP layer maps them to status codes
// (409/410/404) and the client maps those codes back to these exact
// values, so a worker can errors.Is across the wire.
var (
	// ErrLeaseConflict: the presented token no longer owns the job —
	// its lease expired and another worker holds it now. Non-retryable:
	// the right move is to drop the job, not back off.
	ErrLeaseConflict = errors.New("queue: lease conflict: job is owned by another worker")
	// ErrGone: the job already reached a terminal state (done or
	// failed); there is nothing left to heartbeat. Non-retryable.
	ErrGone = errors.New("queue: job already finished")
	// ErrUnknownJob: the job ID was never enqueued here. Non-retryable.
	ErrUnknownJob = errors.New("queue: unknown job")
)

// JobSpec identifies one build+measure job of the evaluation matrix, in
// the same serializable vocabulary store.Record uses.
type JobSpec struct {
	Workload string           `json:"workload"`
	Opts     pipeline.Options `json:"options"`
}

// ID returns the job's deterministic identity: a hash of the canonical
// spec encoding. Identical specs get identical IDs, which is what makes
// Enqueue idempotent (re-submitting a matrix re-offers nothing already
// queued, running, or done).
func (s JobSpec) ID() string {
	data, _ := json.Marshal(s) // the spec is plain data; this cannot fail
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// State is one job's position in the lease protocol.
type State int

const (
	Pending State = iota // enqueued (or re-offered), waiting for a worker
	Leased               // held by a worker under a live deadline
	Done                 // completed; terminal
	Failed               // build failed on every attempt; terminal
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Leased:
		return "leased"
	case Done:
		return "done"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// job is the coordinator's record of one unit of work.
type job struct {
	id       string
	spec     JobSpec
	state    State
	token    string    // current lease token; kept after expiry for reclaim
	worker   string    // current/last lease holder
	deadline time.Time // lease expiry, meaningful only while Leased
	leases   int       // times handed out (metrics; >1 means re-offered)
	attempts int       // failed build attempts so far
	err      string    // last build error; final one when Failed
}

// Lease is what a worker gets back from Lease: the job, the token that
// proves ownership, and the TTL its heartbeats must beat.
type Lease struct {
	ID    string
	Spec  JobSpec
	Token string
	TTL   time.Duration
}

// Failure describes one permanently failed job for status reporting.
type Failure struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Error    string `json:"error"`
}

// Counts is a point-in-time snapshot of the queue, the payload of the
// status endpoint and the source of the /metrics queue section.
type Counts struct {
	Enqueued  int64 `json:"enqueued"`  // jobs ever accepted
	Pending   int64 `json:"pending"`   // waiting for a worker (queue depth)
	Leased    int64 `json:"leased"`    // held under a live lease
	Done      int64 `json:"done"`      // completed
	Failed    int64 `json:"failed"`    // terminally failed
	Expired   int64 `json:"expired"`   // leases that timed out and were re-offered
	Reclaimed int64 `json:"reclaimed"` // expired leases re-taken by their original holder
	// Drained: every job that was ever enqueued has reached a terminal
	// state. False for a queue nothing was ever enqueued on, so a worker
	// that connects before the matrix is submitted waits instead of
	// exiting.
	Drained bool `json:"drained"`
	// Workers maps worker ID to jobs it completed (counted at the done
	// transition only, so duplicates from expired leases credit nobody
	// twice).
	Workers map[string]int64 `json:"workers,omitempty"`
	// Failures carries every Failed job's last error.
	Failures []Failure `json:"failures,omitempty"`
}

// Queue is the coordinator state machine. It is safe for concurrent use;
// every public method takes the one lock, sweeps expired leases, then
// acts, so expiry needs no background timer.
type Queue struct {
	mu          sync.Mutex
	ttl         time.Duration
	maxAttempts int
	now         func() time.Time // injectable clock for tests

	jobs  map[string]*job
	order []string // job IDs in enqueue order; pending scans run oldest-first

	expired   int64
	reclaimed int64
	completed map[string]int64 // per-worker done transitions
}

// DefaultTTL is the lease TTL when New is given none.
const DefaultTTL = 60 * time.Second

// DefaultMaxAttempts is how many failed builds a job survives before it
// is marked Failed instead of re-offered.
const DefaultMaxAttempts = 3

// MaxTrackedWorkers bounds the per-worker completions map. A build farm
// has a handful of stable worker IDs, but a long soak (or a fleet whose
// IDs embed PIDs across restarts) can churn through arbitrarily many;
// without a cap every one would live in /metrics forever. Workers beyond
// the cap are aggregated under OverflowWorker, so totals stay exact
// while the map — and the /metrics page — stays bounded.
const MaxTrackedWorkers = 128

// OverflowWorker is the aggregate completions bucket for workers beyond
// MaxTrackedWorkers.
const OverflowWorker = "(other)"

// New returns an empty queue whose leases last ttl (DefaultTTL if <= 0)
// and whose jobs fail permanently after maxAttempts failed builds
// (DefaultMaxAttempts if <= 0).
func New(ttl time.Duration, maxAttempts int) *Queue {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	return &Queue{
		ttl:         ttl,
		maxAttempts: maxAttempts,
		now:         time.Now,
		jobs:        map[string]*job{},
		completed:   map[string]int64{},
	}
}

// TTL reports the lease TTL workers must heartbeat within.
func (q *Queue) TTL() time.Duration { return q.ttl }

// SetClock replaces the queue's time source — tests use it to expire
// leases without sleeping. Call before any concurrent use.
func (q *Queue) SetClock(now func() time.Time) { q.now = now }

// sweep re-offers every lease whose deadline has passed. Callers hold mu.
// The job keeps its token and worker, so the late holder can reclaim it
// or land a late Complete until someone else leases it.
func (q *Queue) sweep() {
	now := q.now()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.state == Leased && now.After(j.deadline) {
			j.state = Pending
			q.expired++
		}
	}
}

// Enqueue adds every spec not already known (in any state) to the queue.
// It returns how many were new and how many were duplicates of existing
// jobs. Duplicates are not an error: re-submitting a matrix after a
// partial run is exactly how a farm resumes.
func (q *Queue) Enqueue(specs []JobSpec) (accepted, known int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweep()
	for _, spec := range specs {
		id := spec.ID()
		if _, ok := q.jobs[id]; ok {
			known++
			continue
		}
		q.jobs[id] = &job{id: id, spec: spec, state: Pending}
		q.order = append(q.order, id)
		accepted++
	}
	return accepted, known
}

// Lease hands the oldest pending job to worker under a fresh token and
// deadline. ok is false when nothing is pending; drained additionally
// reports that nothing is leased either (and something was enqueued), so
// a worker knows the difference between "wait" and "the grid is done".
func (q *Queue) Lease(worker string) (l Lease, ok, drained bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweep()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.state != Pending {
			continue
		}
		j.state = Leased
		j.token = newToken()
		j.worker = worker
		j.deadline = q.now().Add(q.ttl)
		j.leases++
		return Lease{ID: j.id, Spec: j.spec, Token: j.token, TTL: q.ttl}, true, false
	}
	return Lease{}, false, q.drainedLocked()
}

// Heartbeat extends the lease (id, token). On a job whose lease expired
// but was not re-taken, the original holder reclaims it — a slow worker
// that missed one heartbeat window keeps its work. A token that lost the
// job gets ErrLeaseConflict; a finished job gets ErrGone.
func (q *Queue) Heartbeat(id, token string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweep()
	j, ok := q.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.state {
	case Done, Failed:
		return ErrGone
	case Leased:
		if j.token != token {
			return ErrLeaseConflict
		}
		j.deadline = q.now().Add(q.ttl)
		return nil
	default: // Pending
		if j.token == "" || j.token != token {
			return ErrLeaseConflict
		}
		// Expired but unclaimed: the holder is alive after all.
		j.state = Leased
		j.deadline = q.now().Add(q.ttl)
		q.reclaimed++
		return nil
	}
}

// Complete finishes the job (id, token). An empty buildErr marks it
// Done and credits worker; a non-empty one counts a failed attempt and
// either re-offers the job or, once the attempt budget is spent, marks
// it Failed. Complete on an already-Done job returns nil (idempotent:
// the duplicate build wrote identical content-addressed bytes); a token
// that lost the job to another worker gets ErrLeaseConflict.
func (q *Queue) Complete(id, token, worker, buildErr string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweep()
	j, ok := q.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.state {
	case Done:
		return nil
	case Failed:
		return ErrGone
	}
	// Leased or Pending-after-expiry: only the last issued token may
	// finish the job. A Pending job with a matching token is a late
	// completion by a holder whose lease expired unclaimed — accept it,
	// the work is real.
	if j.token == "" || j.token != token {
		return ErrLeaseConflict
	}
	if buildErr != "" {
		j.attempts++
		j.err = buildErr
		if j.attempts >= q.maxAttempts {
			j.state = Failed
		} else {
			j.state = Pending
			j.token = "" // a failed attempt surrenders the lease entirely
		}
		return nil
	}
	j.state = Done
	j.worker = worker
	q.completed[q.trackedWorker(worker)]++
	return nil
}

// trackedWorker returns the completions-map key for worker: the worker
// itself while the map has room (or already holds it), the overflow
// bucket once more distinct IDs have completed jobs than the map — and
// the /metrics page rendered from it — should ever grow.
func (q *Queue) trackedWorker(worker string) string {
	if _, ok := q.completed[worker]; ok {
		return worker
	}
	if len(q.completed) >= MaxTrackedWorkers {
		return OverflowWorker
	}
	return worker
}

// Counts snapshots the queue.
func (q *Queue) Counts() Counts {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweep()
	c := Counts{
		Enqueued:  int64(len(q.order)),
		Expired:   q.expired,
		Reclaimed: q.reclaimed,
	}
	for _, id := range q.order {
		j := q.jobs[id]
		switch j.state {
		case Pending:
			c.Pending++
		case Leased:
			c.Leased++
		case Done:
			c.Done++
		case Failed:
			c.Failed++
			c.Failures = append(c.Failures, Failure{ID: j.id, Workload: j.spec.Workload, Error: j.err})
		}
	}
	c.Drained = c.Enqueued > 0 && c.Pending == 0 && c.Leased == 0
	if len(q.completed) > 0 {
		c.Workers = make(map[string]int64, len(q.completed))
		for w, n := range q.completed {
			c.Workers[w] = n
		}
	}
	return c
}

// drainedLocked reports whether every enqueued job is terminal. Callers
// hold mu and have swept.
func (q *Queue) drainedLocked() bool {
	if len(q.order) == 0 {
		return false
	}
	for _, id := range q.order {
		if s := q.jobs[id].state; s == Pending || s == Leased {
			return false
		}
	}
	return true
}

// Leases reports how many times job id has been handed out — tests use
// it to assert nothing was double-leased without an expiry.
func (q *Queue) Leases(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		return j.leases
	}
	return 0
}

// WorkerCompletions returns the per-worker done transitions, keys
// sorted, for deterministic /metrics rendering.
func (q *Queue) WorkerCompletions() []struct {
	Worker string
	Done   int64
} {
	q.mu.Lock()
	defer q.mu.Unlock()
	workers := make([]string, 0, len(q.completed))
	for w := range q.completed {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	out := make([]struct {
		Worker string
		Done   int64
	}, len(workers))
	for i, w := range workers {
		out[i].Worker = w
		out[i].Done = q.completed[w]
	}
	return out
}

// newToken returns an unguessable lease token. The fallback only exists
// for platforms where crypto/rand fails, which Go treats as fatal
// anyway; tokens need uniqueness, not secrecy, inside the trust
// boundary brstored already assumes.
func newToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("queue: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
