package storenet

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"branchreorder/internal/bench/storenet/queue"
)

// Queue-protocol client operations. Unlike the cache path — which is
// built to degrade silently because local tiers can always serve — the
// queue is the worker's lifeline, so these methods return real errors
// and do not consult or feed the circuit breaker: a worker outlives a
// coordinator restart by retrying its loop, not by tripping into
// permanent fallback.
//
// Status-code mapping (the wire form of the queue's typed errors):
//
//	409 → queue.ErrLeaseConflict   another worker owns the job now
//	410 → queue.ErrGone            the job already finished
//	404 → queue.ErrUnknownJob      the job was never enqueued here
//
// All three are returned immediately, never retried: backing off
// against a lease conflict only delays the worker's next useful lease.

// EnqueueJobs submits a job matrix to the coordinator. Identical specs
// already queued, running, or done are reported as known, not
// re-queued, so re-submitting a matrix is an idempotent resume.
func (c *Client) EnqueueJobs(ctx context.Context, specs []queue.JobSpec) (EnqueueResponse, error) {
	start := time.Now()
	var resp EnqueueResponse
	err := c.postJSON(ctx, "/v1/queue", EnqueueRequest{Jobs: specs}, &resp, false)
	c.observeErr("enqueue", start, err)
	return resp, err
}

// LeaseJob pulls one job. A nil lease with a nil error means nothing is
// pending; drained then reports whether the whole grid is terminal
// (stop) or work is still in flight elsewhere (poll again).
func (c *Client) LeaseJob(ctx context.Context, worker string) (lease *queue.Lease, drained bool, err error) {
	start := time.Now()
	var resp LeaseResponse
	if err := c.postJSON(ctx, "/v1/lease", LeaseRequest{Worker: worker}, &resp, false); err != nil {
		c.observeErr("lease", start, err)
		return nil, false, err
	}
	c.observeErr("lease", start, nil)
	if resp.Job == nil {
		return nil, resp.Drained, nil
	}
	return &queue.Lease{
		ID:    resp.ID,
		Spec:  *resp.Job,
		Token: resp.Token,
		TTL:   time.Duration(resp.TTLSeconds * float64(time.Second)),
	}, false, nil
}

// CompleteJob reports a finished build (buildErr == "") or a failed
// attempt. Completing a job that someone else finished first returns
// nil — results are content-addressed, so the duplicate was identical.
func (c *Client) CompleteJob(ctx context.Context, id, token, worker, buildErr string) error {
	start := time.Now()
	err := c.postJSON(ctx, "/v1/complete",
		CompleteRequest{ID: id, Token: token, Worker: worker, Error: buildErr}, nil, false)
	c.observeErr("complete", start, err)
	return err
}

// HeartbeatJob extends the lease (id, token). queue.ErrLeaseConflict or
// queue.ErrGone mean the job is no longer this worker's: stop building
// it.
func (c *Client) HeartbeatJob(ctx context.Context, id, token string) error {
	start := time.Now()
	err := c.postJSON(ctx, "/v1/heartbeat", HeartbeatRequest{ID: id, Token: token}, nil, false)
	c.observeErr("heartbeat", start, err)
	return err
}

// QueueStatus fetches the coordinator's counts — what -collect polls
// until Drained.
func (c *Client) QueueStatus(ctx context.Context) (queue.Counts, error) {
	start := time.Now()
	var counts queue.Counts
	err := c.doJSON(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/queue", nil)
	}, &counts, false)
	c.observeErr("status", start, err)
	return counts, err
}

// gzipThreshold is the body size above which the client compresses
// request bodies. Tiny queue-protocol bodies are not worth the header;
// store entries (hundreds of KB of JSON) compress ~10×.
const gzipThreshold = 1 << 10

// encodeBody marshals v, compressing when it pays. The returned
// contentEncoding is "" or "gzip".
func encodeBody(v interface{}) (data []byte, contentEncoding string, err error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, "", err
	}
	return maybeGzip(raw)
}

// maybeGzip compresses raw when it exceeds the threshold and the
// compression actually shrinks it.
func maybeGzip(raw []byte) (data []byte, contentEncoding string, err error) {
	if len(raw) < gzipThreshold {
		return raw, "", nil
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(raw); err != nil {
		return nil, "", err
	}
	if err := gz.Close(); err != nil {
		return nil, "", err
	}
	if buf.Len() >= len(raw) {
		return raw, "", nil
	}
	return buf.Bytes(), "gzip", nil
}

// postJSON posts one JSON body to path and decodes the JSON reply into
// out (nil out skips decoding — for 204 replies). Transient failures
// (5xx, connection errors) retry with the client's usual backoff; queue
// status codes come back as their typed errors immediately. useBreaker
// selects the cache-path discipline (fail fast once tripped, feed the
// breaker) used by the batch operations.
func (c *Client) postJSON(ctx context.Context, path string, in, out interface{}, useBreaker bool) error {
	data, enc, err := encodeBody(in)
	if err != nil {
		return err
	}
	return c.doJSON(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if enc != "" {
			req.Header.Set("Content-Encoding", enc)
		}
		return req, nil
	}, out, useBreaker)
}

// doJSON runs one request (remaking it per attempt so the body reader
// is fresh) under the client's retry policy and decodes the reply.
func (c *Client) doJSON(ctx context.Context, newReq func() (*http.Request, error), out interface{}, useBreaker bool) error {
	if useBreaker {
		c.mu.Lock()
		tripped := c.tripped
		c.mu.Unlock()
		if tripped {
			return ErrUnavailable
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !c.sleep(ctx, attempt) {
			return ctx.Err()
		}
		req, err := newReq()
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			var derr error
			if out != nil && resp.StatusCode != http.StatusNoContent {
				derr = json.NewDecoder(io.LimitReader(resp.Body, MaxBatchBodyBytes)).Decode(out)
			}
			resp.Body.Close()
			if derr != nil {
				lastErr = fmt.Errorf("storenet: decoding %s reply: %w", req.URL.Path, derr)
				continue
			}
			if useBreaker {
				c.noteSuccess()
			}
			return nil
		case resp.StatusCode >= 500:
			drain(resp)
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		default:
			// Definite answers. The queue's protocol codes map back to
			// their typed errors; retrying any 4xx cannot change it, so
			// none of them are retried — a worker backing off against a
			// lease conflict would only stall its next useful lease.
			msg := readErrorBody(resp)
			err := queueStatusError(resp.StatusCode, msg)
			if useBreaker {
				c.noteFailure(err)
			}
			return err
		}
	}
	if useBreaker {
		c.noteFailure(lastErr)
	}
	return lastErr
}

// queueStatusError maps a definite HTTP status onto the queue's typed
// errors, wrapping so errors.Is works and the server's message is kept.
func queueStatusError(status int, msg string) error {
	switch status {
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", queue.ErrLeaseConflict, msg)
	case http.StatusGone:
		return fmt.Errorf("%w: %s", queue.ErrGone, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", queue.ErrUnknownJob, msg)
	default:
		return fmt.Errorf("server: %d %s", status, msg)
	}
}

// readErrorBody returns a bounded copy of an error reply's body for the
// error message, closing the response.
func readErrorBody(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	return string(bytes.TrimSpace(data))
}
