package storenet

import (
	"context"
	"net/http"
	"time"

	"branchreorder/internal/bench/storenet/queue"
)

// MetricsSnapshot is the structured form of the /metrics page: the same
// counters the plaintext rendering prints, as one JSON document. Served
// at GET /metrics.json (and /metrics?format=json); the plaintext
// /metrics output stays byte-stable for everything that greps it.
type MetricsSnapshot struct {
	Store ServerStats   `json:"store"`
	Queue *queue.Counts `json:"queue,omitempty"` // nil for a plain cache server
}

// handleMetricsJSON serves the counter snapshot structurally — how the
// load generator diffs server-side counters before and after a run
// without parsing the plaintext format.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	snap := MetricsSnapshot{Store: s.Stats()}
	if s.queue != nil {
		counts := s.queue.Counts()
		snap.Queue = &counts
	}
	writeJSON(w, snap)
}

// Metrics fetches the server's counter snapshot from /metrics.json with
// the client's usual retry policy (no breaker: a metrics probe must not
// disable the cache path, and a tripped breaker must not hide the
// server's counters).
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	start := time.Now()
	var snap MetricsSnapshot
	err := c.doJSON(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics.json", nil)
	}, &snap, false)
	c.observeErr("metrics", start, err)
	if err != nil {
		return nil, err
	}
	return &snap, nil
}
