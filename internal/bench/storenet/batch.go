package storenet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"branchreorder/internal/bench/store"
)

// MaxBatchEntries bounds one batch request. A full suite matrix is 51
// fingerprints; the bound exists to keep one request's memory
// proportional to a grid, not to an attacker's patience.
const MaxBatchEntries = 1024

// MaxBatchBodyBytes bounds one batch request or response body.
const MaxBatchBodyBytes = 64 << 20

// BatchGetRequest is the body of POST /v1/batch/get.
type BatchGetRequest struct {
	Fingerprints []string `json:"fingerprints"`
}

// BatchEntry is one entry travelling in a batch, its canonical store
// bytes embedded as raw JSON (entries are JSON documents already, so the
// batch stays readable and skips base64 bloat).
type BatchEntry struct {
	Fingerprint string          `json:"fp"`
	Data        json.RawMessage `json:"data"`
}

// BatchGetResponse answers a batch get: found entries plus the
// fingerprints with nothing usable (misses and invalid entries alike —
// the corrupt-entry-as-miss contract is tier-wide).
type BatchGetResponse struct {
	Entries []BatchEntry `json:"entries"`
	Missing []string     `json:"missing,omitempty"`
}

// BatchPutRequest is the body of POST /v1/batch/put.
type BatchPutRequest struct {
	Entries []BatchEntry `json:"entries"`
}

// BatchPutReject describes one refused upload inside a batch.
type BatchPutReject struct {
	Fingerprint string `json:"fp"`
	Error       string `json:"error"`
}

// BatchPutResponse reports a batch put entry by entry: validation
// failures reject individual entries, never the batch.
type BatchPutResponse struct {
	Stored   int              `json:"stored"`
	Rejected []BatchPutReject `json:"rejected,omitempty"`
}

// handleBatchGet serves many fingerprints in one round trip — how
// brbench -collect warms a whole grid without one request per job.
func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	var req BatchGetRequest
	if !s.readBatchBody(w, r, &req) {
		return
	}
	if len(req.Fingerprints) == 0 || len(req.Fingerprints) > MaxBatchEntries {
		http.Error(w, fmt.Sprintf("need 1..%d fingerprints, got %d", MaxBatchEntries, len(req.Fingerprints)),
			http.StatusBadRequest)
		return
	}
	resp := BatchGetResponse{Entries: []BatchEntry{}}
	for _, fp := range req.Fingerprints {
		if !validFingerprint(fp) {
			http.Error(w, fmt.Sprintf("malformed fingerprint %q", fp), http.StatusBadRequest)
			return
		}
		data, st := s.st.GetRaw(fp)
		switch st {
		case store.Hit:
			s.hits.Add(1)
			s.st.Touch(fp)
			s.bytesOut.Add(int64(len(data)))
			resp.Entries = append(resp.Entries, BatchEntry{Fingerprint: fp, Data: json.RawMessage(data)})
		case store.Invalid:
			s.invalid.Add(1)
			resp.Missing = append(resp.Missing, fp)
		default:
			s.misses.Add(1)
			resp.Missing = append(resp.Missing, fp)
		}
	}
	writeJSON(w, resp)
}

// handleBatchPut lands many entries in one round trip, each one passing
// the exact per-entry validation PUT /v1/entry applies: kind dispatch,
// schema, checksum, fingerprint-matches-key. A bad entry is rejected in
// the reply; the rest still land.
func (s *Server) handleBatchPut(w http.ResponseWriter, r *http.Request) {
	var req BatchPutRequest
	if !s.readBatchBody(w, r, &req) {
		return
	}
	if len(req.Entries) == 0 || len(req.Entries) > MaxBatchEntries {
		http.Error(w, fmt.Sprintf("need 1..%d entries, got %d", MaxBatchEntries, len(req.Entries)),
			http.StatusBadRequest)
		return
	}
	resp := BatchPutResponse{}
	reject := func(fp string, err error) {
		s.putRejects.Add(1)
		resp.Rejected = append(resp.Rejected, BatchPutReject{Fingerprint: fp, Error: err.Error()})
	}
	for _, ent := range req.Entries {
		if !validFingerprint(ent.Fingerprint) {
			reject(ent.Fingerprint, fmt.Errorf("malformed fingerprint"))
			continue
		}
		if len(ent.Data) > MaxEntryBytes {
			reject(ent.Fingerprint, fmt.Errorf("entry exceeds size limit"))
			continue
		}
		if err := s.storeValidated(ent.Fingerprint, []byte(ent.Data)); err != nil {
			reject(ent.Fingerprint, err)
			continue
		}
		s.puts.Add(1)
		s.bytesIn.Add(int64(len(ent.Data)))
		resp.Stored++
	}
	writeJSON(w, resp)
}

// readBatchBody decodes one bounded batch body, answering 4xx itself on
// anything malformed or oversized.
func (s *Server) readBatchBody(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.ContentLength > MaxBatchBodyBytes {
		http.Error(w, "request body exceeds size limit", http.StatusRequestEntityTooLarge)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBodyBytes)).Decode(dst); err != nil {
		http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// GetBatch fetches many entries in one request, returning the verified
// entry bytes by fingerprint (absent keys were misses; the JSON
// transport may compact whitespace, but entries still decode and
// checksum). It shares
// Get's retry/breaker policy; a dead server degrades to (nil, Fallback
// outcome) via the error, and the caller's per-fingerprint tiers still
// work.
func (c *Client) GetBatch(ctx context.Context, fps []string) (map[string][]byte, error) {
	start := time.Now()
	var resp BatchGetResponse
	if err := c.postJSON(ctx, "/v1/batch/get", BatchGetRequest{Fingerprints: fps}, &resp, true); err != nil {
		c.observeErr("batch-get", start, err)
		return nil, err
	}
	c.observeErr("batch-get", start, nil)
	out := make(map[string][]byte, len(resp.Entries))
	for _, ent := range resp.Entries {
		out[ent.Fingerprint] = []byte(ent.Data)
	}
	return out, nil
}

// PutBatch uploads many already-encoded entries in one request. It
// returns how many the server stored and any per-entry rejections
// (which, like single-PUT rejections, mean the entry — not the run — is
// lost).
func (c *Client) PutBatch(ctx context.Context, entries map[string][]byte) (stored int, rejected []BatchPutReject, err error) {
	fps := make([]string, 0, len(entries))
	for fp := range entries {
		fps = append(fps, fp)
	}
	sort.Strings(fps) // deterministic request bodies, deterministic logs
	req := BatchPutRequest{Entries: make([]BatchEntry, 0, len(entries))}
	for _, fp := range fps {
		data := entries[fp]
		if !bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("{")) {
			return 0, nil, fmt.Errorf("storenet: entry %s is not a JSON document", fp)
		}
		req.Entries = append(req.Entries, BatchEntry{Fingerprint: fp, Data: json.RawMessage(data)})
	}
	var resp BatchPutResponse
	start := time.Now()
	if err := c.postJSON(ctx, "/v1/batch/put", req, &resp, true); err != nil {
		c.observeErr("batch-put", start, err)
		return 0, nil, err
	}
	c.observeErr("batch-put", start, nil)
	return resp.Stored, resp.Rejected, nil
}
