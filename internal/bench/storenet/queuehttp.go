package storenet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/workload"
)

// MaxQueueBodyBytes bounds one work-queue request body. A full
// 17-workload ablation matrix is a few tens of KB; the bound exists so a
// hostile client cannot force unbounded memory, same as MaxEntryBytes.
const MaxQueueBodyBytes = 8 << 20

// EnqueueRequest is the body of POST /v1/queue.
type EnqueueRequest struct {
	Jobs []queue.JobSpec `json:"jobs"`
}

// EnqueueResponse reports what POST /v1/queue did.
type EnqueueResponse struct {
	Accepted int   `json:"accepted"` // jobs newly queued
	Known    int   `json:"known"`    // duplicates of jobs already queued, running, or done
	Depth    int64 `json:"depth"`    // pending jobs after the enqueue
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the reply to POST /v1/lease. Job is nil when nothing
// is pending; Drained then tells the worker whether to wait (false:
// leases are still live, or nothing was enqueued yet) or stop (true: the
// whole grid is terminal).
type LeaseResponse struct {
	Job        *queue.JobSpec `json:"job,omitempty"`
	ID         string         `json:"id,omitempty"`
	Token      string         `json:"token,omitempty"`
	TTLSeconds float64        `json:"ttlSeconds,omitempty"`
	Drained    bool           `json:"drained,omitempty"`
}

// CompleteRequest is the body of POST /v1/complete. A non-empty Error
// reports a failed build attempt instead of a result.
type CompleteRequest struct {
	ID     string `json:"id"`
	Token  string `json:"token"`
	Worker string `json:"worker"`
	Error  string `json:"error,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/heartbeat.
type HeartbeatRequest struct {
	ID    string `json:"id"`
	Token string `json:"token"`
}

// AttachQueue turns the server into a build-farm coordinator: Handler
// additionally serves the work-queue API and /metrics grows the queue
// section. Call before Handler.
func (s *Server) AttachQueue(q *queue.Queue) { s.queue = q }

// Queue returns the attached work queue, nil for a plain cache server.
func (s *Server) Queue() *queue.Queue { return s.queue }

// readQueueBody decodes one bounded JSON request body into dst. It
// returns false after answering the request itself: every malformed,
// oversized, or truncated body gets a clean 4xx, never a panic and never
// a queue mutation.
func (s *Server) readQueueBody(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.ContentLength > MaxQueueBodyBytes {
		http.Error(w, "request body exceeds size limit", http.StatusRequestEntityTooLarge)
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxQueueBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "read: "+err.Error(), status)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// handleEnqueue accepts a job matrix. Specs must name workloads this
// build knows; a bad name fails the whole request (400) rather than
// queueing a job no worker can ever build.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req EnqueueRequest
	if !s.readQueueBody(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "no jobs in request", http.StatusBadRequest)
		return
	}
	for i, spec := range req.Jobs {
		if _, ok := workload.Named(spec.Workload); !ok {
			http.Error(w, fmt.Sprintf("job %d: unknown workload %q", i, spec.Workload), http.StatusBadRequest)
			return
		}
	}
	accepted, known := s.queue.Enqueue(req.Jobs)
	s.enqueues.Add(int64(accepted))
	writeJSON(w, EnqueueResponse{
		Accepted: accepted,
		Known:    known,
		Depth:    s.queue.Counts().Pending,
	})
}

// handleLease hands one job to a worker.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !s.readQueueBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "worker ID required", http.StatusBadRequest)
		return
	}
	l, ok, drained := s.queue.Lease(req.Worker)
	if !ok {
		writeJSON(w, LeaseResponse{Drained: drained})
		return
	}
	s.leases.Add(1)
	spec := l.Spec
	writeJSON(w, LeaseResponse{
		Job:        &spec,
		ID:         l.ID,
		Token:      l.Token,
		TTLSeconds: l.TTL.Seconds(),
	})
}

// handleComplete finishes (or fails) one leased job.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !s.readQueueBody(w, r, &req) {
		return
	}
	if err := s.queue.Complete(req.ID, req.Token, req.Worker, req.Error); err != nil {
		writeQueueError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHeartbeat extends one lease.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !s.readQueueBody(w, r, &req) {
		return
	}
	if err := s.queue.Heartbeat(req.ID, req.Token); err != nil {
		writeQueueError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQueueStatus reports the queue counts — what -collect polls and
// what the fault-injection tests assert against.
func (s *Server) handleQueueStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.queue.Counts())
}

// writeQueueError maps the queue's typed errors onto status codes the
// client maps back: 409 lease conflict, 410 finished, 404 unknown. The
// codes are the wire form of "stop retrying" — see the client's
// queueCall.
func writeQueueError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, queue.ErrLeaseConflict):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, queue.ErrGone):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, queue.ErrUnknownJob):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSON answers with one JSON document.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// queueMetrics appends the coordinator section of /metrics: queue depth,
// live/expired/reclaimed leases, terminal counts, and per-worker
// completions (sorted, so the rendering is deterministic).
func (s *Server) queueMetrics(w io.Writer) {
	c := s.queue.Counts()
	fmt.Fprintf(w, "brstored_queue_enqueued %d\n", c.Enqueued)
	fmt.Fprintf(w, "brstored_queue_depth %d\n", c.Pending)
	fmt.Fprintf(w, "brstored_queue_leased %d\n", c.Leased)
	fmt.Fprintf(w, "brstored_queue_completed %d\n", c.Done)
	fmt.Fprintf(w, "brstored_queue_failed %d\n", c.Failed)
	fmt.Fprintf(w, "brstored_queue_expired %d\n", c.Expired)
	fmt.Fprintf(w, "brstored_queue_reclaimed %d\n", c.Reclaimed)
	for _, wc := range s.queue.WorkerCompletions() {
		fmt.Fprintf(w, "brstored_worker_completions{worker=%q} %d\n", wc.Worker, wc.Done)
	}
}
