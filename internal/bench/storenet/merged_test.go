package storenet

import (
	"bytes"
	"context"
	"net/http"
	"reflect"
	"testing"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/core"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/profile"
)

func testMergedRecord() *store.MergedRecord {
	tp := &pipeline.TrainProduct{
		SeqProfiles: map[int]*core.SeqProfile{
			0: {Counts: []uint64{3, 5, 2}, Total: 10},
		},
		OrSeqProfiles: map[int]*core.OrSeqProfile{
			1: {N: 2, Combos: []uint64{1, 2, 3, 4}, Total: 10},
		},
		NumSeqs:   1,
		NumOrSeqs: 1,
	}
	rec := &store.MergedRecord{HalfLife: 2}
	rec.Merge(store.TrainDigest([]byte("input-a")), store.FromTrain(tp))
	rec.Merge(store.TrainDigest([]byte("input-b")), store.FromTrain(tp))
	return rec
}

func testMergedFingerprint(source string) string {
	return store.MergedFingerprint(source,
		pipeline.FrontendOptions{Optimize: true},
		pipeline.DetectOptions{Profile: profile.Config{Merge: true}})
}

// Merged-profile entries ride the same wire as builds and profiles: a
// PutMerged then GetMerged must round-trip the record exactly, and the
// entry must stay invisible to the other kinds' getters.
func TestServerMergedRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()
	fp, rec := testMergedFingerprint("a"), testMergedRecord()

	if _, out := c.GetMerged(ctx, fp); out != Miss {
		t.Fatalf("GetMerged before Put: %v, want miss", out)
	}
	if err := c.PutMerged(ctx, fp, rec); err != nil {
		t.Fatal(err)
	}
	got, out := c.GetMerged(ctx, fp)
	if out != Hit {
		t.Fatalf("GetMerged after Put: %v, want hit", out)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip changed the record:\ngot  %+v\nwant %+v", got, rec)
	}
	// Kind isolation: the build and profile getters must not serve it.
	if _, out := c.Get(ctx, fp); out == Hit {
		t.Error("build Get served a merged-profile entry")
	}
	if _, out := c.GetProfile(ctx, fp); out == Hit {
		t.Error("profile Get served a merged-profile entry")
	}
	if st := srv.Stats(); st.Puts != 1 {
		t.Errorf("stats after round trip: %+v", st)
	}
}

// Hostile uploads of the merged-profile kind face the same validation
// gate as the other two kinds: nothing invalid may land.
func TestServerMergedPutRejects(t *testing.T) {
	srv, hs := newTestServer(t)
	ctx := context.Background()
	fpA, fpB := testMergedFingerprint("a"), testMergedFingerprint("b")
	good, err := store.EncodeMerged(fpA, testMergedRecord())
	if err != nil {
		t.Fatal(err)
	}

	put := func(fp string, body []byte) int {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, hs.URL+entryPath(fp), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.ContentLength = int64(len(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		return resp.StatusCode
	}

	cases := []struct {
		name string
		fp   string
		body []byte
	}{
		{"fingerprint mismatch", fpB, good},
		{"checksum break", fpA, bytes.Replace(good, []byte(`"total": 10`), []byte(`"total": 11`), 1)},
		{"invalid half-life", fpA, bytes.Replace(good, []byte(`"halfLife": 2`), []byte(`"halfLife": 0`), 1)},
		{"unknown kind", fpA, bytes.Replace(good, []byte(`"kind": "merged-profile"`), []byte(`"kind": "bogus"`), 1)},
		{"truncated", fpA, good[:len(good)/2]},
	}
	for _, tc := range cases {
		if code := put(tc.fp, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	if st := srv.Stats(); st.Puts != 0 || st.PutRejects != int64(len(cases)) {
		t.Errorf("stats after rejects: %+v, want 0 puts / %d rejects", st, len(cases))
	}
	// Nothing hostile landed: both keys still miss.
	c := testClient(t, hs.URL, ClientConfig{})
	for _, fp := range []string{fpA, fpB} {
		if _, out := c.GetMerged(ctx, fp); out != Miss {
			t.Errorf("poisoned pool: %s landed", fp[:8])
		}
	}
	// The same bytes through the validation gate intact do land.
	if code := put(fpA, good); code != http.StatusNoContent {
		t.Fatalf("valid merged PUT: status %d", code)
	}
	if got, out := c.GetMerged(ctx, fpA); out != Hit || got.HalfLife != 2 {
		t.Errorf("valid entry not served: %v %+v", out, got)
	}
}
