// Package storenet shares one result store — and one work queue —
// across a fleet over HTTP.
//
// Server wraps a store.Store as a small content-addressed HTTP API —
// GET/HEAD/PUT of entries keyed by their SHA-256 fingerprints, batched
// multi-fingerprint get/put, plus a plaintext /metrics endpoint — and is
// what cmd/brstored serves. Because entries are immutable and
// content-addressed, the cache protocol needs no invalidation, no
// locking, and no coordination: a PUT either lands a byte-validated
// entry or is rejected, and concurrent PUTs of the same fingerprint
// write identical content. Request and response bodies travel gzipped
// when the peer supports it.
//
// With AttachQueue the same server becomes a build-farm coordinator:
// the work-queue API (enqueue/lease/heartbeat/complete, package queue)
// hands (workload × options) jobs to pulling workers under TTL leases
// and re-offers whatever a dead worker was holding, while results flow
// back through the store API the fleet already shares.
//
// Client is the engine-facing side: a third cache tier behind the
// in-memory memo and the disk store. It is built to degrade, not to
// fail — every request carries a timeout, transient errors (5xx,
// connection loss) are retried a bounded number of times with
// exponentially backed-off, jittered delays, concurrent fetches of one
// fingerprint are deduplicated (single-flight), and once the server
// looks dead a breaker stops paying the timeout tax for the rest of the
// run. No Client failure ever propagates as an error to the build: the
// caller's local tiers simply take over. The queue-protocol calls are
// the exception — a worker's lifeline returns real errors (with the
// lease conflicts typed and never retried) and bypasses the breaker.
package storenet

// MaxEntryBytes bounds one serialized store entry in both directions:
// the server refuses larger uploads before reading them, and the client
// refuses to slurp a larger response. Real entries are a few hundred KB;
// the bound only exists so a hostile peer cannot force unbounded memory.
const MaxEntryBytes = 16 << 20

// entryPath returns the URL path of fp's entry.
func entryPath(fp string) string { return "/v1/entry/" + fp }

// validFingerprint reports whether fp is a lowercase SHA-256 hex digest
// — the only keys the store hands out, and the only ones the server
// lets near the filesystem.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
