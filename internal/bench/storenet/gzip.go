package storenet

import (
	"compress/gzip"
	"io"
	"net/http"
	"strings"
)

// maxDecompressedBytes caps what a gzip request body may inflate to.
// Without it a tiny "gzip bomb" request could cost unbounded memory; with
// it the cost is bounded like every other request path.
const maxDecompressedBytes = MaxBatchBodyBytes * 2

// decompressRequests returns h wrapped so a request body sent with
// Content-Encoding: gzip is transparently inflated before the handler
// sees it. The inflated bytes replace the body and ContentLength, so
// handlers keep their exact-length validation without knowing the wire
// was compressed. Anything that fails to inflate, or inflates past the
// bound, gets a clean 4xx.
func decompressRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
			h.ServeHTTP(w, r)
			return
		}
		gz, err := gzip.NewReader(http.MaxBytesReader(w, r.Body, MaxBatchBodyBytes))
		if err != nil {
			http.Error(w, "malformed gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(io.LimitReader(gz, maxDecompressedBytes+1))
		if cerr := gz.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			http.Error(w, "malformed gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > maxDecompressedBytes {
			http.Error(w, "decompressed body exceeds size limit", http.StatusRequestEntityTooLarge)
			return
		}
		r.Body = io.NopCloser(strings.NewReader(string(body)))
		r.ContentLength = int64(len(body))
		r.Header.Del("Content-Encoding")
		h.ServeHTTP(w, r)
	})
}

// gzipResponseWriter compresses a response body. Headers are adjusted at
// the first write, so handlers that set Content-Length beforehand (the
// entry GET) still work: the length of the identity body is wrong for
// the compressed one and is dropped.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz      *gzip.Writer
	started bool
}

func (w *gzipResponseWriter) WriteHeader(code int) {
	if !w.started {
		w.started = true
		w.Header().Del("Content-Length")
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gzipResponseWriter) Write(b []byte) (int, error) {
	if !w.started {
		w.WriteHeader(http.StatusOK)
	}
	return w.gz.Write(b)
}

// gzipped wraps a handler whose responses carry a body, compressing them
// for clients that accept gzip (Go's default HTTP transport both asks
// for and transparently inflates this, so the existing client gets it
// for free). Handlers answering 204 are not wrapped by callers — a
// bodyless status must not grow a gzip header.
func gzipped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead ||
			!strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h(w, r)
			return
		}
		gz := gzip.NewWriter(w)
		gw := &gzipResponseWriter{ResponseWriter: w, gz: gz}
		// Close only if the handler produced a body: closing an unused
		// gzip writer would emit a bare gzip header on a response whose
		// headers never announced compression.
		defer func() {
			if gw.started {
				gz.Close()
			}
		}()
		h(gw, r)
	}
}
