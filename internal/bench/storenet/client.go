package storenet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"branchreorder/internal/bench/store"
)

// Outcome classifies one remote lookup.
type Outcome int

const (
	// Miss: the server answered and has no (usable) entry.
	Miss Outcome = iota
	// Hit: the entry was fetched and validated.
	Hit
	// Fallback: the remote was unusable (dead, erroring, or breaker
	// tripped); the caller's local tiers must serve.
	Fallback
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Fallback:
		return "fallback"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ErrUnavailable is returned by Put once the breaker has tripped.
var ErrUnavailable = errors.New("storenet: remote store disabled after repeated failures")

// Observation describes one finished client operation, as delivered to
// the ClientConfig.Observer hook. Op is the operation class: "get",
// "put" or "head" for single entries, "batch-get"/"batch-put" for the
// batch API, "enqueue"/"lease"/"heartbeat"/"complete"/"status" for the
// work-queue protocol, and "metrics" for counter snapshots. Duration
// covers the whole operation as the caller experienced it — retries,
// backoff and single-flight waits included — because that is the
// latency the production path pays. Outcome is "hit", "miss" or
// "fallback" for entry fetches and "ok" or "error" for everything else;
// Err carries the error when Outcome is "error".
type Observation struct {
	Op       string
	Duration time.Duration
	Outcome  string
	Err      error
}

// ClientConfig tunes a Client. The zero value means defaults.
type ClientConfig struct {
	// Timeout bounds each individual HTTP request, not the whole retry
	// sequence. <= 0 means 10s.
	Timeout time.Duration
	// MaxAttempts bounds tries per operation, the first included.
	// <= 0 means 3.
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per
	// retry. <= 0 means 100ms.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay (before jitter). <= 0 means 2s.
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive failed operations trip
	// the client into permanent fallback, so a dead server costs a
	// bounded number of timeouts per run instead of one per job.
	// <= 0 means 4.
	BreakerThreshold int
	// Logf receives the client's degradation notices — at most two per
	// run (first failure, breaker trip). Nil discards them.
	Logf func(format string, args ...interface{})
	// Observer, when non-nil, receives one Observation per finished
	// client operation — how brperf -server measures the serving path
	// through the production client rather than a parallel HTTP stack.
	// It must be safe for concurrent calls and cheap (it runs inline on
	// the request path). Nil means no observation and no overhead.
	Observer func(Observation)
}

// Client fetches and uploads store entries from a brstored server. It
// never surfaces a remote failure as a caller-visible error on the read
// path: every Get resolves to Hit, Miss, or Fallback. A Client is safe
// for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	maxAttempts int
	backoff     time.Duration
	maxBackoff  time.Duration
	breakerAt   int
	logf        func(format string, args ...interface{})
	observer    func(Observation)

	mu       sync.Mutex
	inflight map[string]*flight
	fails    int  // consecutive failed operations
	tripped  bool // breaker state: true means stop trying
	warned   bool // the one-time unavailability notice went out
}

// flight is one in-progress fetch that concurrent Gets of the same
// fingerprint share. The raw verified bytes are shared; each caller
// decodes its expected entry kind.
type flight struct {
	done chan struct{}
	data []byte
	out  Outcome
}

// NewClient returns a client for the store served at baseURL
// (e.g. "http://build42:8370").
func NewClient(baseURL string, cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("storenet: invalid store URL %q", baseURL)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 4
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &Client{
		base:        strings.TrimRight(u.String(), "/"),
		hc:          &http.Client{Timeout: cfg.Timeout},
		maxAttempts: cfg.MaxAttempts,
		backoff:     cfg.Backoff,
		maxBackoff:  cfg.MaxBackoff,
		breakerAt:   cfg.BreakerThreshold,
		logf:        logf,
		observer:    cfg.Observer,
		inflight:    map[string]*flight{},
	}, nil
}

// observe delivers one finished operation to the observer hook, if any.
// outcomeErr maps a nil error to "ok" and anything else to "error"; the
// entry-fetch paths pass their Outcome string instead.
func (c *Client) observe(op string, start time.Time, outcome string, err error) {
	if c.observer == nil {
		return
	}
	c.observer(Observation{Op: op, Duration: time.Since(start), Outcome: outcome, Err: err})
}

// observeErr is observe for operations whose result is just an error.
func (c *Client) observeErr(op string, start time.Time, err error) {
	if c.observer == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	c.observer(Observation{Op: op, Duration: time.Since(start), Outcome: outcome, Err: err})
}

// BaseURL reports the server the client talks to.
func (c *Client) BaseURL() string { return c.base }

// Get fetches the build entry for fp. Concurrent Gets of the same
// fingerprint share one request; every remote failure degrades to
// Fallback, never an error — the caller's local tiers decide what
// happens next.
func (c *Client) Get(ctx context.Context, fp string) (*store.Record, Outcome) {
	data, out := c.getRaw(ctx, fp)
	if out != Hit {
		return nil, out
	}
	rec, err := store.Decode(data, fp)
	if err != nil {
		// The server vouched for this entry and it still failed
		// validation here: same corrupt-entry-as-miss contract as the
		// disk tier.
		return nil, Miss
	}
	return rec, Hit
}

// GetProfile fetches the stage-2 profile entry for fp with Get's
// sharing, retry, and fallback behaviour.
func (c *Client) GetProfile(ctx context.Context, fp string) (*store.ProfileRecord, Outcome) {
	data, out := c.getRaw(ctx, fp)
	if out != Hit {
		return nil, out
	}
	rec, err := store.DecodeProfile(data, fp)
	if err != nil {
		return nil, Miss
	}
	return rec, Hit
}

// GetMerged fetches the cross-input merged profile entry for fp with
// Get's sharing, retry, and fallback behaviour.
func (c *Client) GetMerged(ctx context.Context, fp string) (*store.MergedRecord, Outcome) {
	data, out := c.getRaw(ctx, fp)
	if out != Hit {
		return nil, out
	}
	rec, err := store.DecodeMerged(data, fp)
	if err != nil {
		return nil, Miss
	}
	return rec, Hit
}

// getRaw fetches the raw entry bytes for fp, deduplicating concurrent
// requests for the same fingerprint. Every fetch — including a
// single-flight follower's wait and a breaker-tripped instant fallback —
// is one observed "get" operation.
func (c *Client) getRaw(ctx context.Context, fp string) ([]byte, Outcome) {
	start := time.Now()
	data, out := c.getRawShared(ctx, fp)
	c.observe("get", start, out.String(), nil)
	return data, out
}

func (c *Client) getRawShared(ctx context.Context, fp string) ([]byte, Outcome) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return nil, Fallback
	}
	if f, ok := c.inflight[fp]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.data, f.out
		case <-ctx.Done():
			return nil, Fallback
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fp] = f
	c.mu.Unlock()

	f.data, f.out = c.fetch(ctx, fp)
	c.mu.Lock()
	delete(c.inflight, fp)
	c.mu.Unlock()
	close(f.done)
	return f.data, f.out
}

func (c *Client) fetch(ctx context.Context, fp string) ([]byte, Outcome) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !c.sleep(ctx, attempt) {
			return nil, Fallback // canceled runs don't count against the breaker
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+entryPath(fp), nil)
		if err != nil {
			c.noteFailure(err)
			return nil, Fallback
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, Fallback
			}
			lastErr = err // connection error or per-request timeout: retry
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, MaxEntryBytes+1))
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
				continue
			}
			c.noteSuccess()
			return data, Hit
		case resp.StatusCode == http.StatusNotFound:
			drain(resp)
			c.noteSuccess()
			return nil, Miss
		case resp.StatusCode >= 500:
			drain(resp)
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		default:
			// Any other 4xx means this request is wrong, not the server
			// flaky; retrying cannot help.
			drain(resp)
			c.noteFailure(fmt.Errorf("server: %s", resp.Status))
			return nil, Fallback
		}
	}
	c.noteFailure(lastErr)
	return nil, Fallback
}

// Put uploads the build entry for fp, best-effort: a non-nil error means
// the entry did not land on the server, never that the caller's run
// failed.
func (c *Client) Put(ctx context.Context, fp string, rec *store.Record) error {
	data, err := store.Encode(fp, rec)
	if err != nil {
		return err
	}
	return c.put(ctx, fp, data)
}

// PutProfile uploads the stage-2 profile entry for fp with Put's
// best-effort contract.
func (c *Client) PutProfile(ctx context.Context, fp string, rec *store.ProfileRecord) error {
	data, err := store.EncodeProfile(fp, rec)
	if err != nil {
		return err
	}
	return c.put(ctx, fp, data)
}

// PutMerged uploads the cross-input merged profile entry for fp with
// Put's best-effort contract. Concurrent writers of the same
// fingerprint race last-write-wins, which is acceptable: every writer
// uploads a superset fold of what it read, and the next training run
// re-merges whatever survived.
func (c *Client) PutMerged(ctx context.Context, fp string, rec *store.MergedRecord) error {
	data, err := store.EncodeMerged(fp, rec)
	if err != nil {
		return err
	}
	return c.put(ctx, fp, data)
}

func (c *Client) put(ctx context.Context, fp string, data []byte) error {
	start := time.Now()
	err := c.putRetry(ctx, fp, data)
	c.observeErr("put", start, err)
	return err
}

func (c *Client) putRetry(ctx context.Context, fp string, data []byte) error {
	c.mu.Lock()
	tripped := c.tripped
	c.mu.Unlock()
	if tripped {
		return ErrUnavailable
	}
	// Entries are repetitive JSON; gzip cuts the wire size several-fold,
	// which is what makes a farm's result traffic cheap. The server's
	// middleware inflates before validation, so the trust boundary sees
	// identical bytes either way.
	body, enc, err := maybeGzip(data)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !c.sleep(ctx, attempt) {
			return ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+entryPath(fp), bytes.NewReader(body))
		if err != nil {
			c.noteFailure(err)
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if enc != "" {
			req.Header.Set("Content-Encoding", enc)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode < 300:
			drain(resp)
			c.noteSuccess()
			return nil
		case resp.StatusCode >= 500:
			drain(resp)
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		default:
			drain(resp)
			err := fmt.Errorf("server rejected put: %s", resp.Status)
			c.noteFailure(err)
			return err
		}
	}
	c.noteFailure(lastErr)
	return lastErr
}

// Head reports whether the server has an entry for fp, with the same
// retry policy as Get.
func (c *Client) Head(ctx context.Context, fp string) (bool, error) {
	start := time.Now()
	ok, err := c.headRetry(ctx, fp)
	c.observeErr("head", start, err)
	return ok, err
}

func (c *Client) headRetry(ctx context.Context, fp string) (bool, error) {
	c.mu.Lock()
	tripped := c.tripped
	c.mu.Unlock()
	if tripped {
		return false, ErrUnavailable
	}
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !c.sleep(ctx, attempt) {
			return false, ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.base+entryPath(fp), nil)
		if err != nil {
			return false, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		drain(resp)
		switch {
		case resp.StatusCode == http.StatusOK:
			c.noteSuccess()
			return true, nil
		case resp.StatusCode == http.StatusNotFound:
			c.noteSuccess()
			return false, nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		default:
			err := fmt.Errorf("server: %s", resp.Status)
			c.noteFailure(err)
			return false, err
		}
	}
	c.noteFailure(lastErr)
	return false, lastErr
}

// sleep waits out the backoff before retry attempt (1-based): the base
// delay doubled per retry, capped, plus up to 50% jitter so a fleet of
// clients doesn't hammer a recovering server in lockstep. It reports
// false if ctx expired first.
func (c *Client) sleep(ctx context.Context, attempt int) bool {
	d := c.backoff << (attempt - 1)
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// noteSuccess resets the breaker's consecutive-failure count.
func (c *Client) noteSuccess() {
	c.mu.Lock()
	c.fails = 0
	c.mu.Unlock()
}

// noteFailure counts one failed operation toward the breaker and emits
// the log-once degradation notices.
func (c *Client) noteFailure(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails++
	if !c.warned {
		c.warned = true
		c.logf("storenet: remote store %s unavailable (%v); falling back to local tiers\n", c.base, err)
	}
	if !c.tripped && c.fails >= c.breakerAt {
		c.tripped = true
		c.logf("storenet: disabling remote store %s for this run after %d consecutive failures\n", c.base, c.fails)
	}
}

// drain discards and closes a response body so the connection can be
// reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}
