package storenet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

// newFarmServer returns a coordinator: a store-backed server with a work
// queue attached, plus its httptest frontend.
func newFarmServer(t *testing.T, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.AttachQueue(queue.New(ttl, 0))
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func testSpecs(n int) []queue.JobSpec {
	specs := make([]queue.JobSpec, 0, n)
	for i, w := range workload.All() {
		if i == n {
			break
		}
		specs = append(specs, queue.JobSpec{
			Workload: w.Name,
			Opts:     pipeline.Options{Switch: lower.SetI, Optimize: true},
		})
	}
	return specs
}

// The whole lease protocol must work through the Client: enqueue
// (idempotently), lease, heartbeat, complete, and a drained verdict at
// the end — with the /metrics queue section tracking every step.
func TestQueueLifecycleOverHTTP(t *testing.T) {
	_, hs := newFarmServer(t, time.Minute)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()
	specs := testSpecs(2)

	resp, err := c.EnqueueJobs(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Known != 0 || resp.Depth != 2 {
		t.Fatalf("enqueue: %+v, want 2 accepted / depth 2", resp)
	}
	// Re-submitting the matrix is a resume, not an error.
	resp, err = c.EnqueueJobs(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Known != 2 {
		t.Fatalf("re-enqueue: %+v, want 0 accepted / 2 known", resp)
	}

	for i := 0; i < 2; i++ {
		l, drained, err := c.LeaseJob(ctx, "w1")
		if err != nil || drained || l == nil {
			t.Fatalf("lease %d: %v drained=%v err=%v", i, l, drained, err)
		}
		if l.Spec.Workload != specs[i].Workload || l.TTL != time.Minute {
			t.Fatalf("lease %d: spec %q ttl %v", i, l.Spec.Workload, l.TTL)
		}
		if err := c.HeartbeatJob(ctx, l.ID, l.Token); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if err := c.CompleteJob(ctx, l.ID, l.Token, "w1", ""); err != nil {
			t.Fatalf("complete: %v", err)
		}
	}

	l, drained, err := c.LeaseJob(ctx, "w1")
	if err != nil || l != nil || !drained {
		t.Fatalf("lease after drain: %v drained=%v err=%v, want nil/true/nil", l, drained, err)
	}
	counts, err := c.QueueStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !counts.Drained || counts.Done != 2 || counts.Workers["w1"] != 2 {
		t.Fatalf("status: %+v, want drained with 2 done by w1", counts)
	}

	res, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		"brstored_queue_enqueued 2",
		"brstored_queue_depth 0",
		"brstored_queue_completed 2",
		"brstored_queue_expired 0",
		`brstored_worker_completions{worker="w1"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// The queue's typed errors must survive the wire: the status codes the
// server writes must map back to the exact error values on the client,
// so a worker can errors.Is its way through the protocol.
func TestQueueTypedErrorsOverHTTP(t *testing.T) {
	srv, hs := newFarmServer(t, time.Minute)
	c := testClient(t, hs.URL, ClientConfig{})
	ctx := context.Background()

	// Unknown job → ErrUnknownJob (404).
	if err := c.HeartbeatJob(ctx, "deadbeef00000000", "tok"); !errors.Is(err, queue.ErrUnknownJob) {
		t.Errorf("heartbeat unknown: %v, want ErrUnknownJob", err)
	}
	if _, err := c.EnqueueJobs(ctx, testSpecs(1)); err != nil {
		t.Fatal(err)
	}
	l, _, err := c.LeaseJob(ctx, "w1")
	if err != nil || l == nil {
		t.Fatalf("lease: %v, %v", l, err)
	}
	// Wrong token → ErrLeaseConflict (409).
	if err := c.CompleteJob(ctx, l.ID, "stale-token", "w2", ""); !errors.Is(err, queue.ErrLeaseConflict) {
		t.Errorf("complete with stale token: %v, want ErrLeaseConflict", err)
	}
	if err := c.CompleteJob(ctx, l.ID, l.Token, "w1", ""); err != nil {
		t.Fatal(err)
	}
	// Heartbeat on a finished job → ErrGone (410).
	if err := c.HeartbeatJob(ctx, l.ID, l.Token); !errors.Is(err, queue.ErrGone) {
		t.Errorf("heartbeat done job: %v, want ErrGone", err)
	}
	// Complete on a Done job is idempotent over the wire too.
	if err := c.CompleteJob(ctx, l.ID, l.Token, "w1", ""); err != nil {
		t.Errorf("re-complete done job: %v, want nil", err)
	}
	// An enqueue naming a workload this build doesn't know must be
	// refused whole.
	if _, err := c.EnqueueJobs(ctx, []queue.JobSpec{{Workload: "nonesuch"}}); err == nil {
		t.Error("enqueue of unknown workload succeeded")
	}
	if srv.Stats().Leases != 1 {
		t.Errorf("lease counter = %d, want 1", srv.Stats().Leases)
	}
}

// Protocol 4xx answers are definite: the client must surface them
// immediately, never burn retry attempts on them. 5xx stays retryable —
// a coordinator mid-restart is not a lost job.
func TestQueueErrorsNotRetried(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "owned by another worker", http.StatusConflict)
	}))
	defer hs.Close()
	c := testClient(t, hs.URL, ClientConfig{MaxAttempts: 4})
	err := c.CompleteJob(context.Background(), "id", "tok", "w", "")
	if !errors.Is(err, queue.ErrLeaseConflict) {
		t.Fatalf("err = %v, want ErrLeaseConflict", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("409 was retried: %d requests, want 1", n)
	}

	calls.Store(0)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer flaky.Close()
	c = testClient(t, flaky.URL, ClientConfig{MaxAttempts: 4})
	if err := c.HeartbeatJob(context.Background(), "id", "tok"); err != nil {
		t.Fatalf("heartbeat through flaky server: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("5xx retry count: %d requests, want 3", n)
	}
}

// Queue operations are the worker's lifeline: they must keep working
// after the cache breaker trips, while cache-path calls fail fast.
func TestQueueBypassesBreaker(t *testing.T) {
	_, hs := newFarmServer(t, time.Minute)
	c := testClient(t, hs.URL, ClientConfig{})
	c.mu.Lock()
	c.tripped = true
	c.mu.Unlock()

	ctx := context.Background()
	if _, err := c.GetBatch(ctx, []string{testFingerprint("a")}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("batch get with tripped breaker: %v, want ErrUnavailable", err)
	}
	if _, err := c.EnqueueJobs(ctx, testSpecs(1)); err != nil {
		t.Errorf("enqueue with tripped breaker: %v, want nil", err)
	}
	if l, _, err := c.LeaseJob(ctx, "w1"); err != nil || l == nil {
		t.Errorf("lease with tripped breaker: %v, %v", l, err)
	}
}

// Without AttachQueue the work-queue surface must not exist: a plain
// cache server answers 404, so a mispointed worker fails loudly instead
// of silently queueing into nothing.
func TestQueueEndpointsAbsentWithoutQueue(t *testing.T) {
	_, hs := newTestServer(t)
	for _, path := range []string{"/v1/queue", "/v1/lease", "/v1/complete", "/v1/heartbeat"} {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on plain server: %d, want 404", path, resp.StatusCode)
		}
	}
}

// Malformed and oversized queue bodies must be clean 4xx answers that
// leave the queue untouched.
func TestQueueBodyRejects(t *testing.T) {
	srv, hs := newFarmServer(t, time.Minute)
	post := func(path, body string, length int64) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, hs.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = length
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		return resp.StatusCode
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"garbage enqueue", "/v1/queue", "{not json", http.StatusBadRequest},
		{"empty matrix", "/v1/queue", `{"jobs":[]}`, http.StatusBadRequest},
		{"unknown workload", "/v1/queue", `{"jobs":[{"workload":"nonesuch","options":{}}]}`, http.StatusBadRequest},
		{"worker-less lease", "/v1/lease", `{}`, http.StatusBadRequest},
		{"garbage complete", "/v1/complete", "\xff\xfe", http.StatusBadRequest},
		{"garbage heartbeat", "/v1/heartbeat", "[1,2", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := post(tc.path, tc.body, int64(len(tc.body))); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Oversized declared length is refused before the body is read.
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/queue",
		io.LimitReader(zeros{}, MaxQueueBodyBytes+1))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = MaxQueueBodyBytes + 1
	req.Header.Set("Expect", "100-continue")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized enqueue: %d, want 413", resp.StatusCode)
	}

	if c := srv.Queue().Counts(); c.Enqueued != 0 {
		t.Errorf("rejected requests mutated the queue: %+v", c)
	}
}

// LogRequests must emit one parseable line per request with the status
// the handler actually wrote.
func TestRequestLogging(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var buf bytes.Buffer
	srv := NewServer(st)
	srv.LogRequests(func(format string, args ...interface{}) {
		mu.Lock()
		fmt.Fprintf(&buf, format, args...)
		mu.Unlock()
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/metrics"},
		{http.MethodGet, entryPath(testFingerprint("a"))},
	} {
		r, err := http.NewRequest(req.method, hs.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
	}
	mu.Lock()
	log := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"method=GET path=/metrics status=200",
		"method=GET path=" + entryPath(testFingerprint("a")) + " status=404",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
	if n := strings.Count(log, "brstored: req "); n != 2 {
		t.Errorf("log has %d lines, want 2:\n%s", n, log)
	}
}

// FuzzQueueDecode throws arbitrary bodies at every queue endpoint. The
// contract under fuzz: never a 5xx, never a panic, and the queue's
// books always balance afterwards — a malformed request cannot poison
// the coordinator.
func FuzzQueueDecode(f *testing.F) {
	st, err := store.Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	valid := testSpecs(1)[0]
	f.Add(uint8(0), []byte(`{"jobs":[{"workload":"`+valid.Workload+`","options":{}}]}`))
	f.Add(uint8(1), []byte(`{"worker":"w1"}`))
	f.Add(uint8(2), []byte(`{"id":"deadbeef00000000","token":"t","worker":"w1"}`))
	f.Add(uint8(3), []byte(`{"id":"deadbeef00000000","token":"t"}`))
	f.Add(uint8(0), []byte(`{"jobs":[{"workload":"nonesuch"}]}`))
	f.Add(uint8(1), []byte(`{not json`))
	f.Add(uint8(2), []byte(``))
	f.Add(uint8(3), bytes.Repeat([]byte("a"), 1<<16))
	f.Add(uint8(2), []byte(`{"id":"`+strings.Repeat("x", 1<<10)+`","token":""}`))

	paths := []string{"/v1/queue", "/v1/lease", "/v1/complete", "/v1/heartbeat"}
	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		srv := NewServer(st)
		srv.AttachQueue(queue.New(time.Minute, 0))
		h := srv.Handler()

		// Some real state so complete/heartbeat bodies can collide with
		// live jobs, not just unknown ones.
		q := srv.Queue()
		q.Enqueue([]queue.JobSpec{valid})
		q.Lease("fuzz-worker")

		req := httptest.NewRequest(http.MethodPost, paths[int(which)%len(paths)], bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s with %d-byte body answered %d:\n%s",
				req.URL.Path, len(body), rec.Code, rec.Body.String())
		}
		c := q.Counts()
		if c.Pending+c.Leased+c.Done+c.Failed != c.Enqueued {
			t.Fatalf("queue books don't balance after request: %+v", c)
		}
		if c.Enqueued < 1 {
			t.Fatalf("seeded job vanished: %+v", c)
		}
	})
}
