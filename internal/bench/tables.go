package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"branchreorder/internal/lower"
	"branchreorder/internal/machine"
	"branchreorder/internal/workload"
)

func newTab(sb *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(sb, 2, 4, 2, ' ', tabwriter.AlignRight)
}

// Table2 renders the switch-translation heuristics (definitional).
func Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: Heuristics Used for Translating switch Statements\n")
	sb.WriteString("(n = number of cases, m = possible values between first and last case)\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Set\tIndirect Jump\tBinary Search\tLinear Search\t")
	fmt.Fprintln(w, "I\tn>=4 && m<=3n\t!indirect && n>=8\totherwise\t")
	fmt.Fprintln(w, "II\tn>=16 && m<=3n\t!indirect && n>=8\totherwise\t")
	fmt.Fprintln(w, "III\tnever\tnever\talways\t")
	w.Flush()
	return sb.String()
}

// Table3 renders the test-program roster with input sizes.
func Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Test Programs\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Program\tDescription\tTrain bytes\tTest bytes\t")
	for _, wl := range workload.All() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t\n", wl.Name, wl.Desc, len(wl.Train()), len(wl.Test()))
	}
	w.Flush()
	return sb.String()
}

// Table4 renders the dynamic frequency measurements: original instruction
// counts and the percentage change in instructions and conditional
// branches after reordering, per heuristic set.
func (s *Suite) Table4() string {
	var sb strings.Builder
	sb.WriteString("Table 4: Dynamic Frequency Measurements\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Set\tProgram\tOriginal Insts\tInsts\tBranches\t")
	for _, set := range Sets() {
		var sumI, sumB float64
		var sumOrig uint64
		runs := s.Runs[set]
		for _, r := range runs {
			di := PctChange(r.Base.Stats.Insts, r.Reord.Stats.Insts)
			db := PctChange(r.Base.Stats.CondBranches, r.Reord.Stats.CondBranches)
			sumI += di
			sumB += db
			sumOrig += r.Base.Stats.Insts
			fmt.Fprintf(w, "%v\t%s\t%d\t%+.2f%%\t%+.2f%%\t\n",
				set, r.Workload.Name, r.Base.Stats.Insts, di, db)
		}
		n := float64(len(runs))
		fmt.Fprintf(w, "%v\taverage\t%d\t%+.2f%%\t%+.2f%%\t\n",
			set, sumOrig/uint64(len(runs)), sumI/n, sumB/n)
	}
	w.Flush()
	return sb.String()
}

// ultraPredictor is the SPARC Ultra I's predictor configuration.
const ultraPredictor = "(0,2)x2048"

// Table5 renders branch prediction measurements with the Ultra's (0,2)
// 2048-entry predictor on Heuristic Set II builds: original
// mispredictions, the percentage change after reordering, and — for
// programs whose mispredictions increased — the ratio of instructions
// saved per extra misprediction.
func (s *Suite) Table5() string {
	var sb strings.Builder
	sb.WriteString("Table 5: Branch Prediction Measurements Using a (0,2) Predictor with 2048 Entries\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Program\tOriginal Mispreds\tReordered Mispreds\tInst Ratio\t")
	var sumPct, sumRatio float64
	var nRatio int
	var sumOrig uint64
	runs := s.Runs[lower.SetII]
	for _, r := range runs {
		m0 := r.Base.Mispredicts[ultraPredictor]
		m1 := r.Reord.Mispredicts[ultraPredictor]
		pct := PctChange(m0, m1)
		sumPct += pct
		sumOrig += m0
		ratio := "N/A"
		if m1 > m0 {
			v := float64(r.Base.Stats.Insts-r.Reord.Stats.Insts) / float64(m1-m0)
			ratio = fmt.Sprintf("%.2f", v)
			sumRatio += v
			nRatio++
		}
		fmt.Fprintf(w, "%s\t%d\t%+.2f%%\t%s\t\n", r.Workload.Name, m0, pct, ratio)
	}
	avgRatio := "N/A"
	if nRatio > 0 {
		avgRatio = fmt.Sprintf("%.2f", sumRatio/float64(nRatio))
	}
	fmt.Fprintf(w, "average\t%d\t%+.2f%%\t%s\t\n",
		sumOrig/uint64(len(runs)), sumPct/float64(len(runs)), avgRatio)
	w.Flush()
	return sb.String()
}

// Table6 renders the predictor sweep: for (0,1) and (0,2) predictors of
// 32..2048 entries, the average misprediction change and the average
// instructions-saved-per-extra-misprediction ratio.
func (s *Suite) Table6() string {
	var sb strings.Builder
	sb.WriteString("Table 6: Branch Prediction Measurements Across Predictors\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Entries\t(0,1) Mispreds\t(0,1) Inst Ratio\t(0,2) Mispreds\t(0,2) Inst Ratio\t")
	runs := s.Runs[lower.SetII]
	for entries := 32; entries <= 2048; entries *= 2 {
		cols := make([]string, 0, 4)
		for _, bits := range []int{1, 2} {
			name := fmt.Sprintf("(0,%d)x%d", bits, entries)
			var sumPct, sumRatio float64
			var nRatio int
			for _, r := range runs {
				m0 := r.Base.Mispredicts[name]
				m1 := r.Reord.Mispredicts[name]
				sumPct += PctChange(m0, m1)
				if m1 > m0 {
					sumRatio += float64(r.Base.Stats.Insts-r.Reord.Stats.Insts) / float64(m1-m0)
					nRatio++
				}
			}
			ratio := "N/A"
			if nRatio > 0 {
				ratio = fmt.Sprintf("%.2f", sumRatio/float64(nRatio))
			}
			cols = append(cols, fmt.Sprintf("%+.2f%%", sumPct/float64(len(runs))), ratio)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t\n", entries, cols[0], cols[1], cols[2], cols[3])
	}
	w.Flush()
	return sb.String()
}

// Table7 renders modelled execution times: the percentage change in
// cycles per machine, each machine using the heuristic set the paper
// compiled it with.
func (s *Suite) Table7() string {
	var sb strings.Builder
	sb.WriteString("Table 7: Execution Times (modelled cycles)\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Program\tSPARC IPC\tSPARC 20\tSPARC Ultra I\t")
	configs := machine.All()
	sums := make([]float64, len(configs))
	names := s.Runs[lower.SetI]
	for i := range names {
		cols := make([]string, len(configs))
		for ci, cfg := range configs {
			r := s.Runs[cfg.Switch][i]
			pct := PctChange(r.Base.Cycles[cfg.Name], r.Reord.Cycles[cfg.Name])
			sums[ci] += pct
			cols[ci] = fmt.Sprintf("%+.2f%%", pct)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t\n", names[i].Workload.Name, cols[0], cols[1], cols[2])
	}
	n := float64(len(names))
	fmt.Fprintf(w, "average\t%+.2f%%\t%+.2f%%\t%+.2f%%\t\n", sums[0]/n, sums[1]/n, sums[2]/n)
	w.Flush()
	return sb.String()
}

// Table8 renders the static measurements: growth in generated
// instructions, sequences detected, the share actually reordered, and
// average sequence lengths (in branches) before and after reordering.
func (s *Suite) Table8() string {
	var sb strings.Builder
	sb.WriteString("Table 8: Static Measurements\n\n")
	w := newTab(&sb)
	fmt.Fprintln(w, "Set\tProgram\tInsts\tTotal Seqs\tSeqs Reordered\tAvg Orig Len\tAvg After Len\t")
	for _, set := range Sets() {
		var sumPct, sumPctSeqs, sumLenO, sumLenA float64
		var nLen, totalSeqs int
		runs := s.Runs[set]
		for _, r := range runs {
			pct := PctChange(uint64(r.StaticBase), uint64(r.StaticReord))
			sumPct += pct
			total := r.TotalSeqs()
			reordered := r.ReorderedSeqs()
			totalSeqs += total
			pctSeqs := 0.0
			if total > 0 {
				pctSeqs = 100 * float64(reordered) / float64(total)
			}
			sumPctSeqs += pctSeqs
			var lo, la, n float64
			for _, res := range r.AppliedSeqs() {
				lo += float64(res.OrigBranches)
				la += float64(res.NewBranches)
				n++
			}
			avgO, avgA := "-", "-"
			if n > 0 {
				avgO = fmt.Sprintf("%.2f", lo/n)
				avgA = fmt.Sprintf("%.2f", la/n)
				sumLenO += lo / n
				sumLenA += la / n
				nLen++
			}
			fmt.Fprintf(w, "%v\t%s\t%+.2f%%\t%d\t%.2f%%\t%s\t%s\t\n",
				set, r.Workload.Name, pct, total, pctSeqs, avgO, avgA)
		}
		n := float64(len(runs))
		fmt.Fprintf(w, "%v\taverage\t%+.2f%%\t%.2f\t%.2f%%\t%.2f\t%.2f\t\n",
			set, sumPct/n, float64(totalSeqs)/n, sumPctSeqs/n,
			sumLenO/float64(nLen), sumLenA/float64(nLen))
	}
	w.Flush()
	return sb.String()
}

// Figure renders the sequence-length distributions of Figures 11-13
// (n = 11, 12 or 13, covering heuristic sets I, II and III) as text
// histograms of original and reordered sequence lengths.
func (s *Suite) Figure(n int) (string, error) {
	var set lower.HeuristicSet
	switch n {
	case 11:
		set = lower.SetI
	case 12:
		set = lower.SetII
	case 13:
		set = lower.SetIII
	default:
		return "", fmt.Errorf("bench: no figure %d (have 11, 12, 13)", n)
	}
	orig := map[int]int{}
	reord := map[int]int{}
	var sumO, sumR, cnt float64
	for _, r := range s.Runs[set] {
		for _, res := range r.AppliedSeqs() {
			orig[res.OrigBranches]++
			reord[res.NewBranches]++
			sumO += float64(res.OrigBranches)
			sumR += float64(res.NewBranches)
			cnt++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %d: Sequence Length for Heuristic Set %v\n\n", n, set)
	if cnt == 0 {
		sb.WriteString("(no reordered sequences)\n")
		return sb.String(), nil
	}
	fmt.Fprintf(&sb, "Original sequence length (average %.2f):\n", sumO/cnt)
	sb.WriteString(histogram(orig))
	fmt.Fprintf(&sb, "\nReordered sequence length (average %.2f):\n", sumR/cnt)
	sb.WriteString(histogram(reord))
	return sb.String(), nil
}

// histogram renders a length -> count map as horizontal bars.
func histogram(h map[int]int) string {
	maxLen, maxCount := 0, 0
	for l, c := range h {
		if l > maxLen {
			maxLen = l
		}
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for l := 1; l <= maxLen; l++ {
		c := h[l]
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*50/maxCount)
		}
		if c > 0 && bar == "" {
			bar = "."
		}
		fmt.Fprintf(&sb, "%3d | %-50s %d\n", l, bar, c)
	}
	return sb.String()
}
